"""Command-line interface: ``python -m repro <command>``.

Thin argparse shims over the library so the paper's experiments can be
run without writing Python:

========================  ====================================================
``table1``                regenerate Table I (the headline experiment)
``race``                  one (method, grip) condition, printed per lap
``latency``               range-method / filter / scan-match latency report
``fig1``                  motion-model spread series (paper Fig. 1)
``fig2``                  track + grip-condition report (paper Fig. 2)
``speed-sweep``           SynPF accuracy vs top speed (the 7.6 m/s claim)
``sweep``                 parallel, resumable condition sweep (Table I grid)
``scenario``              list / show / run declarative fault scenarios
``campaign``              scenario x method x trial robustness scorecard
``verify``                differential / metamorphic / golden verification
``govern``                latency-SLO governor demo under injected pressure
``bench``                 benchmarks (raycast / pf / serve / govern) with
                          baseline gates
``report``                render a telemetry JSONL run into latency tables
``generate-map``          write a synthetic track in ROS map_server format
========================  ====================================================
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SynPF reproduction command line "
                    "(DATE 2024 localization-robustness paper)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table1", help="regenerate the paper's Table I")
    p_table.add_argument("--laps", type=int, default=10)
    p_table.add_argument("--seed", type=int, default=7)

    p_race = sub.add_parser("race", help="run one experiment condition")
    p_race.add_argument("--method", choices=("synpf", "cartographer",
                                             "vanilla_mcl"), default="synpf")
    p_race.add_argument("--quality", choices=("HQ", "LQ"), default="HQ")
    p_race.add_argument("--laps", type=int, default=3)
    p_race.add_argument("--seed", type=int, default=7)
    p_race.add_argument("--speed-scale", type=float, default=1.0)
    p_race.add_argument("--particles", type=int, default=None,
                        help="SynPF particle budget override")
    p_race.add_argument("--fused-odometry", action="store_true",
                        help="fuse wheel odometry with the IMU (EKF)")
    p_race.add_argument("--telemetry", default=None, metavar="PATH",
                        help="write a telemetry JSONL stream (manifest, "
                             "lap/crash events, span latency histograms) "
                             "renderable with `repro report`")

    p_sweep = sub.add_parser(
        "sweep",
        help="parallel fault-tolerant condition sweep with JSONL checkpointing",
    )
    p_sweep.add_argument("--methods", default="cartographer,synpf",
                         help="comma-separated: synpf,cartographer,vanilla_mcl")
    p_sweep.add_argument("--qualities", default="HQ,LQ",
                         help="comma-separated grip conditions (HQ,LQ)")
    p_sweep.add_argument("--speed-scales", default="1.0",
                         help="comma-separated speed scalings")
    p_sweep.add_argument("--trials", type=int, default=1,
                         help="Monte-Carlo trials per condition")
    p_sweep.add_argument("--laps", type=int, default=2)
    p_sweep.add_argument("--seed", type=int, default=7,
                         help="base seed; per-trial seeds are derived from it")
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="worker processes (1 = inline, no pool)")
    p_sweep.add_argument("--timeout", type=float, default=None,
                         help="per-trial timeout in seconds (workers >= 2)")
    p_sweep.add_argument("--retries", type=int, default=1,
                         help="extra attempts for crashed/hung trials")
    p_sweep.add_argument("--backoff", type=float, default=0.5,
                         help="retry backoff base in seconds")
    p_sweep.add_argument("--checkpoint", default=None,
                         help="JSONL checkpoint path; re-running resumes from it")
    p_sweep.add_argument("--resolution", type=float, default=0.05)
    p_sweep.add_argument("--max-sim-time", type=float, default=600.0)
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress per-trial progress lines")
    p_sweep.add_argument("--telemetry", default=None, metavar="PATH",
                         help="write a telemetry JSONL stream carrying the "
                              "manifest and the deterministically merged "
                              "per-trial metric snapshot")

    p_scenario = sub.add_parser(
        "scenario",
        help="declarative fault-injection scenarios (repro.scenarios)",
    )
    scen_sub = p_scenario.add_subparsers(dest="scenario_command", required=True)
    scen_sub.add_parser("list", help="catalog of named scenarios")
    p_show = scen_sub.add_parser("show", help="print one scenario as JSON")
    p_show.add_argument("name", help="catalog name or a scenario .json path")
    p_run = scen_sub.add_parser("run", help="execute one scenario")
    p_run.add_argument("name", help="catalog name or a scenario .json path")
    p_run.add_argument("--method", choices=("synpf", "cartographer",
                                            "vanilla_mcl"), default=None,
                       help="override the scenario's localizer")
    p_run.add_argument("--seed", type=int, default=None,
                       help="override the scenario's seed")
    p_run.add_argument("--laps", type=int, default=None)
    p_run.add_argument("--resolution", type=float, default=None)
    p_run.add_argument("--out", default=None,
                       help="write summary + event log JSON here")

    p_campaign = sub.add_parser(
        "campaign",
        help="robustness campaign: scenario x method x trial scorecard",
    )
    p_campaign.add_argument("--scenarios", default=None,
                            help="comma-separated catalog names "
                                 "(default: whole catalog)")
    p_campaign.add_argument("--methods", default=None,
                            help="comma-separated localizers (default: each "
                                 "scenario's own)")
    p_campaign.add_argument("--trials", type=int, default=1)
    p_campaign.add_argument("--seed", type=int, default=7,
                            help="base seed; trial seeds derive from it")
    p_campaign.add_argument("--workers", type=int, default=1)
    p_campaign.add_argument("--timeout", type=float, default=None,
                            help="per-trial timeout in seconds (workers >= 2)")
    p_campaign.add_argument("--retries", type=int, default=1)
    p_campaign.add_argument("--checkpoint", default=None,
                            help="JSONL checkpoint path; re-running resumes")
    p_campaign.add_argument("--scorecard", default=None,
                            help="write the JSON scorecard here")
    p_campaign.add_argument("--laps", type=int, default=None,
                            help="override num_laps on every scenario")
    p_campaign.add_argument("--resolution", type=float, default=None,
                            help="override track resolution on every scenario")
    p_campaign.add_argument("--traffic", action="store_true",
                            help="run the traffic-density axis: the "
                                 "traffic-density-* scenarios against "
                                 "synpf and cartographer (explicit "
                                 "--scenarios/--methods still win)")
    p_campaign.add_argument("--smoke", action="store_true",
                            help="fast sanity pass: 1 lap on a coarse "
                                 "0.1 m grid unless --laps/--resolution "
                                 "are given explicitly")
    p_campaign.add_argument("--quiet", action="store_true")

    p_verify = sub.add_parser(
        "verify",
        help="cross-check the localization stack: differential raycast / "
             "localizer oracles, metamorphic properties, golden traces",
    )
    p_verify.add_argument("--suite",
                          choices=("differential", "metamorphic", "golden",
                                   "all"),
                          default="all")
    p_verify.add_argument("--queries", type=int, default=10_000,
                          help="raycast-oracle query count (differential)")
    p_verify.add_argument("--batch-size", type=int, default=2500,
                          help="queries per oracle batch (a sweep trial)")
    p_verify.add_argument("--seed", type=int, default=7,
                          help="base seed; batch seeds derive from it")
    p_verify.add_argument("--workers", type=int, default=1,
                          help="worker processes (report is bit-identical "
                               "at any worker count)")
    p_verify.add_argument("--methods", default="synpf,cartographer",
                          help="comma-separated localizers for the "
                               "differential / metamorphic suites")
    p_verify.add_argument("--trace-seed", type=int, default=5,
                          help="seed of the shared reference scan stream")
    p_verify.add_argument("--scans", type=int, default=25,
                          help="reference-stream length (localizer oracle)")
    p_verify.add_argument("--golden-dir", default=None,
                          help="golden-trace directory "
                               "(default: tests/golden)")
    p_verify.add_argument("--update-golden", action="store_true",
                          help="re-record golden traces instead of "
                               "comparing against them")
    p_verify.add_argument("--report", default=None, metavar="PATH",
                          help="write the full JSON verification report here")
    p_verify.add_argument("--timeout", type=float, default=None,
                          help="per-trial timeout in seconds (workers >= 2)")
    p_verify.add_argument("--quiet", action="store_true",
                          help="suppress per-trial progress lines")

    p_govern = sub.add_parser(
        "govern",
        help="run the compute governor against a deterministic pressure "
             "timeline and print the two-arm (governed vs ungoverned) "
             "summary",
    )
    p_govern.add_argument("--updates", type=int, default=None,
                          help="run length (default: the smoke profile)")
    p_govern.add_argument("--particles", type=int, default=None)
    p_govern.add_argument("--beams", type=int, default=None)
    p_govern.add_argument("--seed", type=int, default=0)
    p_govern.add_argument("--full", action="store_true",
                          help="full bench profile instead of smoke")
    p_govern.add_argument("--out", default=None, metavar="PATH",
                          help="write the JSON result here")

    p_bench = sub.add_parser(
        "bench",
        help="acceleration-layer benchmarks: raycast throughput / "
             "PF update latency / fleet serving / compute governor, "
             "with baseline regression gating",
    )
    p_bench.add_argument("target", choices=("raycast", "pf", "serve",
                                            "govern"),
                         help="raycast: calc_ranges_pose_batch throughput "
                              "per backend spec; pf: end-to-end SynPF "
                              "update, reference vs accelerated; serve: "
                              "fleet session load test with artifact-cache "
                              "sharing proof; govern: two-arm control-loop "
                              "run under injected pressure")
    p_bench.add_argument("--particles", type=int, default=1000)
    p_bench.add_argument("--beams", type=int, default=60)
    p_bench.add_argument("--repeats", type=int, default=5,
                         help="outer repeats; the figure is their median")
    p_bench.add_argument("--updates", type=int, default=30,
                         help="PF updates per repeat (pf target)")
    p_bench.add_argument("--workers", type=int, default=1,
                         help="sweep-runner worker processes")
    p_bench.add_argument("--sessions", type=int, default=None,
                         help="concurrent session count (serve target)")
    p_bench.add_argument("--fused", action="store_true",
                         help="pf target: benchmark the fused pf_update "
                              "pipeline vs the staged one "
                              "(BENCH_pf_fused.json)")
    p_bench.add_argument("--smoke", action="store_true",
                         help="serve/govern/pf --fused targets: small "
                              "fast CI configuration")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--out", default=None, metavar="PATH",
                         help="write the JSON result here")
    p_bench.add_argument("--check", action="store_true",
                         help="gate speedup ratios against --baseline; "
                              "exit 1 on regression")
    p_bench.add_argument("--baseline", default=None, metavar="PATH",
                         help="baseline JSON (default: the committed "
                              "benchmarks/BENCH_*.json)")
    p_bench.add_argument("--tolerance", type=float, default=0.25,
                         help="allowed fractional speedup regression")

    p_report = sub.add_parser(
        "report",
        help="render a telemetry JSONL run: per-stage latency table, "
             "counters, events",
    )
    p_report.add_argument("run", help="path to a telemetry .jsonl file")
    p_report.add_argument("--format", choices=("text", "json", "prometheus"),
                          default="text",
                          help="text tables (default), merged JSON snapshot, "
                               "or Prometheus exposition text")

    sub.add_parser("latency", help="latency report (LUT / filter / matcher)")
    sub.add_parser("fig1", help="motion-model spread series")
    sub.add_parser("fig2", help="track and grip-condition report")
    sub.add_parser("speed-sweep", help="SynPF accuracy vs top speed")

    p_map = sub.add_parser("generate-map",
                           help="write a synthetic track as YAML+PGM")
    p_map.add_argument("out", help="output .yaml path")
    p_map.add_argument("--seed", type=int, default=0)
    p_map.add_argument("--replica", action="store_true",
                       help="use the replica test track instead of a random one")
    p_map.add_argument("--resolution", type=float, default=0.05)

    return parser


def _print_govern_result(result) -> None:
    budget = result["budget"]
    timeline = result["timeline"]
    print(f"compute governor, {result['updates']} updates "
          f"({result['particles']} particles x {result['beams']} beams, "
          f"{result['method']}), timeline '{timeline['name']}' "
          f"(peak load {timeline['peak_factor']:.0f}x):")
    print(f"  budget: p{budget['quantile'] * 100:.0f} <= "
          f"{budget['target_ms']:.1f} ms "
          f"(relax below {budget['relax_fraction'] * budget['target_ms']:.1f}"
          f" ms, dwell {budget['dwell_updates']})")
    for name in ("governed", "ungoverned"):
        arm = result["arms"][name]
        line = (f"  {name:<11} in-budget {arm['in_budget_fraction']:6.1%}"
                f"  mean err {arm['mean_error_m'] * 100:6.2f} cm"
                f"  recovery err {arm['mean_error_recovery_m'] * 100:6.2f} cm")
        if "final_rung" in arm:
            line += (f"  rung max {arm['max_rung_applied']}"
                     f" final {arm['final_rung']}")
        print(line)
    for key, value in sorted(result["speedups"].items()):
        print(f"  {key:<40}{value:>6.2f}x")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "table1":
        # The bench module owns the paper-vs-measured printing.
        sys.path.insert(0, "benchmarks")
        from repro.eval.experiment import format_table1
        from repro.eval.experiment import ExperimentCondition, LapExperiment
        from repro.maps import replica_test_track

        track = replica_test_track(resolution=0.05)
        experiment = LapExperiment(track)
        results = []
        for method in ("cartographer", "synpf"):
            for quality in ("HQ", "LQ"):
                condition = ExperimentCondition(
                    method=method, odom_quality=quality,
                    num_laps=args.laps, speed_scale=1.0, seed=args.seed,
                )
                results.append(
                    experiment.run(condition, progress=lambda m: print("  ", m))
                )
        print()
        print(format_table1(results))
        return 0

    if args.command == "race":
        from repro.eval.experiment import (
            ExperimentCondition, LapExperiment, format_table1,
        )
        from repro.maps import replica_test_track

        overrides = {}
        if args.particles is not None:
            overrides["num_particles"] = args.particles
        track = replica_test_track(resolution=0.05)
        condition = ExperimentCondition(
            method=args.method, odom_quality=args.quality,
            num_laps=args.laps, speed_scale=args.speed_scale, seed=args.seed,
            localizer_overrides=overrides,
            odometry_source="fused" if args.fused_odometry else "wheel",
        )
        telemetry = None
        if args.telemetry:
            from repro.telemetry import Telemetry

            telemetry = Telemetry.to_path(args.telemetry)
        try:
            result = LapExperiment(track).run(
                condition, progress=print, telemetry=telemetry
            )
        finally:
            if telemetry is not None:
                telemetry.close()
        if args.telemetry:
            print(f"telemetry: wrote {args.telemetry} "
                  f"(render with `repro report {args.telemetry}`)")
        print()
        print(format_table1([result]))
        print(f"crashes: {result.crashes}   "
              f"mean update: {result.mean_update_ms:.2f} ms   "
              f"loc. error: {result.localization_error_cm.mean:.2f} cm")
        return 0

    if args.command == "sweep":
        from repro.eval.runner import (
            SweepRunner,
            make_lap_conditions,
            make_lap_specs,
            merge_sweep_telemetry,
            run_lap_trial,
            summarize_lap_sweep,
        )

        conditions = make_lap_conditions(
            methods=[m for m in args.methods.split(",") if m],
            qualities=[q for q in args.qualities.split(",") if q],
            speed_scales=[float(s) for s in args.speed_scales.split(",") if s],
            num_laps=args.laps,
        )
        specs = make_lap_specs(
            conditions, trials=args.trials, base_seed=args.seed,
            resolution=args.resolution, max_sim_time=args.max_sim_time,
        )

        def report(stats, record):
            if args.quiet:
                return
            status = "ok" if record.ok else f"FAILED ({record.kind})"
            print(f"  [{stats.completed}/{stats.total}] "
                  f"{record.trial_id}: {status}  "
                  f"(attempts {record.attempts}, {record.elapsed_s:.1f} s)")

        runner = SweepRunner(
            run_lap_trial,
            workers=args.workers,
            timeout_s=args.timeout,
            retries=args.retries,
            retry_backoff_s=args.backoff,
            checkpoint_path=args.checkpoint,
            progress=report,
        )
        print(f"sweep: {len(conditions)} conditions x {args.trials} trial(s) "
              f"on {args.workers} worker(s)")
        sweep = runner.run(specs)

        if args.telemetry:
            from repro.telemetry import Telemetry

            with Telemetry.to_path(args.telemetry) as telemetry:
                telemetry.manifest(
                    config={
                        "command": "sweep",
                        "methods": args.methods,
                        "qualities": args.qualities,
                        "speed_scales": args.speed_scales,
                        "trials": args.trials,
                        "laps": args.laps,
                        "workers": args.workers,
                        "resolution": args.resolution,
                    },
                    seeds={"base": args.seed},
                )
                # Merged from per-trial snapshots in sorted trial-id order,
                # so the stream is bit-identical at any worker count.
                telemetry.registry.merge_snapshot(
                    merge_sweep_telemetry(sweep.records)
                )
                telemetry.flush_metrics(label="sweep")
            print(f"telemetry: wrote {args.telemetry} "
                  f"(render with `repro report {args.telemetry}`)")

        # Deterministic block first (bit-identical at any worker count)...
        print()
        print(summarize_lap_sweep(sweep.records))
        # ...then the wall-clock observability block.
        print()
        print(sweep.stats.summary_line())
        if sweep.stats.timing.count("trial"):
            print("per-trial latency:")
            print(sweep.stats.timing.format_histogram_ms("trial", bins=6))
        return 1 if sweep.failures else 0

    if args.command == "scenario":
        import json
        import os

        from repro.scenarios import (
            get_scenario, list_scenarios, load_scenario, run_scenario,
        )

        def resolve(name):
            if os.path.exists(name) or name.endswith(".json"):
                return load_scenario(name)
            return get_scenario(name)

        if args.scenario_command == "list":
            for spec in list_scenarios():
                print(spec.summary_line())
            return 0

        if args.scenario_command == "show":
            print(json.dumps(resolve(args.name).to_dict(), indent=2))
            return 0

        if args.scenario_command == "run":
            spec = resolve(args.name)
            print(f"scenario {spec.name}: {spec.description}")
            outcome = run_scenario(
                spec, method=args.method, seed=args.seed,
                num_laps=args.laps, resolution=args.resolution,
                progress=lambda m: print("  ", m),
            )
            print()
            for record in outcome.event_log:
                print(f"  t={record['time']:7.2f}s lap {record['lap']:>2} "
                      f"{record['kind']:<10} {record['phase']:<6} "
                      f"{record['detail']}")
            print()
            print(json.dumps(outcome.summary, indent=2))
            if args.out:
                payload = {
                    "scenario": outcome.spec.to_dict(),
                    "method": outcome.method,
                    "seed": outcome.seed,
                    "summary": outcome.summary,
                    "event_log": outcome.event_log,
                }
                with open(args.out, "w") as fh:
                    json.dump(payload, fh, indent=2)
                print(f"\nwrote {args.out}")
            survived = outcome.summary["survived"]
            return 0 if survived else 1

        raise AssertionError(
            f"unhandled scenario command {args.scenario_command!r}"
        )

    if args.command == "campaign":
        from repro.scenarios import (
            format_scorecard, run_campaign, save_scorecard, scenario_names,
        )

        if args.scenarios:
            names = [s for s in args.scenarios.split(",") if s]
        elif args.traffic:
            names = [n for n in scenario_names()
                     if n.startswith("traffic-density-")]
        else:
            names = scenario_names()
        if args.methods:
            methods = [m for m in args.methods.split(",") if m]
        elif args.traffic:
            methods = ["synpf", "cartographer"]
        else:
            methods = None
        num_laps = args.laps
        resolution = args.resolution
        if args.smoke:
            num_laps = 1 if num_laps is None else num_laps
            resolution = 0.1 if resolution is None else resolution

        def report(stats, record):
            if args.quiet:
                return
            status = "ok" if record.ok else f"FAILED ({record.kind})"
            print(f"  [{stats.completed}/{stats.total}] "
                  f"{record.trial_id}: {status}  "
                  f"(attempts {record.attempts}, {record.elapsed_s:.1f} s)")

        print(f"campaign: {len(names)} scenario(s) x "
              f"{len(methods) if methods else 'own'} method(s) x "
              f"{args.trials} trial(s) on {args.workers} worker(s)")
        scorecard, sweep = run_campaign(
            names, methods=methods, trials=args.trials, base_seed=args.seed,
            workers=args.workers, timeout_s=args.timeout,
            retries=args.retries, checkpoint_path=args.checkpoint,
            progress=report, num_laps=num_laps, resolution=resolution,
        )
        print()
        print(format_scorecard(scorecard))
        print()
        print(sweep.stats.summary_line())
        if args.scorecard:
            save_scorecard(scorecard, args.scorecard)
            print(f"wrote {args.scorecard}")
        return 1 if sweep.failures else 0

    if args.command == "verify":
        import json

        from repro.verify.suite import (
            VerifyConfig, render_verify_report, run_verify,
        )

        def progress(stats, record):
            if args.quiet:
                return
            status = "ok" if record.ok else f"FAILED ({record.kind})"
            print(f"  [{stats.completed}/{stats.total}] "
                  f"{record.trial_id}: {status}  "
                  f"(attempts {record.attempts}, {record.elapsed_s:.1f} s)")

        try:
            config = VerifyConfig(
                suite=args.suite,
                n_queries=args.queries,
                batch_size=args.batch_size,
                seed=args.seed,
                workers=args.workers,
                methods=tuple(m for m in args.methods.split(",") if m),
                trace_seed=args.trace_seed,
                n_scans=args.scans,
                golden_dir=args.golden_dir,
                update_golden=args.update_golden,
                timeout_s=args.timeout,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = run_verify(config, progress=progress)
        print()
        print(render_verify_report(report))
        if args.report:
            with open(args.report, "w") as fh:
                json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            print(f"\nwrote {args.report}")
        return 0 if report.ok else 1

    if args.command == "govern":
        import json

        from repro.govern.bench import run_govern_bench

        result = run_govern_bench(
            updates=args.updates, particles=args.particles,
            beams=args.beams, seed=args.seed, smoke=not args.full,
        )
        _print_govern_result(result)
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(result, fh, indent=2, sort_keys=True)
            print(f"wrote {args.out}")
        return 0

    if args.command == "bench":
        import json

        from repro.accel.bench import (
            check_against_baseline, run_pf_bench, run_pf_fused_bench,
            run_raycast_bench,
        )

        default_artifact = {
            "raycast": "benchmarks/BENCH_raycast_throughput.json",
            "pf": "benchmarks/BENCH_pf_update.json",
            "serve": "benchmarks/BENCH_serve.json",
            "govern": "benchmarks/BENCH_govern.json",
        }[args.target]
        if args.target == "pf" and args.fused:
            default_artifact = "benchmarks/BENCH_pf_fused.json"
        baseline = None
        if args.check:
            baseline_path = args.baseline or default_artifact
            try:
                with open(baseline_path) as fh:
                    baseline = json.load(fh)
            except (OSError, ValueError) as exc:
                print(f"error: cannot read baseline {baseline_path}: {exc}",
                      file=sys.stderr)
                return 2

        if args.target == "govern":
            from repro.govern.bench import (
                check_govern_result, run_govern_bench,
            )

            # Run length comes from the profile (--smoke or full) so the
            # committed baseline and the CI smoke run stay comparable;
            # `repro govern --updates N` is the free-form entry point.
            result = run_govern_bench(seed=args.seed, smoke=args.smoke)
            _print_govern_result(result)
            if args.out:
                with open(args.out, "w") as fh:
                    json.dump(result, fh, indent=2, sort_keys=True)
                print(f"wrote {args.out}")
            if args.check:
                failures = check_govern_result(
                    result, baseline, args.tolerance
                )
                if failures:
                    for failure in failures:
                        print(f"FAIL: {failure}", file=sys.stderr)
                    return 1
                print(f"check: control-loop properties hold and all ratios "
                      f"within {args.tolerance:.0%} of baseline")
            return 0

        if args.target == "serve":
            from repro.serve.bench import check_serve_result, run_serve_bench

            result = run_serve_bench(
                sessions=args.sessions, seed=args.seed, smoke=args.smoke,
            )
            cfg = result["configs"]
            print(f"fleet serve, {result['sessions']} sessions x "
                  f"{result['updates_per_session']} updates "
                  f"({result['particles']} particles x {result['beams']} "
                  f"beams, {result['serve_method']}):")
            print(f"  setup      isolated {cfg['setup']['isolated_setup_s']:.3f} s"
                  f"  fleet {cfg['setup']['fleet_setup_s']:.3f} s"
                  f"  ({cfg['setup']['artifact_builds']} build(s), "
                  f"{cfg['setup']['artifact_hits']} hit(s), "
                  f"{cfg['setup']['sessions_per_s']:.1f} sessions/s)")
            print(f"  direct     {cfg['direct']['updates_per_s']:>8.1f} updates/s"
                  f"  p50 {cfg['direct']['p50_update_ms']:.2f} ms"
                  f"  p99 {cfg['direct']['p99_update_ms']:.2f} ms")
            print(f"  batched    {cfg['batched']['updates_per_s']:>8.1f} updates/s"
                  f"  ({cfg['batched']['folded_updates']} folded, "
                  f"{cfg['batched']['batched_vs_direct']:.2f}x vs direct)")
            for key, value in sorted(result["speedups"].items()):
                print(f"  {key:<40}{value:>6.2f}x")
            if args.out:
                with open(args.out, "w") as fh:
                    json.dump(result, fh, indent=2, sort_keys=True)
                print(f"wrote {args.out}")
            if args.check:
                failures = check_serve_result(result, baseline, args.tolerance)
                if failures:
                    for failure in failures:
                        print(f"FAIL: {failure}", file=sys.stderr)
                    return 1
                print(f"check: artifact sharing proven and all ratios "
                      f"within {args.tolerance:.0%} of baseline")
            return 0

        if args.target == "raycast":
            result = run_raycast_bench(
                particles=args.particles, beams=args.beams,
                repeats=args.repeats, workers=args.workers, seed=args.seed,
            )
            print(f"raycast throughput, {args.particles} particles x "
                  f"{args.beams} beams (median of {args.repeats}):")
            for spec, cfg in sorted(result["configs"].items()):
                print(f"  {spec:<28}{cfg['ms_per_batch']:>9.2f} ms/batch"
                      f"{cfg['queries_per_s']:>12.0f} q/s")
        elif args.fused:
            result = run_pf_fused_bench(
                particles=args.particles, beams=args.beams,
                updates=args.updates, repeats=args.repeats,
                workers=args.workers, seed=args.seed, smoke=args.smoke,
            )
            print(f"SynPF fused vs staged pf_update, {args.particles} "
                  f"particles x {args.beams} beams, ray_marching "
                  f"(median of {result['repeats']} x "
                  f"{result['updates_per_repeat']} updates"
                  f"{', smoke profile' if args.smoke else ''}):")
            for name, cfg in sorted(result["configs"].items()):
                print(f"  {name:<12}{cfg['ms_per_update']:>9.2f} ms/update  "
                      f"{cfg['settings']}")
        else:
            result = run_pf_bench(
                particles=args.particles, beams=args.beams,
                updates=args.updates, repeats=args.repeats,
                workers=args.workers, seed=args.seed,
            )
            print(f"SynPF update, {args.particles} particles x {args.beams} "
                  f"beams, ray_marching (median of {args.repeats} x "
                  f"{args.updates} updates):")
            for name, cfg in sorted(result["configs"].items()):
                print(f"  {name:<12}{cfg['ms_per_update']:>9.2f} ms/update  "
                      f"{cfg['settings']}")
        for key, value in sorted(result["speedups"].items()):
            print(f"  {key:<40}{value:>6.2f}x")
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(result, fh, indent=2, sort_keys=True)
            print(f"wrote {args.out}")

        if baseline is not None:
            failures = check_against_baseline(result, baseline, args.tolerance)
            if failures:
                for failure in failures:
                    print(f"FAIL: {failure}", file=sys.stderr)
                return 1
            print(f"check: all speedups within {args.tolerance:.0%} "
                  "of baseline")
        return 0

    if args.command == "report":
        import os

        from repro.telemetry import (
            load_run, render_report, to_json, to_prometheus_text,
        )

        # A report never warrants a traceback: missing or mangled input
        # is an operator mistake, answered with a message and exit 2.
        if not os.path.isfile(args.run):
            print(f"error: telemetry run not found: {args.run}",
                  file=sys.stderr)
            return 2
        try:
            run = load_run(args.run)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: could not read telemetry run {args.run}: "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)
            return 2
        if args.format == "text":
            print(render_report(run))
        elif run["metrics"] is None:
            print(f"error: {args.run} carries no metrics records "
                  "(torn or non-telemetry JSONL?)", file=sys.stderr)
            return 2
        elif args.format == "json":
            print(to_json(run["metrics"]))
        else:
            print(to_prometheus_text(run["metrics"]), end="")
        return 0

    if args.command == "latency":
        from repro.eval.latency import (
            measure_filter_latency,
            measure_range_method_latency,
            measure_scan_match_latency,
        )
        from repro.maps import replica_test_track

        track = replica_test_track(resolution=0.05)
        print("range methods (1000 particles x 60 beams):")
        for r in measure_range_method_latency(track, num_particles=1000):
            print(f"  {r['method']:<14} {r['batch_ms']:8.1f} ms/batch  "
                  f"{r['per_query_ns']:8.0f} ns/query  "
                  f"{r['memory_mb']:7.1f} MB")
        print("\nSynPF update latency:")
        for r in measure_filter_latency(track, particle_counts=(1000, 3000)):
            print(f"  {r['num_particles']:>5} particles: "
                  f"{r['update_ms']:.2f} ms")
        sm = measure_scan_match_latency(track)
        print(f"\nCartographer scan match: {sm['scan_match_ms']:.2f} ms")
        return 0

    if args.command == "fig1":
        import importlib.util
        import os

        spec_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))),
            "benchmarks", "bench_fig1_motion_models.py",
        )
        if os.path.exists(spec_path):
            spec = importlib.util.spec_from_file_location("bench_fig1", spec_path)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            module.main()
            return 0
        print("benchmarks/bench_fig1_motion_models.py not found; "
              "run from the repository root")
        return 1

    if args.command == "fig2":
        from repro.eval.experiment import TIRE_HQ, TIRE_LQ
        from repro.maps import replica_test_track
        from repro.sim.tire import pull_force_from_grip

        track = replica_test_track(resolution=0.05)
        print(f"replica track: lap {track.centerline.total_length:.1f} m, "
              f"width {track.spec.track_width:.1f} m")
        for name, tire, paper in (("HQ", TIRE_HQ, 26.0), ("LQ", TIRE_LQ, 19.0)):
            force = pull_force_from_grip(tire.mu, 3.46)
            print(f"  {name}: mu={tire.mu:.3f} -> pull force {force:.1f} N "
                  f"(paper: {paper:.0f} N)")
        return 0

    if args.command == "speed-sweep":
        from repro.eval.experiment import ExperimentCondition, LapExperiment
        from repro.maps import replica_test_track

        track = replica_test_track(resolution=0.05)
        for v_max in (3.0, 5.0, 7.6):
            experiment = LapExperiment(track, profile_kwargs={"v_max": v_max})
            result = experiment.run(
                ExperimentCondition(method="synpf", odom_quality="HQ",
                                    num_laps=2, speed_scale=1.0, seed=5)
            )
            print(f"v_max {v_max:.1f} m/s: lap {result.lap_time.mean:.2f} s, "
                  f"loc error {result.localization_error_cm.mean:.2f} cm, "
                  f"crashes {result.crashes}")
        return 0

    if args.command == "generate-map":
        from repro.maps import generate_track, replica_test_track, save_map_yaml

        if args.replica:
            track = replica_test_track(resolution=args.resolution)
        else:
            track = generate_track(seed=args.seed, resolution=args.resolution)
        yaml_path, pgm_path = save_map_yaml(track.grid, args.out)
        print(f"wrote {yaml_path} + {pgm_path} "
              f"({track.grid.width} x {track.grid.height} cells, "
              f"lap {track.centerline.total_length:.1f} m)")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
