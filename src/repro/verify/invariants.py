"""Runtime invariant checking for any :class:`~repro.core.interfaces.Localizer`.

The localizers promise a handful of structural facts on every update —
the estimate is finite and inside the map, particle weights form a
probability distribution, the particle count is conserved, the position
covariance is positive semi-definite.  None of those are visible from
the pose trace alone: a filter can silently run with NaN weights for
many steps before the estimate goes visibly wrong.

:class:`InvariantChecker` wraps a localizer behind the same protocol and
audits each ``update``.  Violations become structured
:class:`InvariantViolation` records: counted, kept (bounded) for the
telemetry snapshot, and optionally raised as :class:`InvariantError` in
strict mode.  Because it *is* a ``Localizer``, the checker drops into
trace replay, the lap experiment, or the verify suite unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.maps.occupancy_grid import OccupancyGrid

__all__ = [
    "InvariantViolation",
    "InvariantError",
    "InvariantChecker",
    "attach_invariants",
]

_MAX_KEPT_VIOLATIONS = 100
_PSD_TOLERANCE = -1e-12


@dataclass
class InvariantViolation:
    """One broken invariant at one update step."""

    invariant: str
    step: int
    message: str
    value: Optional[float] = None

    def to_dict(self) -> Dict:
        record = {"invariant": self.invariant, "step": self.step,
                  "message": self.message}
        if self.value is not None:
            record["value"] = float(self.value)
        return record


class InvariantError(AssertionError):
    """Raised in strict mode; carries the triggering violation records."""

    def __init__(self, violations: List[InvariantViolation]) -> None:
        self.violations = list(violations)
        lines = "; ".join(
            f"[step {v.step}] {v.invariant}: {v.message}" for v in violations
        )
        super().__init__(f"localizer invariant violated: {lines}")


@dataclass
class _ViolationLog:
    counts: Dict[str, int] = field(default_factory=dict)
    kept: List[InvariantViolation] = field(default_factory=list)

    def add(self, violation: InvariantViolation) -> None:
        self.counts[violation.invariant] = (
            self.counts.get(violation.invariant, 0) + 1
        )
        if len(self.kept) < _MAX_KEPT_VIOLATIONS:
            self.kept.append(violation)


class InvariantChecker:
    """A :class:`Localizer` that audits another localizer's every update.

    Checks applied to all methods:

    * the reported pose is finite;
    * the reported position lies inside the map bounds.

    Extra checks when the inner localizer is a particle filter
    (:class:`~repro.core.interfaces.SynPFLocalizer`):

    * weights are finite, non-negative and sum to 1 (tolerance 1e-6);
    * the particle count is conserved — exactly ``num_particles`` for a
      fixed-size filter, within ``[kld_n_min, num_particles]`` when KLD
      adaptation is on;
    * the weighted 2x2 position covariance is PSD (smallest eigenvalue
      above ``-1e-12``).

    Every particle-filter check reads the *live* configuration, so a
    runtime ``reconfigure`` (the :mod:`repro.govern` actuation seam) is
    audited against its new values from the very next update; knob
    transitions are additionally recorded as ``reconfigurations`` events
    in the telemetry snapshot.

    ``strict=True`` raises :class:`InvariantError` at the offending
    update; otherwise violations only accumulate into telemetry, which
    is the right mode for long robustness campaigns where the question
    is *how often* structure breaks under faults.
    """

    def __init__(self, inner, grid: OccupancyGrid, *, strict: bool = False,
                 weight_sum_tol: float = 1e-6) -> None:
        self.inner = inner
        self.grid = grid
        self.strict = strict
        self.weight_sum_tol = weight_sum_tol
        self.consumes_scan = bool(getattr(inner, "consumes_scan", True))
        self._log = _ViolationLog()
        self._step = 0
        # Runtime-reconfiguration audit: the governed knobs as of the
        # last audited update.  A change between updates is recorded as
        # an event (not a violation) and every structural check above
        # runs against the *new* configuration, so a knob change that
        # leaves stale state — wrong cloud size, unnormalized weights —
        # is caught at the very next update.
        self._last_knobs: Optional[Dict] = None
        self._reconfigurations: List[Dict] = []
        # Mirror the optional global-recovery surface (the supervisor
        # feature-detects it with hasattr).
        if hasattr(inner, "initialize_global"):
            self.initialize_global = inner.initialize_global

    # -- Localizer protocol -------------------------------------------------
    def initialize(self, pose: np.ndarray, std_xy: Optional[float] = None,
                   std_theta: Optional[float] = None) -> None:
        self.inner.initialize(pose, std_xy=std_xy, std_theta=std_theta)

    def update(self, delta, scan) -> np.ndarray:
        pose = self.inner.update(delta, scan)
        self._step += 1
        fresh = self._check(np.asarray(pose, dtype=float))
        for violation in fresh:
            self._log.add(violation)
        if self.strict and fresh:
            raise InvariantError(fresh)
        return pose

    @property
    def pose(self) -> np.ndarray:
        return self.inner.pose

    def latency_ms(self) -> float:
        return self.inner.latency_ms()

    def telemetry(self) -> Dict:
        snapshot = dict(self.inner.telemetry())
        snapshot["invariants"] = {
            "checked_updates": self._step,
            "violation_counts": dict(sorted(self._log.counts.items())),
            "violations": [v.to_dict() for v in self._log.kept],
            "reconfigurations": [dict(r) for r in self._reconfigurations],
        }
        return snapshot

    # -- Reporting helpers --------------------------------------------------
    @property
    def violations(self) -> List[InvariantViolation]:
        return list(self._log.kept)

    @property
    def violation_counts(self) -> Dict[str, int]:
        return dict(self._log.counts)

    @property
    def ok(self) -> bool:
        return not self._log.counts

    @property
    def reconfigurations(self) -> List[Dict]:
        """Knob-change events observed between audited updates."""
        return [dict(r) for r in self._reconfigurations]

    # -- Checks -------------------------------------------------------------
    def _check(self, pose: np.ndarray) -> List[InvariantViolation]:
        found: List[InvariantViolation] = []
        step = self._step

        if not np.all(np.isfinite(pose)):
            found.append(InvariantViolation(
                "pose_finite", step, f"pose contains non-finite values: {pose}"
            ))
            return found  # bounds / covariance are meaningless on NaN

        if not bool(self.grid.in_bounds(np.asarray(pose[:2], dtype=float))):
            found.append(InvariantViolation(
                "pose_in_bounds", step,
                f"estimate ({pose[0]:.3f}, {pose[1]:.3f}) outside map bounds",
            ))

        pf = getattr(self.inner, "pf", None)
        if pf is not None:
            found.extend(self._check_particle_filter(pf, step))
        return found

    _GOVERNED_KNOBS = (
        "num_particles", "num_beams", "dedup_xy_bin_cells", "accel_backend",
    )

    def _audit_knobs(self, config, step: int) -> None:
        """Record governed-knob transitions between audited updates."""
        knobs = {
            k: getattr(config, k, None) for k in self._GOVERNED_KNOBS
        }
        if self._last_knobs is not None and knobs != self._last_knobs:
            changed = {
                k: {"from": self._last_knobs[k], "to": v}
                for k, v in knobs.items()
                if v != self._last_knobs[k]
            }
            if len(self._reconfigurations) < _MAX_KEPT_VIOLATIONS:
                self._reconfigurations.append(
                    {"step": step, "changed": changed}
                )
        self._last_knobs = knobs

    def _check_particle_filter(self, pf, step: int) -> List[InvariantViolation]:
        found: List[InvariantViolation] = []
        self._audit_knobs(pf.config, step)
        weights = np.asarray(pf.weights, dtype=float)
        particles = np.asarray(pf.particles, dtype=float)

        if not np.all(np.isfinite(weights)):
            found.append(InvariantViolation(
                "weights_finite", step,
                f"{int(np.sum(~np.isfinite(weights)))} non-finite weights",
            ))
            return found
        if np.any(weights < 0.0):
            found.append(InvariantViolation(
                "weights_nonnegative", step,
                f"min weight {float(weights.min()):.3e} < 0",
                value=float(weights.min()),
            ))
        total = float(weights.sum())
        if abs(total - 1.0) > self.weight_sum_tol:
            found.append(InvariantViolation(
                "weights_normalized", step,
                f"weights sum to {total:.9f} (tolerance "
                f"{self.weight_sum_tol:g})",
                value=total,
            ))

        config = pf.config
        count = int(particles.shape[0])
        if weights.shape[0] != count:
            found.append(InvariantViolation(
                "particle_count_conserved", step,
                f"{count} particles but {weights.shape[0]} weights",
                value=float(count),
            ))
        elif getattr(config, "adaptive", False):
            low = int(getattr(config, "kld_n_min", 1))
            high = int(config.num_particles)
            if not low <= count <= high:
                found.append(InvariantViolation(
                    "particle_count_conserved", step,
                    f"adaptive count {count} outside [{low}, {high}]",
                    value=float(count),
                ))
        elif count != int(config.num_particles):
            found.append(InvariantViolation(
                "particle_count_conserved", step,
                f"count {count} != configured {config.num_particles}",
                value=float(count),
            ))

        if count >= 2 and weights.shape[0] == count:
            mean = weights @ particles[:, :2]
            centered = particles[:, :2] - mean
            cov = (weights[:, None] * centered).T @ centered
            eigenvalues = np.linalg.eigvalsh(cov)
            if float(eigenvalues.min()) < _PSD_TOLERANCE:
                found.append(InvariantViolation(
                    "covariance_psd", step,
                    f"position covariance min eigenvalue "
                    f"{float(eigenvalues.min()):.3e}",
                    value=float(eigenvalues.min()),
                ))
        return found


def attach_invariants(localizer, grid: OccupancyGrid, *,
                      strict: bool = False) -> InvariantChecker:
    """Wrap ``localizer`` so every update is invariant-audited.

    Sugar for :class:`InvariantChecker`; reads as intent at call sites::

        localizer = attach_invariants(make_localizer("synpf", grid), grid)
    """
    return InvariantChecker(localizer, grid, strict=strict)
