"""Metamorphic properties of whole localizers.

A metamorphic test does not know the right answer — it knows how the
answer must *change* when the input is transformed.  Four relations are
checked here (MCL folklore plus SE(2) symmetry):

* **Rigid-transform equivariance** — rotate the map by a multiple of 90
  degrees and translate it by whole cells (both exact on an occupancy
  grid), transform the trajectory identically, and the estimates must
  transform the same way, up to the filter's own statistical jitter.
* **Seed determinism** — the same seed must reproduce the estimate
  sequence bit for bit, and the telemetry snapshot bit for bit once
  wall-clock timing fields are stripped (latencies are explicitly outside
  the repo's determinism contract).
* **Scan-subsample degradation monotonicity** — discarding beams must not
  *improve* localization beyond statistical slack.
* **Odometry time reversal** — integrating a delta chain and then its
  reversed inverse chain is the identity, to numerical precision.

Every check returns a :class:`MetamorphicResult`; the suite runner fans
``(check, method)`` combinations out as sweep trials.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.maps.occupancy_grid import OccupancyGrid

__all__ = [
    "MetamorphicResult",
    "METAMORPHIC_CHECKS",
    "transform_grid",
    "transform_pose",
    "check_rigid_transform_equivariance",
    "check_seed_determinism",
    "check_scan_subsample_monotonicity",
    "check_time_reversal",
    "metamorphic_trial",
    "run_metamorphic_suite",
]

LOCALIZER_METHODS_UNDER_TEST: Tuple[str, ...] = ("synpf", "cartographer")


@dataclass
class MetamorphicResult:
    """Verdict of one (check, method) combination."""

    check: str
    method: str
    ok: bool
    details: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {"check": self.check, "method": self.method, "ok": self.ok,
                "details": self.details}

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetamorphicResult":
        return cls(check=str(data["check"]), method=str(data["method"]),
                   ok=bool(data["ok"]), details=dict(data.get("details", {})))

    def summary_line(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return f"{self.check:<30}{self.method:<14}{status}"


# ---------------------------------------------------------------------------
# Exact rigid transforms of grids and poses
# ---------------------------------------------------------------------------
def transform_pose(pose: np.ndarray, quarter_turns: int,
                   translation=(0.0, 0.0)) -> np.ndarray:
    """Apply ``R(k * 90 deg) . pose + t`` to an ``(..., 3)`` pose array."""
    pose = np.asarray(pose, dtype=float)
    phi = (quarter_turns % 4) * np.pi / 2.0
    c, s = np.cos(phi), np.sin(phi)
    out = np.empty_like(pose)
    out[..., 0] = c * pose[..., 0] - s * pose[..., 1] + translation[0]
    out[..., 1] = s * pose[..., 0] + c * pose[..., 1] + translation[1]
    out[..., 2] = pose[..., 2] + phi
    return out


def transform_grid(grid: OccupancyGrid, quarter_turns: int,
                   translation=(0.0, 0.0)) -> OccupancyGrid:
    """Rotate a grid by ``k * 90 deg`` about the world origin, then translate.

    Quarter turns permute cells exactly (``np.rot90``) and the translation
    shifts only the origin, so the transformed map represents the *same*
    world up to the rigid transform — no resampling, no interpolation
    loss.  The world rotates counter-clockwise; the array rotates
    clockwise because the row axis is +y.
    """
    k = quarter_turns % 4
    data = np.rot90(grid.data, -k).copy()
    w_m = grid.width * grid.resolution
    h_m = grid.height * grid.resolution
    ox, oy = grid.origin
    # Rotate the map's bounding corners; the new origin is the min corner.
    corners = np.array([
        [ox, oy], [ox + w_m, oy], [ox, oy + h_m], [ox + w_m, oy + h_m],
    ])
    phi = k * np.pi / 2.0
    c, s = np.cos(phi), np.sin(phi)
    rotated = np.stack(
        [c * corners[:, 0] - s * corners[:, 1],
         s * corners[:, 0] + c * corners[:, 1]], axis=-1
    )
    new_origin = (
        float(rotated[:, 0].min()) + float(translation[0]),
        float(rotated[:, 1].min()) + float(translation[1]),
    )
    return OccupancyGrid(data, grid.resolution, origin=new_origin)


def _transformed_trace(trace, quarter_turns: int, translation):
    """The same session in transformed world coordinates.

    Odometry deltas and scans are body-frame quantities — a rigid world
    transform leaves them untouched; only the ground-truth poses move.
    """
    from repro.eval.trace import RunTrace

    return RunTrace(
        times=trace.times.copy(),
        gt_poses=transform_pose(trace.gt_poses, quarter_turns, translation),
        odometry=trace.odometry.copy(),
        scans=trace.scans.copy(),
        beam_angles=trace.beam_angles.copy(),
        metadata=dict(trace.metadata),
    )


def _make_localizer_for(method: str, grid, seed: int, **extra):
    from repro.core.interfaces import make_localizer

    kwargs = dict(extra)
    if method in ("synpf", "vanilla_mcl"):
        kwargs.setdefault("seed", seed)
        kwargs.setdefault("num_particles", 600)
        kwargs.setdefault("num_beams", 30)
        kwargs.setdefault("range_method", "ray_marching")
    return make_localizer(method, grid, **kwargs)


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------
def check_rigid_transform_equivariance(
    method: str,
    seed: int = 5,
    n_scans: int = 20,
    quarter_turns: int = 1,
    translation_cells: Tuple[int, int] = (13, -7),
    mean_tol_m: float = 0.20,
    p90_tol_m: float = 0.40,
) -> MetamorphicResult:
    """T(estimates(map, traj)) == estimates(T(map), T(traj)), within tolerance.

    The tolerance absorbs the one part of the pipeline that is *not*
    frame-equivariant bit for bit: a particle filter's rng draws its
    initialisation and resampling noise in fixed axis order, so rotating
    the world permutes which particle receives which perturbation.  The
    *distribution* is identical; the weighted mean over hundreds of
    particles differs by its Monte-Carlo jitter, which is what the bound
    allows for.  Scan-matching localizers have no such jitter and track
    far inside the bound.
    """
    from repro.eval.trace import replay
    from repro.verify.generators import reference_trace

    track, trace = reference_trace(seed=seed, n_scans=n_scans)
    translation = (translation_cells[0] * track.grid.resolution,
                   translation_cells[1] * track.grid.resolution)

    original = replay(trace, _make_localizer_for(method, track.grid, seed))
    grid_t = transform_grid(track.grid, quarter_turns, translation)
    trace_t = _transformed_trace(trace, quarter_turns, translation)
    transformed = replay(trace_t, _make_localizer_for(method, grid_t, seed))

    mapped = transform_pose(original["estimates"], quarter_turns, translation)
    dist = np.hypot(mapped[:, 0] - transformed["estimates"][:, 0],
                    mapped[:, 1] - transformed["estimates"][:, 1])
    details = {
        "quarter_turns": quarter_turns,
        "translation_m": [float(t) for t in translation],
        "mean_m": float(dist.mean()),
        "p90_m": float(np.quantile(dist, 0.90)),
        "max_m": float(dist.max()),
        "mean_tol_m": mean_tol_m,
        "p90_tol_m": p90_tol_m,
    }
    ok = dist.mean() <= mean_tol_m and np.quantile(dist, 0.90) <= p90_tol_m
    return MetamorphicResult("rigid_transform_equivariance", method, bool(ok),
                             details)


def _strip_wall_clock(snapshot: Mapping) -> Dict:
    """Drop wall-clock timing fields from a localizer telemetry snapshot."""
    return {k: v for k, v in snapshot.items() if k != "timing"}


def check_seed_determinism(
    method: str, seed: int = 9, n_scans: int = 15
) -> MetamorphicResult:
    """Same seed, same stream => bit-identical estimates and telemetry."""
    from repro.eval.trace import replay
    from repro.verify.generators import reference_trace

    track, trace = reference_trace(seed=seed, n_scans=n_scans)

    def one_run():
        localizer = _make_localizer_for(method, track.grid, seed)
        out = replay(trace, localizer)
        return out["estimates"], _strip_wall_clock(localizer.telemetry())

    est_a, telemetry_a = one_run()
    est_b, telemetry_b = one_run()
    estimates_equal = bool(np.array_equal(est_a, est_b))
    telemetry_equal = (
        json.dumps(telemetry_a, sort_keys=True, default=str)
        == json.dumps(telemetry_b, sort_keys=True, default=str)
    )
    return MetamorphicResult(
        "seed_determinism", method,
        estimates_equal and telemetry_equal,
        {
            "estimates_bit_identical": estimates_equal,
            "telemetry_bit_identical": telemetry_equal,
            "n_scans": n_scans,
        },
    )


def check_scan_subsample_monotonicity(
    method: str,
    seed: int = 3,
    n_scans: int = 20,
    strides: Sequence[int] = (1, 8, 64),
    slack_fraction: float = 0.75,
    slack_floor_m: float = 0.05,
) -> MetamorphicResult:
    """Discarding beams must not *improve* the error beyond slack.

    For consecutive degradation levels the mean ground-truth error may
    shrink by at most ``slack_fraction * previous + slack_floor_m`` —
    fewer beams mean less information, so a large *improvement* signals a
    sensor-model or layout bug (e.g. beam weights not renormalised).  A
    strict increase is not required: between mild levels the error is
    noise-dominated.
    """
    from repro.eval.trace import RunTrace, replay
    from repro.verify.generators import reference_trace

    track, trace = reference_trace(seed=seed, n_scans=n_scans)
    errors = {}
    for stride in strides:
        sub = RunTrace(
            times=trace.times.copy(),
            gt_poses=trace.gt_poses.copy(),
            odometry=trace.odometry.copy(),
            scans=trace.scans[:, ::stride].copy(),
            beam_angles=trace.beam_angles[::stride].copy(),
            metadata=dict(trace.metadata),
        )
        out = replay(sub, _make_localizer_for(method, track.grid, seed))
        errors[int(stride)] = float(out["mean_error"])

    ok = True
    for prev, nxt in zip(strides, strides[1:]):
        slack = slack_fraction * errors[prev] + slack_floor_m
        if errors[int(nxt)] < errors[int(prev)] - slack:
            ok = False
    return MetamorphicResult(
        "scan_subsample_monotonicity", method, ok,
        {
            "strides": [int(s) for s in strides],
            "mean_error_m": {str(k): v for k, v in errors.items()},
            "slack_fraction": slack_fraction,
            "slack_floor_m": slack_floor_m,
        },
    )


def check_time_reversal(
    method: str = "odometry", seed: int = 17, n_steps: int = 60,
    tol: float = 1e-9,
) -> MetamorphicResult:
    """Forward delta chain + reversed inverse chain == identity.

    Pure odometry-integration sanity (no localizer): the SE(2) compose /
    invert algebra every consumer builds on must be exactly reversible.
    ``method`` is accepted for trial-spec uniformity and ignored.
    """
    from repro.slam.pose_graph import apply_relative, relative_pose
    from repro.utils.angles import wrap_to_pi
    from repro.utils.rng import derive_seed

    rng = np.random.default_rng(derive_seed("verify.time_reversal", seed))
    start = np.array([rng.uniform(-5, 5), rng.uniform(-5, 5),
                      rng.uniform(-np.pi, np.pi)])
    deltas = np.column_stack([
        rng.uniform(-0.3, 0.3, n_steps),
        rng.uniform(-0.1, 0.1, n_steps),
        rng.uniform(-0.4, 0.4, n_steps),
    ])

    pose = start.copy()
    for d in deltas:
        pose = apply_relative(pose, d)
    for d in deltas[::-1]:
        inverse = relative_pose(d, np.zeros(3))
        pose = apply_relative(pose, inverse)

    xy_err = float(np.hypot(pose[0] - start[0], pose[1] - start[1]))
    theta_err = float(abs(wrap_to_pi(pose[2] - start[2])))
    ok = xy_err <= tol and theta_err <= tol
    return MetamorphicResult(
        "time_reversal", "odometry", bool(ok),
        {"xy_err_m": xy_err, "theta_err_rad": theta_err, "tol": tol,
         "n_steps": n_steps},
    )


METAMORPHIC_CHECKS = {
    "rigid_transform_equivariance": check_rigid_transform_equivariance,
    "seed_determinism": check_seed_determinism,
    "scan_subsample_monotonicity": check_scan_subsample_monotonicity,
    "time_reversal": check_time_reversal,
}


def metamorphic_trial(check: str, method: str, seed: int = 5) -> Dict:
    """Picklable sweep-trial body: run one named check for one method."""
    fn = METAMORPHIC_CHECKS.get(check)
    if fn is None:
        raise ValueError(
            f"unknown metamorphic check {check!r}; "
            f"choose from {sorted(METAMORPHIC_CHECKS)}"
        )
    return fn(method, seed=seed).to_dict()


def run_metamorphic_suite(
    methods: Sequence[str] = LOCALIZER_METHODS_UNDER_TEST,
    seed: int = 5,
    checks: Optional[Sequence[str]] = None,
) -> List[MetamorphicResult]:
    """Run every (check, method) combination inline (single process).

    ``time_reversal`` is method-independent and runs once.
    """
    names = list(checks) if checks is not None else sorted(METAMORPHIC_CHECKS)
    results = []
    for check in names:
        if check == "time_reversal":
            results.append(check_time_reversal(seed=seed))
            continue
        for method in methods:
            results.append(METAMORPHIC_CHECKS[check](method, seed=seed))
    return results
