"""``repro verify`` orchestration: every check as a sweep trial.

One :class:`~repro.eval.runner.SweepRunner` fans out all the work a
suite selection implies — raycast oracle batches, per-method localizer
replays, metamorphic checks, golden comparisons — through a single
module-level dispatching trial body (:func:`run_verify_trial`), then
folds the per-trial metrics back into a :class:`VerifyReport` stamped
with a :class:`~repro.telemetry.manifest.RunManifest`.

Every trial's output is a pure function of its spec and every merge
folds in sorted trial-id order, so the report is bit-identical whether
it ran inline (``--workers 1``) or across a process pool — the
determinism contract the sweep runner already imposes on experiment
trials, extended to verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.eval.runner import SweepRunner, TrialSpec
from repro.utils.rng import derive_seed
from repro.verify.differential import (
    LocalizerDifferentialReport,
    RaycastDifferentialReport,
    DEFAULT_PAIR_TOLERANCES_CELLS,
    combine_localizer_trials,
    default_differential_backends,
    localizer_replay_trial,
    merge_pair_divergences,
    raycast_batch_divergence,
)
from repro.verify.golden import default_golden_specs, golden_trial
from repro.verify.metamorphic import (
    METAMORPHIC_CHECKS,
    MetamorphicResult,
    metamorphic_trial,
)

__all__ = [
    "VERIFY_SUITES",
    "VerifyConfig",
    "VerifyReport",
    "build_verify_specs",
    "run_verify_trial",
    "run_verify",
    "render_verify_report",
]

VERIFY_SUITES: Tuple[str, ...] = ("differential", "metamorphic", "golden",
                                  "all")


@dataclass
class VerifyConfig:
    """Everything a verification run depends on (and nothing else).

    The config is picklable and fully serialised into the report's
    manifest, so a failing CI verdict can be reproduced locally by
    feeding the same values back through the CLI.
    """

    suite: str = "all"
    n_queries: int = 10_000
    batch_size: int = 2500
    seed: int = 7
    workers: int = 1
    map_spec: Dict = field(default_factory=lambda: {"kind": "room", "seed": 3})
    # Includes the accel variants this host can run (dedup always, @numba
    # when importable); see default_differential_backends().
    backends: Tuple[str, ...] = field(default_factory=default_differential_backends)
    max_range: float = 12.0
    theta_bins: int = 180
    methods: Tuple[str, ...] = ("synpf", "cartographer")
    trace_seed: int = 5
    n_scans: int = 25
    localizer_seed: int = 11
    golden_dir: Optional[str] = None
    update_golden: bool = False
    timeout_s: Optional[float] = None
    retries: int = 0

    def __post_init__(self) -> None:
        if self.suite not in VERIFY_SUITES:
            raise ValueError(
                f"unknown suite {self.suite!r}; expected one of "
                f"{VERIFY_SUITES}"
            )
        if self.n_queries < 1:
            raise ValueError("n_queries must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    def to_dict(self) -> Dict:
        return {
            "suite": self.suite,
            "n_queries": self.n_queries,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "workers": self.workers,
            "map_spec": dict(self.map_spec),
            "backends": list(self.backends),
            "max_range": self.max_range,
            "theta_bins": self.theta_bins,
            "methods": list(self.methods),
            "trace_seed": self.trace_seed,
            "n_scans": self.n_scans,
            "localizer_seed": self.localizer_seed,
            "golden_dir": self.golden_dir,
            "update_golden": self.update_golden,
        }


def build_verify_specs(config: VerifyConfig) -> List[TrialSpec]:
    """Expand a suite selection into its sweep trials.

    Trial ids are namespaced (``raycast/``, ``localizer/``, ``meta/``,
    ``golden/``) so the report folds records back into sections, and
    seeds derive from ``(purpose, trial_id)`` — batch content never
    depends on how the batches are scheduled.
    """
    specs: List[TrialSpec] = []
    run_differential = config.suite in ("differential", "all")
    run_metamorphic = config.suite in ("metamorphic", "all")
    run_golden = config.suite in ("golden", "all")

    if run_differential:
        n_batches = max(1, int(np.ceil(config.n_queries / config.batch_size)))
        per_batch = int(np.ceil(config.n_queries / n_batches))
        for index in range(n_batches):
            n = min(per_batch, config.n_queries - index * per_batch)
            trial_id = f"raycast/b{index:04d}"
            specs.append(TrialSpec(
                trial_id=trial_id,
                seed=derive_seed("verify.spec", trial_id, config.seed),
                params={
                    "kind": "raycast_batch",
                    "map_spec": dict(config.map_spec),
                    "batch_index": index,
                    "batch_size": n,
                    "seed": config.seed,
                    "backends": tuple(config.backends),
                    "max_range": config.max_range,
                    "theta_bins": config.theta_bins,
                },
            ))
        for method in config.methods:
            trial_id = f"localizer/{method}"
            specs.append(TrialSpec(
                trial_id=trial_id,
                seed=derive_seed("verify.spec", trial_id, config.seed),
                params={
                    "kind": "localizer_replay",
                    "method": method,
                    "trace_seed": config.trace_seed,
                    "n_scans": config.n_scans,
                    "localizer_seed": config.localizer_seed,
                },
            ))

    if run_metamorphic:
        for check in sorted(METAMORPHIC_CHECKS):
            methods = (("odometry",) if check == "time_reversal"
                       else config.methods)
            for method in methods:
                trial_id = f"meta/{check}/{method}"
                specs.append(TrialSpec(
                    trial_id=trial_id,
                    seed=derive_seed("verify.spec", trial_id, config.seed),
                    params={
                        "kind": "metamorphic",
                        "check": check,
                        "method": method,
                        "seed": config.trace_seed,
                    },
                ))

    if run_golden:
        for spec in default_golden_specs():
            trial_id = f"golden/{spec['name']}"
            specs.append(TrialSpec(
                trial_id=trial_id,
                seed=derive_seed("verify.spec", trial_id, config.seed),
                params={
                    "kind": "golden",
                    "name": spec["name"],
                    "golden_dir": config.golden_dir,
                    "update": config.update_golden,
                },
            ))
    return specs


def run_verify_trial(spec: TrialSpec) -> Dict:
    """Execute one verification trial (module-level: picklable).

    Dispatches on ``spec.params["kind"]``; each branch is a pure function
    of the spec, honouring the sweep runner's determinism contract.
    """
    params = spec.params
    kind = params["kind"]
    if kind == "raycast_batch":
        return raycast_batch_divergence(
            params["map_spec"], params["batch_index"], params["batch_size"],
            params["seed"], backends=params["backends"],
            max_range=params["max_range"], theta_bins=params["theta_bins"],
        )
    if kind == "localizer_replay":
        return localizer_replay_trial(
            params["method"], params["trace_seed"], params["n_scans"],
            params["localizer_seed"],
        )
    if kind == "metamorphic":
        return metamorphic_trial(params["check"], params["method"],
                                 seed=params["seed"])
    if kind == "golden":
        return golden_trial(params["name"], params["golden_dir"],
                            update=params["update"])
    raise ValueError(f"unknown verify trial kind {kind!r}")


@dataclass
class VerifyReport:
    """Merged outcome of one verification run."""

    config: Dict
    manifest: Dict
    raycast: Optional[RaycastDifferentialReport] = None
    localizer: Optional[LocalizerDifferentialReport] = None
    metamorphic: List[MetamorphicResult] = field(default_factory=list)
    golden: List[Dict] = field(default_factory=list)
    trial_failures: List[Dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        if self.trial_failures:
            return False
        if self.raycast is not None and not self.raycast.ok:
            return False
        if self.localizer is not None and not self.localizer.ok:
            return False
        if any(not result.ok for result in self.metamorphic):
            return False
        if any(not record.get("ok", False) for record in self.golden):
            return False
        return True

    def to_dict(self) -> Dict:
        return {
            "kind": "verify_report",
            "ok": self.ok,
            "config": self.config,
            "manifest": self.manifest,
            "raycast": self.raycast.to_dict() if self.raycast else None,
            "localizer": self.localizer.to_dict() if self.localizer else None,
            "metamorphic": [r.to_dict() for r in self.metamorphic],
            "golden": list(self.golden),
            "trial_failures": list(self.trial_failures),
        }


def run_verify(config: VerifyConfig,
               progress=None) -> VerifyReport:
    """Run a verification suite end to end; never raises on a failed check.

    Check failures (and even crashed trials — the runner's fault
    tolerance) land in the report with ``ok == False``; exceptions are
    reserved for misconfiguration.
    """
    from repro.telemetry.manifest import RunManifest

    specs = build_verify_specs(config)
    runner = SweepRunner(
        run_verify_trial,
        workers=config.workers,
        timeout_s=config.timeout_s,
        retries=config.retries,
        progress=progress,
    )
    sweep = runner.run(specs)

    raycast_metrics: Dict[str, Mapping] = {}
    localizer_metrics: Dict[str, Mapping] = {}
    metamorphic_results: List[MetamorphicResult] = []
    golden_records: List[Dict] = []
    failures: List[Dict] = []
    for record in sweep.records:
        if not record.ok:
            failures.append({
                "trial_id": record.trial_id,
                "kind": record.kind,
                "error_type": record.error_type,
                "message": record.message,
            })
            continue
        trial_id = record.trial_id
        if trial_id.startswith("raycast/"):
            raycast_metrics[trial_id] = record.metrics
        elif trial_id.startswith("localizer/"):
            localizer_metrics[record.metrics["method"]] = record.metrics
        elif trial_id.startswith("meta/"):
            metamorphic_results.append(
                MetamorphicResult.from_dict(record.metrics)
            )
        elif trial_id.startswith("golden/"):
            golden_records.append(dict(record.metrics))

    raycast_report = None
    if raycast_metrics:
        merged = merge_pair_divergences(raycast_metrics)
        raycast_report = RaycastDifferentialReport(
            pairs=merged,
            tolerances=dict(DEFAULT_PAIR_TOLERANCES_CELLS),
            n_queries=sum(m["n_queries"] for m in raycast_metrics.values()),
            resolution=next(iter(raycast_metrics.values()))["resolution"],
            backends=tuple(config.backends),
        )
    localizer_report = None
    if localizer_metrics:
        localizer_report = combine_localizer_trials(localizer_metrics)

    manifest = RunManifest.capture(
        config=config.to_dict(),
        seeds={"verify": config.seed, "trace": config.trace_seed,
               "localizer": config.localizer_seed},
    )
    # Sections fold in sorted trial-id order above; sort the flat lists
    # too so the report never reflects completion order.
    metamorphic_results.sort(key=lambda r: (r.check, r.method))
    golden_records.sort(key=lambda r: r.get("name", ""))
    failures.sort(key=lambda r: r["trial_id"])
    return VerifyReport(
        config=config.to_dict(),
        manifest=manifest.to_dict(),
        raycast=raycast_report,
        localizer=localizer_report,
        metamorphic=metamorphic_results,
        golden=golden_records,
        trial_failures=failures,
    )


def render_verify_report(report: VerifyReport) -> str:
    """Human-readable multi-section summary of a verification run."""
    lines: List[str] = []
    suite = report.config.get("suite", "?")
    lines.append(f"verification report — suite: {suite}")
    lines.append("=" * 60)
    if report.raycast is not None:
        lines.append("")
        lines.append(report.raycast.render_text())
    if report.localizer is not None:
        lines.append("")
        lines.append(report.localizer.render_text())
    if report.metamorphic:
        lines.append("")
        lines.append("metamorphic checks")
        lines.append("-" * 46)
        for result in report.metamorphic:
            lines.append(result.summary_line())
    if report.golden:
        lines.append("")
        lines.append("golden traces")
        lines.append("-" * 60)
        for record in report.golden:
            if "updated" in record:
                lines.append(f"{record['name']:<26}updated -> "
                             f"{record['updated']}")
            else:
                status = "ok" if record.get("ok") else "FAIL"
                lines.append(
                    f"{record.get('name', '?'):<26}"
                    f"{record.get('n_steps', 0):>6} steps"
                    f"{record.get('max_abs_err_m', 0.0):>12.3e} m max"
                    f"{status:>8}"
                )
    if report.trial_failures:
        lines.append("")
        lines.append("trial failures")
        lines.append("-" * 60)
        for failure in report.trial_failures:
            lines.append(
                f"{failure['trial_id']}: [{failure['kind']}] "
                f"{failure['error_type']}: {failure['message']}"
            )
    lines.append("")
    lines.append(f"overall: {'PASS' if report.ok else 'FAIL'}")
    return "\n".join(lines)
