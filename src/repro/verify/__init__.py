"""Differential & metamorphic verification of the localization stack.

The paper's claims rest on the localizers producing trustworthy poses
under degraded odometry — but trust needs machinery.  This package turns
correctness from ad-hoc tests into a gated, reusable tool with four
layers (see docs/verification.md):

================  =====================================================
``generators``    seeded, deterministic inputs: maps, queries, traces
``differential``  the same queries through all four raycast backends /
                  the same scan stream through both localizers, with
                  per-pair divergence quantiles gated by tolerance
``metamorphic``   property checks on whole localizers: rigid-transform
                  equivariance, seed determinism, scan-subsample
                  degradation monotonicity, odometry time reversal
``invariants``    runtime checks pluggable into any ``Localizer`` —
                  weights form a distribution, covariance PSD, pose in
                  bounds, particle count conserved — surfaced as
                  structured :class:`InvariantViolation` telemetry
``golden``        compressed JSONL reference runs under ``tests/golden``
                  with a tolerance-gated comparator and an explicit
                  ``--update-golden`` refresh path
``suite``         ``repro verify`` orchestration: fans every check out
                  through :class:`~repro.eval.runner.SweepRunner` and
                  stamps the report with a
                  :class:`~repro.telemetry.manifest.RunManifest`
================  =====================================================
"""

from repro.verify.differential import (
    DEFAULT_PAIR_TOLERANCES_CELLS,
    PairDivergence,
    RaycastDifferentialReport,
    LocalizerDifferentialReport,
    run_localizer_differential,
    run_raycast_differential,
)
from repro.verify.generators import (
    random_free_queries,
    random_room_grid,
    reference_trace,
    resolve_map,
)
from repro.verify.golden import (
    GOLDEN_FORMAT_VERSION,
    GoldenComparison,
    GoldenMismatch,
    compare_golden,
    default_golden_specs,
    golden_path,
    record_golden,
)
from repro.verify.invariants import (
    InvariantChecker,
    InvariantError,
    InvariantViolation,
    attach_invariants,
)
from repro.verify.metamorphic import (
    METAMORPHIC_CHECKS,
    MetamorphicResult,
    check_rigid_transform_equivariance,
    check_scan_subsample_monotonicity,
    check_seed_determinism,
    check_time_reversal,
    run_metamorphic_suite,
)
from repro.verify.suite import (
    VERIFY_SUITES,
    VerifyConfig,
    VerifyReport,
    render_verify_report,
    run_verify,
)

__all__ = [
    "DEFAULT_PAIR_TOLERANCES_CELLS",
    "GOLDEN_FORMAT_VERSION",
    "GoldenComparison",
    "GoldenMismatch",
    "InvariantChecker",
    "InvariantError",
    "InvariantViolation",
    "LocalizerDifferentialReport",
    "METAMORPHIC_CHECKS",
    "MetamorphicResult",
    "PairDivergence",
    "RaycastDifferentialReport",
    "VERIFY_SUITES",
    "VerifyConfig",
    "VerifyReport",
    "attach_invariants",
    "check_rigid_transform_equivariance",
    "check_scan_subsample_monotonicity",
    "check_seed_determinism",
    "check_time_reversal",
    "compare_golden",
    "default_golden_specs",
    "golden_path",
    "random_free_queries",
    "random_room_grid",
    "record_golden",
    "reference_trace",
    "render_verify_report",
    "resolve_map",
    "run_localizer_differential",
    "run_metamorphic_suite",
    "run_raycast_differential",
    "run_verify",
]
