"""Seeded, deterministic input generation for verification suites.

Every generator here is a pure function of its seed (via
:func:`repro.utils.rng.derive_seed` namespacing), so verification trials
can be fanned out over worker processes and still produce bit-identical
inputs regardless of worker count — the same contract the sweep runner
gives experiment trials.  ``tests/strategies.py`` wraps these into
Hypothesis strategies for the property-test suite.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.maps.occupancy_grid import FREE, OCCUPIED, OccupancyGrid
from repro.utils.rng import derive_seed

__all__ = [
    "walled_room_grid",
    "random_room_grid",
    "random_free_queries",
    "resolve_map",
    "reference_trace",
]


def walled_room_grid(size: int = 60, resolution: float = 1.0 / 6.0,
                     origin=(0.0, 0.0)) -> OccupancyGrid:
    """An empty square room with one-cell walls on all four sides."""
    if size < 3:
        raise ValueError("room needs at least 3 cells per side")
    data = np.full((size, size), FREE, dtype=np.int8)
    data[0, :] = data[-1, :] = OCCUPIED
    data[:, 0] = data[:, -1] = OCCUPIED
    return OccupancyGrid(data, resolution, origin=origin)


def random_room_grid(
    seed: int,
    size: int = 60,
    resolution: float = 1.0 / 6.0,
    obstacle_fraction: float = 0.04,
    origin=(0.0, 0.0),
) -> OccupancyGrid:
    """A walled room with a seeded scatter of interior block obstacles.

    Obstacles are 3–5-cell axis-aligned squares (~0.5–0.8 m at the
    default resolution — barrier-sized), never closer than two cells to
    the outer wall, so the room stays connected enough that free cells
    always exist for query placement.  Identical ``(seed, size,
    resolution, obstacle_fraction)`` always yields the identical grid.

    Blocks are deliberately never thinner than 3 cells: sphere tracing's
    minimum step (half a cell) can corner-clip a 1-cell obstacle that
    exact traversal counts as a hit — a real, documented divergence mode
    of the ray-marching backend on thin structures, but one that would
    drown the differential oracle's quantile gates in a known artefact
    rather than exercise the agreement envelope (see
    docs/verification.md).
    """
    if not 0.0 <= obstacle_fraction < 0.5:
        raise ValueError("obstacle_fraction must be in [0, 0.5)")
    grid = walled_room_grid(size=size, resolution=resolution, origin=origin)
    rng = np.random.default_rng(
        derive_seed("verify.random_room", seed, size, obstacle_fraction)
    )
    n_blocks = int(obstacle_fraction * size * size / 16.0)
    for _ in range(n_blocks):
        edge = int(rng.integers(3, 6))
        row = int(rng.integers(2, size - 2 - edge))
        col = int(rng.integers(2, size - 2 - edge))
        grid.data[row:row + edge, col:col + edge] = OCCUPIED
    return grid


def random_free_queries(
    grid: OccupancyGrid, n: int, seed: int, clearance_cells: int = 1
) -> np.ndarray:
    """``(n, 3)`` query poses on free cells with uniform headings.

    Positions are jittered uniformly within their cell; ``clearance_cells``
    keeps starts away from obstacle faces (a query *on* a wall trivially
    returns 0 from every backend and tests nothing).
    """
    if n < 1:
        raise ValueError("need at least one query")
    free = grid.free_mask()
    if clearance_cells > 0:
        from scipy import ndimage

        occupied = ~free
        free = free & ~ndimage.binary_dilation(
            occupied, iterations=int(clearance_cells)
        )
    rows, cols = np.nonzero(free)
    if rows.size == 0:
        raise ValueError("grid has no eligible free cells")
    rng = np.random.default_rng(derive_seed("verify.queries", seed, n))
    pick = rng.integers(0, rows.size, size=n)
    centers = grid.grid_to_world(
        np.stack([cols[pick], rows[pick]], axis=-1).astype(float)
    )
    jitter = rng.uniform(-grid.resolution / 2.0, grid.resolution / 2.0,
                         size=(n, 2))
    queries = np.empty((n, 3))
    queries[:, :2] = centers + jitter
    queries[:, 2] = rng.uniform(-np.pi, np.pi, size=n)
    return queries


def resolve_map(spec: Dict) -> OccupancyGrid:
    """Build a grid from a picklable map spec (worker-side construction).

    Verification trials cross process boundaries as plain dicts; the grid
    is rebuilt deterministically in the worker instead of being pickled.
    Recognised kinds: ``{"kind": "room", "seed": ..}`` (random obstacles),
    ``{"kind": "walled"}`` (empty room), ``{"kind": "track", "seed": ..}``
    (generated corridor track).
    """
    kind = spec.get("kind", "room")
    if kind == "walled":
        return walled_room_grid(
            size=int(spec.get("size", 60)),
            resolution=float(spec.get("resolution", 1.0 / 6.0)),
        )
    if kind == "room":
        return random_room_grid(
            seed=int(spec.get("seed", 0)),
            size=int(spec.get("size", 60)),
            resolution=float(spec.get("resolution", 1.0 / 6.0)),
            obstacle_fraction=float(spec.get("obstacle_fraction", 0.04)),
        )
    if kind == "track":
        from repro.maps import generate_track

        return generate_track(
            seed=int(spec.get("seed", 0)),
            resolution=float(spec.get("resolution", 0.1)),
            mean_radius=float(spec.get("mean_radius", 5.0)),
            track_width=float(spec.get("track_width", 2.0)),
        ).grid
    raise ValueError(f"unknown map kind {kind!r}")


def reference_trace(
    seed: int,
    n_scans: int = 20,
    track_seed: int = 11,
    resolution: float = 0.1,
    range_noise_std: float = 0.01,
    speed: float = 1.5,
    dt: float = 0.05,
    track=None,
    traffic: Optional[Dict] = None,
):
    """Record a deterministic raceline-following session on a small track.

    Drives a virtual sensor along the centerline (no vehicle dynamics —
    the point is a *reproducible* scan stream, not realism) and returns
    ``(track, RunTrace)``.  The same arguments always produce the same
    trace bit-for-bit, which is what the metamorphic, differential and
    golden suites replay against.

    ``traffic`` optionally puts opponent cars on the track: a
    :class:`~repro.scenarios.traffic.TrafficSpec` dict whose agents are
    stepped between scans and composited into every scan as dynamic
    occlusion.  The opponents are rng-free, so the traced scan stream
    stays a pure function of the arguments; ``traffic=None`` is
    bit-identical to the pre-traffic trace.
    """
    from repro.core.motion_models import OdometryDelta
    from repro.eval.trace import TraceRecorder
    from repro.sim.lidar import LidarConfig, SimulatedLidar

    if track is None:
        from repro.maps import generate_track

        track = generate_track(seed=track_seed, mean_radius=5.0,
                               resolution=resolution, track_width=2.0)
    lidar = SimulatedLidar(
        track.grid,
        LidarConfig(range_noise_std=range_noise_std, dropout_prob=0.0),
        seed=derive_seed("verify.trace", seed, n_scans),
    )
    agents = []
    if traffic is not None:
        from repro.scenarios.traffic import TrafficSpec, build_traffic_agents

        spec = TrafficSpec.from_dict(traffic)
        agents = build_traffic_agents(
            spec, track.centerline,
            seed=spec.seed if spec.seed is not None
            else derive_seed("verify.traffic", seed),
        )
    recorder = TraceRecorder(
        lidar.angles,
        metadata={"seed": str(seed), "track_seed": str(track_seed)},
    )
    line = track.centerline
    pose_prev = line.start_pose()
    for k in range(1, n_scans + 1):
        s = k * speed * dt
        pt = line.point_at(s)
        pose_now = np.array([pt[0], pt[1], line.heading_at(s)])
        delta = OdometryDelta.from_poses(pose_prev, pose_now, dt=dt)
        for agent in agents:
            agent.step(dt, (k - 1) * dt, pose_now, speed)
        scan = lidar.scan(pose_now, timestamp=k * dt, obstacles=agents)
        recorder.append(k * dt, pose_now, delta, scan.ranges)
        pose_prev = pose_now
    return track, recorder.build()
