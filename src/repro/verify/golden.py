"""Golden-trace store: committed reference runs, tolerance-gated.

A golden file freezes what one localizer estimated on one deterministic
reference session (:func:`~repro.verify.generators.reference_trace`), so
any later change to the motion model, sensor model, resampler or scan
matcher that moves the answer is caught — not by a property, but by the
frozen answer itself.

Format (``tests/golden/<name>.jsonl.gz``): gzip-compressed JSONL whose
first line is a self-describing header (format version, method, the full
replay spec, the comparison tolerance) and whose remaining lines are one
pose per step at full float precision (``json`` round-trips ``repr``
exactly).  Because the header embeds the spec, the comparator needs no
side channel: it rebuilds the run from the header and diffs.

Gzip streams embed a timestamp by default; files here are written with
``mtime=0`` so re-recording an unchanged run yields *byte-identical*
files — the bit-stability the verify gate checks.

Refresh intentionally via ``repro verify --suite golden --update-golden``
after reviewing why the answer moved; the comparator's failure message
says exactly that.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "GOLDEN_FORMAT_VERSION",
    "GoldenMismatch",
    "GoldenComparison",
    "golden_path",
    "default_golden_specs",
    "record_golden",
    "compare_golden",
    "golden_trial",
]

GOLDEN_FORMAT_VERSION = 1

# Reference estimates are deterministic on one platform; the tolerance
# absorbs cross-platform libm / BLAS last-ulp drift, nothing more.  A
# behavioural change moves estimates by far more than a micrometre.
DEFAULT_GOLDEN_TOLERANCE_M = 1e-6

_MAX_KEPT_MISMATCHES = 20


def golden_path(name: str, golden_dir: Optional[Path] = None) -> Path:
    """Resolve a golden name to its file path (default: ``tests/golden``)."""
    if golden_dir is None:
        golden_dir = Path(__file__).resolve().parents[3] / "tests" / "golden"
    return Path(golden_dir) / f"{name}.jsonl.gz"


def default_golden_specs() -> List[Dict]:
    """The committed reference runs: each localizer on the shared trace."""
    specs = [
        {
            "name": f"reference_{method}",
            "method": method,
            "trace_seed": 5,
            "n_scans": 15,
            "localizer_seed": 11,
            "tolerance_m": DEFAULT_GOLDEN_TOLERANCE_M,
        }
        for method in ("synpf", "vanilla_mcl", "cartographer")
    ]
    # One traffic stream: the same trace with two opponents composited
    # into every scan, pinning the occlusion compositor bit-for-bit.
    specs.append({
        "name": "reference_traffic_synpf",
        "method": "synpf",
        "trace_seed": 5,
        "n_scans": 15,
        "localizer_seed": 11,
        "tolerance_m": DEFAULT_GOLDEN_TOLERANCE_M,
        "traffic": {
            "__type__": "TrafficSpec",
            "density": 2,
            "policies": ["raceline", "lane_switcher"],
            "spawn_ahead_s": 2.0,
            "spawn_spacing_s": 4.0,
            "speed": 2.0,
            "lateral_offset": 0.3,
            "radius": 0.25,
            "seed": 13,
        },
    })
    return specs


def _replay_spec(spec: Mapping) -> np.ndarray:
    """Recompute the estimate sequence a golden spec describes."""
    from repro.verify.differential import localizer_replay_trial

    out = localizer_replay_trial(
        method=str(spec["method"]),
        trace_seed=int(spec["trace_seed"]),
        n_scans=int(spec["n_scans"]),
        localizer_seed=int(spec["localizer_seed"]),
        overrides=spec.get("overrides"),
        traffic=spec.get("traffic"),
    )
    return np.asarray(out["estimates"], dtype=float)


def record_golden(spec: Mapping, golden_dir: Optional[Path] = None) -> Path:
    """Run the spec and (over)write its golden file; returns the path."""
    estimates = _replay_spec(spec)
    path = golden_path(str(spec["name"]), golden_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format_version": GOLDEN_FORMAT_VERSION,
        "spec": {k: spec[k] for k in sorted(spec)},
        "n_steps": int(estimates.shape[0]),
    }
    lines = [json.dumps(header, sort_keys=True)]
    for step, pose in enumerate(estimates):
        lines.append(json.dumps(
            {"step": step, "pose": [float(v) for v in pose]}
        ))
    payload = ("\n".join(lines) + "\n").encode()
    # mtime=0 keeps the gzip stream free of wall-clock bytes, so an
    # unchanged run re-records to a byte-identical file.
    with open(path, "wb") as fh:
        with gzip.GzipFile(fileobj=fh, mode="wb", mtime=0) as gz:
            gz.write(payload)
    return path


def load_golden(path: Path) -> Dict:
    """Read a golden file into ``{"spec", "estimates", ...}``.

    Raises ``ValueError`` with a readable message on malformed content so
    the CLI can report corruption without a traceback.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(
            f"golden file not found: {path} "
            "(record it with: repro verify --suite golden --update-golden)"
        )
    try:
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            lines = [line for line in fh.read().splitlines() if line.strip()]
        header = json.loads(lines[0])
        poses = [json.loads(line) for line in lines[1:]]
    except (OSError, json.JSONDecodeError, IndexError) as exc:
        raise ValueError(f"corrupt golden file {path}: {exc}") from exc
    version = header.get("format_version")
    if version != GOLDEN_FORMAT_VERSION:
        raise ValueError(
            f"golden file {path} has format_version {version!r}; this "
            f"reader understands {GOLDEN_FORMAT_VERSION}"
        )
    if "spec" not in header:
        raise ValueError(f"corrupt golden file {path}: header missing 'spec'")
    estimates = np.array([record["pose"] for record in poses], dtype=float)
    if estimates.shape[0] != int(header.get("n_steps", estimates.shape[0])):
        raise ValueError(
            f"corrupt golden file {path}: header promises "
            f"{header['n_steps']} steps, found {estimates.shape[0]}"
        )
    return {"spec": header["spec"], "estimates": estimates,
            "n_steps": estimates.shape[0]}


@dataclass
class GoldenMismatch:
    """One step whose recomputed pose left the golden tolerance."""

    step: int
    expected: List[float]
    actual: List[float]
    abs_err_m: float

    def to_dict(self) -> Dict:
        return {"step": self.step, "expected": self.expected,
                "actual": self.actual, "abs_err_m": self.abs_err_m}


@dataclass
class GoldenComparison:
    """Verdict of one golden file against a fresh replay."""

    name: str
    ok: bool
    n_steps: int
    max_abs_err_m: float
    tolerance_m: float
    mismatches: List[GoldenMismatch] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "kind": "golden",
            "name": self.name,
            "ok": self.ok,
            "n_steps": self.n_steps,
            "max_abs_err_m": self.max_abs_err_m,
            "tolerance_m": self.tolerance_m,
            "mismatches": [m.to_dict() for m in self.mismatches],
        }

    def summary_line(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (f"{self.name:<26}{self.n_steps:>6} steps"
                f"{self.max_abs_err_m:>12.3e} m max{status:>8}")


def compare_golden(
    name: str,
    golden_dir: Optional[Path] = None,
    tolerance_m: Optional[float] = None,
) -> GoldenComparison:
    """Replay a golden file's spec and diff against the stored estimates.

    The gate is per-step: every ``(x, y)`` must sit within ``tolerance_m``
    of the stored pose (heading is compared at the same tolerance in
    radians).  A failure means behaviour changed — fix the regression, or
    re-record deliberately with ``--update-golden`` and say why in the
    commit.
    """
    stored = load_golden(golden_path(name, golden_dir))
    spec = stored["spec"]
    tol = (float(tolerance_m) if tolerance_m is not None
           else float(spec.get("tolerance_m", DEFAULT_GOLDEN_TOLERANCE_M)))
    actual = _replay_spec(spec)
    expected = stored["estimates"]
    if actual.shape != expected.shape:
        mismatch = GoldenMismatch(
            step=-1, expected=list(expected.shape), actual=list(actual.shape),
            abs_err_m=float("inf"),
        )
        return GoldenComparison(name=name, ok=False,
                                n_steps=int(expected.shape[0]),
                                max_abs_err_m=float("inf"), tolerance_m=tol,
                                mismatches=[mismatch])
    err = np.abs(actual - expected)
    step_err = err.max(axis=1) if err.size else np.zeros(0)
    bad = np.nonzero(step_err > tol)[0]
    mismatches = [
        GoldenMismatch(
            step=int(i),
            expected=[float(v) for v in expected[i]],
            actual=[float(v) for v in actual[i]],
            abs_err_m=float(step_err[i]),
        )
        for i in bad[:_MAX_KEPT_MISMATCHES]
    ]
    return GoldenComparison(
        name=name,
        ok=bad.size == 0,
        n_steps=int(expected.shape[0]),
        max_abs_err_m=float(step_err.max()) if step_err.size else 0.0,
        tolerance_m=tol,
        mismatches=mismatches,
    )


def golden_trial(name: str, golden_dir: Optional[str] = None,
                 update: bool = False) -> Dict:
    """Picklable sweep-trial body: compare (or re-record) one golden run."""
    directory = Path(golden_dir) if golden_dir else None
    if update:
        spec = next(
            (s for s in default_golden_specs() if s["name"] == name), None
        )
        if spec is None:
            # Refreshing a non-default golden keeps its own stored spec.
            spec = load_golden(golden_path(name, directory))["spec"]
        path = record_golden(spec, directory)
        return {"kind": "golden", "name": name, "ok": True,
                "updated": str(path)}
    return compare_golden(name, directory).to_dict()
