"""Differential oracles: N implementations of one contract, cross-checked.

Two oracles live here, following the scan-matcher-validation tradition of
checking a fast implementation against an exact one (rangelibc validates
every method against its cell-by-cell traversal; Cartographer check-sums
its real-time matcher against branch-and-bound refinement):

* **Raycast oracle** — the same ``(x, y, theta)`` query set through every
  registered backend (``bresenham``, ``ray_marching``, ``cddt``, ``lut``),
  reporting per-pair divergence as *exact integer bucket counts* over
  fixed cell-unit edges.  Quantile gates are evaluated as "the q-quantile
  lies at or below edge E", a pure counting statement — so a fanned-out
  run merges to bit-identical verdicts at any worker count.
* **Localizer oracle** — the same recorded scan stream replayed through
  both localizer families (SynPF and Cartographer), reporting each
  method's ground-truth error plus their pairwise estimate divergence.

Tolerances are configurable per pair and documented in
docs/verification.md; the defaults encode each backend's *designed*
accuracy envelope (the CDDT family's heading discretisation is
documentedly loose at grazing incidence, hence its wider tail bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DIVERGENCE_EDGES_CELLS",
    "DEFAULT_PAIR_TOLERANCES_CELLS",
    "DEDUP_SELF_TOLERANCES_CELLS",
    "BACKEND_SELF_TOLERANCES_CELLS",
    "DEFAULT_LOCALIZER_TOLERANCES_M",
    "PairDivergence",
    "RaycastDifferentialReport",
    "LocalizerDifferentialReport",
    "default_differential_backends",
    "resolve_pair_tolerances",
    "raycast_batch_divergence",
    "merge_pair_divergences",
    "run_raycast_differential",
    "run_localizer_differential",
]

# Fixed cell-unit bucket edges for pairwise range divergence.  Part of the
# oracle's determinism contract: every batch uses these literal edges, so
# merged counts (and therefore quantile verdicts) are worker-invariant.
DIVERGENCE_EDGES_CELLS: Tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0, 64.0,
)

# Per-pair gates in cells.  ``p90`` / ``p99`` bound a quantile's bucket
# upper edge; ``within_3`` bounds (from below) the exact fraction of
# queries agreeing within 3 cells.  The envelope widens with the
# approximation each side makes: ray marching is sub-cell away from thin
# structures, while the CDDT family's lateral quantisation converts a
# sub-cell near-miss into a hit on the *nearer* obstacle — a rare but
# unboundedly large underestimate, which is why its pairs get a
# fraction-within gate instead of a tail quantile.  Values are the
# measured envelope on the reference room (10k queries) with ~30% margin;
# see docs/verification.md for the measurements and the derivation.
DEFAULT_PAIR_TOLERANCES_CELLS: Dict[Tuple[str, str], Dict[str, float]] = {
    ("bresenham", "ray_marching"): {"p90": 1.0, "within_3": 0.97},
    ("bresenham", "cddt"): {"p90": 3.0, "within_3": 0.90},
    ("bresenham", "lut"): {"p90": 2.0, "within_3": 0.94},
    ("cddt", "ray_marching"): {"p90": 3.0, "within_3": 0.90},
    ("lut", "ray_marching"): {"p90": 2.0, "within_3": 0.94},
    ("cddt", "lut"): {"p90": 4.0, "within_3": 0.88},
}

DEFAULT_BACKENDS: Tuple[str, ...] = ("bresenham", "ray_marching", "cddt", "lut")

# Accel-vs-reference self pairs: the same traversal algorithm with an
# acceleration-layer suffix on one side (repro.accel).
#
# ``+dedup`` substitutes each query with its (cell, angle-bin) centre, so
# the divergence envelope is the range sensitivity to a half-bin pose
# perturbation: sub-cell for ~97% of queries, but near grazing incidence
# the displaced origin can hit a *different wall*, producing the same
# unbounded geometric tail the CDDT pairs have — so the gate is a bulk
# quantile plus a fraction-within bound, never a tail quantile.  Measured
# on the reference room (1-cell bins, 2048 theta bins): p90 at the
# 1.0-cell edge, within-3 ≈ 0.970, max ~50 cells; gated with margin.
DEDUP_SELF_TOLERANCES_CELLS: Dict[str, float] = {
    "p90": 2.0,
    "within_3": 0.94,
}
# ``@numba`` runs the identical per-ray arithmetic (same op order, no
# fastmath), so it is expected bit-identical to the numpy reference; one
# sub-cell bucket of slack covers non-IEEE contraction on exotic targets.
BACKEND_SELF_TOLERANCES_CELLS: Dict[str, float] = {"max": 0.25}

# Localizer-oracle gates, metres: each method's mean ground-truth error,
# and the p90 of the pairwise estimate distance between methods.
DEFAULT_LOCALIZER_TOLERANCES_M: Dict[str, float] = {
    "gt_mean": 0.35,
    "gt_max": 1.5,
    "pair_p90": 1.0,
}


def _pair_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def default_differential_backends() -> Tuple[str, ...]:
    """Backends the differential oracle cross-checks by default.

    The four base methods plus the accel variants this host can run:
    ``+dedup`` always (pure NumPy), ``@numba`` only when numba resolves —
    a numba-less machine silently gets the shorter list rather than
    pairs that would all trivially compare numpy against itself.
    """
    backends = list(DEFAULT_BACKENDS) + ["bresenham+dedup", "ray_marching+dedup"]
    from repro.accel.backends import numba_available

    if numba_available():
        backends += ["bresenham@numba", "ray_marching@numba"]
    return tuple(backends)


def _widen_for_dedup(tol: Mapping[str, float]) -> Dict[str, float]:
    """Base-pair gates plus the dedup half-bin substitution budget.

    Quantile gates move one bucket edge out (+1 cell covers the sub-cell
    p90 shift with margin), fraction-within gates give up 5% of mass,
    ``max`` gates get the few-cell corner cases.
    """
    out: Dict[str, float] = {}
    for key, value in tol.items():
        if key == "max":
            out[key] = value + 3.0
        elif key.startswith("within_"):
            out[key] = max(0.0, value - 0.05)
        else:
            out[key] = value + 1.0
    return out


def resolve_pair_tolerances(
    pair: Tuple[str, str],
    tolerances: Optional[Mapping[Tuple[str, str], Mapping[str, float]]] = None,
) -> Dict[str, float]:
    """Gates for a backend pair, suffix-aware.

    Resolution order: exact pair in the configured map; exact pair in the
    defaults; then strip ``@backend``/``+dedup`` suffixes — equal bases
    get the accel self-pair envelope (dedup's if the dedup flags differ,
    else the bit-identical backend gate), different bases reuse the base
    pair's gates, widened by the dedup budget when either side dedups.
    The loose legacy fallback only remains for pairs of unknown methods.
    """
    from repro.raycast.factory import parse_range_spec

    for tol_map in (tolerances, DEFAULT_PAIR_TOLERANCES_CELLS):
        if tol_map is not None and pair in tol_map:
            return dict(tol_map[pair])
    base_a, _, dedup_a = parse_range_spec(pair[0])
    base_b, _, dedup_b = parse_range_spec(pair[1])
    if base_a == base_b:
        if dedup_a != dedup_b:
            return dict(DEDUP_SELF_TOLERANCES_CELLS)
        return dict(BACKEND_SELF_TOLERANCES_CELLS)
    base_pair = _pair_key(base_a, base_b)
    for tol_map in (tolerances, DEFAULT_PAIR_TOLERANCES_CELLS):
        if tol_map is not None and base_pair in tol_map:
            base_tol = tol_map[base_pair]
            if dedup_a or dedup_b:
                return _widen_for_dedup(base_tol)
            return dict(base_tol)
    return {"p90": 4.0, "within_3": 0.85}


@dataclass
class PairDivergence:
    """Divergence of one backend pair over a set of shared queries.

    ``bucket_counts`` has ``len(edges) + 1`` entries with the telemetry
    histogram's ``le`` semantics (last entry = overflow); ``max_cells`` is
    exact.  All fields are integer or order-invariant, so merging batches
    is associative and worker-count independent.
    """

    pair: Tuple[str, str]
    edges: Tuple[float, ...] = DIVERGENCE_EDGES_CELLS
    bucket_counts: List[int] = field(default_factory=list)
    count: int = 0
    max_cells: float = 0.0

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.edges) + 1)

    def observe_errors(self, err_cells: np.ndarray) -> None:
        idx = np.searchsorted(self.edges, err_cells, side="left")
        counts = np.bincount(idx, minlength=len(self.edges) + 1)
        for i, c in enumerate(counts):
            self.bucket_counts[i] += int(c)
        self.count += int(err_cells.size)
        if err_cells.size:
            self.max_cells = max(self.max_cells, float(err_cells.max()))

    def merge(self, other: "PairDivergence") -> None:
        if other.edges != self.edges:
            raise ValueError("cannot merge divergences with different edges")
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        self.count += other.count
        self.max_cells = max(self.max_cells, other.max_cells)

    def quantile_upper_edge(self, q: float) -> float:
        """Smallest edge E with at least ``ceil(q * count)`` errors <= E.

        Returns ``inf`` when the quantile falls in the overflow bucket.
        Being a pure counting statement over integers, the answer is
        identical however the underlying batches were partitioned.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = int(np.ceil(q * self.count))
        cumulative = 0
        for edge, bucket in zip(self.edges, self.bucket_counts):
            cumulative += bucket
            if cumulative >= rank:
                return edge
        return float("inf")

    def fraction_within(self, edge_cells: float) -> float:
        """Exact fraction of queries with divergence <= ``edge_cells``."""
        if self.count == 0:
            return 1.0
        cumulative = 0
        for edge, bucket in zip(self.edges, self.bucket_counts):
            if edge > edge_cells + 1e-12:
                break
            cumulative += bucket
        return cumulative / self.count

    def gate(self, tolerances: Mapping[str, float]) -> Dict[str, bool]:
        """Evaluate each configured gate; ``{"p90": ok, ...}``.

        Gate grammar: ``"pNN"`` bounds the NN-quantile's bucket upper
        edge from above, ``"within_E"`` bounds ``fraction_within(E)``
        from below, ``"max"`` bounds the exact maximum.  All three are
        counting statements — worker-count invariant.
        """
        verdicts = {}
        for key, tol in tolerances.items():
            if key == "max":
                verdicts[key] = self.max_cells <= tol
            elif key.startswith("within_"):
                edge = float(key.split("_", 1)[1])
                verdicts[key] = self.fraction_within(edge) >= tol
            else:
                q = float(key.lstrip("p")) / 100.0
                verdicts[key] = self.quantile_upper_edge(q) <= tol
        return verdicts

    def to_dict(self) -> Dict:
        return {
            "pair": list(self.pair),
            "edges": list(self.edges),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "max_cells": self.max_cells,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PairDivergence":
        return cls(
            pair=tuple(data["pair"]),
            edges=tuple(data["edges"]),
            bucket_counts=[int(c) for c in data["bucket_counts"]],
            count=int(data["count"]),
            max_cells=float(data["max_cells"]),
        )


# Per-process backend cache: CDDT / LUT construction dominates a batch, and
# every batch on the same map spec reuses the same structures (mirrors the
# sweep runner's _EXPERIMENT_CACHE).
_BACKEND_CACHE: Dict = {}


def _backends_for(map_spec: Mapping, backends: Sequence[str],
                  max_range: float, theta_bins: int) -> Dict:
    key = (tuple(sorted(map_spec.items())), tuple(backends), max_range,
           theta_bins)
    built = _BACKEND_CACHE.get(key)
    if built is None:
        from repro.raycast.factory import make_range_method, parse_range_spec
        from repro.verify.generators import resolve_map

        grid = resolve_map(dict(map_spec))
        built = {"grid": grid, "methods": {}}
        for name in backends:
            kwargs = {}
            base, spec_backend, _ = parse_range_spec(name)
            if base in ("cddt", "pcddt", "lut", "glt"):
                kwargs["num_theta_bins"] = theta_bins
            elif spec_backend is None:
                # An un-suffixed per-ray method is the *reference* side of
                # an accel pair: pin it to numpy so "ray_marching" vs
                # "ray_marching@numba" never compares numba with itself
                # via auto-resolution.
                kwargs["backend"] = "numpy"
            built["methods"][name] = make_range_method(
                name, grid, max_range=max_range, **kwargs
            )
        _BACKEND_CACHE[key] = built
    return built


def raycast_batch_divergence(
    map_spec: Mapping,
    batch_index: int,
    batch_size: int,
    seed: int,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    max_range: float = 12.0,
    theta_bins: int = 180,
) -> Dict:
    """One oracle batch: shared queries through every backend; per-pair stats.

    Module-level and driven entirely by picklable arguments so it can run
    as a :class:`~repro.eval.runner.SweepRunner` trial.  The query batch
    is a pure function of ``(seed, batch_index)`` — never of the worker.
    """
    from repro.utils.rng import derive_seed
    from repro.verify.generators import random_free_queries

    built = _backends_for(map_spec, backends, max_range, theta_bins)
    grid = built["grid"]
    queries = random_free_queries(
        grid, batch_size, seed=derive_seed("verify.raycast", seed, batch_index)
    )
    ranges = {
        name: method.calc_ranges(queries)
        for name, method in built["methods"].items()
    }
    resolution = grid.resolution
    pairs: Dict[str, Dict] = {}
    names = sorted(ranges)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            err_cells = np.abs(ranges[a] - ranges[b]) / resolution
            div = PairDivergence(pair=_pair_key(a, b))
            div.observe_errors(err_cells)
            pairs["__".join(div.pair)] = div.to_dict()
    return {"pairs": pairs, "n_queries": int(queries.shape[0]),
            "resolution": resolution}


def merge_pair_divergences(batch_metrics: Mapping[str, Mapping]) -> Dict[str, PairDivergence]:
    """Fold per-batch pair stats, in sorted batch-id order."""
    merged: Dict[str, PairDivergence] = {}
    for batch_id in sorted(batch_metrics):
        for pair_name, data in batch_metrics[batch_id]["pairs"].items():
            div = PairDivergence.from_dict(data)
            if pair_name in merged:
                merged[pair_name].merge(div)
            else:
                merged[pair_name] = div
    return merged


@dataclass
class RaycastDifferentialReport:
    """Merged verdict of one raycast-oracle run."""

    pairs: Dict[str, PairDivergence]
    tolerances: Dict[Tuple[str, str], Dict[str, float]]
    n_queries: int
    resolution: float
    backends: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return all(all(v for v in verdicts.values())
                   for verdicts in self.verdicts().values())

    def verdicts(self) -> Dict[str, Dict[str, bool]]:
        out = {}
        for pair_name, div in sorted(self.pairs.items()):
            out[pair_name] = div.gate(
                resolve_pair_tolerances(div.pair, self.tolerances)
            )
        return out

    def to_dict(self) -> Dict:
        return {
            "kind": "raycast_differential",
            "ok": self.ok,
            "n_queries": self.n_queries,
            "resolution": self.resolution,
            "backends": list(self.backends),
            "pairs": {
                name: {
                    **div.to_dict(),
                    "p50_cells": div.quantile_upper_edge(0.50),
                    "p90_cells": div.quantile_upper_edge(0.90),
                    "p99_cells": div.quantile_upper_edge(0.99),
                    "within_3_fraction": div.fraction_within(3.0),
                    "verdicts": self.verdicts()[name],
                }
                for name, div in sorted(self.pairs.items())
            },
        }

    def render_text(self) -> str:
        lines = [
            f"raycast differential: {self.n_queries} queries x "
            f"{len(self.backends)} backends ({', '.join(self.backends)})",
            f"{'pair':<28}{'p50':>7}{'p90':>7}{'p99':>7}{'<=3c':>7}"
            f"{'max':>9}{'gate':>8}",
            "-" * 73,
        ]
        verdicts = self.verdicts()
        for name, div in sorted(self.pairs.items()):
            ok = all(verdicts[name].values())
            p99 = div.quantile_upper_edge(0.99)
            lines.append(
                f"{name:<28}"
                f"{div.quantile_upper_edge(0.50):>7.2f}"
                f"{div.quantile_upper_edge(0.90):>7.2f}"
                f"{'inf' if np.isinf(p99) else format(p99, '.2f'):>7}"
                f"{div.fraction_within(3.0):>7.3f}"
                f"{div.max_cells:>9.2f}"
                f"{'ok' if ok else 'FAIL':>8}"
            )
        lines.append("(divergence in cells; quantiles are bucket upper edges)")
        return "\n".join(lines)


def run_raycast_differential(
    map_spec: Optional[Mapping] = None,
    n_queries: int = 10_000,
    seed: int = 7,
    backends: Optional[Sequence[str]] = None,
    tolerances: Optional[Mapping] = None,
    batch_size: int = 2500,
    max_range: float = 12.0,
    theta_bins: int = 180,
) -> RaycastDifferentialReport:
    """Run the full raycast oracle inline (single process).

    The ``repro verify`` CLI fans the same batches out through
    :class:`~repro.eval.runner.SweepRunner` instead (see
    :mod:`repro.verify.suite`); both paths merge the identical per-batch
    stats, so their reports agree bit for bit.
    """
    if backends is None:
        backends = default_differential_backends()
    map_spec = dict(map_spec or {"kind": "room", "seed": 3})
    n_batches = max(1, int(np.ceil(n_queries / batch_size)))
    per_batch = int(np.ceil(n_queries / n_batches))
    metrics = {}
    for index in range(n_batches):
        n = min(per_batch, n_queries - index * per_batch)
        metrics[f"raycast/b{index:04d}"] = raycast_batch_divergence(
            map_spec, index, n, seed, backends=backends,
            max_range=max_range, theta_bins=theta_bins,
        )
    merged = merge_pair_divergences(metrics)
    tol = dict(DEFAULT_PAIR_TOLERANCES_CELLS)
    if tolerances:
        for pair, gates in tolerances.items():
            tol[_pair_key(*pair)] = dict(gates)
    total = sum(m["n_queries"] for m in metrics.values())
    return RaycastDifferentialReport(
        pairs=merged,
        tolerances=tol,
        n_queries=total,
        resolution=next(iter(metrics.values()))["resolution"],
        backends=tuple(backends),
    )


# ---------------------------------------------------------------------------
# Localizer oracle
# ---------------------------------------------------------------------------
def localizer_replay_trial(
    method: str,
    trace_seed: int,
    n_scans: int,
    localizer_seed: int,
    overrides: Optional[Mapping] = None,
    traffic: Optional[Mapping] = None,
) -> Dict:
    """Replay the shared reference trace through one localizer.

    Picklable sweep-trial body: rebuilds the deterministic trace in the
    worker and returns the full estimate sequence (small — one pose per
    scan), so the orchestrator can compute cross-method divergence.
    ``traffic`` (a TrafficSpec dict) threads opponent occlusion into the
    traced scans — the golden suite pins one such stream.
    """
    from repro.core.interfaces import make_localizer
    from repro.eval.trace import replay
    from repro.verify.generators import reference_trace

    track, trace = reference_trace(
        seed=trace_seed, n_scans=n_scans,
        traffic=dict(traffic) if traffic is not None else None,
    )
    kwargs = dict(overrides or {})
    if method in ("synpf", "vanilla_mcl"):
        kwargs.setdefault("seed", localizer_seed)
        kwargs.setdefault("num_particles", 600)
        kwargs.setdefault("num_beams", 30)
        kwargs.setdefault("range_method", "ray_marching")
    localizer = make_localizer(method, track.grid, **kwargs)
    out = replay(trace, localizer)
    return {
        "method": method,
        "estimates": out["estimates"].tolist(),
        "gt_mean": out["mean_error"],
        "gt_max": out["max_error"],
        "gt_rmse": out["rmse"],
    }


@dataclass
class LocalizerDifferentialReport:
    """Cross-method verdict over one shared scan stream."""

    methods: Dict[str, Dict]
    pair_divergence_m: Dict[str, Dict[str, float]]
    tolerances: Dict[str, float]
    n_scans: int

    @property
    def ok(self) -> bool:
        for stats in self.methods.values():
            if stats["gt_mean"] > self.tolerances["gt_mean"]:
                return False
            if stats["gt_max"] > self.tolerances["gt_max"]:
                return False
        for stats in self.pair_divergence_m.values():
            if stats["p90"] > self.tolerances["pair_p90"]:
                return False
        return True

    def to_dict(self) -> Dict:
        return {
            "kind": "localizer_differential",
            "ok": self.ok,
            "n_scans": self.n_scans,
            "tolerances": dict(self.tolerances),
            "methods": {
                name: {k: v for k, v in stats.items() if k != "estimates"}
                for name, stats in sorted(self.methods.items())
            },
            "pairs": dict(sorted(self.pair_divergence_m.items())),
        }

    def render_text(self) -> str:
        lines = [
            f"localizer differential: {self.n_scans} scans, shared stream",
            f"{'method':<16}{'gt mean m':>11}{'gt max m':>11}",
            "-" * 38,
        ]
        for name, stats in sorted(self.methods.items()):
            lines.append(
                f"{name:<16}{stats['gt_mean']:>11.3f}{stats['gt_max']:>11.3f}"
            )
        lines.append("")
        lines.append(f"{'pair':<28}{'p50 m':>8}{'p90 m':>8}{'max m':>8}")
        lines.append("-" * 52)
        for name, stats in sorted(self.pair_divergence_m.items()):
            lines.append(
                f"{name:<28}{stats['p50']:>8.3f}{stats['p90']:>8.3f}"
                f"{stats['max']:>8.3f}"
            )
        lines.append(f"gate: {'ok' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def combine_localizer_trials(
    per_method: Mapping[str, Mapping],
    tolerances: Optional[Mapping[str, float]] = None,
) -> LocalizerDifferentialReport:
    """Merge per-method replay results into the cross-method report."""
    tol = dict(DEFAULT_LOCALIZER_TOLERANCES_M)
    if tolerances:
        tol.update(tolerances)
    methods = {name: dict(stats) for name, stats in per_method.items()}
    pair_divergence: Dict[str, Dict[str, float]] = {}
    names = sorted(methods)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            ea = np.asarray(methods[a]["estimates"], dtype=float)
            eb = np.asarray(methods[b]["estimates"], dtype=float)
            dist = np.hypot(ea[:, 0] - eb[:, 0], ea[:, 1] - eb[:, 1])
            pair_divergence[f"{a}__{b}"] = {
                "p50": float(np.quantile(dist, 0.50)),
                "p90": float(np.quantile(dist, 0.90)),
                "max": float(dist.max()),
            }
    n_scans = len(next(iter(methods.values()))["estimates"]) if methods else 0
    return LocalizerDifferentialReport(
        methods=methods,
        pair_divergence_m=pair_divergence,
        tolerances=tol,
        n_scans=n_scans,
    )


def run_localizer_differential(
    methods: Sequence[str] = ("synpf", "cartographer"),
    trace_seed: int = 5,
    n_scans: int = 25,
    localizer_seed: int = 11,
    tolerances: Optional[Mapping[str, float]] = None,
) -> LocalizerDifferentialReport:
    """Run the localizer oracle inline (single process)."""
    per_method = {
        method: localizer_replay_trial(method, trace_seed, n_scans,
                                       localizer_seed)
        for method in methods
    }
    return combine_localizer_trials(per_method, tolerances)
