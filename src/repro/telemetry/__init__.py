"""Structured observability: metrics, spans, manifests, JSONL streams.

The paper's headline comparison is latency-vs-robustness, which makes
timing a first-class measurement rather than a debugging aid.  This
package is the production-grade version of the original ad-hoc
``TimingStats`` dicts:

================  ====================================================
``registry``      counters / gauges / fixed-bucket histograms with
                  deterministic, worker-count-invariant merging
``spans``         hierarchical ``span("update")/span("raycast")``
                  timing over ``perf_counter``
``manifest``      per-run provenance (config, seeds, version, host)
``jsonl``         append-only JSONL event/metric stream
``export``        JSON and Prometheus-text exporters
``report``        ``repro report`` renderer (per-stage p50/p99 tables)
``session``       the :class:`Telemetry` facade hot paths receive
================  ====================================================

Design contract: metric *values* recorded inside worker processes must be
deterministic functions of the trial spec (wall-clock latencies live in
span histograms that stay out of merged sweep snapshots), and histogram
bucket edges are fixed so merges are associative, commutative and — via
the canonical sorted fold in :func:`merge_snapshots` — bit-identical at
any worker count.  See docs/observability.md.
"""

from repro.telemetry.export import to_json, to_prometheus_text
from repro.telemetry.jsonl import TelemetryWriter, read_records
from repro.telemetry.manifest import RunManifest
from repro.telemetry.registry import (
    DEFAULT_LATENCY_EDGES_MS,
    DEFAULT_WINDOW_SIZE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowedHistogram,
    merge_snapshots,
    registry_from_snapshot,
)
from repro.telemetry.report import load_run, render_report
from repro.telemetry.session import Telemetry
from repro.telemetry.spans import SpanTracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_EDGES_MS",
    "DEFAULT_WINDOW_SIZE",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunManifest",
    "SpanTracer",
    "Telemetry",
    "TelemetryWriter",
    "WindowedHistogram",
    "load_run",
    "merge_snapshots",
    "read_records",
    "registry_from_snapshot",
    "render_report",
    "to_json",
    "to_prometheus_text",
]
