"""Metric families: counters, gauges, histograms with fixed bucket edges.

The registry is the in-process aggregation point of the observability
layer (see docs/observability.md).  Three deliberate constraints shape it:

* **Fixed bucket edges.**  A histogram's edges are part of its identity
  and never adapt to the data.  Two histograms of the same name recorded
  in different worker processes therefore always share a bucket layout,
  which is what makes merges well defined at any worker count.
* **Deterministic merges.**  :func:`merge_snapshots` folds snapshots in a
  canonical order (sorted by key), so the merged result is bit-identical
  regardless of how many workers produced the parts or in which order
  they finished.  Pairwise :meth:`Histogram.merge` is commutative and —
  up to floating-point addition of the ``sum`` field — associative.
* **Plain-data snapshots.**  :meth:`MetricsRegistry.snapshot` returns
  sorted, JSON-serialisable dicts; a snapshot round-trips losslessly
  through JSON (:func:`registry_from_snapshot`), which the JSONL event
  stream and the sweep checkpoint format rely on.

Nothing here touches the wall clock; timing *sources* live in
:mod:`repro.telemetry.spans`.
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedHistogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_EDGES_MS",
    "DEFAULT_WINDOW_SIZE",
    "merge_snapshots",
    "registry_from_snapshot",
]

# Shared log-spaced latency buckets, in milliseconds.  These are a fixed
# part of the telemetry contract: every latency histogram in the package
# uses them unless a caller passes explicit edges, so per-worker and
# per-trial histograms always merge cleanly.
DEFAULT_LATENCY_EDGES_MS: Tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
)


class Counter:
    """Monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Union[int, float] = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = float(value)

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with exact ``sum`` and ``count``.

    ``counts`` has ``len(edges) + 1`` entries: ``counts[i]`` holds values
    ``v <= edges[i]`` (and above ``edges[i - 1]``); the final entry is the
    overflow bucket.  Quantiles are estimated by linear interpolation
    inside the containing bucket, so their resolution is the bucket
    width — the price of mergeability.
    """

    __slots__ = ("name", "edges", "counts", "sum", "count")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        edges = tuple(float(e) for e in edges)
        if len(edges) < 1:
            raise ValueError("need at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.edges = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated ``q``-quantile (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if cumulative + bucket_count >= rank and bucket_count > 0:
                lo = self.edges[i - 1] if i > 0 else min(0.0, self.edges[0])
                hi = self.edges[i] if i < len(self.edges) else self.edges[-1]
                frac = (rank - cumulative) / bucket_count
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            cumulative += bucket_count
        return self.edges[-1]

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram of the same name and edges into this one."""
        if other.edges != self.edges:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge differing bucket "
                f"edges {other.edges} into {self.edges}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count

    def to_dict(self) -> Dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, name: str, data: Mapping) -> "Histogram":
        hist = cls(name, data["edges"])
        counts = [int(c) for c in data["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError(f"histogram {name!r}: counts/edges length mismatch")
        hist.counts = counts
        hist.sum = float(data["sum"])
        hist.count = int(data["count"])
        return hist


# Default ring-buffer length of a WindowedHistogram.  At serve's ~40 Hz
# update rate this is a ~6 s sliding view — long enough for a stable p99
# estimate, short enough that a load shift is visible within seconds.
DEFAULT_WINDOW_SIZE = 256


class WindowedHistogram(Histogram):
    """A :class:`Histogram` that additionally keeps the last ``window``
    raw observations in a ring buffer.

    Lifetime state (``counts``/``sum``/``count``) is untouched: snapshots,
    merges and :meth:`to_dict` are bit-identical to a plain histogram, so
    the worker-count-invariance contract of :func:`merge_snapshots` is
    preserved.  The window exists purely for *recency* queries — a
    lifetime histogram converges to the long-run distribution and cannot
    see a load shift, which is exactly what a latency governor must react
    to.  The window is per-process and deliberately excluded from
    snapshots and merges (a merged recency view across workers has no
    meaningful ordering).

    :meth:`windowed_quantile` is an exact nearest-rank quantile over the
    buffered samples — no bucket interpolation, since the raw values are
    at hand.
    """

    __slots__ = ("window", "_recent", "_pos")

    def __init__(
        self, name: str, edges: Sequence[float],
        window: int = DEFAULT_WINDOW_SIZE,
    ) -> None:
        super().__init__(name, edges)
        window = int(window)
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._recent: List[float] = []
        self._pos = 0

    def observe(self, value: float) -> None:
        super().observe(value)
        value = float(value)
        if len(self._recent) < self.window:
            self._recent.append(value)
        else:
            self._recent[self._pos] = value
        self._pos = (self._pos + 1) % self.window

    @property
    def windowed_count(self) -> int:
        """Number of samples currently in the window (<= ``window``)."""
        return len(self._recent)

    @property
    def windowed_mean(self) -> float:
        return sum(self._recent) / len(self._recent) if self._recent else 0.0

    def windowed_quantile(self, q: float) -> float:
        """Exact nearest-rank ``q``-quantile of the buffered samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._recent:
            return 0.0
        data = sorted(self._recent)
        rank = ceil(q * len(data)) - 1
        return data[min(max(rank, 0), len(data) - 1)]


class MetricsRegistry:
    """Named metric families of one process (or one trial).

    Families are created on first use (``registry.counter("laps").inc()``)
    and addressed by plain string names; dotted/slashed hierarchies such
    as ``span.update/raycast`` are a naming convention, not structure.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- family accessors ----------------------------------------------
    def counter(self, name: str) -> Counter:
        family = self._counters.get(name)
        if family is None:
            self._check_unused(name, self._counters)
            family = self._counters[name] = Counter(name)
        return family

    def gauge(self, name: str) -> Gauge:
        family = self._gauges.get(name)
        if family is None:
            self._check_unused(name, self._gauges)
            family = self._gauges[name] = Gauge(name)
        return family

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_LATENCY_EDGES_MS
    ) -> Histogram:
        family = self._histograms.get(name)
        if family is None:
            self._check_unused(name, self._histograms)
            family = self._histograms[name] = Histogram(name, edges)
        elif family.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already registered with different edges"
            )
        return family

    def windowed_histogram(
        self,
        name: str,
        edges: Sequence[float] = DEFAULT_LATENCY_EDGES_MS,
        window: int = DEFAULT_WINDOW_SIZE,
    ) -> WindowedHistogram:
        """Like :meth:`histogram`, but the family keeps a recency window.

        A windowed family is still a histogram to every other consumer —
        it lives in the same namespace, snapshots identically, and
        :meth:`histogram` on the same name returns it.  Upgrading an
        existing plain family is refused (its observations predate the
        window and the recency view would silently lie).
        """
        family = self._histograms.get(name)
        if family is None:
            self._check_unused(name, self._histograms)
            family = self._histograms[name] = WindowedHistogram(
                name, edges, window=window
            )
        elif not isinstance(family, WindowedHistogram):
            raise ValueError(
                f"histogram {name!r} already registered without a window"
            )
        elif family.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already registered with different edges"
            )
        return family

    def _check_unused(self, name: str, target: Dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not target and name in family:
                raise ValueError(
                    f"metric name {name!r} already used by another family"
                )

    # -- introspection -------------------------------------------------
    def counters(self) -> Dict[str, Union[int, float]]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, float]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))

    def snapshot(self) -> Dict:
        """Sorted, JSON-serialisable state of every family."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                name: h.to_dict() for name, h in sorted(self._histograms.items())
            },
        }

    # -- merging -------------------------------------------------------
    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold one snapshot dict into this registry's live families."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            # Gauges have no meaningful sum; last merged snapshot wins,
            # which is deterministic because merge_snapshots fixes order.
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name, data["edges"]).merge(
                Histogram.from_dict(name, data)
            )


def registry_from_snapshot(snapshot: Mapping) -> MetricsRegistry:
    """Rebuild a live registry from a snapshot dict."""
    registry = MetricsRegistry()
    registry.merge_snapshot(snapshot)
    return registry


def merge_snapshots(
    snapshots: Union[Mapping[str, Mapping], Iterable[Mapping]],
) -> Dict:
    """Merge snapshots into one, in a canonical deterministic order.

    Pass a mapping (e.g. ``{trial_id: snapshot}``) to have the fold order
    fixed by sorted keys — the form the sweep runner uses, and the reason
    a merged sweep snapshot is bit-identical at any worker count: float
    ``sum`` accumulation happens in the same order no matter which worker
    finished first.  Passing a plain iterable folds in the given order.
    """
    if isinstance(snapshots, Mapping):
        ordered = [snapshots[key] for key in sorted(snapshots)]
    else:
        ordered = list(snapshots)
    merged = MetricsRegistry()
    for snapshot in ordered:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()
