"""Per-run manifests: what exactly produced this stream of metrics.

A :class:`RunManifest` is the first record of every telemetry JSONL file:
the config snapshot, the seeds, the package version and the host — enough
to answer "can I compare these two runs?" months later.  Everything in it
is plain data and survives a JSON round trip losslessly.

Host fields are observational metadata; they are deliberately excluded
from the determinism contract (two workers on different hosts produce
identical *metrics* but different manifests).
"""

from __future__ import annotations

import hashlib
import json
import platform
import socket
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["RunManifest"]


def _config_digest(config: Mapping) -> str:
    """Stable short hash of a config snapshot (sorted-key JSON)."""
    payload = json.dumps(config, sort_keys=True, default=str).encode()
    return hashlib.sha256(payload).hexdigest()[:12]


@dataclass
class RunManifest:
    """Provenance record for one telemetry run."""

    run_id: str
    config: Dict = field(default_factory=dict)
    seeds: Dict[str, int] = field(default_factory=dict)
    package: str = "repro"
    version: str = ""
    python: str = ""
    platform: str = ""
    hostname: str = ""
    numpy: str = ""
    created_unix: float = 0.0
    extra: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def capture(
        cls,
        config: Optional[Mapping] = None,
        seeds: Optional[Mapping[str, int]] = None,
        run_id: Optional[str] = None,
        extra: Optional[Mapping[str, str]] = None,
    ) -> "RunManifest":
        """Snapshot the current environment around ``config`` and ``seeds``.

        ``run_id`` defaults to a digest of the config + seeds, so reruns
        of the same configuration share an id while different configs
        never collide silently.
        """
        import numpy

        from repro import __version__

        config = dict(config or {})
        seeds = {str(k): int(v) for k, v in dict(seeds or {}).items()}
        if run_id is None:
            run_id = _config_digest({"config": config, "seeds": seeds})
        return cls(
            run_id=run_id,
            config=config,
            seeds=seeds,
            version=__version__,
            python=sys.version.split()[0],
            platform=platform.platform(),
            hostname=socket.gethostname(),
            numpy=numpy.__version__,
            created_unix=time.time(),
            extra={str(k): str(v) for k, v in dict(extra or {}).items()},
        )

    def to_dict(self) -> Dict:
        return {
            "run_id": self.run_id,
            "config": self.config,
            "seeds": self.seeds,
            "package": self.package,
            "version": self.version,
            "python": self.python,
            "platform": self.platform,
            "hostname": self.hostname,
            "numpy": self.numpy,
            "created_unix": self.created_unix,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunManifest":
        return cls(
            run_id=str(data["run_id"]),
            config=dict(data.get("config", {})),
            seeds={str(k): int(v) for k, v in data.get("seeds", {}).items()},
            package=str(data.get("package", "repro")),
            version=str(data.get("version", "")),
            python=str(data.get("python", "")),
            platform=str(data.get("platform", "")),
            hostname=str(data.get("hostname", "")),
            numpy=str(data.get("numpy", "")),
            created_unix=float(data.get("created_unix", 0.0)),
            extra={str(k): str(v) for k, v in data.get("extra", {}).items()},
        )
