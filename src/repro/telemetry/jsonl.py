"""JSONL event/metric stream: one self-describing record per line.

The on-disk format mirrors the sweep checkpoint's conventions — append
only, flushed per record so a killed run leaves at most one torn line,
and readable by line-oriented tools.  Three record types exist:

========== ==========================================================
``manifest``  a :class:`~repro.telemetry.manifest.RunManifest` dict
``event``     a named point-in-time occurrence with free-form fields
``metrics``   a full registry snapshot, labelled (e.g. ``"final"``)
========== ==========================================================

``repro report`` (:mod:`repro.telemetry.report`) renders such a file
back into per-stage latency and counter tables.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Union

from repro.telemetry.manifest import RunManifest
from repro.telemetry.registry import MetricsRegistry

__all__ = ["TelemetryWriter", "read_records", "FORMAT_VERSION"]

FORMAT_VERSION = 1


class TelemetryWriter:
    """Appends telemetry records to a JSONL file (or file-like object)."""

    def __init__(self, path_or_handle, append: bool = False) -> None:
        if hasattr(path_or_handle, "write"):
            self._handle = path_or_handle
            self._owns_handle = False
            self.path: Optional[str] = None
        else:
            self.path = str(path_or_handle)
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._handle = open(
                self.path, "a" if append else "w", encoding="utf-8"
            )
            self._owns_handle = True
        self.records_written = 0

    # -- raw -----------------------------------------------------------
    def write_record(self, record: Dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self.records_written += 1

    # -- typed ---------------------------------------------------------
    def manifest(self, manifest: RunManifest) -> None:
        self.write_record({
            "type": "manifest",
            "format_version": FORMAT_VERSION,
            "manifest": manifest.to_dict(),
        })

    def event(self, name: str, time: Optional[float] = None, **fields) -> None:
        """A point-in-time occurrence (lap finished, fault fired, crash)."""
        self.write_record({
            "type": "event",
            "name": name,
            "t": time,
            "fields": fields,
        })

    def metrics(
        self,
        registry_or_snapshot: Union[MetricsRegistry, Dict],
        label: str = "final",
    ) -> None:
        """A full metric snapshot, e.g. at the end of a run or per trial."""
        if isinstance(registry_or_snapshot, MetricsRegistry):
            snapshot = registry_or_snapshot.snapshot()
        else:
            snapshot = registry_or_snapshot
        self.write_record({
            "type": "metrics",
            "label": label,
            "metrics": snapshot,
        })

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_records(path) -> List[Dict]:
    """Parse a telemetry JSONL file; a torn final line is skipped."""
    records: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn final line from a killed run
    return records
