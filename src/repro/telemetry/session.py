"""The per-run telemetry facade the harness threads through hot paths.

A :class:`Telemetry` bundles the three pieces a run needs — a
:class:`~repro.telemetry.registry.MetricsRegistry`, an optional JSONL
:class:`~repro.telemetry.jsonl.TelemetryWriter`, and manifest/event
helpers — behind one object that is cheap to pass around and safe to
leave ``None`` (every consumer treats a missing telemetry object as
"observability off").

Typical wiring (what ``repro race --telemetry run.jsonl`` does)::

    telemetry = Telemetry.to_path("run.jsonl")
    experiment.run(condition, telemetry=telemetry)   # spans/counters flow in
    telemetry.close()                                # flushes the final snapshot
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.telemetry.jsonl import TelemetryWriter
from repro.telemetry.manifest import RunManifest
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import SpanTracer

__all__ = ["Telemetry"]


class Telemetry:
    """Registry + optional JSONL writer for one run."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        writer: Optional[TelemetryWriter] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.writer = writer
        self._closed = False
        self._flushed = False

    @classmethod
    def to_path(cls, path, append: bool = False) -> "Telemetry":
        """Telemetry with a fresh registry streaming to a JSONL file."""
        return cls(writer=TelemetryWriter(path, append=append))

    # -- convenience delegates -----------------------------------------
    def tracer(self, timing=None, prefix: str = "") -> SpanTracer:
        """A span tracer feeding this telemetry's registry."""
        return SpanTracer(timing=timing, registry=self.registry, prefix=prefix)

    def counter(self, name: str):
        return self.registry.counter(name)

    def gauge(self, name: str):
        return self.registry.gauge(name)

    def histogram(self, name: str, edges=None):
        if edges is None:
            return self.registry.histogram(name)
        return self.registry.histogram(name, edges)

    # -- stream records ------------------------------------------------
    def manifest(
        self,
        config: Optional[Mapping] = None,
        seeds: Optional[Mapping[str, int]] = None,
        run_id: Optional[str] = None,
        **extra,
    ) -> RunManifest:
        """Capture and (if a writer is attached) emit a run manifest."""
        manifest = RunManifest.capture(
            config=config, seeds=seeds, run_id=run_id, extra=extra
        )
        if self.writer is not None:
            self.writer.manifest(manifest)
        return manifest

    def event(self, name: str, time: Optional[float] = None, **fields) -> None:
        if self.writer is not None:
            self.writer.event(name, time=time, **fields)

    def flush_metrics(self, label: str = "final") -> Dict:
        """Snapshot the registry and (if writing) append it to the stream.

        Snapshots are cumulative over this telemetry's registry, and the
        report merges every metrics record in a file *additively* (the
        per-trial sweep layout).  Flush a given registry at most once per
        stream; :meth:`close` skips its automatic final flush when a
        flush already happened.
        """
        snapshot = self.registry.snapshot()
        if self.writer is not None:
            self.writer.metrics(snapshot, label=label)
            self._flushed = True
        return snapshot

    def close(self, flush: bool = True) -> None:
        """Close the writer, first flushing a final snapshot if none was
        ever flushed (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if flush and not self._flushed and self.writer is not None:
            self.writer.metrics(self.registry.snapshot(), label="final")
        if self.writer is not None:
            self.writer.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
