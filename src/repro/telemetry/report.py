"""Render a telemetry JSONL run into human-readable tables.

``repro report <run.jsonl>`` prints:

* the manifest header (run id, version, host, seeds);
* a per-stage latency table built from every ``span.*`` histogram —
  count, throughput over the spanned time, mean / p50 / p99
  milliseconds (quantiles are bucket-interpolated, so their resolution
  is the fixed bucket width);
* counter totals and gauge values;
* an event tally by name.

Multiple ``metrics`` records in one file (e.g. one per trial) are merged
in file order before rendering, using the same deterministic fold the
sweep runner uses.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.telemetry.jsonl import read_records
from repro.telemetry.registry import Histogram, merge_snapshots
from repro.telemetry.spans import SPAN_METRIC_PREFIX

__all__ = ["load_run", "render_report"]


def load_run(path) -> Dict:
    """Group a JSONL file's records by type.

    Returns ``{"manifests": [...], "events": [...], "metrics": snapshot}``
    where ``metrics`` is the in-order merge of every metrics record
    (``None`` when the file carries none).
    """
    manifests: List[Dict] = []
    events: List[Dict] = []
    snapshots: List[Mapping] = []
    for record in read_records(path):
        kind = record.get("type")
        if kind == "manifest":
            manifests.append(record["manifest"])
        elif kind == "event":
            events.append(record)
        elif kind == "metrics":
            snapshots.append(record["metrics"])
    merged: Optional[Dict] = merge_snapshots(snapshots) if snapshots else None
    return {"manifests": manifests, "events": events, "metrics": merged}


def _stage_rows(histograms: Mapping[str, Mapping]) -> List[Dict]:
    rows = []
    for name, data in histograms.items():
        if not name.startswith(SPAN_METRIC_PREFIX):
            continue
        hist = Histogram.from_dict(name, data)
        if hist.count == 0:
            continue
        total_s = hist.sum / 1e3  # histogram records milliseconds
        rows.append({
            "stage": name[len(SPAN_METRIC_PREFIX):],
            "count": hist.count,
            "mean_ms": hist.mean,
            "p50_ms": hist.quantile(0.50),
            "p99_ms": hist.quantile(0.99),
            "throughput_hz": hist.count / total_s if total_s > 0 else 0.0,
        })
    rows.sort(key=lambda r: r["stage"])
    return rows


def render_report(path_or_run) -> str:
    """Format one run (a path or a :func:`load_run` dict) as text."""
    run = path_or_run if isinstance(path_or_run, dict) else load_run(path_or_run)
    lines: List[str] = []

    for manifest in run["manifests"]:
        seeds = ", ".join(
            f"{k}={v}" for k, v in sorted(manifest.get("seeds", {}).items())
        )
        lines.append(
            f"run {manifest.get('run_id', '?')}  "
            f"repro {manifest.get('version', '?')}  "
            f"python {manifest.get('python', '?')}  "
            f"host {manifest.get('hostname', '?')}"
        )
        if seeds:
            lines.append(f"  seeds: {seeds}")

    metrics = run["metrics"]
    if metrics is None:
        lines.append("(no metrics records)")
        return "\n".join(lines)

    rows = _stage_rows(metrics.get("histograms", {}))
    if rows:
        lines.append("")
        lines.append(
            f"{'stage':<32}{'count':>8}{'mean ms':>10}{'p50 ms':>10}"
            f"{'p99 ms':>10}{'rate Hz':>10}"
        )
        lines.append("-" * 80)
        for row in rows:
            lines.append(
                f"{row['stage']:<32}{row['count']:>8d}"
                f"{row['mean_ms']:>10.3f}{row['p50_ms']:>10.3f}"
                f"{row['p99_ms']:>10.3f}{row['throughput_hz']:>10.1f}"
            )

    non_span = {
        name: data
        for name, data in metrics.get("histograms", {}).items()
        if not name.startswith(SPAN_METRIC_PREFIX) and data["count"] > 0
    }
    if non_span:
        lines.append("")
        lines.append(f"{'histogram':<32}{'count':>8}{'mean':>10}{'p50':>10}"
                     f"{'p99':>10}")
        lines.append("-" * 70)
        for name, data in sorted(non_span.items()):
            hist = Histogram.from_dict(name, data)
            lines.append(
                f"{name:<32}{hist.count:>8d}{hist.mean:>10.3f}"
                f"{hist.quantile(0.5):>10.3f}{hist.quantile(0.99):>10.3f}"
            )

    counters = metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<38} {value}")

    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:<38} {value:g}")

    if run["events"]:
        tally: Dict[str, int] = {}
        for event in run["events"]:
            tally[event.get("name", "?")] = tally.get(event.get("name", "?"), 0) + 1
        lines.append("")
        lines.append("events:")
        for name, count in sorted(tally.items()):
            lines.append(f"  {name:<38} {count}")

    return "\n".join(lines)
