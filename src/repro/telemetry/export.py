"""Snapshot exporters: JSON and Prometheus text exposition format.

Both exporters consume the plain snapshot dicts produced by
:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot`, so they work
on live registries, JSONL records and merged sweep snapshots alike.

The Prometheus output follows the text exposition format: counters as
``_total``, histograms as cumulative ``_bucket{le="..."}`` series plus
``_sum``/``_count``, and metric names sanitised to the allowed character
set (span paths such as ``span.update/raycast`` become
``repro_span_update_raycast``).
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Mapping, Union

from repro.telemetry.registry import MetricsRegistry

__all__ = ["to_json", "to_prometheus_text"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    clean = _NAME_RE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _snapshot_of(source: Union[MetricsRegistry, Mapping]) -> Mapping:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def to_json(source: Union[MetricsRegistry, Mapping], indent: int = 2) -> str:
    """Snapshot as pretty-printed, sorted-key JSON."""
    return json.dumps(_snapshot_of(source), indent=indent, sort_keys=True)


def to_prometheus_text(
    source: Union[MetricsRegistry, Mapping], prefix: str = "repro"
) -> str:
    """Snapshot in the Prometheus text exposition format."""
    snapshot = _snapshot_of(source)
    lines: List[str] = []

    for name, value in snapshot.get("counters", {}).items():
        metric = f"{prefix}_{_sanitize(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")

    for name, value in snapshot.get("gauges", {}).items():
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")

    for name, data in snapshot.get("histograms", {}).items():
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for edge, count in zip(data["edges"], data["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{edge:g}"}} {cumulative}')
        cumulative += data["counts"][-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {data['sum']}")
        lines.append(f"{metric}_count {data['count']}")

    return "\n".join(lines) + ("\n" if lines else "")
