"""Hierarchical span tracing over ``time.perf_counter``.

A :class:`SpanTracer` replaces the ad-hoc ``Stopwatch`` nesting the hot
paths used to carry: each ``with tracer.span("raycast"):`` block times
itself and records the elapsed time into

* the owner's legacy :class:`~repro.utils.profiling.TimingStats` under
  the span's *leaf* name (``"raycast"``) — the backward-compatibility
  shim every existing accessor (``timing.mean_ms``, benchmark printers)
  keeps working through; and
* an optional :class:`~repro.telemetry.registry.MetricsRegistry`
  latency histogram under the span's *path* name
  (``"span.update/raycast"``), using the shared fixed bucket edges so
  per-worker histograms merge deterministically.

When neither sink is attached a span still runs its block, so
instrumented code never needs ``if telemetry:`` guards.  The overhead of
an enabled registry is one ``bisect`` plus a few float adds per span —
benchmarked below 5 % of a SynPF update by
``benchmarks/bench_telemetry_overhead.py``.

Tracers are cheap, single-threaded objects; give each localizer its own.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.telemetry.registry import DEFAULT_LATENCY_EDGES_MS, MetricsRegistry

__all__ = ["SpanTracer", "SPAN_METRIC_PREFIX"]

SPAN_METRIC_PREFIX = "span."


class _Span:
    """One active timing block; returned by :meth:`SpanTracer.span`."""

    __slots__ = ("_tracer", "name", "elapsed", "_start")

    def __init__(self, tracer: "SpanTracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
        tracer = self._tracer
        path = "/".join(tracer._stack)
        tracer._stack.pop()
        tracer._record(self.name, path, self.elapsed)


class SpanTracer:
    """Creates nested spans and fans their durations out to the sinks.

    Parameters
    ----------
    timing:
        Legacy :class:`TimingStats` sink; receives ``record(leaf_name,
        seconds)`` per span.  ``None`` disables the shim.
    registry:
        Metrics sink; receives one histogram observation (milliseconds)
        per span under ``span.<path>``.  ``None`` disables it — the
        telemetry-off configuration the overhead benchmark compares
        against.
    prefix:
        Optional path prefix (e.g. ``"synpf"``) prepended to every span
        path in the registry, namespacing multiple traced components that
        share one registry.
    """

    __slots__ = ("timing", "registry", "prefix", "_stack", "_edges")

    def __init__(
        self,
        timing=None,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "",
        edges=DEFAULT_LATENCY_EDGES_MS,
    ) -> None:
        self.timing = timing
        self.registry = registry
        self.prefix = prefix
        self._stack: List[str] = []
        self._edges = edges

    def span(self, name: str) -> _Span:
        """A context manager timing one named block."""
        return _Span(self, name)

    @property
    def depth(self) -> int:
        return len(self._stack)

    def _record(self, leaf: str, path: str, elapsed: float) -> None:
        if self.timing is not None:
            self.timing.record(leaf, elapsed)
        if self.registry is not None:
            if self.prefix:
                path = f"{self.prefix}/{path}"
            self.registry.histogram(
                SPAN_METRIC_PREFIX + path, self._edges
            ).observe(elapsed * 1e3)
