"""The deterministic control law: hysteresis bands over an ordered ladder.

:class:`GovernorPolicy` maps a stream of watched-quantile readings to a
ladder rung.  It is a pure function of its inputs — no clocks, no
randomness — which is what makes a governed run bit-reproducible for a
fixed seed and pressure timeline (the headline property of
``tests/test_govern.py``):

* reading above the budget's target → **escalate** one rung (degrade);
* reading below the relax band → **relax** one rung (restore quality);
* in the dead zone between the bands → **hold**.

Both actions are dwell-gated: at least ``budget.dwell_updates`` readings
must arrive after an actuation before the next one, so the window
re-fills with samples measured *at the new operating point* — acting on
stale samples is how naive governors oscillate.
"""

from __future__ import annotations

from typing import Tuple

from repro.govern.budget import LatencyBudget

__all__ = ["GovernorPolicy"]


class GovernorPolicy:
    """Hysteresis ladder walker.

    Parameters
    ----------
    budget:
        The :class:`~repro.govern.budget.LatencyBudget` defining the
        bands and the dwell.
    num_rungs:
        Ladder length; rung 0 is full quality, ``num_rungs - 1`` the
        deepest degradation.
    """

    def __init__(self, budget: LatencyBudget, num_rungs: int) -> None:
        budget.validate()
        if num_rungs < 1:
            raise ValueError("num_rungs must be >= 1")
        self.budget = budget
        self.num_rungs = num_rungs
        self.rung = 0
        # Start actionable: the first dwell window is the caller's
        # warm-up, counted from the first observation.
        self._since_change = 0

    @property
    def max_rung(self) -> int:
        return self.num_rungs - 1

    def decide(self, watched_ms: float) -> Tuple[str, int]:
        """Feed one watched-quantile reading; returns ``(decision, rung)``.

        ``decision`` is ``"escalate"``, ``"relax"`` or ``"hold"``.
        """
        self._since_change += 1
        if self._since_change < self.budget.dwell_updates:
            return "hold", self.rung
        if self.budget.breached(watched_ms) and self.rung < self.max_rung:
            self.rung += 1
            self._since_change = 0
            return "escalate", self.rung
        if self.budget.relaxed(watched_ms) and self.rung > 0:
            self.rung -= 1
            self._since_change = 0
            return "relax", self.rung
        return "hold", self.rung

    def force_rung(self, rung: int) -> None:
        """External actuation (the fleet arbiter's floor): jump to a rung.

        Re-bases the hysteresis walk there — the dwell restarts, and
        recovery proceeds rung by rung through the relax band as usual.
        """
        if not 0 <= rung <= self.max_rung:
            raise ValueError(f"rung must be in [0, {self.max_rung}]")
        if rung != self.rung:
            self.rung = rung
            self._since_change = 0

    def reset(self) -> None:
        self.rung = 0
        self._since_change = 0
