"""Two-arm control-loop benchmark behind ``repro bench govern``.

Backs the committed ``benchmarks/BENCH_govern.json``.  One deterministic
workload — a localization run along the bench track under the ``spike``
pressure timeline (3x CPU co-load with an overlapping 2x scan-rate
spike) — run twice from the same seed:

* **governed** — a :class:`~repro.govern.governor.Governor` holds the
  latency budget by walking the default knob ladder;
* **ungoverned** — the comparison arm: identical filter, knobs frozen.

Latency fed to the loop comes from a **deterministic cost model**
(:func:`model_latency_ms`): per-update cost scales with the particle
budget, sub-linearly with beam count, inversely (weakly) with dedup
coarseness, times the injected load factor.  Modelled latency is what
makes the control trace bit-reproducible for a fixed seed and timeline
— the property the headline test pins — and what makes the gated
metrics host-portable.  Real wall time per update is recorded as an
info-only extra.

Gated metrics (ratios, per the repo's bench convention, ±25 %):

* ``governed_in_budget_fraction`` — fraction of governed updates whose
  modelled latency met the budget (the ungoverned arm's fraction is the
  context figure: roughly the calm fraction of the timeline);
* ``accuracy_retention`` — ungoverned mean position error over governed
  mean position error: 1.0 means governing cost no accuracy at all,
  lower means graceful (bounded) degradation.

:func:`check_govern_result` additionally enforces the structural
control-loop properties regardless of baseline: the governed arm must
beat the ungoverned arm's in-budget fraction, must actually have been
pressured (ungoverned arm breaches), and must end the run recovered at
rung 0.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Dict, List, Optional

import numpy as np

from repro.accel.bench import check_against_baseline, environment_info
from repro.govern.budget import LatencyBudget
from repro.govern.governor import Governor
from repro.govern.pressure import PressureInjector
from repro.utils.angles import wrap_to_pi

__all__ = [
    "model_latency_ms",
    "run_govern_bench",
    "check_govern_result",
]

_SMOKE = {"updates": 60, "particles": 150, "beams": 20}
_FULL = {"updates": 200, "particles": 400, "beams": 40}

# Modelled cost of one undegraded update, in SLO milliseconds.  The
# budget below gives 2x headroom over it, so the 3x co-load breaches,
# the 6x overlap breaches hard, and a ~3x compute cut re-enters budget.
_BASE_MS = 8.0
_BUDGET = LatencyBudget(
    target_ms=2.0 * _BASE_MS, quantile=0.95, relax_fraction=0.5,
    dwell_updates=3,
)
# Short recency window so the bench's recovery tail flushes pressured
# samples within a few dwell periods.
_WINDOW = 8

# ray_marching: dedup auto-on, so the coarseness knob is live.
_METHOD = "ray_marching"


def model_latency_ms(config, base_config, load_factor: float,
                     base_ms: float = _BASE_MS) -> float:
    """Deterministic per-update latency cost model.

    Cost is linear in the particle budget (every particle is scored),
    sub-linear in beam count (per-beam work amortises layout and
    gather overhead), and weakly decreasing in dedup coarseness (fewer
    unique casts, bounded by the non-raycast stages); the injected
    ``load_factor`` multiplies everything, exactly as a co-load or a
    rate spike would.
    """
    particles = config.num_particles / base_config.num_particles
    beams = (config.num_beams / base_config.num_beams) ** 0.8
    dedup = (
        base_config.dedup_xy_bin_cells / config.dedup_xy_bin_cells
    ) ** 0.2
    return base_ms * particles * beams * dedup * load_factor


def _bench_world():
    from repro.accel.bench import _bench_track

    return _bench_track()


def _stream_deltas(stream) -> List:
    """Body-frame odometry between consecutive ground-truth poses."""
    from repro.core.motion_models import OdometryDelta

    deltas = [OdometryDelta(0.0, 0.0, 0.0, 0.0, 0.025)]
    for (p0, _), (p1, _) in zip(stream, stream[1:]):
        dx_w, dy_w = p1[0] - p0[0], p1[1] - p0[1]
        c, s = np.cos(p0[2]), np.sin(p0[2])
        dx, dy = c * dx_w + s * dy_w, -s * dx_w + c * dy_w
        dt = 0.025
        deltas.append(OdometryDelta(
            float(dx), float(dy), float(wrap_to_pi(p1[2] - p0[2])),
            float(np.hypot(dx, dy) / dt), dt,
        ))
    return deltas


def _run_arm(
    governed: bool,
    n_updates: int,
    particles: int,
    beams: int,
    seed: int,
    injector: PressureInjector,
    budget: LatencyBudget,
) -> Dict:
    from repro.core.particle_filter import make_synpf
    from repro.serve.bench import _scan_stream
    from repro.telemetry.registry import MetricsRegistry

    track = _bench_world()
    stream = _scan_stream(track, n_updates, seed=seed + 1)
    deltas = _stream_deltas(stream)

    pf = make_synpf(
        track.grid, num_particles=particles, num_beams=beams,
        range_method=_METHOD, seed=seed,
    )
    base_config = pf.config
    pf.initialize(stream[0][0])

    metrics = MetricsRegistry()
    governor = (
        Governor(pf, budget, metrics=metrics, window=_WINDOW)
        if governed else None
    )

    errors: List[float] = []
    latencies: List[float] = []
    rungs: List[int] = []
    in_budget = 0
    wall_s = 0.0
    pressure_end = max((p.end for p in injector.phases), default=0)
    for step, ((truth, scan), delta) in enumerate(zip(stream, deltas)):
        t0 = time.perf_counter()
        est = pf.update(delta, scan.ranges, scan.angles)
        wall_s += time.perf_counter() - t0
        latency = model_latency_ms(
            pf.config, base_config, injector.load_factor(step)
        )
        latencies.append(latency)
        if not budget.breached(latency):
            in_budget += 1
        errors.append(float(np.hypot(
            est.pose[0] - truth[0], est.pose[1] - truth[1]
        )))
        if governor is not None:
            governor.observe(latency)
        rungs.append(governor.rung if governor is not None else 0)

    recovery = errors[pressure_end:] or errors
    trace = [
        (round(lat, 6), rung, round(err, 9))
        for lat, rung, err in zip(latencies, rungs, errors)
    ]
    arm = {
        "in_budget_fraction": in_budget / n_updates,
        "mean_error_m": float(np.mean(errors)),
        "mean_error_recovery_m": float(np.mean(recovery)),
        "p99_model_latency_ms": float(np.quantile(latencies, 0.99)),
        "mean_wall_update_ms": wall_s * 1e3 / n_updates,  # info-only
        "trace_digest": hashlib.sha256(
            json.dumps(trace).encode()
        ).hexdigest(),
    }
    if governor is not None:
        arm["final_rung"] = governor.rung
        arm["max_rung_applied"] = max(rungs)
        arm["actuations"] = {
            name: count
            for name, count in metrics.counters().items()
            if name.startswith("govern.actuations.")
        }
        arm["slo_violations"] = metrics.counters().get(
            "govern.slo.violations", 0
        )
    return arm


def run_govern_bench(
    updates: Optional[int] = None,
    particles: Optional[int] = None,
    beams: Optional[int] = None,
    seed: int = 0,
    smoke: bool = False,
) -> Dict:
    """Run both arms; returns a JSON-ready result dict."""
    defaults = _SMOKE if smoke else _FULL
    n_updates = updates if updates is not None else defaults["updates"]
    n_particles = particles if particles is not None else defaults["particles"]
    n_beams = beams if beams is not None else defaults["beams"]

    injector = PressureInjector.spike(n_updates)
    governed = _run_arm(
        True, n_updates, n_particles, n_beams, seed, injector, _BUDGET
    )
    ungoverned = _run_arm(
        False, n_updates, n_particles, n_beams, seed, injector, _BUDGET
    )
    retention = (
        ungoverned["mean_error_m"] / governed["mean_error_m"]
        if governed["mean_error_m"] > 0 else float("inf")
    )
    return {
        "benchmark": "govern_control_loop",
        "updates": n_updates,
        "particles": n_particles,
        "beams": n_beams,
        "method": _METHOD,
        "smoke": smoke,
        "seed": seed,
        "budget": {
            "target_ms": _BUDGET.target_ms,
            "quantile": _BUDGET.quantile,
            "relax_fraction": _BUDGET.relax_fraction,
            "dwell_updates": _BUDGET.dwell_updates,
            "base_ms": _BASE_MS,
        },
        "timeline": {
            "name": injector.name,
            "peak_factor": injector.peak_factor(),
            "phases": [
                {
                    "start": p.start, "end": p.end,
                    "cpu_factor": p.cpu_factor,
                    "scan_factor": p.scan_factor,
                }
                for p in injector.phases
            ],
        },
        "arms": {"governed": governed, "ungoverned": ungoverned},
        "speedups": {
            "governed_in_budget_fraction": governed["in_budget_fraction"],
            "accuracy_retention": retention,
        },
        "environment": environment_info(),
    }


def check_govern_result(
    result: Dict, baseline: Optional[Dict], tolerance: float = 0.25
) -> List[str]:
    """Gate a govern-bench result: structural properties + ratio baseline.

    Structural checks hold regardless of host or baseline:

    * the pressure was real — the ungoverned arm breached the budget;
    * the governor defended — its in-budget fraction strictly beats the
      ungoverned arm's;
    * the governor recovered — the run ends back at rung 0;
    * the governor actually actuated (a ladder that never moves would
      pass the first two checks only if the workload were trivial).
    """
    failures: List[str] = []
    arms = result.get("arms", {})
    governed = arms.get("governed", {})
    ungoverned = arms.get("ungoverned", {})
    gov_frac = governed.get("in_budget_fraction", 0.0)
    ungov_frac = ungoverned.get("in_budget_fraction", 1.0)
    if ungov_frac >= 1.0:
        failures.append(
            "pressure timeline never breached the ungoverned arm "
            f"(in-budget fraction {ungov_frac:.3f}); nothing to govern"
        )
    if gov_frac <= ungov_frac:
        failures.append(
            f"governor did not defend the budget: governed in-budget "
            f"fraction {gov_frac:.3f} <= ungoverned {ungov_frac:.3f}"
        )
    if governed.get("final_rung", -1) != 0:
        failures.append(
            f"governor did not recover after pressure lifted: final rung "
            f"{governed.get('final_rung')} != 0"
        )
    if governed.get("max_rung_applied", 0) < 1:
        failures.append("governor never actuated during the pressure run")
    if baseline is not None:
        failures.extend(check_against_baseline(result, baseline, tolerance))
    return failures
