"""The per-filter closed loop: observe latency, walk the ladder, actuate.

A :class:`Governor` binds one :class:`~repro.core.particle_filter.SynPF`
(via its ``reconfigure`` seam) to a :class:`LatencyBudget` and a knob
ladder.  Feed it every update's latency through :meth:`observe`; it
maintains its own recency window, watches the budget's quantile of it,
asks the :class:`GovernorPolicy` for a rung, and applies the rung's
:class:`KnobSet` when it changes.

The loop is deterministic end to end: same latency stream in, same
actuation sequence out.  Wall-clock sources feed it in production
(``FleetServer``); a modelled latency stream feeds it in the
bit-reproducible control-loop test.

Telemetry (when a :class:`MetricsRegistry` is given) lands under
``govern.*``:

* gauges ``govern.rung`` and ``govern.knob.<name>`` — current operating
  point (last-writer-wins across a fleet; the arbiter's floor keeps
  fleet members coherent, and per-session detail lives in the decision
  records);
* counters ``govern.actuations.escalate`` / ``.relax`` / ``.floor`` —
  how often the loop moved, and why;
* counter ``govern.slo.violations`` + histogram
  ``govern.slo.violation_ms`` — every observation over target, and by
  how much.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.govern.budget import LatencyBudget
from repro.govern.knobs import KnobSet, default_ladder
from repro.govern.policy import GovernorPolicy
from repro.telemetry.registry import (
    DEFAULT_LATENCY_EDGES_MS,
    MetricsRegistry,
    WindowedHistogram,
)

__all__ = ["Governor"]

# Recency window of the governor's private latency view.  Shorter than
# the serve-layer default: the loop must see a load shift within a few
# dwell periods, and an exact quantile over 64 samples is plenty stable.
GOVERNOR_WINDOW = 64


class Governor:
    """Closed-loop latency governor for one particle filter."""

    def __init__(
        self,
        pf,
        budget: LatencyBudget,
        ladder: Optional[Sequence[KnobSet]] = None,
        metrics: Optional[MetricsRegistry] = None,
        window: int = GOVERNOR_WINDOW,
    ) -> None:
        budget.validate()
        self.pf = pf
        self.budget = budget
        self.ladder = tuple(
            ladder if ladder is not None else default_ladder(pf.config)
        )
        if not self.ladder:
            raise ValueError("ladder must have at least one rung")
        self.policy = GovernorPolicy(budget, len(self.ladder))
        self.metrics = metrics
        # Private recency view — not registered: a fleet of governors
        # would collide on one family name, and the window is per-loop
        # state anyway.  Fleet-level latency lives in the serve registry.
        self._window = WindowedHistogram(
            "govern.latency_ms", DEFAULT_LATENCY_EDGES_MS, window=window
        )
        self.floor = 0
        self._applied_rung = 0
        # Normalize onto rung 0 (a no-op for the default ladder, which
        # is built from the filter's own config).
        self.ladder[0].apply(pf)
        self._export_operating_point()

    # ------------------------------------------------------------------
    @property
    def rung(self) -> int:
        """The currently applied ladder rung."""
        return self._applied_rung

    @property
    def max_rung(self) -> int:
        return len(self.ladder) - 1

    @property
    def exhausted(self) -> bool:
        """At the deepest rung — nothing left to trade locally."""
        return self._applied_rung >= self.max_rung

    def watched_ms(self) -> float:
        """Current value of the watched windowed quantile."""
        return self._window.windowed_quantile(self.budget.quantile)

    # ------------------------------------------------------------------
    def observe(self, latency_ms: float) -> Dict:
        """Feed one update's latency; actuate if the policy says so.

        Returns a decision record::

            {"decision", "rung", "watched_ms", "violated", "applied"}

        ``applied`` is the dict of knobs actually changed this step
        (empty on hold).
        """
        latency_ms = float(latency_ms)
        self._window.observe(latency_ms)
        violated = self.budget.breached(latency_ms)
        if violated and self.metrics is not None:
            self.metrics.counter("govern.slo.violations").inc()
            self.metrics.histogram("govern.slo.violation_ms").observe(
                latency_ms - self.budget.target_ms
            )
        watched = self.watched_ms()
        decision, rung = self.policy.decide(watched)
        if decision != "hold" and self.metrics is not None:
            self.metrics.counter(f"govern.actuations.{decision}").inc()
        applied = self._apply(max(rung, self.floor))
        return {
            "decision": decision,
            "rung": self._applied_rung,
            "watched_ms": watched,
            "violated": violated,
            "applied": applied,
        }

    def set_floor(self, floor: int) -> Dict:
        """Arbiter hook: clamp the operating point at or below ``floor``.

        Raising the floor degrades immediately (counted as a ``floor``
        actuation) and re-bases the policy there, so recovery still
        walks back rung by rung through the relax band.  Lowering the
        floor releases the clamp; the policy's own rung takes over.
        """
        floor = min(max(int(floor), 0), self.max_rung)
        if floor == self.floor:
            return {}
        raised = floor > self.floor
        self.floor = floor
        if raised and self.policy.rung < floor:
            self.policy.force_rung(floor)
        applied = self._apply(max(self.policy.rung, self.floor))
        if applied and raised and self.metrics is not None:
            self.metrics.counter("govern.actuations.floor").inc()
        return applied

    # ------------------------------------------------------------------
    def _apply(self, target_rung: int) -> Dict:
        if target_rung == self._applied_rung:
            return {}
        applied = self.ladder[target_rung].apply(self.pf)
        self._applied_rung = target_rung
        self._export_operating_point()
        return applied

    def _export_operating_point(self) -> None:
        if self.metrics is None:
            return
        self.metrics.gauge("govern.rung").set(self._applied_rung)
        for knob, value in self.ladder[self._applied_rung].knobs.items():
            if isinstance(value, (int, float)):
                self.metrics.gauge(f"govern.knob.{knob}").set(value)
