"""The latency SLO a governor holds: target quantile + hysteresis bands.

A :class:`LatencyBudget` says *what* to hold — "the windowed p99 of
per-update latency stays under ``target_ms``" — and shapes *when* the
control loop may act on it:

* **breach band**: the watched quantile above ``target_ms`` calls for
  degradation (escalate one rung down the knob ladder);
* **relax band**: the quantile below ``relax_fraction * target_ms``
  calls for recovery (climb one rung back up).  The gap between the two
  bands is the hysteresis dead zone that keeps the loop from oscillating
  when latency hovers near the target;
* **dwell**: at least ``dwell_updates`` observations must accumulate
  between actuations, so one knob change's effect is actually *measured*
  (at the new operating point) before the next change.

The budget is pure policy data — it never reads a clock and has no
state, which is what keeps the control loop bit-reproducible for a fixed
latency trace.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LatencyBudget"]


@dataclass(frozen=True)
class LatencyBudget:
    """Per-update latency SLO.

    Parameters
    ----------
    target_ms:
        The SLO: the watched latency quantile must stay at or under this.
    quantile:
        Which quantile of the recent-latency window is watched
        (default p99, the figure ``repro bench serve`` commits).
    relax_fraction:
        Lower hysteresis band as a fraction of ``target_ms``; recovery
        is only attempted below it.  Must leave a real dead zone
        (``0 < relax_fraction < 1``).
    dwell_updates:
        Minimum observations between successive actuations.
    """

    target_ms: float
    quantile: float = 0.99
    relax_fraction: float = 0.6
    dwell_updates: int = 5

    def validate(self) -> None:
        if self.target_ms <= 0:
            raise ValueError("target_ms must be positive")
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if not 0.0 < self.relax_fraction < 1.0:
            raise ValueError("relax_fraction must be in (0, 1)")
        if self.dwell_updates < 1:
            raise ValueError("dwell_updates must be >= 1")

    @property
    def relax_ms(self) -> float:
        """Absolute lower hysteresis band."""
        return self.relax_fraction * self.target_ms

    def breached(self, latency_ms: float) -> bool:
        """Is this latency above the SLO?"""
        return latency_ms > self.target_ms

    def relaxed(self, latency_ms: float) -> bool:
        """Is this latency comfortably below the SLO (recovery band)?"""
        return latency_ms < self.relax_ms
