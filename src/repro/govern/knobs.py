"""Actuators: named knob settings and the ordered degradation ladder.

A :class:`KnobSet` is one *absolute* operating point of the governed
knobs — every value it carries is a target setting, not a delta, so
applying a rung is idempotent and rungs can be jumped in either
direction (the fleet arbiter's floor does exactly that).  Application
goes through :meth:`~repro.core.particle_filter.SynPF.reconfigure`, the
public runtime-reconfiguration seam.

:func:`default_ladder` builds the ordered ladder the default policy
walks, degrading in ascending accuracy-cost order (the paper's §IV
compute/accuracy trade, and the order the metamorphic suite bounds):

1. **dedup bin coarseness** — widens the raycast substitution envelope;
   cheapest in accuracy, saves per-ray work;
2. **beam count** — scan-layout subsampling; error grows slowly and
   monotonically (``check_scan_subsample_monotonicity`` is the oracle);
3. **particle budget** — the big lever, cut last and restored first.

Rung 0 is always the undegraded base configuration; climbing *up* the
ladder (toward 0) restores quality in the reverse order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["KnobSet", "default_ladder"]

# Knobs a KnobSet may carry; matches SynPF.reconfigure's signature.
GOVERNED_KNOBS = (
    "num_particles", "num_beams", "dedup_xy_bin_cells", "accel_backend",
)


@dataclass(frozen=True)
class KnobSet:
    """One named, absolute operating point of the governed knobs."""

    name: str
    knobs: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.knobs) - set(GOVERNED_KNOBS)
        if unknown:
            raise ValueError(
                f"unknown knobs {sorted(unknown)}; "
                f"governable: {list(GOVERNED_KNOBS)}"
            )

    def apply(self, pf) -> Dict:
        """Reconfigure ``pf`` to this operating point.

        Returns the knobs that actually changed (``reconfigure``'s
        contract) — empty when the filter is already here.
        """
        return pf.reconfigure(**self.knobs)


def default_ladder(
    config,
    min_beams: int = 8,
    min_particles: int = 64,
) -> Tuple[KnobSet, ...]:
    """The ordered degradation ladder for a given base configuration.

    Every rung carries *all* governed quality knobs as absolute values,
    scaled from the base config and clamped to the floors, so any rung
    can be applied from any other.  Consecutive rungs that collapse to
    identical settings (tiny base configs hitting the floors early) are
    deduplicated, keeping each policy step a real actuation.
    """
    p0 = int(config.num_particles)
    b0 = int(config.num_beams)
    d0 = float(config.dedup_xy_bin_cells)
    backend = config.accel_backend
    floor_b = min(min_beams, b0)
    floor_p = min(min_particles, p0)

    def rung(name: str, pf: float, bf: float, df: float) -> KnobSet:
        return KnobSet(name, {
            "num_particles": max(floor_p, int(round(p0 * pf))),
            "num_beams": max(floor_b, int(round(b0 * bf))),
            "dedup_xy_bin_cells": d0 * df,
            "accel_backend": backend,
        })

    #              name             particles beams  dedup
    candidates = (
        rung("full",                 1.0,      1.0,   1.0),
        rung("dedup-2x",             1.0,      1.0,   2.0),
        rung("beams-3/4",            1.0,      0.75,  2.0),
        rung("beams-1/2",            1.0,      0.5,   4.0),
        rung("particles-2/3",        2 / 3,    0.5,   4.0),
        rung("particles-1/2",        0.5,      0.5,   4.0),
        rung("particles-1/3",        1 / 3,    1 / 3, 4.0),
        rung("floor",                floor_p / p0, floor_b / b0, 4.0),
    )
    ladder = [candidates[0]]
    for ks in candidates[1:]:
        if ks.knobs != ladder[-1].knobs:
            ladder.append(ks)
    return tuple(ladder)
