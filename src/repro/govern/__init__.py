"""repro.govern — adaptive compute governance under a latency SLO.

The closed loop that ROADMAP item 5 asks for: hold a per-update latency
SLO by trading estimator quality for compute at runtime, degrade
gracefully under pressure, recover when pressure lifts.

Pieces (each in its own module):

* :class:`LatencyBudget` — the SLO: target quantile, hysteresis bands,
  dwell (``budget``);
* :class:`KnobSet` / :func:`default_ladder` — the actuators: absolute
  operating points applied through ``SynPF.reconfigure`` (``knobs``);
* :class:`GovernorPolicy` — the deterministic control law (``policy``);
* :class:`Governor` — one filter's closed loop (``governor``);
* :class:`FleetArbiter` — fleet-coherent floors and load shedding over
  a :class:`~repro.serve.registry.SessionRegistry` (``fleet``);
* :class:`PressureInjector` — deterministic fault timelines to test
  against (``pressure``);
* :func:`run_govern_bench` — the two-arm control-loop benchmark behind
  ``repro bench govern`` (``bench``).

See ``docs/governor.md`` for the knob ladder, hysteresis semantics and
how to read ``benchmarks/BENCH_govern.json``.
"""

from repro.govern.budget import LatencyBudget
from repro.govern.fleet import FleetArbiter
from repro.govern.governor import Governor
from repro.govern.knobs import KnobSet, default_ladder
from repro.govern.policy import GovernorPolicy
from repro.govern.pressure import PressureInjector, PressurePhase, cpu_burn

__all__ = [
    "LatencyBudget",
    "KnobSet",
    "default_ladder",
    "GovernorPolicy",
    "Governor",
    "FleetArbiter",
    "PressureInjector",
    "PressurePhase",
    "cpu_burn",
]
