"""Fleet-level arbitration: coherent degradation and load shedding.

Per-session governors defend their own SLO, but a fleet under global
pressure needs *coherent* action: if only the currently-slow sessions
degrade, the freed cycles just migrate the breach to their neighbours.
The :class:`FleetArbiter` therefore runs one more hysteresis loop over
the **fleet-wide** windowed latency quantile
(:meth:`SessionRegistry.update_latency_quantile`) and pushes its rung to
every session governor as a *floor* — all sessions step down the ladder
together, and climb back together when pressure lifts.

When the floor is already at the deepest rung and the fleet quantile
still breaches for a full dwell period, the ladder is exhausted: the
arbiter **sheds** — evicts one session (``reason="shed"``, so the
``serve.sessions.evicted.shed`` counter attributes it) chosen
deterministically as the least-recently-active, tie-broken by session
id.  Shedding repeats one session per dwell period until the quantile
re-enters budget or one session remains.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.govern.budget import LatencyBudget
from repro.govern.governor import Governor
from repro.govern.knobs import default_ladder
from repro.govern.policy import GovernorPolicy

__all__ = ["FleetArbiter"]


class FleetArbiter:
    """Coherent multi-session governor over one session registry.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.registry.SessionRegistry` whose
        sessions are governed (and whose fleet metrics receive the
        ``govern.*`` families).
    budget:
        The fleet SLO; individual governors share it.
    shed:
        Whether an exhausted ladder may evict sessions.
    """

    def __init__(
        self,
        registry,
        budget: LatencyBudget,
        shed: bool = True,
    ) -> None:
        budget.validate()
        self.registry = registry
        self.budget = budget
        self.shed = shed
        self._governors: Dict[str, Governor] = {}
        self._floor_policy: Optional[GovernorPolicy] = None
        self._breach_streak = 0

    # ------------------------------------------------------------------
    # Session membership
    # ------------------------------------------------------------------
    def attach(self, session, ladder=None) -> Optional[Governor]:
        """Put one session under governance; no-op for non-PF sessions."""
        pf = getattr(session, "pf", None)
        if pf is None:
            return None
        governor = Governor(
            pf,
            self.budget,
            ladder=ladder if ladder is not None else default_ladder(pf.config),
            metrics=self.registry.metrics,
        )
        if self._floor_policy is None:
            self._floor_policy = GovernorPolicy(
                self.budget, len(governor.ladder)
            )
        governor.set_floor(self._floor_policy.rung)
        self._governors[session.session_id] = governor
        return governor

    def detach(self, session_id: str) -> None:
        self._governors.pop(session_id, None)

    def governor(self, session_id: str) -> Optional[Governor]:
        return self._governors.get(session_id)

    def __len__(self) -> int:
        return len(self._governors)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def observe(self, session_id: str, latency_ms: float) -> None:
        """Feed one session's update latency to its governor."""
        governor = self._governors.get(session_id)
        if governor is not None:
            governor.observe(latency_ms)

    def step(self) -> Dict:
        """One fleet-coherence pass; call once per server flush.

        Returns ``{"floor": int, "decision": str, "shed": [sids]}``.
        """
        if self._floor_policy is None:
            return {"floor": 0, "decision": "hold", "shed": []}
        fleet_q = self.registry.update_latency_quantile(self.budget.quantile)
        decision, floor = self._floor_policy.decide(fleet_q)
        metrics = self.registry.metrics
        metrics.gauge("govern.fleet.floor").set(floor)
        for governor in self._governors.values():
            governor.set_floor(floor)
        shed_ids = []
        exhausted = (
            floor >= self._floor_policy.max_rung
            and self.budget.breached(fleet_q)
        )
        self._breach_streak = self._breach_streak + 1 if exhausted else 0
        if (
            self.shed
            and self._breach_streak >= self.budget.dwell_updates
            and len(self._governors) > 1
        ):
            shed_ids.append(self._shed_one())
            self._breach_streak = 0
        return {"floor": floor, "decision": decision, "shed": shed_ids}

    def _shed_one(self) -> str:
        """Evict the least-recently-active governed session."""
        victim = min(
            self._governors,
            key=lambda sid: (self.registry.get(sid).last_access, sid),
        )
        self.registry.evict(victim, reason="shed")
        self.detach(victim)
        self.registry.metrics.counter("govern.fleet.shed").inc()
        return victim
