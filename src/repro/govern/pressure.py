"""Deterministic pressure timelines: CPU co-load and scan-rate spikes.

A :class:`PressureInjector` is the fault source the governor is tested
against — scenario-style (like :mod:`repro.eval.scenarios`): a fixed
sequence of :class:`PressurePhase` windows over the update index, each
scaling two load dimensions:

* ``cpu_factor`` — a co-located tenant stealing cycles: every update
  inside the phase takes this many times longer for the *same* work;
* ``scan_factor`` — a sensor-rate spike: updates arrive this many times
  faster, so the per-update budget effectively shrinks by the factor.

``factors(step)`` is a pure function of the update index, which keeps a
pressured run bit-reproducible.  For benches that want *real* load
rather than modelled load, :func:`cpu_burn` spins the CPU for a wall
duration — useful for the info-only wall-clock arm, never for gated
metrics (host-dependent).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Tuple

__all__ = ["PressurePhase", "PressureInjector", "cpu_burn"]


@dataclass(frozen=True)
class PressurePhase:
    """One half-open window ``[start, end)`` of update indices."""

    start: int
    end: int
    cpu_factor: float = 1.0
    scan_factor: float = 1.0

    def validate(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("need 0 <= start < end")
        if self.cpu_factor < 1.0 or self.scan_factor < 1.0:
            raise ValueError("pressure factors must be >= 1")

    def active(self, step: int) -> bool:
        return self.start <= step < self.end


class PressureInjector:
    """A named, deterministic timeline of pressure phases."""

    def __init__(self, phases, name: str = "custom") -> None:
        self.phases = tuple(phases)
        for phase in self.phases:
            phase.validate()
        self.name = name

    def factors(self, step: int) -> Tuple[float, float]:
        """``(cpu_factor, scan_factor)`` at one update index.

        Overlapping phases compound multiplicatively — two co-loads
        stack, a co-load during a scan spike stacks with it.
        """
        cpu = scan = 1.0
        for phase in self.phases:
            if phase.active(step):
                cpu *= phase.cpu_factor
                scan *= phase.scan_factor
        return cpu, scan

    def load_factor(self, step: int) -> float:
        """Combined per-update latency multiplier at one index."""
        cpu, scan = self.factors(step)
        return cpu * scan

    def peak_factor(self) -> float:
        """Largest combined multiplier anywhere on the timeline."""
        if not self.phases:
            return 1.0
        marks = {p.start for p in self.phases}
        return max((self.load_factor(s) for s in marks), default=1.0)

    @classmethod
    def calm(cls) -> "PressureInjector":
        """No pressure anywhere — the control arm's timeline."""
        return cls((), name="calm")

    @classmethod
    def spike(cls, n_updates: int) -> "PressureInjector":
        """The headline-test timeline, scaled to a run length.

        Four acts: calm warm-up (first 20%), a 3x CPU co-load
        (20%–45%), an overlapping 2x scan-rate spike (35%–55%, so the
        combined peak is 6x in the overlap), then a long calm tail —
        the governor must degrade through the overlap and climb back to
        rung 0 before the run ends.
        """
        if n_updates < 20:
            raise ValueError("spike timeline needs >= 20 updates")
        return cls(
            (
                PressurePhase(
                    n_updates // 5, int(0.45 * n_updates), cpu_factor=3.0
                ),
                PressurePhase(
                    int(0.35 * n_updates), int(0.55 * n_updates),
                    scan_factor=2.0,
                ),
            ),
            name="spike",
        )


def cpu_burn(duration_s: float) -> int:
    """Busy-spin the CPU for ``duration_s`` wall seconds.

    Returns the number of loop iterations — a real co-load for wall-clock
    (info-only) measurements.  Never use in gated or bit-reproducible
    paths: the iteration count is host- and load-dependent.
    """
    end = time.perf_counter() + max(0.0, duration_s)
    n = 0
    while time.perf_counter() < end:
        n += 1
    return n
