"""Synthetic racetrack generation.

Stands in for the paper's physical test track (Fig. 2).  Race tracks are
"corridor-like environments" (paper §II): a closed driving corridor of
roughly constant width bounded by walls.  The generator produces exactly
that class of map from a closed centerline:

1. build a closed centerline — a circle with smooth Fourier perturbations
   (random tracks) or a hand-designed layout (:func:`replica_test_track`);
2. rasterise it into an occupancy grid: cells within half the track width
   of the centerline are free, a wall band beyond that is occupied, and
   everything else is unknown (as a SLAM-built map would leave it).

The returned :class:`GeneratedTrack` bundles the grid with the centerline
:class:`~repro.maps.centerline.Raceline`, which doubles as the "ideal race
line" for the lateral-error metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.maps.centerline import Raceline, arclength_resample
from repro.maps.occupancy_grid import FREE, OCCUPIED, UNKNOWN, OccupancyGrid
from repro.utils.rng import make_rng

__all__ = ["TrackSpec", "GeneratedTrack", "generate_track", "replica_test_track"]


@dataclass(frozen=True)
class TrackSpec:
    """Parameters of a synthetic racetrack.

    Defaults approximate an F1TENTH-scale indoor track: ~2.2 m wide
    corridor (the cars are 0.3 m wide), tens of metres per lap.
    """

    mean_radius: float = 8.0
    track_width: float = 2.2
    wall_thickness: float = 0.25
    resolution: float = 0.05
    num_harmonics: int = 4
    irregularity: float = 0.22
    seed: int = 0

    def validate(self) -> None:
        if self.mean_radius <= 0:
            raise ValueError("mean_radius must be positive")
        if self.track_width <= 0:
            raise ValueError("track_width must be positive")
        if self.track_width < 4 * self.resolution:
            raise ValueError("track_width must span at least 4 cells")
        if self.wall_thickness <= 0:
            raise ValueError("wall_thickness must be positive")
        if not 0 <= self.irregularity < 0.5:
            raise ValueError("irregularity must be in [0, 0.5)")


@dataclass
class GeneratedTrack:
    """A rasterised track: occupancy grid + centerline raceline."""

    grid: OccupancyGrid
    centerline: Raceline
    spec: TrackSpec


def _fourier_centerline(spec: TrackSpec, n_points: int = 720) -> np.ndarray:
    """Closed centerline: a circle whose radius is modulated by a few random
    low-order Fourier harmonics.  Low order keeps curvature drivable."""
    rng = make_rng(spec.seed)
    phi = np.linspace(0.0, 2.0 * np.pi, n_points, endpoint=False)
    radius = np.full(n_points, spec.mean_radius)
    for k in range(2, 2 + spec.num_harmonics):
        amplitude = spec.irregularity * spec.mean_radius * rng.uniform(0.2, 1.0) / k
        phase = rng.uniform(0.0, 2.0 * np.pi)
        radius += amplitude * np.cos(k * phi + phase)
    return np.stack([radius * np.cos(phi), radius * np.sin(phi)], axis=-1)


def _rasterise(centerline_pts: np.ndarray, spec: TrackSpec) -> OccupancyGrid:
    """Rasterise a corridor of width ``track_width`` around the centerline."""
    half_width = spec.track_width / 2.0
    margin = half_width + spec.wall_thickness + 10 * spec.resolution
    lo = centerline_pts.min(axis=0) - margin
    hi = centerline_pts.max(axis=0) + margin
    origin = (float(lo[0]), float(lo[1]))
    width = int(np.ceil((hi[0] - lo[0]) / spec.resolution))
    height = int(np.ceil((hi[1] - lo[1]) / spec.resolution))

    # Mark centerline cells, then threshold a Euclidean distance transform:
    # this gives the exact distance-to-centerline field at cell resolution.
    seed_mask = np.zeros((height, width), dtype=bool)
    dense = arclength_resample(centerline_pts, spec.resolution / 2.0, closed=True)
    cols = np.floor((dense[:, 0] - origin[0]) / spec.resolution).astype(int)
    rows = np.floor((dense[:, 1] - origin[1]) / spec.resolution).astype(int)
    valid = (cols >= 0) & (cols < width) & (rows >= 0) & (rows < height)
    seed_mask[rows[valid], cols[valid]] = True

    dist = ndimage.distance_transform_edt(~seed_mask) * spec.resolution
    data = np.full((height, width), UNKNOWN, dtype=np.int8)
    data[dist <= half_width] = FREE
    wall_band = (dist > half_width) & (dist <= half_width + spec.wall_thickness)
    data[wall_band] = OCCUPIED
    return OccupancyGrid(data, spec.resolution, origin)


def generate_track(spec: TrackSpec | None = None, **overrides) -> GeneratedTrack:
    """Generate a random closed corridor track.

    ``generate_track(seed=3, mean_radius=10.0)`` is shorthand for passing a
    :class:`TrackSpec`.  The same spec always yields the same track.
    """
    if spec is None:
        spec = TrackSpec(**overrides)
    elif overrides:
        raise TypeError("pass either a TrackSpec or keyword overrides, not both")
    spec.validate()

    pts = _fourier_centerline(spec)
    grid = _rasterise(pts, spec)
    raceline = Raceline.from_waypoints(pts, spacing=0.05)
    return GeneratedTrack(grid, raceline, spec)


def replica_test_track(resolution: float = 0.05, track_width: float = 2.2) -> GeneratedTrack:
    """A hand-designed layout standing in for the paper's test track (Fig. 2).

    The paper's track is a small indoor circuit with straights (where the
    cars reach top speed and slip matters most) and tight corners.  This
    layout is a rounded rectangle with one chicane: two long straights, four
    90-degree corners and an S-section, lap length ~ 45 m — proportionally
    similar to the published picture.
    """
    # Control points of the centerline (metres), traversed counter-clockwise.
    # Five Chaikin passes converge close to the quadratic B-spline of this
    # polygon, keeping every corner radius >= ~1.7 m — comfortably inside
    # the car's 0.72 m minimum turning radius, as a drivable track must be.
    control = np.array(
        [
            [0.0, 0.0], [4.0, 0.0], [8.0, 0.0], [12.0, 0.0],        # bottom straight
            [15.0, 1.0], [16.5, 3.5],                                # corner 1 (wide)
            [15.5, 6.0], [13.0, 7.2],                                # corner 2
            [10.0, 6.2], [7.5, 5.2], [5.0, 5.8], [2.5, 7.0],         # gentle S chicane
            [-0.5, 7.2], [-2.8, 5.5], [-3.2, 3.0], [-1.8, 0.8],      # left end
        ]
    )
    smooth = _smooth_closed(control, passes=5)
    spec = TrackSpec(
        mean_radius=float(np.mean(np.hypot(*smooth.T))),
        track_width=track_width,
        resolution=resolution,
        seed=-1,
    )
    grid = _rasterise(smooth, spec)
    raceline = Raceline.from_waypoints(smooth, spacing=0.05)
    return GeneratedTrack(grid, raceline, spec)


def _smooth_closed(points: np.ndarray, passes: int = 2) -> np.ndarray:
    """Chaikin corner cutting on a closed polyline — rounds sharp corners
    into drivable arcs while staying close to the control polygon."""
    pts = np.asarray(points, dtype=float)
    for _ in range(passes):
        nxt = np.roll(pts, -1, axis=0)
        q = 0.75 * pts + 0.25 * nxt
        r = 0.25 * pts + 0.75 * nxt
        pts = np.empty((2 * len(q), 2))
        pts[0::2] = q
        pts[1::2] = r
    return pts
