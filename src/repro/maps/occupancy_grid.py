"""2D occupancy grid with world/grid transforms and distance fields.

Conventions (matching ROS ``map_server`` / the F1TENTH stack):

* the grid is stored row-major as ``grid[row, col]`` = ``grid[iy, ix]``;
* cell values: ``0`` free, ``100`` occupied, ``-1`` unknown (int8);
* ``origin`` is the world coordinate of the *centre* of cell ``(0, 0)``'s
  lower-left corner, i.e. world ``(origin_x, origin_y)`` maps to grid index
  ``(0, 0)``'s corner; axis-aligned maps only (origin yaw = 0), which is all
  the localization stack requires;
* ``resolution`` is metres per cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np
from scipy import ndimage

__all__ = ["OccupancyGrid", "FREE", "OCCUPIED", "UNKNOWN"]

FREE: int = 0
OCCUPIED: int = 100
UNKNOWN: int = -1


@dataclass
class OccupancyGrid:
    """An axis-aligned 2D occupancy grid.

    Parameters
    ----------
    data:
        ``(height, width)`` int8 array of cell states (see module constants).
    resolution:
        Cell edge length in metres.
    origin:
        ``(x, y)`` world position of the grid's lower-left corner.
    """

    data: np.ndarray
    resolution: float
    origin: Tuple[float, float] = (0.0, 0.0)
    _distance_field: np.ndarray = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.int8)
        if self.data.ndim != 2:
            raise ValueError(f"grid data must be 2D, got shape {self.data.shape}")
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        self.origin = (float(self.origin[0]), float(self.origin[1]))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self.data.shape[0]

    @property
    def width(self) -> int:
        return self.data.shape[1]

    @property
    def size_m(self) -> Tuple[float, float]:
        """(width, height) of the map in metres."""
        return (self.width * self.resolution, self.height * self.resolution)

    @property
    def max_range_m(self) -> float:
        """Length of the map diagonal — an upper bound on any in-map range."""
        w, h = self.size_m
        return float(np.hypot(w, h))

    # ------------------------------------------------------------------
    # Coordinate transforms
    # ------------------------------------------------------------------
    def world_to_grid(self, xy: np.ndarray) -> np.ndarray:
        """Map world coordinates ``(..., 2)`` to integer cell indices ``(ix, iy)``.

        Returned array has the same leading shape with last axis
        ``(col, row)``.  No bounds clipping is performed.
        """
        xy = np.asarray(xy, dtype=float)
        out = np.empty(xy.shape, dtype=np.int64)
        out[..., 0] = np.floor((xy[..., 0] - self.origin[0]) / self.resolution)
        out[..., 1] = np.floor((xy[..., 1] - self.origin[1]) / self.resolution)
        return out

    def grid_to_world(self, ij: np.ndarray) -> np.ndarray:
        """Map cell indices ``(col, row)`` to the world position of the cell centre."""
        ij = np.asarray(ij, dtype=float)
        out = np.empty(ij.shape, dtype=float)
        out[..., 0] = (ij[..., 0] + 0.5) * self.resolution + self.origin[0]
        out[..., 1] = (ij[..., 1] + 0.5) * self.resolution + self.origin[1]
        return out

    def in_bounds(self, xy: np.ndarray) -> np.ndarray:
        """Boolean mask: which world points fall inside the grid extent."""
        ij = self.world_to_grid(xy)
        return (
            (ij[..., 0] >= 0)
            & (ij[..., 0] < self.width)
            & (ij[..., 1] >= 0)
            & (ij[..., 1] < self.height)
        )

    # ------------------------------------------------------------------
    # Occupancy queries
    # ------------------------------------------------------------------
    def is_occupied_world(self, xy: np.ndarray, unknown_is_occupied: bool = True) -> np.ndarray:
        """Occupancy test for world points; out-of-bounds counts as occupied.

        Treating unknown/out-of-map as occupied is the conservative choice
        used by the ray casters: a ray leaving the mapped area terminates.
        """
        xy = np.atleast_2d(np.asarray(xy, dtype=float))
        ij = self.world_to_grid(xy)
        inside = (
            (ij[:, 0] >= 0)
            & (ij[:, 0] < self.width)
            & (ij[:, 1] >= 0)
            & (ij[:, 1] < self.height)
        )
        result = np.ones(xy.shape[0], dtype=bool)
        if np.any(inside):
            vals = self.data[ij[inside, 1], ij[inside, 0]]
            if unknown_is_occupied:
                result[inside] = vals != FREE
            else:
                result[inside] = vals == OCCUPIED
        return result

    def occupancy_mask(self, unknown_is_occupied: bool = True) -> np.ndarray:
        """Boolean ``(H, W)`` mask of occupied cells."""
        if unknown_is_occupied:
            return self.data != FREE
        return self.data == OCCUPIED

    def free_mask(self) -> np.ndarray:
        """Boolean ``(H, W)`` mask of definitely-free cells."""
        return self.data == FREE

    def occupied_cell_centers(self) -> np.ndarray:
        """World coordinates ``(N, 2)`` of all occupied cell centres.

        Used by the scan-alignment metric and by map visualisation.
        """
        rows, cols = np.nonzero(self.data == OCCUPIED)
        return self.grid_to_world(np.stack([cols, rows], axis=-1))

    # ------------------------------------------------------------------
    # Derived fields
    # ------------------------------------------------------------------
    def distance_field(self) -> np.ndarray:
        """Euclidean distance (metres) from each cell centre to the nearest
        occupied cell.  Cached after the first call.

        This is the substrate for distance-transform ray marching and for
        the scan-alignment score; it is also what CDDT compresses
        directionally.
        """
        if self._distance_field is None:
            free = ~self.occupancy_mask(unknown_is_occupied=False)
            self._distance_field = (
                ndimage.distance_transform_edt(free) * self.resolution
            ).astype(np.float32)
        return self._distance_field

    def distance_at_world(self, xy: np.ndarray) -> np.ndarray:
        """Sample the distance field at world points (nearest cell).

        Out-of-bounds points return 0 (treated as on an obstacle).
        """
        xy = np.atleast_2d(np.asarray(xy, dtype=float))
        field = self.distance_field()
        ij = self.world_to_grid(xy)
        out = np.zeros(xy.shape[0], dtype=float)
        inside = (
            (ij[:, 0] >= 0)
            & (ij[:, 0] < self.width)
            & (ij[:, 1] >= 0)
            & (ij[:, 1] < self.height)
        )
        out[inside] = field[ij[inside, 1], ij[inside, 0]]
        return out

    def inflate(self, radius_m: float) -> "OccupancyGrid":
        """Return a copy with obstacles dilated by ``radius_m``.

        Planning/control uses an inflated map so the car centre keeps a
        safety margin; localization always uses the raw map.
        """
        if radius_m < 0:
            raise ValueError("inflation radius must be non-negative")
        if radius_m == 0:
            return OccupancyGrid(self.data.copy(), self.resolution, self.origin)
        dist = ndimage.distance_transform_edt(
            ~self.occupancy_mask(unknown_is_occupied=False)
        ) * self.resolution
        data = self.data.copy()
        data[dist <= radius_m] = OCCUPIED
        return OccupancyGrid(data, self.resolution, self.origin)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def empty(width_m: float, height_m: float, resolution: float,
              origin: Tuple[float, float] = (0.0, 0.0)) -> "OccupancyGrid":
        """An all-free grid covering ``width_m`` x ``height_m``."""
        w = int(np.ceil(width_m / resolution))
        h = int(np.ceil(height_m / resolution))
        return OccupancyGrid(np.zeros((h, w), dtype=np.int8), resolution, origin)

    def copy(self) -> "OccupancyGrid":
        return OccupancyGrid(self.data.copy(), self.resolution, self.origin)

    def invalidate_cache(self) -> None:
        """Drop cached derived fields after mutating ``data`` in place."""
        self._distance_field = None
