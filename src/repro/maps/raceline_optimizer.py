"""Raceline optimization: a better "ideal race line" than the centerline.

The paper measures lateral error "with respect to the ideal race line"
(Tab. I); racing teams compute that line by optimisation rather than using
the track centerline.  This module implements the classic *elastic band*
scheme with a curvature-smoothing term:

1. parameterise the line by one lateral offset per centerline vertex,
   bounded by the corridor half-width minus a safety margin;
2. iteratively relax each vertex toward the midpoint of its neighbours
   (shortening/straightening — the shortest-path pull) blended with a
   second-difference smoothing term (curvature reduction);
3. project offsets back into bounds after every sweep.

The result hugs apexes and straightens corner sequences — lap-time gains
of several percent on corridor tracks (see
``examples/raceline_optimization.py``), with monotone convergence and no
external solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.maps.centerline import Raceline
from repro.maps.track_generator import GeneratedTrack

__all__ = ["RacelineOptimizerConfig", "optimize_raceline"]


@dataclass(frozen=True)
class RacelineOptimizerConfig:
    """Optimizer knobs.

    ``margin`` keeps the line away from the walls (car half-width plus
    safety); ``shortening_weight``/``smoothing_weight`` blend the shortest-
    path pull with curvature smoothing; ``iterations`` sweeps are cheap
    (vectorised) so the default converges comfortably.
    """

    margin: float = 0.35
    iterations: int = 3000
    shortening_weight: float = 0.3
    smoothing_weight: float = 0.2
    spacing: float = 0.1

    def validate(self, half_width: float) -> None:
        if self.margin < 0:
            raise ValueError("margin must be non-negative")
        if self.margin >= half_width:
            raise ValueError(
                f"margin {self.margin} leaves no corridor (half-width "
                f"{half_width})"
            )
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not 0 < self.shortening_weight <= 1 or not 0 <= self.smoothing_weight <= 1:
            raise ValueError("weights must be in (0, 1]")
        if self.spacing <= 0:
            raise ValueError("spacing must be positive")


def optimize_raceline(
    track: GeneratedTrack, config: RacelineOptimizerConfig | None = None
) -> Raceline:
    """Optimise a raceline inside ``track``'s corridor.

    Returns a new :class:`~repro.maps.centerline.Raceline`; the input track
    is not modified.  The line is guaranteed to stay ``config.margin``
    inside the nominal corridor bounds.
    """
    config = config or RacelineOptimizerConfig()
    half_width = track.spec.track_width / 2.0
    config.validate(half_width)

    center = Raceline.from_waypoints(track.centerline.points, spacing=config.spacing)
    n = len(center)
    normals = np.stack(
        [-np.sin(center.headings), np.cos(center.headings)], axis=-1
    )
    bound = half_width - config.margin

    offsets = np.zeros(n)
    for _ in range(config.iterations):
        pts = center.points + offsets[:, None] * normals

        prev_pts = np.roll(pts, 1, axis=0)
        next_pts = np.roll(pts, -1, axis=0)
        midpoint_pull = 0.5 * (prev_pts + next_pts) - pts
        # Second-difference smoothing on the offsets themselves damps
        # oscillation without shrinking the line to a point.
        offset_smooth = 0.5 * (np.roll(offsets, 1) + np.roll(offsets, -1)) - offsets

        # Project the geometric pull onto each vertex's lateral direction —
        # vertices may only move across the track, never along it (keeps
        # the arclength parameterisation intact).
        lateral_pull = np.einsum("ij,ij->i", midpoint_pull, normals)
        offsets = offsets + (
            config.shortening_weight * lateral_pull
            + config.smoothing_weight * offset_smooth
        )
        np.clip(offsets, -bound, bound, out=offsets)

    optimized_pts = center.points + offsets[:, None] * normals
    return Raceline.from_waypoints(optimized_pts, spacing=0.05)
