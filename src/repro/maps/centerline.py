"""Raceline / centerline geometry.

A racetrack's centerline (or ideal raceline) is a closed polyline.  The
evaluation harness measures *lateral error with respect to the ideal race
line* (Tab. I of the paper), which requires projecting arbitrary positions
onto the polyline; the racing controller needs lookahead points and
curvature.  This module provides all of that on top of a uniform-arclength
resampled representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.utils.angles import wrap_to_pi

__all__ = ["Raceline", "arclength_resample", "curvature_of_polyline"]


def arclength_resample(points: np.ndarray, spacing: float, closed: bool = True) -> np.ndarray:
    """Resample a polyline to (approximately) uniform arclength spacing.

    Parameters
    ----------
    points:
        ``(N, 2)`` vertices.  For a closed curve the last point must *not*
        repeat the first.
    spacing:
        Target distance between consecutive output vertices, metres.
    closed:
        Whether the polyline is a loop.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must be (N, 2), got {points.shape}")
    if points.shape[0] < 3:
        raise ValueError("need at least 3 points")
    if spacing <= 0:
        raise ValueError("spacing must be positive")

    if closed:
        loop = np.vstack([points, points[:1]])
    else:
        loop = points
    seg = np.diff(loop, axis=0)
    seg_len = np.hypot(seg[:, 0], seg[:, 1])
    s = np.concatenate([[0.0], np.cumsum(seg_len)])
    total = s[-1]
    if total <= 0:
        raise ValueError("degenerate polyline with zero length")

    n_out = max(int(round(total / spacing)), 4)
    if closed:
        s_new = np.linspace(0.0, total, n_out, endpoint=False)
    else:
        s_new = np.linspace(0.0, total, n_out)
    x = np.interp(s_new, s, loop[:, 0])
    y = np.interp(s_new, s, loop[:, 1])
    return np.stack([x, y], axis=-1)


def curvature_of_polyline(points: np.ndarray, closed: bool = True) -> np.ndarray:
    """Signed curvature (1/m) at each vertex via finite differences.

    Positive curvature = turning left (counter-clockwise).  Assumes roughly
    uniform spacing; resample first if the input is uneven.
    """
    points = np.asarray(points, dtype=float)
    if closed:
        prev_pts = np.roll(points, 1, axis=0)
        next_pts = np.roll(points, -1, axis=0)
    else:
        prev_pts = np.vstack([points[:1], points[:-1]])
        next_pts = np.vstack([points[1:], points[-1:]])

    d1 = (next_pts - prev_pts) / 2.0
    d2 = next_pts - 2.0 * points + prev_pts
    num = d1[:, 0] * d2[:, 1] - d1[:, 1] * d2[:, 0]
    den = np.power(d1[:, 0] ** 2 + d1[:, 1] ** 2, 1.5)
    with np.errstate(divide="ignore", invalid="ignore"):
        kappa = np.where(den > 1e-12, num / den, 0.0)
    return kappa


@dataclass
class Raceline:
    """A closed raceline with fast projection queries.

    Construct via :meth:`from_waypoints`, which resamples to uniform
    arclength.  ``points[i]`` sits at arclength ``s[i]``; ``headings[i]`` is
    the tangent direction; ``curvature[i]`` the signed curvature.
    """

    points: np.ndarray
    s: np.ndarray
    headings: np.ndarray
    curvature: np.ndarray
    total_length: float
    _tree: cKDTree = field(default=None, repr=False, compare=False)

    @staticmethod
    def from_waypoints(waypoints: np.ndarray, spacing: float = 0.05) -> "Raceline":
        pts = arclength_resample(waypoints, spacing, closed=True)
        nxt = np.roll(pts, -1, axis=0)
        seg = nxt - pts
        seg_len = np.hypot(seg[:, 0], seg[:, 1])
        s = np.concatenate([[0.0], np.cumsum(seg_len)])[:-1]
        total = float(np.sum(seg_len))
        headings = np.arctan2(seg[:, 1], seg[:, 0])
        kappa = curvature_of_polyline(pts, closed=True)
        return Raceline(pts, s, headings, kappa, total)

    def _kdtree(self) -> cKDTree:
        if self._tree is None:
            self._tree = cKDTree(self.points)
        return self._tree

    def __len__(self) -> int:
        return self.points.shape[0]

    # ------------------------------------------------------------------
    # Projection queries
    # ------------------------------------------------------------------
    def project(self, xy: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Project world points onto the raceline.

        Returns ``(s, d)``: arclength progress of the closest raceline point
        and *signed* lateral offset (positive = left of travel direction).
        Accepts ``(2,)`` or ``(N, 2)``.
        """
        xy = np.atleast_2d(np.asarray(xy, dtype=float))
        _, idx = self._kdtree().query(xy)
        n = len(self)

        # Refine: project onto the segment before and after the closest
        # vertex, keep the closer of the two.
        best_s = np.empty(xy.shape[0])
        best_d = np.empty(xy.shape[0])
        for k, (p, i) in enumerate(zip(xy, idx)):
            candidates = []
            for j in (int(i) - 1, int(i)):
                a = self.points[j % n]
                b = self.points[(j + 1) % n]
                ab = b - a
                denom = float(ab @ ab)
                t = float(np.clip((p - a) @ ab / denom, 0.0, 1.0)) if denom > 0 else 0.0
                closest = a + t * ab
                dist = float(np.hypot(*(p - closest)))
                seg_s = self.s[j % n] + t * np.hypot(*ab)
                heading = np.arctan2(ab[1], ab[0])
                cross = np.cos(heading) * (p[1] - closest[1]) - np.sin(heading) * (
                    p[0] - closest[0]
                )
                candidates.append((dist, seg_s % self.total_length, np.sign(cross) * dist))
            dist, seg_s, signed = min(candidates, key=lambda c: c[0])
            best_s[k] = seg_s
            best_d[k] = signed
        return best_s, best_d

    def lateral_error(self, xy: np.ndarray) -> np.ndarray:
        """Absolute lateral offset (metres) of each point — the Tab. I metric."""
        _, d = self.project(xy)
        return np.abs(d)

    # ------------------------------------------------------------------
    # Sampling queries
    # ------------------------------------------------------------------
    def point_at(self, s: float) -> np.ndarray:
        """Interpolated raceline point at arclength ``s`` (wraps around)."""
        s = float(s) % self.total_length
        i = int(np.searchsorted(self.s, s, side="right")) - 1
        i = max(i, 0)
        a = self.points[i]
        b = self.points[(i + 1) % len(self)]
        seg = self.s[(i + 1) % len(self)] - self.s[i]
        if seg <= 0:  # wrap segment
            seg = self.total_length - self.s[i]
        t = (s - self.s[i]) / seg if seg > 0 else 0.0
        return a + t * (b - a)

    def heading_at(self, s: float) -> float:
        s = float(s) % self.total_length
        i = int(np.searchsorted(self.s, s, side="right")) - 1
        return float(self.headings[max(i, 0)])

    def _vertex_heading(self, i: int) -> float:
        """Tangent direction *at vertex* ``i``: the circular mean of the
        incoming and outgoing segment headings."""
        n = len(self)
        h_in = float(self.headings[(i - 1) % n])
        h_out = float(self.headings[i % n])
        return h_in + 0.5 * float(wrap_to_pi(h_out - h_in))

    def smooth_heading_at(self, s: float) -> float:
        """Tangent direction at ``s``, interpolated between vertex tangents.

        :meth:`heading_at` is piecewise constant (the raw polyline segment
        heading), so a curve offset by a fixed lateral distance built from
        it jumps at every vertex — worst at the ``s = 0`` seam.  This
        variant blends the tangents of the two bounding vertices, making
        offset curves continuous all the way around the lap.
        """
        s = float(s) % self.total_length
        i = int(np.searchsorted(self.s, s, side="right")) - 1
        i = max(i, 0)
        n = len(self)
        seg = self.s[(i + 1) % n] - self.s[i]
        if seg <= 0:  # wrap segment
            seg = self.total_length - self.s[i]
        t = (s - self.s[i]) / seg if seg > 0 else 0.0
        h0 = self._vertex_heading(i)
        h1 = self._vertex_heading((i + 1) % n)
        return float(wrap_to_pi(h0 + t * wrap_to_pi(h1 - h0)))

    def offset_point_at(self, s: float, offset: float) -> np.ndarray:
        """Point at arclength ``s`` shifted laterally (positive = left).

        Uses :meth:`smooth_heading_at` for the offset direction, so the
        offset curve is continuous in ``s`` — including across the lap
        wraparound seam — which :meth:`point_at` plus the piecewise
        :meth:`heading_at` normal is not.
        """
        point = self.point_at(s)
        if offset == 0.0:
            return point
        heading = self.smooth_heading_at(s)
        return point + offset * np.array([-np.sin(heading), np.cos(heading)])

    def curvature_at(self, s: float) -> float:
        s = float(s) % self.total_length
        i = int(np.searchsorted(self.s, s, side="right")) - 1
        return float(self.curvature[max(i, 0)])

    def lookahead_point(self, xy: np.ndarray, lookahead: float) -> np.ndarray:
        """The raceline point ``lookahead`` metres of arclength ahead of the
        projection of ``xy`` — the pure-pursuit target."""
        s, _ = self.project(np.asarray(xy, dtype=float))
        return self.point_at(float(s[0]) + lookahead)

    def progress_difference(self, s_now: float, s_prev: float) -> float:
        """Forward arclength travelled from ``s_prev`` to ``s_now``.

        Result in ``[-L/2, L/2)`` — small negative values mean the car moved
        backwards slightly.  Lap counting accumulates these increments.
        """
        half = self.total_length / 2.0
        delta = (s_now - s_prev + half) % self.total_length - half
        return float(delta)

    def start_pose(self) -> np.ndarray:
        """Pose ``(x, y, theta)`` at the start/finish line, facing forward."""
        return np.array([self.points[0, 0], self.points[0, 1], self.headings[0]])

    def offset_polyline(self, offset: float) -> np.ndarray:
        """Polyline shifted laterally by ``offset`` (positive = left).

        Used by the track generator to derive wall outlines from the
        centerline.
        """
        normals = np.stack(
            [-np.sin(self.headings), np.cos(self.headings)], axis=-1
        )
        return self.points + offset * normals
