"""ROS ``map_server``-compatible map file I/O (YAML metadata + PGM image).

F1TENTH maps are distributed as a ``.yaml`` file describing resolution,
origin and thresholds plus a ``.pgm`` grayscale image.  This module reads
and writes that format without external dependencies (no PyYAML, no PIL):
the YAML subset used by map_server is flat key/value pairs, and PGM is a
trivial binary format.
"""

from __future__ import annotations

import os
import re
from typing import Dict, Tuple

import numpy as np

from repro.maps.occupancy_grid import FREE, OCCUPIED, UNKNOWN, OccupancyGrid

__all__ = ["load_map_yaml", "save_map_yaml", "read_pgm", "write_pgm"]


def _parse_scalar(text: str):
    text = text.strip()
    if re.fullmatch(r"-?\d+", text):
        return int(text)
    try:
        return float(text)
    except ValueError:
        return text.strip("'\"")


def _parse_flat_yaml(text: str) -> Dict[str, object]:
    """Parse the flat ``key: value`` (+ inline ``[a, b, c]`` lists) subset of
    YAML that map_server metadata files use."""
    out: Dict[str, object] = {}
    for line in text.splitlines():
        line = line.split("#", 1)[0].rstrip()
        if not line.strip() or ":" not in line:
            continue
        key, value = line.split(":", 1)
        value = value.strip()
        if value.startswith("[") and value.endswith("]"):
            items = [v for v in value[1:-1].split(",") if v.strip()]
            out[key.strip()] = [_parse_scalar(v) for v in items]
        else:
            out[key.strip()] = _parse_scalar(value)
    return out


def read_pgm(path: str) -> np.ndarray:
    """Read a binary (P5) or ASCII (P2) PGM file into a uint8/uint16 array."""
    with open(path, "rb") as f:
        raw = f.read()

    # Tokenise the header: magic, width, height, maxval — comments start with #.
    tokens = []
    pos = 0
    while len(tokens) < 4:
        while pos < len(raw) and raw[pos : pos + 1].isspace():
            pos += 1
        if pos < len(raw) and raw[pos : pos + 1] == b"#":
            while pos < len(raw) and raw[pos : pos + 1] != b"\n":
                pos += 1
            continue
        start = pos
        while pos < len(raw) and not raw[pos : pos + 1].isspace():
            pos += 1
        tokens.append(raw[start:pos])
    magic = tokens[0].decode()
    width, height, maxval = int(tokens[1]), int(tokens[2]), int(tokens[3])
    pos += 1  # single whitespace after maxval

    dtype = np.uint8 if maxval < 256 else np.dtype(">u2")
    if magic == "P5":
        data = np.frombuffer(raw, dtype=dtype, count=width * height, offset=pos)
    elif magic == "P2":
        values = raw[pos:].split()
        data = np.array([int(v) for v in values[: width * height]], dtype=dtype)
    else:
        raise ValueError(f"unsupported PGM magic {magic!r} in {path}")
    return data.reshape(height, width)


def write_pgm(path: str, image: np.ndarray) -> None:
    """Write a uint8 image as a binary (P5) PGM file."""
    image = np.asarray(image, dtype=np.uint8)
    if image.ndim != 2:
        raise ValueError("PGM image must be 2D")
    header = f"P5\n{image.shape[1]} {image.shape[0]}\n255\n".encode()
    with open(path, "wb") as f:
        f.write(header)
        f.write(image.tobytes())


def load_map_yaml(yaml_path: str) -> OccupancyGrid:
    """Load a map_server map (YAML + PGM) as an :class:`OccupancyGrid`.

    Pixel-to-occupancy conversion follows map_server semantics: the image is
    interpreted so white (255) is free and black (0) is occupied; with
    ``negate: 0``, occupancy probability ``p = (255 - pixel) / 255``; cells
    with ``p > occupied_thresh`` are occupied, ``p < free_thresh`` free, and
    anything between is unknown.  PGM rows are stored top-to-bottom while
    grid rows grow upward, so the image is vertically flipped.
    """
    with open(yaml_path, "r") as f:
        meta = _parse_flat_yaml(f.read())
    for key in ("image", "resolution", "origin"):
        if key not in meta:
            raise ValueError(f"map YAML missing required key {key!r}")

    image_path = str(meta["image"])
    if not os.path.isabs(image_path):
        image_path = os.path.join(os.path.dirname(os.path.abspath(yaml_path)), image_path)
    pixels = read_pgm(image_path).astype(float)

    negate = int(meta.get("negate", 0))
    occupied_thresh = float(meta.get("occupied_thresh", 0.65))
    free_thresh = float(meta.get("free_thresh", 0.196))

    if negate:
        occ_prob = pixels / 255.0
    else:
        occ_prob = (255.0 - pixels) / 255.0

    data = np.full(pixels.shape, UNKNOWN, dtype=np.int8)
    data[occ_prob > occupied_thresh] = OCCUPIED
    data[occ_prob < free_thresh] = FREE
    data = data[::-1, :].copy()  # image row 0 is the top; grid row 0 is the bottom

    origin = meta["origin"]
    return OccupancyGrid(
        data, float(meta["resolution"]), (float(origin[0]), float(origin[1]))
    )


def save_map_yaml(grid: OccupancyGrid, yaml_path: str) -> Tuple[str, str]:
    """Save a grid in map_server format; returns ``(yaml_path, pgm_path)``."""
    base, _ = os.path.splitext(yaml_path)
    pgm_path = base + ".pgm"

    pixels = np.full(grid.data.shape, 205, dtype=np.uint8)  # unknown = mid-grey
    pixels[grid.data == FREE] = 255
    pixels[grid.data == OCCUPIED] = 0
    write_pgm(pgm_path, pixels[::-1, :])

    yaml_text = (
        f"image: {os.path.basename(pgm_path)}\n"
        f"resolution: {grid.resolution}\n"
        f"origin: [{grid.origin[0]}, {grid.origin[1]}, 0.0]\n"
        "negate: 0\n"
        "occupied_thresh: 0.65\n"
        "free_thresh: 0.196\n"
    )
    with open(yaml_path, "w") as f:
        f.write(yaml_text)
    return yaml_path, pgm_path
