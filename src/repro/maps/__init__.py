"""Occupancy-grid map substrate.

Everything the localization stack knows about the world flows through an
:class:`~repro.maps.occupancy_grid.OccupancyGrid`: the ray casters trace
through it, the particle filter scores scans against it, the SLAM baseline
builds submaps shaped like it, and the simulator uses it as ground truth.

The subpackage also ships a ROS ``map_server``-compatible YAML/PGM loader
(the format F1TENTH maps are distributed in) and a synthetic racetrack
generator standing in for the paper's physical test track (Fig. 2).
"""

from repro.maps.centerline import (
    Raceline,
    arclength_resample,
    curvature_of_polyline,
)
from repro.maps.map_io import load_map_yaml, save_map_yaml
from repro.maps.occupancy_grid import OccupancyGrid
from repro.maps.quality import (
    WallDistanceStats,
    occupancy_overlap,
    wall_distance_statistics,
)
from repro.maps.raceline_optimizer import (
    RacelineOptimizerConfig,
    optimize_raceline,
)
from repro.maps.track_generator import TrackSpec, generate_track, replica_test_track

__all__ = [
    "OccupancyGrid",
    "Raceline",
    "RacelineOptimizerConfig",
    "TrackSpec",
    "WallDistanceStats",
    "optimize_raceline",
    "arclength_resample",
    "curvature_of_polyline",
    "generate_track",
    "load_map_yaml",
    "occupancy_overlap",
    "replica_test_track",
    "save_map_yaml",
    "wall_distance_statistics",
]
