"""Map-quality metrics: scoring a SLAM-built map against a reference.

Used to evaluate the Cartographer baseline's *mapping* mode (the paper
races on pre-built maps; how good those maps are is the preceding
question).  A built map can be locally crisp yet globally warped, so two
complementary views:

* :func:`wall_distance_statistics` — for every occupied cell of the built
  map, distance to the nearest occupied cell of the reference (and the
  reverse direction): sub-resolution medians mean the walls are in the
  right place; a long tail means ghosting or warp.
* :func:`occupancy_overlap` — IoU-style agreement over the jointly known
  region, per cell class.

Both accept an optional rigid alignment (from
:func:`repro.eval.trajectory.align_trajectories` on the trajectories) so a
globally shifted but internally correct map can be scored fairly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.maps.occupancy_grid import FREE, OCCUPIED, OccupancyGrid

__all__ = ["wall_distance_statistics", "occupancy_overlap", "WallDistanceStats"]


@dataclass(frozen=True)
class WallDistanceStats:
    """Distances (m) between built and reference walls, both directions."""

    built_to_ref_median: float
    built_to_ref_p95: float
    ref_to_built_median: float
    ref_to_built_p95: float
    num_built_cells: int
    num_ref_cells: int

    @property
    def symmetric_median(self) -> float:
        return max(self.built_to_ref_median, self.ref_to_built_median)


def _apply_transform(points: np.ndarray,
                     transform: Optional[Tuple[np.ndarray, np.ndarray]]):
    if transform is None:
        return points
    rot, trans = transform
    return points @ np.asarray(rot, dtype=float).T + np.asarray(trans, dtype=float)


def wall_distance_statistics(
    built: OccupancyGrid,
    reference: OccupancyGrid,
    transform: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> WallDistanceStats:
    """Two-sided nearest-wall distance statistics.

    ``transform``: optional ``(R, t)`` mapping built-map coordinates into
    the reference frame before scoring.
    """
    built_walls = _apply_transform(built.occupied_cell_centers(), transform)
    ref_walls = reference.occupied_cell_centers()
    if built_walls.shape[0] == 0 or ref_walls.shape[0] == 0:
        raise ValueError("both maps need occupied cells to compare")

    d_b2r = reference.distance_at_world(built_walls)
    # Reverse direction: distance from reference walls to built walls via
    # the built map's own distance field, transformed inversely.
    if transform is not None:
        rot, trans = transform
        inv_pts = (ref_walls - np.asarray(trans)) @ np.asarray(rot)
    else:
        inv_pts = ref_walls
    d_r2b = built.distance_at_world(inv_pts)

    # Out-of-bounds probes return 0 ("on an obstacle") from
    # distance_at_world; exclude them so unmapped regions do not fake
    # perfect agreement.
    b2r_in = reference.in_bounds(built_walls)
    r2b_in = built.in_bounds(inv_pts)
    d_b2r = d_b2r[b2r_in] if np.any(b2r_in) else d_b2r
    d_r2b = d_r2b[r2b_in] if np.any(r2b_in) else d_r2b

    return WallDistanceStats(
        built_to_ref_median=float(np.median(d_b2r)),
        built_to_ref_p95=float(np.quantile(d_b2r, 0.95)),
        ref_to_built_median=float(np.median(d_r2b)),
        ref_to_built_p95=float(np.quantile(d_r2b, 0.95)),
        num_built_cells=int(built_walls.shape[0]),
        num_ref_cells=int(ref_walls.shape[0]),
    )


def occupancy_overlap(
    built: OccupancyGrid,
    reference: OccupancyGrid,
    transform: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    sample_step: int = 1,
) -> dict:
    """Cell-class agreement over the jointly *known* region.

    Samples the built map's known cells (every ``sample_step``-th), maps
    them into the reference frame, and compares classes where the
    reference is also known.  Returns occupied-IoU, free-IoU and overall
    accuracy.
    """
    known_mask = built.data != -1
    rows, cols = np.nonzero(known_mask)
    rows, cols = rows[::sample_step], cols[::sample_step]
    if rows.size == 0:
        raise ValueError("built map has no known cells")
    centers = built.grid_to_world(
        np.stack([cols, rows], axis=-1).astype(float)
    )
    built_vals = built.data[rows, cols]

    probe = _apply_transform(centers, transform)
    ij = reference.world_to_grid(probe)
    inside = (
        (ij[:, 0] >= 0) & (ij[:, 0] < reference.width)
        & (ij[:, 1] >= 0) & (ij[:, 1] < reference.height)
    )
    ref_vals = np.full(rows.size, -1, dtype=np.int8)
    ref_vals[inside] = reference.data[ij[inside, 1], ij[inside, 0]]
    both_known = inside & (ref_vals != -1)
    if not np.any(both_known):
        raise ValueError("maps share no jointly known region")

    b = built_vals[both_known]
    r = ref_vals[both_known]

    def iou(cls: int) -> float:
        inter = np.sum((b == cls) & (r == cls))
        union = np.sum((b == cls) | (r == cls))
        return float(inter / union) if union else float("nan")

    return {
        "occupied_iou": iou(OCCUPIED),
        "free_iou": iou(FREE),
        "accuracy": float(np.mean(b == r)),
        "jointly_known_cells": int(both_known.sum()),
    }
