"""One grammar for every acceleration knob: ``parse_accel_spec``.

Historically :class:`~repro.core.particle_filter.ParticleFilterConfig`
grew three ad-hoc acceleration knobs — ``accel_backend`` (compute
kernels), ``raycast_dedup`` (query dedup wrapper), and ``fused``
(single-pipeline update) — each with its own tri-state convention.  The
unified ``accel`` spec expresses all three in the same compact grammar
the raycast factory already uses for range-method specs::

    spec     := [mode] ["@" backend] [flag]
    mode     := "fused" | "staged" | "auto"
    backend  := "auto" | "numpy" | "numba"
    flag     := "+dedup" | "-dedup"

Examples (and what they alias to):

==========================  =============================================
``"fused@numba+dedup"``     fused=True, accel_backend="numba",
                            raycast_dedup=True
``"staged@numpy"``          fused=False, accel_backend="numpy"
``"numba"``                 accel_backend="numba" (bare backend token)
``"+dedup"``                raycast_dedup=True
``"auto"``                  everything resolved per-host (the default)
==========================  =============================================

A component absent from the spec is *unset* (``None``) and leaves the
corresponding config field alone; a component present in the spec but
contradicted by an explicitly non-``"auto"`` per-knob field raises — the
two spellings must agree or only one may speak.  The three per-knob
fields remain supported as documented aliases of this grammar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["AccelSpec", "parse_accel_spec"]

_MODES = ("fused", "staged", "auto")
_BACKENDS = ("auto", "numpy", "numba")


@dataclass(frozen=True)
class AccelSpec:
    """Parsed acceleration spec; ``None`` components were not specified.

    ``mode`` maps onto the ``fused`` knob (``"fused"`` → ``True``,
    ``"staged"`` → ``False``, ``"auto"`` → ``"auto"``); ``backend`` onto
    ``accel_backend``; ``dedup`` onto ``raycast_dedup``.
    """

    mode: Optional[str] = None  # "fused" | "staged" | "auto"
    backend: Optional[str] = None  # "auto" | "numpy" | "numba"
    dedup: Optional[bool] = None  # True | False

    @property
    def fused(self):
        """The ``fused`` config value this spec implies (or ``None``)."""
        if self.mode is None:
            return None
        return {"fused": True, "staged": False, "auto": "auto"}[self.mode]


def parse_accel_spec(spec: str) -> AccelSpec:
    """Parse ``[mode][@backend][+dedup|-dedup]`` into an :class:`AccelSpec`.

    Raises ``ValueError`` on unknown tokens or malformed shapes; an empty
    spec is an error (spell "no opinion" as ``None`` / omit the field).
    """
    if not isinstance(spec, str):
        raise ValueError(f"accel spec must be a string, got {type(spec).__name__}")
    text = spec.strip()
    if not text:
        raise ValueError("empty accel spec")

    dedup: Optional[bool] = None
    if text.endswith("+dedup"):
        dedup = True
        text = text[: -len("+dedup")]
    elif text.endswith("-dedup"):
        dedup = False
        text = text[: -len("-dedup")]
    if "+" in text or "-" in text:
        raise ValueError(
            f"malformed accel spec {spec!r}: the only flag is '+dedup'/'-dedup' "
            "and it must come last"
        )

    backend: Optional[str] = None
    if "@" in text:
        text, _, backend_token = text.partition("@")
        if "@" in backend_token:
            raise ValueError(f"malformed accel spec {spec!r}: multiple '@'")
        if backend_token not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend_token!r} in accel spec {spec!r}; "
                f"expected one of {_BACKENDS}"
            )
        backend = backend_token

    mode: Optional[str] = None
    if text:
        if text in _MODES:
            mode = text
        elif text in _BACKENDS and backend is None:
            # Bare backend token ("numba") — common shorthand.
            backend = text
        else:
            raise ValueError(
                f"unknown mode {text!r} in accel spec {spec!r}; expected one "
                f"of {_MODES} (or a bare backend from {_BACKENDS})"
            )

    return AccelSpec(mode=mode, backend=backend, dedup=dedup)
