"""The fused ``pf_update`` kernel pipeline (batch-first PF core).

The staged SynPF update round-trips through NumPy between stages:
motion → assemble an ``(P*B, 3)`` float query array → dedup re-derives
integer bin keys from those floats → 3-key lexsort → cast → scatter →
sensor gather.  Profiling the staged path (3000 particles × 60 beams,
ray_marching+dedup) shows the *bookkeeping* dominating: ~22 ms of key
computation plus ~31 ms of lexsort against ~8 ms of actual ray casting.

The fused pipeline exploits two structural facts the staged path cannot
see across its stage boundaries:

1. **Per-particle key factorisation** — every beam of a particle shares
   the particle's sensor position, so the ``(x-bin, y-bin)`` half of the
   dedup key is a function of the *particle* (P values), not the *query*
   (P×B values).  Only the theta bin remains per-query.
2. **Packed single-key dedup** — the three bin keys fit one ``int64``
   (21+21+log2(theta_bins) bits), so one ``np.unique`` replaces the
   3-array lexsort + group-boundary scan, and the representative query
   is decoded *from the key itself* (no gather of per-query floats).

Both transforms are exact: bin keys are identical integers to the staged
path's, representatives are the same pure function of the key (bin
centres), and the scatter/gather order matches the staged C-order ravel,
so the fused update is **bitwise identical** to the staged one — the
property the fused-vs-staged differential suite pins and the reason
golden traces survive the default flip without re-recording.

Backend registration follows :mod:`repro.accel.backends`: the only
backend-differentiated stage is the likelihood gather
(:func:`get_pf_update_kernel`), resolved through ``resolve_backend`` like
the raycast and sensor kernels; everything integer-heavy (packing,
``np.unique``) is NumPy on every backend.

Substitution envelope: the packed key offsets positions by 2^20 bins, so
poses farther than ``2^20 * bin_size`` from the map origin (≈ 52 km at
5 cm maps) would alias; such queries are off-map by orders of magnitude
and already answer ``max_range``.  ``theta_bins`` must stay below 2^21.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.accel.backends import get_numba_kernels, resolve_backend
from repro.accel.dedup import DedupRangeMethod

__all__ = [
    "fused_update_supported",
    "pack_query_keys",
    "representatives_from_keys",
    "cast_packed",
    "get_pf_update_kernel",
    "PF_UPDATE_KERNELS",
]

_TWO_PI = 2.0 * np.pi
# Position bins are offset into [0, 2^21) before packing; see module
# docstring for the (absurdly large) aliasing envelope this implies.
_XY_OFFSET = 1 << 20
_XY_SPAN = 1 << 21
_MAX_THETA_BINS = 1 << 21


def fused_update_supported(method) -> bool:
    """Whether the fused pipeline applies to this range method.

    Fusion's win is the factorised dedup; without a
    :class:`~repro.accel.dedup.DedupRangeMethod` wrapper the staged path
    is already a single vectorised pipeline, so table-driven methods
    (LUT/GLT) and dedup-off configurations run staged.
    """
    return (
        isinstance(method, DedupRangeMethod)
        and method.theta_bins < _MAX_THETA_BINS
    )


def pack_query_keys(
    method: DedupRangeMethod,
    sensor_x: np.ndarray,
    sensor_y: np.ndarray,
    query_theta: np.ndarray,
    pool=None,
) -> np.ndarray:
    """Packed int64 dedup keys for a ``(P,)`` cloud × ``(P, B)`` angles.

    ``sensor_x``/``sensor_y`` are per-particle sensor positions;
    ``query_theta`` the ``(P, B)`` per-query world headings (already the
    broadcast ``pose_theta[:, None] + beam_angles[None, :]``).  The bin
    indices are computed with the exact expressions
    :meth:`DedupRangeMethod.calc_ranges` uses, so the key set matches the
    staged path's lexsort groups 1:1.
    """
    ox, oy = method.grid.origin[0], method.grid.origin[1]
    bin_size = method._bin_size
    theta_bins = method.theta_bins
    n_particles, n_beams = query_theta.shape

    take = pool.take if pool is not None else (
        lambda key, shape, dtype=np.float64: np.empty(shape, dtype=dtype)
    )

    kx = np.floor((sensor_x - ox) / bin_size).astype(np.int64)
    ky = np.floor((sensor_y - oy) / bin_size).astype(np.int64)
    # Fold both position bins into one per-particle prefix.
    pk = take("fused.pk", (n_particles,), np.int64)
    np.multiply(kx + _XY_OFFSET, _XY_SPAN, out=pk)
    pk += ky
    pk += _XY_OFFSET

    # Theta bin per query: mod into [0, 2*pi) then clip the index, the
    # same guard against the mod() == 2*pi rounding corner as the staged
    # dedup.
    kt_f = take("fused.kt_f", (n_particles, n_beams))
    np.mod(query_theta, _TWO_PI, out=kt_f)
    kt_f *= theta_bins / _TWO_PI
    np.floor(kt_f, out=kt_f)
    kt = take("fused.kt", (n_particles, n_beams), np.int64)
    kt[:] = kt_f
    np.clip(kt, 0, theta_bins - 1, out=kt)

    packed = take("fused.packed", (n_particles, n_beams), np.int64)
    np.multiply(pk[:, None], theta_bins, out=packed)
    packed += kt
    return packed.reshape(-1)


def representatives_from_keys(
    method: DedupRangeMethod, keys: np.ndarray
) -> np.ndarray:
    """Decode packed keys back into ``(U, 3)`` bin-centre query poses.

    Bitwise identical to the staged representatives: same
    ``origin + (bin + 0.5) * bin_size`` expressions on the same integer
    bins.
    """
    theta_bins = method.theta_bins
    kt = keys % theta_bins
    rest = keys // theta_bins
    ky = rest % _XY_SPAN - _XY_OFFSET
    kx = rest // _XY_SPAN - _XY_OFFSET
    rep = np.empty((keys.shape[0], 3))
    rep[:, 0] = method.grid.origin[0] + (kx + 0.5) * method._bin_size
    rep[:, 1] = method.grid.origin[1] + (ky + 0.5) * method._bin_size
    rep[:, 2] = (kt + 0.5) * (_TWO_PI / theta_bins)
    return rep


def cast_packed(
    method: DedupRangeMethod, packed: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Unique → decode → cast: one inner call for a packed key batch.

    Returns ``(rep_ranges, inv)`` where ``rep_ranges[inv]`` reproduces
    the per-query answer of the staged dedup exactly (bin centres are a
    pure function of the key, so neither the representative order nor
    which other queries share the batch can change any query's value —
    the property that makes multi-session folding exact).

    Dedup counters are *not* recorded here; callers attribute the batch
    to the wrapper of their choice via
    :meth:`DedupRangeMethod.record_batch` (the casting wrapper, matching
    the fleet batcher's convention).
    """
    unique_keys, inv = np.unique(packed, return_inverse=True)
    rep = representatives_from_keys(method, unique_keys)
    rep_ranges = method.inner.calc_ranges(rep)
    return rep_ranges, inv


# ----------------------------------------------------------------------
# Backend-registered likelihood gather
# ----------------------------------------------------------------------
class NumpyPFUpdateKernel:
    """Reference fused gather: representative bins → per-particle score.

    Scores ``P`` particles directly from the ``U`` representative ranges
    plus the scatter map, skipping the staged path's materialisation of
    the full ``(P, B)`` float range matrix (and its P×B binning).  The
    table gather and the float32 pairwise row-sum are the exact staged
    expressions, so scores are bitwise identical.
    """

    backend = "numpy"

    def gather_log_likelihood(
        self,
        sensor_model,
        rep_ranges: np.ndarray,
        inv: np.ndarray,
        measured: np.ndarray,
        n_beams: int,
        pool=None,
    ) -> np.ndarray:
        take = pool.take if pool is not None else (
            lambda key, shape, dtype=np.float64: np.empty(shape, dtype=dtype)
        )
        meas_bins = sensor_model._to_bins(measured)
        rep_bins = sensor_model._to_bins(rep_ranges)
        n_particles = inv.shape[0] // n_beams

        exp_bins = take("fused.exp_bins", (n_particles, n_beams), np.int64)
        np.take(rep_bins, inv, out=exp_bins.reshape(-1))
        idx = take("fused.table_idx", (n_particles, n_beams), np.int64)
        np.multiply(exp_bins, sensor_model._n_bins, out=idx)
        idx += meas_bins[None, :]
        log_p = take("fused.log_p", (n_particles, n_beams), np.float32)
        np.take(sensor_model._flat_table, idx, out=log_p)
        return log_p.sum(axis=1) / sensor_model.config.squash_factor


class NumbaPFUpdateKernel(NumpyPFUpdateKernel):
    """Numba fused gather: one prange loop over particles.

    Accumulates in float64 like the staged numba sensor kernel (scores
    agree with NumPy to ~1e-5 relative, inside the resampling noise
    floor); the packing/unique stages stay NumPy — they are integer sort
    work numba has no edge on.
    """

    backend = "numba"

    def gather_log_likelihood(
        self, sensor_model, rep_ranges, inv, measured, n_beams, pool=None
    ):
        kernels = get_numba_kernels()
        meas_bins = sensor_model._to_bins(measured)
        rep_bins = sensor_model._to_bins(rep_ranges)
        return kernels.fused_sensor_log_likelihood(
            rep_bins,
            np.ascontiguousarray(inv),
            meas_bins,
            sensor_model._log_table,
            n_beams,
            sensor_model.config.squash_factor,
        )


PF_UPDATE_KERNELS = {
    "numpy": NumpyPFUpdateKernel(),
    "numba": NumbaPFUpdateKernel(),
}


def get_pf_update_kernel(backend: str = "auto"):
    """The fused-update kernel for ``backend``, via ``resolve_backend``."""
    return PF_UPDATE_KERNELS[resolve_backend(backend, warn=False)]
