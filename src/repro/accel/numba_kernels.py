"""Fused per-ray numba kernels for the raycast / sensor-model hot path.

Importing this module requires numba — callers must go through
:func:`repro.accel.backends.get_numba_kernels`, which only imports it
after :func:`~repro.accel.backends.resolve_backend` selected ``"numba"``.

Design notes
------------
Each kernel is the *per-ray scalarisation* of the corresponding lock-step
NumPy batch loop (``raycast/ray_marching.py``, ``raycast/bresenham.py``,
``core/sensor_models.py``): identical arithmetic in identical order, just
executed one ray at a time inside ``prange`` instead of via masked-array
churn (``flatnonzero`` + fancy indexing every iteration).  Because the
per-ray float64 operations mirror the NumPy elementwise sequence and no
``fastmath`` reassociation is enabled, the ray kernels produce results
bit-identical to the reference on IEEE-conformant hardware; the
differential suite still gates them with a tight ``p99`` envelope rather
than assuming it.

The sensor kernel fuses binning + table gather + per-particle reduction.
Its reduction accumulates in float64 (NumPy uses pairwise float32
summation), so scores agree to ~1e-5 relative rather than bitwise — well
inside the resampling noise floor.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

__all__ = [
    "ray_march_ranges",
    "bresenham_ranges",
    "sensor_log_likelihood",
    "fused_sensor_log_likelihood",
]


@njit(parallel=True, cache=True, nogil=True)
def ray_march_ranges(
    qx,
    qy,
    qt,
    field,
    origin_x,
    origin_y,
    resolution,
    epsilon,
    min_step,
    margin,
    max_range,
    max_iters,
):
    """Per-ray sphere tracing over the (float64) Euclidean distance field.

    Mirrors ``RayMarching.calc_ranges``: floor cell lookup, off-map →
    ``max_range``, clearance < epsilon → ``travelled + clearance`` (clamped),
    step = ``max(clearance - margin, min_step)``, budget exhaustion →
    ``max_range``.
    """
    n = qx.shape[0]
    height, width = field.shape
    out = np.empty(n, dtype=np.float64)
    for i in prange(n):
        px = qx[i]
        py = qy[i]
        cos_t = np.cos(qt[i])
        sin_t = np.sin(qt[i])
        travelled = 0.0
        r = max_range
        for _ in range(max_iters):
            ix = int(np.floor((px - origin_x) / resolution))
            iy = int(np.floor((py - origin_y) / resolution))
            if ix < 0 or ix >= width or iy < 0 or iy >= height:
                break  # left the map: no obstacle → max_range
            clearance = field[iy, ix]
            if clearance < epsilon:
                hit = travelled + clearance
                r = hit if hit < max_range else max_range
                break
            step = clearance - margin
            if step < min_step:
                step = min_step
            px += step * cos_t
            py += step * sin_t
            travelled += step
            if travelled >= max_range:
                break  # ran out of range: no obstacle → max_range
        out[i] = r
    return out


@njit(parallel=True, cache=True, nogil=True)
def bresenham_ranges(
    qx,
    qy,
    qt,
    occ,
    origin_x,
    origin_y,
    resolution,
    max_range,
    max_iters,
):
    """Per-ray Amanatides–Woo exact traversal over the occupancy mask.

    Mirrors ``BresenhamRayCast.calc_ranges``: start off-map → ``max_range``,
    start occupied → 0, advance one cell per step, escape (off-map or
    ``t_entry`` beyond max range) → ``max_range``, hit → ``t_entry * res``.
    """
    n = qx.shape[0]
    height, width = occ.shape
    max_range_cells = max_range / resolution
    out = np.empty(n, dtype=np.float64)
    for i in prange(n):
        ox = (qx[i] - origin_x) / resolution
        oy = (qy[i] - origin_y) / resolution
        dx = np.cos(qt[i])
        dy = np.sin(qt[i])
        ix = int(np.floor(ox))
        iy = int(np.floor(oy))

        if ix < 0 or ix >= width or iy < 0 or iy >= height:
            out[i] = max_range
            continue
        if occ[iy, ix]:
            out[i] = 0.0
            continue

        step_x = 1 if dx >= 0 else -1
        step_y = 1 if dy >= 0 else -1
        inv_dx = 1.0 / dx if dx != 0.0 else np.inf
        inv_dy = 1.0 / dy if dy != 0.0 else np.inf
        next_x = ix + 1.0 if step_x > 0 else ix * 1.0
        next_y = iy + 1.0 if step_y > 0 else iy * 1.0
        t_max_x = abs((next_x - ox) * inv_dx)
        t_max_y = abs((next_y - oy) * inv_dy)
        t_delta_x = abs(inv_dx)
        t_delta_y = abs(inv_dy)

        r = max_range
        for _ in range(max_iters):
            # NaN t_max (degenerate axis start) compares False, matching
            # the NumPy `t_max_x < t_max_y` mask semantics.
            if t_max_x < t_max_y:
                t_entry = t_max_x
                ix += step_x
                t_max_x += t_delta_x
            else:
                t_entry = t_max_y
                iy += step_y
                t_max_y += t_delta_y
            if (
                ix < 0
                or ix >= width
                or iy < 0
                or iy >= height
                or t_entry > max_range_cells
            ):
                break  # escaped: no obstacle → max_range
            if occ[iy, ix]:
                hit = t_entry * resolution
                r = hit if hit < max_range else max_range
                break
        out[i] = r
    return out


@njit(parallel=True, cache=True, nogil=True)
def sensor_log_likelihood(
    expected,
    meas_bins,
    log_table,
    inv_resolution,
    n_bins,
    squash_factor,
):
    """Fused bin + gather + reduce for ``BeamSensorModel.log_likelihood``.

    ``expected`` is the ``(P, B)`` raycast output; ``meas_bins`` the
    pre-binned ``(B,)`` measured scan.  Binning matches ``_to_bins``:
    ``rint`` (round-half-even, as ``np.round``) then clip to the table.
    """
    n_particles, n_beams = expected.shape
    out = np.empty(n_particles, dtype=np.float64)
    top = n_bins - 1
    for p in prange(n_particles):
        acc = 0.0
        for b in range(n_beams):
            eb = int(np.rint(expected[p, b] * inv_resolution))
            if eb < 0:
                eb = 0
            elif eb > top:
                eb = top
            acc += log_table[eb, meas_bins[b]]
        out[p] = acc / squash_factor
    return out


@njit(parallel=True, cache=True, nogil=True)
def fused_sensor_log_likelihood(
    rep_bins,
    inv,
    meas_bins,
    log_table,
    n_beams,
    squash_factor,
):
    """Fused-pipeline gather: representative bins -> per-particle score.

    ``rep_bins`` are the pre-binned ranges of the ``U`` unique dedup
    representatives; ``inv`` the ``(P*B,)`` scatter map from
    ``repro.accel.fused.cast_packed`` (C-order: query ``i`` belongs to
    particle ``i // n_beams``, beam ``i % n_beams``).  Equivalent to
    gathering the full ``(P, B)`` expected-range matrix and calling
    ``sensor_log_likelihood``, without materialising it.  Accumulates in
    float64, same caveat as ``sensor_log_likelihood``.
    """
    n_particles = inv.shape[0] // n_beams
    out = np.empty(n_particles, dtype=np.float64)
    for p in prange(n_particles):
        acc = 0.0
        base = p * n_beams
        for b in range(n_beams):
            acc += log_table[rep_bins[inv[base + b]], meas_bins[b]]
        out[p] = acc / squash_factor
    return out
