"""Compute-backend registry: ``numpy`` reference vs ``numba`` JIT kernels.

The hot path of map-based MCL — ray casting × sensor-model scoring — has
two interchangeable implementations in this package:

* ``numpy`` — the vectorised lock-step batch loops the repository has
  always shipped.  Always available; the *reference* every other backend
  is differential-tested against (``repro verify --suite differential``).
* ``numba`` — fused per-ray JIT kernels (:mod:`repro.accel.numba_kernels`)
  that execute the same arithmetic ray-at-a-time, parallelised with
  ``prange``.  Selected automatically when numba is importable.

Selection is *graceful*: ``"auto"`` resolves to the fastest available
backend, and explicitly requesting ``"numba"`` on a machine without it
falls back to ``"numpy"`` with a warning instead of raising — importing
``repro`` must never fail because an optional accelerator is missing.
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

__all__ = [
    "KNOWN_BACKENDS",
    "numba_available",
    "available_backends",
    "resolve_backend",
    "get_numba_kernels",
]

KNOWN_BACKENDS: Tuple[str, ...] = ("numpy", "numba")

# Tri-state probe cache: None = not probed yet, True/False = probe result.
# Tests monkeypatch this to simulate a numba-less interpreter.
_NUMBA_PROBE: Optional[bool] = None

# Lazily imported kernel module (kept out of import time: numba compiles
# nothing until a kernel is first called, but even importing it costs
# hundreds of milliseconds).
_KERNELS = None


def numba_available() -> bool:
    """True when the numba JIT backend can be imported on this machine."""
    global _NUMBA_PROBE
    if _NUMBA_PROBE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_PROBE = True
        except Exception:  # pragma: no cover - exercised via monkeypatch
            _NUMBA_PROBE = False
    return _NUMBA_PROBE


def available_backends() -> Tuple[str, ...]:
    """The backends this interpreter can actually run, reference first."""
    if numba_available():
        return ("numpy", "numba")
    return ("numpy",)


def resolve_backend(name: str = "auto", warn: bool = True) -> str:
    """Map a requested backend name onto one that is available.

    ``"auto"`` picks ``"numba"`` when importable, else ``"numpy"``.  An
    explicit ``"numba"`` request degrades to ``"numpy"`` with a
    ``RuntimeWarning`` when numba is absent — selection is a performance
    choice, never a correctness one, so it must not raise.  Unknown names
    are a configuration error and do raise.
    """
    key = str(name).lower()
    if key == "auto":
        return "numba" if numba_available() else "numpy"
    if key == "numpy":
        return "numpy"
    if key == "numba":
        if numba_available():
            return "numba"
        if warn:
            warnings.warn(
                "accel backend 'numba' requested but numba is not "
                "installed; falling back to the NumPy reference backend",
                RuntimeWarning,
                stacklevel=2,
            )
        return "numpy"
    raise ValueError(
        f"unknown accel backend {name!r}; choose from "
        f"{('auto',) + KNOWN_BACKENDS}"
    )


def get_numba_kernels():
    """Import (once) and return :mod:`repro.accel.numba_kernels`.

    Callers must only reach here after :func:`resolve_backend` returned
    ``"numba"``; a numba-less interpreter raises ``ImportError`` with a
    pointer back at the fallback contract.
    """
    global _KERNELS
    if _KERNELS is None:
        if not numba_available():
            raise ImportError(
                "repro.accel.numba_kernels needs numba; resolve_backend() "
                "should have selected the numpy backend"
            )
        from repro.accel import numba_kernels

        _KERNELS = numba_kernels
    return _KERNELS
