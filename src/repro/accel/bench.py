"""Benchmark harness for the acceleration layer.

Two library-level benchmarks back the committed perf record
(``benchmarks/BENCH_raycast_throughput.json`` / ``BENCH_pf_update.json``)
and the ``repro bench raycast|pf`` CLI:

* :func:`run_raycast_bench` — raw ``calc_ranges_pose_batch`` throughput
  of every backend spec (``ray_marching`` / ``bresenham`` × dedup on/off
  × numpy/numba when available) on a clustered particle-cloud workload,
  the shape the PF hot path actually produces after resampling.
* :func:`run_pf_bench` — end-to-end ``SynPF.update`` latency, reference
  configuration (numpy backend, dedup off) vs accelerated (auto backend,
  dedup on).
* :func:`run_pf_fused_bench` — the fused ``pf_update`` pipeline vs the
  staged one at matched settings (``staged@numpy+dedup`` vs
  ``fused@numpy+dedup``, plus the numba gather when available), backing
  ``benchmarks/BENCH_pf_fused.json`` and ``repro bench pf --fused``.

Both fan (config × repeat) trials through the
:class:`~repro.eval.runner.SweepRunner`, so ``--workers N`` reuses the
fault-tolerant pool; the per-config figure is the **median over repeats**
of each repeat's mean, which suppresses one-off scheduler noise.  Wall
times are machine-dependent, so :func:`check_against_baseline` gates on
*speedup ratios* (accel vs reference on the same machine), which are
portable across hosts, with a tolerance for CI noise.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from statistics import median
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.accel.backends import available_backends, numba_available
from repro.eval.runner import SweepRunner, TrialSpec
from repro.utils.rng import derive_seed

__all__ = [
    "default_raycast_specs",
    "run_raycast_bench",
    "run_pf_bench",
    "default_pf_fused_configs",
    "run_pf_fused_bench",
    "check_against_baseline",
    "environment_info",
]

_BENCH_TRACK_SEED = 4
_BENCH_RESOLUTION = 0.05

# Per-worker-process cache: track construction dominates trial setup, and
# every trial in a sweep uses the same map.
_TRACK_CACHE: Dict = {}


def _bench_track():
    key = (_BENCH_TRACK_SEED, _BENCH_RESOLUTION)
    track = _TRACK_CACHE.get(key)
    if track is None:
        from repro.maps import generate_track

        track = generate_track(
            seed=_BENCH_TRACK_SEED,
            mean_radius=5.0,
            resolution=_BENCH_RESOLUTION,
        )
        _TRACK_CACHE[key] = track
    return track


def _clustered_poses(track, n: int, seed: int) -> np.ndarray:
    """Particle cloud as it looks right after resampling: duplicated parents.

    Low-variance resampling collapses a converged cloud onto ~n/20
    distinct parent poses; the subsequent motion update then jitters each
    copy by one step of odometry noise.  The spreads are calibrated
    against a measured converged SynPF on this track (1000 particles,
    ray_marching): cloud std ~0.01 m position / 0.003 rad heading,
    steady-state dedup hit rate ~98%.  The near-duplicate structure is
    exactly the workload the dedup cache is designed for.
    """
    rng = np.random.default_rng(seed)
    line = track.centerline
    n_parents = max(1, n // 20)
    n_clusters = max(1, n // 250)
    anchors = rng.uniform(0.0, line.total_length, n_clusters)
    parents = np.empty((n_parents, 3))
    for i in range(n_parents):
        s = float(anchors[i % n_clusters])
        pt = line.point_at(s)
        parents[i] = [pt[0], pt[1], line.heading_at(s)]
    parents[:, :2] += rng.normal(0.0, 0.01, (n_parents, 2))
    parents[:, 2] += rng.normal(0.0, 0.003, n_parents)
    poses = parents[rng.integers(0, n_parents, n)]
    poses[:, :2] += rng.normal(0.0, 0.008, (n, 2))
    poses[:, 2] += rng.normal(0.0, 0.0025, n)
    return poses


def environment_info() -> Dict:
    """Host facts stamped into every BENCH JSON.

    Speedup baselines are only comparable when the backend inventory
    matches, so the numba probe result is recorded explicitly.
    """
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba_available": numba_available(),
        "backends": list(available_backends()),
        "cpu_count": os.cpu_count(),
        "platform": sys.platform,
    }


# ----------------------------------------------------------------------
# Raycast throughput
# ----------------------------------------------------------------------
def default_raycast_specs() -> List[str]:
    """Backend specs benchmarked by default, reference first per base."""
    specs = []
    for base in ("ray_marching", "bresenham"):
        specs.append(base)
        specs.append(f"{base}+dedup")
        if numba_available():
            specs.append(f"{base}@numba")
            specs.append(f"{base}@numba+dedup")
    return specs


def run_raycast_bench_trial(spec: TrialSpec) -> Dict:
    """One (backend spec, repeat): mean pose-batch wall time over inner reps."""
    from repro.raycast import make_range_method

    params = spec.params
    track = _bench_track()
    method = make_range_method(params["method_spec"], track.grid)
    poses = _clustered_poses(track, params["particles"], seed=spec.seed)
    angles = np.linspace(-np.pi / 2, np.pi / 2, params["beams"])

    method.calc_ranges_pose_batch(poses[: min(64, len(poses))], angles)  # warmup/JIT
    start = time.perf_counter()
    for _ in range(params["inner_repeats"]):
        out = method.calc_ranges_pose_batch(poses, angles)
    elapsed = time.perf_counter() - start
    return {
        "method_spec": params["method_spec"],
        "mean_batch_s": elapsed / params["inner_repeats"],
        "checksum": float(out.sum()),
    }


def run_raycast_bench(
    particles: int = 1000,
    beams: int = 60,
    repeats: int = 5,
    inner_repeats: int = 3,
    workers: int = 1,
    seed: int = 0,
    method_specs: Optional[Sequence[str]] = None,
) -> Dict:
    """Benchmark ``calc_ranges_pose_batch`` across backend specs.

    Returns a JSON-ready dict: per-spec ``ms_per_batch`` /
    ``queries_per_s`` (median over ``repeats``), plus ``speedups`` ratios
    vs each spec's pure-numpy, dedup-off reference.
    """
    specs_list = list(method_specs or default_raycast_specs())
    trial_specs = [
        TrialSpec(
            trial_id=f"raycast/{ms}/r{r}",
            seed=derive_seed("bench.raycast", seed, ms, r),
            params={
                "method_spec": ms,
                "particles": particles,
                "beams": beams,
                "inner_repeats": inner_repeats,
            },
        )
        for ms in specs_list
        for r in range(repeats)
    ]
    result = SweepRunner(run_raycast_bench_trial, workers=workers).run(trial_specs)

    by_spec: Dict[str, List[float]] = {ms: [] for ms in specs_list}
    for res in result.results:
        by_spec[res.metrics["method_spec"]].append(res.metrics["mean_batch_s"])

    queries = particles * beams
    configs = {}
    for ms, times in by_spec.items():
        if not times:
            continue
        t = median(times)
        configs[ms] = {
            "ms_per_batch": t * 1e3,
            "queries_per_s": queries / t,
            "repeats_completed": len(times),
        }

    def _base_of(ms: str) -> str:
        return ms.split("@")[0].split("+")[0]

    speedups = {}
    for ms, cfg in configs.items():
        base = _base_of(ms)
        ref = configs.get(base)
        if ms != base and ref is not None:
            speedups[f"{ms}_vs_{base}"] = ref["ms_per_batch"] / cfg["ms_per_batch"]

    return {
        "benchmark": "raycast_throughput",
        "particles": particles,
        "beams": beams,
        "queries_per_batch": queries,
        "repeats": repeats,
        "inner_repeats": inner_repeats,
        "workers": workers,
        "configs": configs,
        "speedups": speedups,
        "environment": environment_info(),
    }


# ----------------------------------------------------------------------
# PF update latency
# ----------------------------------------------------------------------
_PF_CONFIGS = {
    "reference": {"accel_backend": "numpy", "raycast_dedup": False},
    "accel": {"accel_backend": "auto", "raycast_dedup": True},
}


def run_pf_bench_trial(spec: TrialSpec) -> Dict:
    """One (PF config, repeat): mean SynPF update wall time."""
    from repro.core.interfaces import make_localizer
    from repro.core.motion_models import OdometryDelta
    from repro.sim.lidar import LidarConfig, SimulatedLidar

    params = spec.params
    track = _bench_track()
    lidar = SimulatedLidar(
        track.grid, LidarConfig(range_noise_std=0.0, dropout_prob=0.0), seed=0
    )
    scan = lidar.scan(track.centerline.start_pose())
    localizer = make_localizer(
        "synpf",
        track.grid,
        num_particles=params["particles"],
        num_beams=params["beams"],
        range_method="ray_marching",
        seed=spec.seed,
        **params["config"],
    )
    localizer.initialize(track.centerline.start_pose())
    delta = OdometryDelta(0.02, 0.0, 0.0, 0.8, 0.025)
    for _ in range(params["warmup"]):
        localizer.update(delta, scan)
    start = time.perf_counter()
    for _ in range(params["updates"]):
        localizer.update(delta, scan)
    elapsed = time.perf_counter() - start
    telemetry = localizer.telemetry()
    return {
        "config": params["config_name"],
        "mean_update_s": elapsed / params["updates"],
        "accel": telemetry.get("accel", {}),
    }


def _run_pf_config_sweep(
    pf_configs: Dict[str, Dict],
    seed_tag: str,
    particles: int,
    beams: int,
    updates: int,
    repeats: int,
    warmup: int,
    workers: int,
    seed: int,
) -> Dict[str, Dict]:
    """Sweep named SynPF config overrides; per-config median summaries."""
    trial_specs = [
        TrialSpec(
            trial_id=f"pf/{name}/r{r}",
            seed=derive_seed(seed_tag, seed, name, r),
            params={
                "config_name": name,
                "config": cfg,
                "particles": particles,
                "beams": beams,
                "updates": updates,
                "warmup": warmup,
            },
        )
        for name, cfg in pf_configs.items()
        for r in range(repeats)
    ]
    result = SweepRunner(run_pf_bench_trial, workers=workers).run(trial_specs)

    by_config: Dict[str, List[float]] = {name: [] for name in pf_configs}
    accel_blocks: Dict[str, Dict] = {}
    for res in result.results:
        name = res.metrics["config"]
        by_config[name].append(res.metrics["mean_update_s"])
        accel_blocks.setdefault(name, res.metrics.get("accel", {}))

    configs = {}
    for name, times in by_config.items():
        if not times:
            continue
        t = median(times)
        configs[name] = {
            "ms_per_update": t * 1e3,
            "updates_per_s": 1.0 / t,
            "repeats_completed": len(times),
            "settings": pf_configs[name],
            "accel_telemetry": accel_blocks.get(name, {}),
        }
    return configs


def run_pf_bench(
    particles: int = 1000,
    beams: int = 60,
    updates: int = 30,
    repeats: int = 5,
    warmup: int = 3,
    workers: int = 1,
    seed: int = 0,
) -> Dict:
    """Benchmark the full SynPF update, reference vs accelerated config."""
    configs = _run_pf_config_sweep(
        _PF_CONFIGS, "bench.pf", particles, beams, updates, repeats,
        warmup, workers, seed,
    )

    speedups = {}
    if "reference" in configs and "accel" in configs:
        speedups["accel_vs_reference"] = (
            configs["reference"]["ms_per_update"] / configs["accel"]["ms_per_update"]
        )

    return {
        "benchmark": "pf_update",
        "particles": particles,
        "beams": beams,
        "updates_per_repeat": updates,
        "repeats": repeats,
        "workers": workers,
        "range_method": "ray_marching",
        "configs": configs,
        "speedups": speedups,
        "environment": environment_info(),
    }


# ----------------------------------------------------------------------
# Fused pf_update pipeline vs staged
# ----------------------------------------------------------------------
def default_pf_fused_configs() -> Dict[str, Dict]:
    """Named ``accel`` specs for the fused-vs-staged comparison.

    The primary pair pins ``numpy`` so the committed
    ``fused_vs_staged`` ratio is comparable across hosts regardless of
    the numba inventory; dedup is on for *both* sides, isolating the
    fusion win (single packed-key unification + representative-space
    sensor gather) from the dedup win already recorded in
    ``BENCH_pf_update.json``.
    """
    configs = {
        "staged": {"accel": "staged@numpy+dedup"},
        "fused": {"accel": "fused@numpy+dedup"},
    }
    if numba_available():
        configs["fused_numba"] = {"accel": "fused@numba+dedup"}
    return configs


def run_pf_fused_bench(
    particles: int = 1000,
    beams: int = 60,
    updates: int = 30,
    repeats: int = 5,
    warmup: int = 3,
    workers: int = 1,
    seed: int = 0,
    smoke: bool = False,
) -> Dict:
    """Benchmark the fused ``pf_update`` pipeline against the staged one.

    Same workload as :func:`run_pf_bench` (converged cloud on the bench
    track, ``ray_marching``); the two pipelines are bit-identical, so
    this measures pure execution cost.  ``smoke=True`` shrinks the run
    for CI wall-clock while keeping the same configs, so
    ``check_against_baseline`` can still gate the (noisier) ratios
    against the committed full-profile baseline.
    """
    if smoke:
        updates, repeats, warmup = 10, 2, 2
    pf_configs = default_pf_fused_configs()
    configs = _run_pf_config_sweep(
        pf_configs, "bench.pf_fused", particles, beams, updates, repeats,
        warmup, workers, seed,
    )

    speedups = {}
    staged = configs.get("staged")
    for name in ("fused", "fused_numba"):
        if staged is not None and name in configs:
            speedups[f"{name}_vs_staged"] = (
                staged["ms_per_update"] / configs[name]["ms_per_update"]
            )

    return {
        "benchmark": "pf_fused",
        "particles": particles,
        "beams": beams,
        "updates_per_repeat": updates,
        "repeats": repeats,
        "workers": workers,
        "smoke": smoke,
        "range_method": "ray_marching",
        "configs": configs,
        "speedups": speedups,
        "environment": environment_info(),
    }


# ----------------------------------------------------------------------
# Regression gating
# ----------------------------------------------------------------------
def check_against_baseline(
    result: Dict, baseline: Dict, tolerance: float = 0.25
) -> List[str]:
    """Compare measured speedup ratios against a committed baseline.

    Absolute wall times vary by host, but a speedup *ratio* (two configs
    on the same machine in the same run) is portable, so the gate is:
    every speedup key present in **both** dicts must satisfy ``measured >=
    baseline * (1 - tolerance)``.  Keys only one side has (e.g. numba
    variants on a machine without numba) are skipped.  Returns a list of
    human-readable failure strings; empty means the gate passes.
    """
    failures = []
    base_speedups = baseline.get("speedups", {})
    meas_speedups = result.get("speedups", {})
    base_env = baseline.get("environment", {})
    meas_env = result.get("environment", {})
    if bool(base_env.get("numba_available")) != bool(meas_env.get("numba_available")):
        # Inventory mismatch: only ratios both environments can produce
        # are comparable, which the shared-keys rule below already handles.
        pass
    for key, base_value in sorted(base_speedups.items()):
        if base_value is None or key not in meas_speedups:
            continue
        measured = meas_speedups[key]
        if measured is None:
            continue
        floor = float(base_value) * (1.0 - tolerance)
        if float(measured) < floor:
            failures.append(
                f"{key}: measured {float(measured):.3f}x < floor {floor:.3f}x "
                f"(baseline {float(base_value):.3f}x - {tolerance:.0%})"
            )
    return failures
