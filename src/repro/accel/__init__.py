"""Acceleration layer: compute backends, query dedup, and benchmarks.

``repro.accel`` makes the localization hot path (`calc_ranges_pose_batch`
× `BeamSensorModel.log_likelihood`) faster without changing its contract:

* :mod:`repro.accel.backends` — the ``numpy``/``numba`` backend registry
  with graceful fallback when numba is absent;
* :mod:`repro.accel.dedup` — :class:`DedupRangeMethod`, pose-quantized
  within-batch query deduplication for clustered particle clouds;
* :mod:`repro.accel.fused` — the fused ``pf_update`` kernel pipeline
  (packed-key dedup + single representative cast + likelihood gather),
  bitwise identical to the staged path and registered per backend;
* :mod:`repro.accel.spec` — :func:`parse_accel_spec`, the unified
  ``[mode][@backend][+dedup]`` grammar behind the config's ``accel``
  field;
* :mod:`repro.accel.bench` — the harness behind ``repro bench`` and the
  committed ``benchmarks/BENCH_*.json`` perf record.

Every accelerated path is gated by the differential oracle
(``repro verify --suite differential``); see ``docs/performance.md``.
"""

from repro.accel.backends import (
    KNOWN_BACKENDS,
    available_backends,
    numba_available,
    resolve_backend,
)
from repro.accel.dedup import DedupRangeMethod
from repro.accel.fused import (
    PF_UPDATE_KERNELS,
    cast_packed,
    fused_update_supported,
    get_pf_update_kernel,
    pack_query_keys,
)
from repro.accel.spec import AccelSpec, parse_accel_spec

__all__ = [
    "KNOWN_BACKENDS",
    "AccelSpec",
    "available_backends",
    "numba_available",
    "resolve_backend",
    "DedupRangeMethod",
    "PF_UPDATE_KERNELS",
    "cast_packed",
    "fused_update_supported",
    "get_pf_update_kernel",
    "pack_query_keys",
    "parse_accel_spec",
]
