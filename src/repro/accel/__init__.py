"""Acceleration layer: compute backends, query dedup, and benchmarks.

``repro.accel`` makes the localization hot path (`calc_ranges_pose_batch`
× `BeamSensorModel.log_likelihood`) faster without changing its contract:

* :mod:`repro.accel.backends` — the ``numpy``/``numba`` backend registry
  with graceful fallback when numba is absent;
* :mod:`repro.accel.dedup` — :class:`DedupRangeMethod`, pose-quantized
  within-batch query deduplication for clustered particle clouds;
* :mod:`repro.accel.bench` — the harness behind ``repro bench`` and the
  committed ``benchmarks/BENCH_*.json`` perf record.

Every accelerated path is gated by the differential oracle
(``repro verify --suite differential``); see ``docs/performance.md``.
"""

from repro.accel.backends import (
    KNOWN_BACKENDS,
    available_backends,
    numba_available,
    resolve_backend,
)
from repro.accel.dedup import DedupRangeMethod

__all__ = [
    "KNOWN_BACKENDS",
    "available_backends",
    "numba_available",
    "resolve_backend",
    "DedupRangeMethod",
]
