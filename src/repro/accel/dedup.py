"""Pose-quantized query deduplication for raycast batches.

After resampling, a particle cloud is heavily clustered: many particles
occupy the same map cell with near-identical headings, so the P×B query
batch sent to ``calc_ranges_pose_batch`` contains large groups of queries
whose exact ranges are indistinguishable at map resolution.
:class:`DedupRangeMethod` exploits this: it snaps every query to a
``(x-bin, y-bin, theta-bin)`` key, casts **one representative ray per
unique key** (at the bin centre), and scatters the result back to all
queries in the bin.

The representative is the *bin centre*, not "the first query seen in the
bin": bin centres are a pure function of the key, so results are
deterministic and independent of query order (and therefore of worker
count and particle permutation), and the substitution error is bounded by
half a bin in each quantized coordinate — the envelope the differential
suite gates (``docs/performance.md``).

There is no cross-call memoisation, hence nothing to invalidate: each
``calc_ranges`` call deduplicates within its own batch only, and the map
is immutable for the lifetime of the method.
"""

from __future__ import annotations

import numpy as np

from repro.raycast.base import RangeMethod

__all__ = ["DedupRangeMethod"]

_TWO_PI = 2.0 * np.pi


class DedupRangeMethod(RangeMethod):
    """Wrap any :class:`RangeMethod` with within-batch query dedup.

    Parameters
    ----------
    inner:
        The method that actually casts the representative rays.
    xy_bin_cells:
        Position quantization in *map cells* (default 1.0: queries in the
        same cell share a cast).  Finer bins (< 1) trade hit-rate for
        accuracy.
    theta_bins:
        Heading bins over ``[0, 2*pi)``.  The default 2048 (≈ 0.18° per
        bin) is divisible by 4, so exact quarter-turn rotations map bins
        onto bins and the metamorphic rotation-equivariance suite is
        preserved exactly.
    registry:
        Optional :class:`repro.telemetry.MetricsRegistry`; when given,
        every batch updates ``accel.dedup.queries_total`` /
        ``accel.dedup.queries_cast`` counters and the
        ``accel.dedup.hit_rate`` gauge.
    """

    def __init__(
        self,
        inner: RangeMethod,
        xy_bin_cells: float = 1.0,
        theta_bins: int = 2048,
        registry=None,
    ) -> None:
        super().__init__(inner.grid, max_range=inner.max_range)
        if xy_bin_cells <= 0:
            raise ValueError("xy_bin_cells must be positive")
        if int(theta_bins) < 1:
            raise ValueError("theta_bins must be >= 1")
        self.inner = inner
        self.xy_bin_cells = float(xy_bin_cells)
        self.theta_bins = int(theta_bins)
        self._bin_size = self.grid.resolution * self.xy_bin_cells
        self._registry = registry
        self.queries_total = 0
        self.queries_cast = 0
        self.last_hit_rate = 0.0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.inner.name}+dedup"

    def memory_bytes(self) -> int:
        return self.inner.memory_bytes()

    def stats(self) -> dict:
        """Cumulative and last-batch dedup effectiveness."""
        total = self.queries_total
        hit = 1.0 - self.queries_cast / total if total else 0.0
        return {
            "queries_total": self.queries_total,
            "queries_cast": self.queries_cast,
            "hit_rate": hit,
            "last_hit_rate": self.last_hit_rate,
        }

    def record_batch(self, total: int, cast: int) -> None:
        """Account one dedup batch executed outside :meth:`calc_ranges`.

        The fused pipeline (:mod:`repro.accel.fused`) computes keys and
        casts representatives itself; it reports the batch here so the
        counters, hit-rate gauge and registry metrics stay comparable
        with the staged path.  Multi-session folds attribute the whole
        batch to the casting wrapper, matching the fleet batcher's
        convention for ``calc_ranges`` folds.
        """
        if total <= 0:
            return
        self.queries_total += int(total)
        self.queries_cast += int(cast)
        self.last_hit_rate = 1.0 - cast / total
        if self._registry is not None:
            self._registry.counter("accel.dedup.queries_total").inc(int(total))
            self._registry.counter("accel.dedup.queries_cast").inc(int(cast))
            self._registry.gauge("accel.dedup.hit_rate").set(self.last_hit_rate)

    # ------------------------------------------------------------------
    def calc_ranges(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        n = queries.shape[0]
        if n == 0:
            return np.zeros(0)

        ox, oy = self.grid.origin[0], self.grid.origin[1]
        kx = np.floor((queries[:, 0] - ox) / self._bin_size).astype(np.int64)
        ky = np.floor((queries[:, 1] - oy) / self._bin_size).astype(np.int64)
        # mod() lands in [0, 2*pi) but float rounding can yield exactly
        # 2*pi for tiny negative angles; clip the bin index instead of
        # wrapping so the representative stays inside the last bin.
        kt = np.floor(
            np.mod(queries[:, 2], _TWO_PI) * (self.theta_bins / _TWO_PI)
        ).astype(np.int64)
        np.clip(kt, 0, self.theta_bins - 1, out=kt)

        # Sort keys lexicographically, mark group starts, build the
        # scatter map: inv[i] = index of query i's group among uniques.
        order = np.lexsort((kt, ky, kx))
        skx, sky, skt = kx[order], ky[order], kt[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        new_group[1:] = (
            (skx[1:] != skx[:-1]) | (sky[1:] != sky[:-1]) | (skt[1:] != skt[:-1])
        )
        group_of_sorted = np.cumsum(new_group) - 1
        inv = np.empty(n, dtype=np.int64)
        inv[order] = group_of_sorted
        starts = order[new_group]
        n_unique = int(group_of_sorted[-1]) + 1

        # One representative per unique key, at the bin centre.
        rep = np.empty((n_unique, 3))
        rep[:, 0] = ox + (kx[starts] + 0.5) * self._bin_size
        rep[:, 1] = oy + (ky[starts] + 0.5) * self._bin_size
        rep[:, 2] = (kt[starts] + 0.5) * (_TWO_PI / self.theta_bins)

        out = self.inner.calc_ranges(rep)[inv]

        self.queries_total += n
        self.queries_cast += n_unique
        self.last_hit_rate = 1.0 - n_unique / n
        if self._registry is not None:
            self._registry.counter("accel.dedup.queries_total").inc(n)
            self._registry.counter("accel.dedup.queries_cast").inc(n_unique)
            self._registry.gauge("accel.dedup.hit_rate").set(self.last_hit_rate)
        return out
