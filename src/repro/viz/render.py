"""High-level renderers: occupancy grids with localization overlays.

``render_map_svg`` is the workhorse: grid as a raster layer, then any
combination of raceline, trajectories, particle cloud, scan points and
obstacles on top.  ``render_experiment_svg`` packages the typical
debugging view (ground truth vs estimate vs cloud) in one call;
``ascii_map`` prints a terminal thumbnail.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.maps.occupancy_grid import FREE, OCCUPIED, OccupancyGrid
from repro.utils.geometry import transform_points
from repro.viz.svg import SvgCanvas

__all__ = ["render_map_svg", "render_experiment_svg", "ascii_map"]

# Grayscale levels for the three cell states (map_server-like).
_PIXEL_FREE = 255
_PIXEL_UNKNOWN = 205
_PIXEL_OCCUPIED = 30


def _grid_pixels(grid: OccupancyGrid) -> np.ndarray:
    pixels = np.full(grid.data.shape, _PIXEL_UNKNOWN, dtype=np.uint8)
    pixels[grid.data == FREE] = _PIXEL_FREE
    pixels[grid.data == OCCUPIED] = _PIXEL_OCCUPIED
    return pixels


def render_map_svg(
    grid: OccupancyGrid,
    width_px: int = 800,
    raceline: Optional[np.ndarray] = None,
    trajectories: Optional[Dict[str, np.ndarray]] = None,
    particles: Optional[np.ndarray] = None,
    pose: Optional[np.ndarray] = None,
    scan_points_world: Optional[np.ndarray] = None,
    obstacles: Optional[Iterable] = None,
    obstacle_time: float = 0.0,
    title: str = "",
) -> SvgCanvas:
    """Render a grid with overlays; returns the canvas (call ``.save()``).

    Parameters
    ----------
    raceline:
        ``(N, 2)`` closed line drawn dashed.
    trajectories:
        ``{label: (N, >=2) array}`` — drawn in a rotating palette with a
        legend; extra columns (heading) are ignored.
    particles:
        ``(N, 2..3)`` cloud drawn as translucent dots.
    pose:
        ``(3,)`` highlighted pose with a heading arrow.
    scan_points_world:
        ``(N, 2)`` scan endpoints (already in world frame).
    obstacles:
        :class:`~repro.sim.obstacles.Obstacle` instances, drawn at
        ``obstacle_time``.
    """
    w_m, h_m = grid.size_m
    margin = 0.4
    canvas = SvgCanvas(
        (grid.origin[0] - margin, grid.origin[1] - margin),
        (grid.origin[0] + w_m + margin, grid.origin[1] + h_m + margin),
        width_px=width_px,
    )
    canvas.image_grayscale(
        _grid_pixels(grid),
        grid.origin,
        (grid.origin[0] + w_m, grid.origin[1] + h_m),
    )

    if raceline is not None:
        canvas.polyline(np.asarray(raceline)[:, :2], stroke="#888",
                        width_m=0.03, dashed=True, closed=True)

    palette = ["#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00"]
    if trajectories:
        for k, (label, traj) in enumerate(trajectories.items()):
            colour = palette[k % len(palette)]
            canvas.polyline(np.asarray(traj)[:, :2], stroke=colour,
                            width_m=0.05)
            canvas.text(
                (canvas.x0 + 0.5, canvas.y1 - 0.4 - 0.45 * k),
                label, fill=colour,
            )

    if particles is not None and len(particles):
        canvas.circles(np.asarray(particles)[:, :2], radius_m=0.025,
                       fill="#9400d3", opacity=0.25)

    if scan_points_world is not None and len(scan_points_world):
        canvas.circles(np.asarray(scan_points_world), radius_m=0.02,
                       fill="#e41a1c", opacity=0.8)

    if obstacles:
        for obstacle in obstacles:
            canvas.circle(obstacle.position(obstacle_time), obstacle.radius,
                          fill="#ff7f00", opacity=0.7)

    if pose is not None:
        canvas.arrow(np.asarray(pose), stroke="#d00")

    if title:
        canvas.text((canvas.x0 + 0.5, canvas.y0 + 0.55), title, size_px=18)
    return canvas


def render_experiment_svg(
    grid: OccupancyGrid,
    gt_trajectory: np.ndarray,
    est_trajectory: np.ndarray,
    raceline: Optional[np.ndarray] = None,
    particles: Optional[np.ndarray] = None,
    scan=None,
    estimated_pose: Optional[np.ndarray] = None,
    title: str = "",
    width_px: int = 900,
) -> SvgCanvas:
    """The standard debugging view: truth vs estimate (+ cloud + scan)."""
    scan_world = None
    if scan is not None and estimated_pose is not None:
        points = scan.points_in_sensor_frame(
            max_range=float(np.max(scan.ranges))
        )
        scan_world = transform_points(np.asarray(estimated_pose), points)
    return render_map_svg(
        grid,
        width_px=width_px,
        raceline=raceline,
        trajectories={
            "ground truth": np.asarray(gt_trajectory),
            "estimate": np.asarray(est_trajectory),
        },
        particles=particles,
        pose=estimated_pose,
        scan_points_world=scan_world,
        title=title,
    )


def ascii_map(
    grid: OccupancyGrid,
    width: int = 72,
    overlays: Optional[Sequence[Tuple[np.ndarray, str]]] = None,
) -> str:
    """A terminal thumbnail of the grid.

    ``overlays``: sequence of ``(points (N, 2), character)`` drawn on top
    (later entries win).  Occupied cells render ``#``, unknown ``.``, free
    space blank.
    """
    if width < 4:
        raise ValueError("width must be >= 4")
    w_m, h_m = grid.size_m
    # Terminal glyphs are ~2x taller than wide; compensate.
    height = max(int(round(width * (h_m / w_m) * 0.5)), 2)
    sx = w_m / width
    sy = h_m / height

    canvas = [[" "] * width for _ in range(height)]
    # Downsample the grid by block max (occupied dominates, then unknown).
    for row in range(height):
        for col in range(width):
            y0 = int(row * sy / grid.resolution)
            y1 = max(int((row + 1) * sy / grid.resolution), y0 + 1)
            x0 = int(col * sx / grid.resolution)
            x1 = max(int((col + 1) * sx / grid.resolution), x0 + 1)
            block = grid.data[y0:y1, x0:x1]
            if (block == OCCUPIED).any():
                canvas[row][col] = "#"
            elif (block == -1).all():
                canvas[row][col] = "."

    for points, char in overlays or ():
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        cols = ((pts[:, 0] - grid.origin[0]) / sx).astype(int)
        rows = ((pts[:, 1] - grid.origin[1]) / sy).astype(int)
        ok = (cols >= 0) & (cols < width) & (rows >= 0) & (rows < height)
        for c, r in zip(cols[ok], rows[ok]):
            canvas[r][c] = char[0]

    # Row 0 is the world's bottom — print top-down.
    return "\n".join("".join(row) for row in reversed(canvas))
