"""Dependency-free visualisation: SVG and terminal rendering.

Debugging a localizer is a visual activity — is the cloud on the track?
did the match latch onto the wrong wall? — but this repository must run
with NumPy/SciPy only.  This subpackage therefore renders straight to SVG
(every browser is a viewer) and to ASCII (every terminal is one):

* :class:`~repro.viz.svg.SvgCanvas` — minimal SVG writer with world-to-
  pixel transform handling;
* :func:`~repro.viz.render.render_map_svg` — occupancy grid + optional
  overlays (trajectories, particle clouds, racelines, scans, obstacles);
* :func:`~repro.viz.render.ascii_map` — terminal-sized grid thumbnails.
"""

from repro.viz.render import (
    ascii_map,
    render_experiment_svg,
    render_map_svg,
)
from repro.viz.svg import SvgCanvas

__all__ = [
    "SvgCanvas",
    "ascii_map",
    "render_experiment_svg",
    "render_map_svg",
]
