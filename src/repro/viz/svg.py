"""A minimal SVG writer with a world-coordinate viewport.

Implements only the primitives the renderers need — rect, circle,
polyline, path, text, raster image — with all geometry given in *world*
metres; the canvas owns the world→pixel transform (SVG's y axis points
down, maps' points up, so y is flipped here once and nowhere else).
"""

from __future__ import annotations

import base64
import zlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SvgCanvas"]


def _fmt(value: float) -> str:
    """Compact numeric formatting (SVG files get large fast)."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


class SvgCanvas:
    """An SVG document mapping a world-rectangle onto a pixel canvas.

    Parameters
    ----------
    world_min, world_max:
        Corners of the world region to show, metres.
    width_px:
        Pixel width; height follows from the world aspect ratio.
    background:
        CSS colour of the page background.
    """

    def __init__(
        self,
        world_min: Tuple[float, float],
        world_max: Tuple[float, float],
        width_px: int = 800,
        background: str = "#ffffff",
    ) -> None:
        self.x0, self.y0 = float(world_min[0]), float(world_min[1])
        self.x1, self.y1 = float(world_max[0]), float(world_max[1])
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError("world_max must exceed world_min on both axes")
        self.width_px = int(width_px)
        self.scale = self.width_px / (self.x1 - self.x0)
        self.height_px = int(round((self.y1 - self.y0) * self.scale))
        self._elements: List[str] = [
            f'<rect x="0" y="0" width="{self.width_px}" '
            f'height="{self.height_px}" fill="{background}"/>'
        ]

    # ------------------------------------------------------------------
    def to_px(self, xy: np.ndarray) -> np.ndarray:
        """World ``(N, 2)`` → pixel coordinates (y flipped)."""
        xy = np.atleast_2d(np.asarray(xy, dtype=float))
        out = np.empty_like(xy)
        out[:, 0] = (xy[:, 0] - self.x0) * self.scale
        out[:, 1] = (self.y1 - xy[:, 1]) * self.scale
        return out

    def len_to_px(self, metres: float) -> float:
        return metres * self.scale

    # ------------------------------------------------------------------
    def circle(self, center, radius_m: float, fill: str = "#000",
               opacity: float = 1.0, stroke: str = "none") -> None:
        p = self.to_px(np.asarray(center, dtype=float))[0]
        self._elements.append(
            f'<circle cx="{_fmt(p[0])}" cy="{_fmt(p[1])}" '
            f'r="{_fmt(self.len_to_px(radius_m))}" fill="{fill}" '
            f'fill-opacity="{opacity}" stroke="{stroke}"/>'
        )

    def circles(self, centers: np.ndarray, radius_m: float, fill: str = "#000",
                opacity: float = 1.0) -> None:
        """Batch of identically styled dots (particle clouds)."""
        pts = self.to_px(centers)
        r = _fmt(self.len_to_px(radius_m))
        frags = [
            f'<circle cx="{_fmt(x)}" cy="{_fmt(y)}" r="{r}"/>'
            for x, y in pts
        ]
        self._elements.append(
            f'<g fill="{fill}" fill-opacity="{opacity}">' + "".join(frags)
            + "</g>"
        )

    def polyline(self, points: np.ndarray, stroke: str = "#000",
                 width_m: float = 0.03, opacity: float = 1.0,
                 dashed: bool = False, closed: bool = False) -> None:
        pts = self.to_px(points)
        coords = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in pts)
        dash = ' stroke-dasharray="6,4"' if dashed else ""
        tag = "polygon" if closed else "polyline"
        self._elements.append(
            f'<{tag} points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{_fmt(self.len_to_px(width_m))}" '
            f'stroke-opacity="{opacity}"{dash}/>'
        )

    def arrow(self, pose: np.ndarray, length_m: float = 0.4,
              stroke: str = "#d00", width_m: float = 0.05) -> None:
        """A heading arrow at a pose ``(x, y, theta)``."""
        pose = np.asarray(pose, dtype=float)
        tip = pose[:2] + length_m * np.array([np.cos(pose[2]), np.sin(pose[2])])
        barb = length_m * 0.3
        left = tip + barb * np.array(
            [np.cos(pose[2] + 2.6), np.sin(pose[2] + 2.6)]
        )
        right = tip + barb * np.array(
            [np.cos(pose[2] - 2.6), np.sin(pose[2] - 2.6)]
        )
        self.polyline(np.array([pose[:2], tip]), stroke=stroke, width_m=width_m)
        self.polyline(np.array([left, tip, right]), stroke=stroke,
                      width_m=width_m)

    def text(self, xy, content: str, size_px: int = 14,
             fill: str = "#222", anchor: str = "start") -> None:
        p = self.to_px(np.asarray(xy, dtype=float))[0]
        safe = (content.replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;"))
        self._elements.append(
            f'<text x="{_fmt(p[0])}" y="{_fmt(p[1])}" font-size="{size_px}" '
            f'font-family="sans-serif" fill="{fill}" '
            f'text-anchor="{anchor}">{safe}</text>'
        )

    def image_grayscale(self, pixels: np.ndarray,
                        world_min: Tuple[float, float],
                        world_max: Tuple[float, float],
                        opacity: float = 1.0) -> None:
        """Embed a uint8 grayscale array as an inline PNG raster.

        ``pixels[0, 0]`` is the *bottom-left* world corner (grid
        convention); the PNG encoder flips rows accordingly.
        """
        png = _encode_png_grayscale(np.asarray(pixels, dtype=np.uint8)[::-1])
        b64 = base64.b64encode(png).decode("ascii")
        p0 = self.to_px(np.array(world_min, dtype=float))[0]
        p1 = self.to_px(np.array(world_max, dtype=float))[0]
        x, y = min(p0[0], p1[0]), min(p0[1], p1[1])
        w, h = abs(p1[0] - p0[0]), abs(p1[1] - p0[1])
        self._elements.append(
            f'<image x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(w)}" '
            f'height="{_fmt(h)}" opacity="{opacity}" '
            'image-rendering="pixelated" '
            f'href="data:image/png;base64,{b64}"/>'
        )

    # ------------------------------------------------------------------
    def to_string(self) -> str:
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width_px}" height="{self.height_px}" '
            f'viewBox="0 0 {self.width_px} {self.height_px}">\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_string())


def _encode_png_grayscale(pixels: np.ndarray) -> bytes:
    """Minimal PNG encoder (8-bit grayscale, zlib-compressed scanlines)."""
    if pixels.ndim != 2:
        raise ValueError("expected a 2D grayscale array")
    height, width = pixels.shape

    def chunk(tag: bytes, payload: bytes) -> bytes:
        crc = zlib.crc32(tag + payload) & 0xFFFFFFFF
        return (len(payload).to_bytes(4, "big") + tag + payload
                + crc.to_bytes(4, "big"))

    header = (width.to_bytes(4, "big") + height.to_bytes(4, "big")
              + bytes([8, 0, 0, 0, 0]))  # bit depth 8, grayscale
    raw = b"".join(b"\x00" + pixels[r].tobytes() for r in range(height))
    return (b"\x89PNG\r\n\x1a\n"
            + chunk(b"IHDR", header)
            + chunk(b"IDAT", zlib.compress(raw, 6))
            + chunk(b"IEND", b""))
