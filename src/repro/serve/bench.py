"""Load-test harness behind ``repro bench serve``.

Backs the committed ``benchmarks/BENCH_serve.json``.  Three measurements:

* **setup** — create N sessions on one map, isolated (no artifact
  cache: every session rebuilds its tables, today's behaviour) vs fleet
  (shared :class:`~repro.serve.artifacts.MapArtifactCache`).  The
  build-counter telemetry proves sharing: N fleet sessions trigger
  exactly one artifact build.
* **direct** — synchronous round-robin updates through the
  :class:`~repro.serve.registry.SessionRegistry`; per-update wall times
  land in the ``serve.update.latency_ms`` windowed histogram, and the
  committed p99 figure is the registry's recency-window quantile
  (``update_latency_quantile(0.99)``).
* **batched** — the same workload through the asyncio
  :class:`~repro.serve.server.FleetServer`, where same-map sessions
  fold their raycasts.

Wall times are machine-dependent, so (per the repo's bench convention)
the ``--check`` gate runs on **ratios**.  The gated key is
``artifact_reuse_efficiency`` = isolated setup time / (N × fleet setup
time): ≈ 1.0 when sharing works (every cached lookup costs ~nothing
against a full rebuild), collapsing toward 1/N if sharing silently
breaks — portable across hosts *and* across session counts, so the CI
smoke run can gate against the full committed baseline.  The
batched-vs-direct throughput ratio is recorded for observability but
not gated: it genuinely varies with core count and scheduler noise.
:func:`check_serve_result` additionally enforces the structural
invariant ``fleet artifact builds == 1`` regardless of baseline.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

import numpy as np

from repro.accel.bench import check_against_baseline, environment_info

__all__ = ["run_serve_bench", "check_serve_result"]

_SMOKE = {"sessions": 6, "updates": 8, "particles": 200, "beams": 20}
_FULL = {"sessions": 32, "updates": 25, "particles": 400, "beams": 30}

# lut: the most expensive per-session precompute (the paper's SynPF
# configuration), so artifact sharing is measured where it matters most.
_SETUP_METHOD = "lut"
# ray_marching: dedup auto-on, hence cross-session foldable.
_SERVE_METHOD = "ray_marching"


def _bench_world():
    from repro.accel.bench import _bench_track

    return _bench_track()


def _scan_stream(track, n: int, seed: int):
    """Deterministic (pose, scan) stream along the track centerline."""
    from repro.sim.lidar import LidarConfig, SimulatedLidar

    lidar = SimulatedLidar(
        track.grid,
        LidarConfig(num_beams=181, range_noise_std=0.0, dropout_prob=0.0),
        seed=seed,
    )
    line = track.centerline
    stream = []
    for i in range(n):
        s = (i * 0.05) % line.total_length
        pt = line.point_at(s)
        pose = np.array([pt[0], pt[1], line.heading_at(s)])
        stream.append((pose, lidar.scan(pose)))
    return stream


def run_serve_bench(
    sessions: Optional[int] = None,
    updates: Optional[int] = None,
    particles: Optional[int] = None,
    beams: Optional[int] = None,
    seed: int = 0,
    smoke: bool = False,
) -> Dict:
    """Benchmark the fleet serving layer; returns a JSON-ready dict."""
    from repro.core.interfaces import make_localizer
    from repro.core.motion_models import OdometryDelta
    from repro.serve.registry import SessionRegistry
    from repro.serve.server import FleetServer

    defaults = _SMOKE if smoke else _FULL
    n_sessions = sessions if sessions is not None else defaults["sessions"]
    n_updates = updates if updates is not None else defaults["updates"]
    n_particles = particles if particles is not None else defaults["particles"]
    n_beams = beams if beams is not None else defaults["beams"]

    track = _bench_world()
    grid = track.grid
    start = track.centerline.start_pose()
    stream = _scan_stream(track, n_updates, seed=seed + 1)
    delta = OdometryDelta(0.02, 0.0, 0.0, 0.8, 0.025)

    common = dict(
        num_particles=n_particles,
        num_beams=n_beams,
    )

    # ---- setup: isolated (per-session rebuild) vs shared artifacts ----
    setup_common = dict(common, lut_theta_bins=60)
    t0 = time.perf_counter()
    for i in range(n_sessions):
        make_localizer("synpf", grid, range_method=_SETUP_METHOD,
                       seed=seed + i, **setup_common)
    isolated_setup_s = time.perf_counter() - t0

    setup_registry = SessionRegistry()
    t0 = time.perf_counter()
    for i in range(n_sessions):
        setup_registry.create(grid, range_method=_SETUP_METHOD,
                              seed=seed + i, initial_pose=start,
                              **setup_common)
    fleet_setup_s = time.perf_counter() - t0
    setup_builds = setup_registry.artifact_cache.builds
    setup_hits = setup_registry.artifact_cache.hits

    # ---- direct: synchronous registry serving, p99 from telemetry ----
    registry = SessionRegistry()
    sids = [
        registry.create(grid, range_method=_SERVE_METHOD, seed=seed + i,
                        initial_pose=start, **common).session_id
        for i in range(n_sessions)
    ]
    t0 = time.perf_counter()
    for _, scan in stream:
        for sid in sids:
            registry.update(sid, delta, scan.ranges, scan.angles)
    direct_s = time.perf_counter() - t0
    total_updates = n_sessions * n_updates
    # Recency-window quantiles (exact, nearest-rank) rather than the
    # lifetime histogram's bucket interpolation — the same view the
    # governor watches and serve's p99 reporting commits.
    direct_p99_ms = registry.update_latency_quantile(0.99)
    direct_p50_ms = registry.update_latency_quantile(0.50)

    # ---- batched: same workload through the async microbatcher ----
    async def _run_batched():
        server = FleetServer(batch_window_s=0.0, max_batch=n_sessions)
        bids = []
        for i in range(n_sessions):
            bids.append(await server.create_session(
                grid, range_method=_SERVE_METHOD, seed=seed + i,
                initial_pose=start, **common,
            ))
        t0 = time.perf_counter()
        for _, scan in stream:
            await asyncio.gather(*[
                server.update(sid, delta, scan.ranges, scan.angles)
                for sid in bids
            ])
        elapsed = time.perf_counter() - t0
        await server.close()
        batch_metrics = server.registry.metrics
        return elapsed, batch_metrics.counters()

    batched_s, batched_counters = asyncio.run(_run_batched())

    reuse_efficiency = (
        isolated_setup_s / (n_sessions * fleet_setup_s)
        if fleet_setup_s > 0 else float("inf")
    )
    return {
        "benchmark": "serve_fleet",
        "sessions": n_sessions,
        "updates_per_session": n_updates,
        "particles": n_particles,
        "beams": n_beams,
        "setup_method": _SETUP_METHOD,
        "serve_method": _SERVE_METHOD,
        "smoke": smoke,
        "configs": {
            "setup": {
                "isolated_setup_s": isolated_setup_s,
                "fleet_setup_s": fleet_setup_s,
                "sessions_per_s": n_sessions / fleet_setup_s
                if fleet_setup_s > 0 else float("inf"),
                "artifact_builds": setup_builds,
                "artifact_hits": setup_hits,
            },
            "direct": {
                "updates_per_s": total_updates / direct_s,
                "p50_update_ms": direct_p50_ms,
                "p99_update_ms": direct_p99_ms,
            },
            "batched": {
                "updates_per_s": total_updates / batched_s,
                "folded_updates": batched_counters.get(
                    "serve.batch.folded", 0
                ),
                "batched_vs_direct": direct_s / batched_s,
            },
        },
        "speedups": {
            "artifact_reuse_efficiency": reuse_efficiency,
        },
        "environment": environment_info(),
    }


def check_serve_result(
    result: Dict, baseline: Optional[Dict], tolerance: float = 0.25
) -> List[str]:
    """Gate a serve-bench result: ratio baseline + structural invariants.

    Structural checks hold regardless of host or baseline:

    * the fleet setup must have built its artifacts **once** — the
      build-counter proof of sharing;
    * every remaining session creation must have been a cache hit.
    """
    failures: List[str] = []
    setup = result.get("configs", {}).get("setup", {})
    builds = setup.get("artifact_builds")
    hits = setup.get("artifact_hits")
    n = result.get("sessions", 0)
    if builds != 1:
        failures.append(
            f"artifact sharing broken: {builds} builds for {n} sessions "
            "(expected exactly 1)"
        )
    if hits != n - 1:
        failures.append(
            f"artifact sharing broken: {hits} cache hits for {n} sessions "
            f"(expected {n - 1})"
        )
    if baseline is not None:
        failures.extend(check_against_baseline(result, baseline, tolerance))
    return failures
