"""Cross-session update batching over ``SynPF.update_batch``.

Sessions on the same map at the same instant ask highly overlapping
raycast questions — racing cars share the track, so their particle
clouds occupy the same cells.  The batcher groups requests by fold key
and drives the batch-first core directly:
:meth:`~repro.core.particle_filter.SynPF.update_batch` executes every
grouped session's step with **one fused kernel invocation** — a single
packed-key unification and one representative cast for the whole group
(it previously stitched the ``prepare_update`` / ``complete_update``
seam together here, now deprecated).

Exact equivalence, not approximation
------------------------------------
Folding is only applied to sessions whose range method is a
:class:`~repro.accel.dedup.DedupRangeMethod` sharing the *same inner
method object* (the artifact cache guarantees that on a shared map) and
the same quantization parameters.  Dedup representatives are **bin
centres** — a pure function of the quantized key, independent of which
queries landed in the bin or in what order — so for every query ``q``::

    dedup(A ∪ B)[q] == dedup(A)[q] == dedup(B)[q]

and the folded result is *bit-identical* to what each session's own
solo update would have produced (the fused pipeline itself is bitwise
identical to the staged one; see :mod:`repro.accel.fused`).  Sessions
that do not qualify (table-driven LUT/GLT methods, dedup off, non-PF
localizers) simply run their own update — the batcher never changes
results, only work.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.accel.dedup import DedupRangeMethod
from repro.core.motion_models import OdometryDelta
from repro.serve.session import LocalizationSession

__all__ = ["UpdateRequest", "UpdateBatcher"]


class UpdateRequest:
    """One pending ``(session, delta, scan)`` update."""

    __slots__ = ("session", "delta", "scan_ranges", "beam_angles", "pose")

    def __init__(
        self,
        session: LocalizationSession,
        delta: OdometryDelta,
        scan_ranges: np.ndarray,
        beam_angles: np.ndarray,
    ) -> None:
        self.session = session
        self.delta = delta
        self.scan_ranges = scan_ranges
        self.beam_angles = beam_angles
        self.pose: np.ndarray | None = None  # set by flush()


def _fold_key(session: LocalizationSession) -> Tuple | None:
    """Grouping key for foldable sessions; ``None`` means run solo.

    Two sessions fold together only when their dedup wrappers would map
    every query onto the same representative answered by the same
    caster: same map, same shared inner method object, same bin
    geometry.
    """
    pf = session.pf
    if pf is None:
        return None
    method = pf.range_method
    if not isinstance(method, DedupRangeMethod):
        return None
    return (
        session.map_key,
        id(method.inner),
        method.xy_bin_cells,
        method.theta_bins,
    )


class UpdateBatcher:
    """Execute batches of session updates, folding raycasts where exact.

    Parameters
    ----------
    metrics:
        Optional fleet :class:`~repro.telemetry.registry.MetricsRegistry`;
        flushes record ``serve.batch.requests`` / ``serve.batch.folded``
        counters and the ``serve.batch.fold_size`` histogram.
    """

    def __init__(self, metrics=None) -> None:
        self.metrics = metrics

    # ------------------------------------------------------------------
    def flush(self, requests: Sequence[UpdateRequest]) -> None:
        """Run every request; poses land on ``request.pose``."""
        groups: Dict[Tuple, List[UpdateRequest]] = {}
        solo: List[UpdateRequest] = []
        for req in requests:
            key = _fold_key(req.session)
            if key is None:
                solo.append(req)
            else:
                groups.setdefault(key, []).append(req)

        folded = 0
        for group in groups.values():
            if len(group) >= 2:
                self._flush_folded(group)
                folded += len(group)
            else:
                solo.extend(group)
        for req in solo:
            req.pose = req.session.update(
                req.delta, req.scan_ranges, req.beam_angles
            )

        if self.metrics is not None:
            self.metrics.counter("serve.batch.requests").inc(len(requests))
            self.metrics.counter("serve.batch.folded").inc(folded)
            for group in groups.values():
                if len(group) >= 2:
                    self.metrics.histogram(
                        "serve.batch.fold_size",
                        edges=(1, 2, 4, 8, 16, 32, 64, 128),
                    ).observe(len(group))

    # ------------------------------------------------------------------
    def _flush_folded(self, group: List[UpdateRequest]) -> None:
        """One ``update_batch`` step for a group of same-map dedup sessions."""
        from repro.core.particle_filter import SynPF

        estimates = SynPF.update_batch(
            [req.session.pf for req in group],
            [req.delta for req in group],
            [req.scan_ranges for req in group],
            [req.beam_angles for req in group],
        )
        for req, est in zip(group, estimates):
            req.session.num_updates += 1
            req.pose = est.pose
