"""Cross-session raycast batching: fold same-map updates into one call.

Sessions on the same map at the same instant ask highly overlapping
raycast questions — racing cars share the track, so their particle
clouds occupy the same cells.  The batcher exploits the
``prepare_update`` / ``complete_update`` seam on
:class:`~repro.core.particle_filter.SynPF`: it runs every session's
motion stage, **concatenates** their raycast query arrays, answers them
in a single dedup call, then hands each slice back to its session's
sensor/resample stages.

Exact equivalence, not approximation
------------------------------------
Folding is only applied to sessions whose range method is a
:class:`~repro.accel.dedup.DedupRangeMethod` sharing the *same inner
method object* (the artifact cache guarantees that on a shared map) and
the same quantization parameters.  Dedup representatives are **bin
centres** — a pure function of the quantized key, independent of which
queries landed in the bin or in what order — so for every query ``q``::

    dedup(A ∪ B)[q] == dedup(A)[q] == dedup(B)[q]

and the folded result is *bit-identical* to what each session's own
``calc_ranges_pose_batch`` would have produced.  The flat query arrays
are assembled with the same broadcasting expressions as
:meth:`~repro.raycast.base.RangeMethod.calc_ranges_pose_batch`, so not
even the float association differs.  Sessions that do not qualify
(table-driven LUT/GLT methods, dedup off, non-PF localizers) simply run
their own update — the batcher never changes results, only work.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.accel.dedup import DedupRangeMethod
from repro.core.motion_models import OdometryDelta
from repro.serve.session import LocalizationSession

__all__ = ["UpdateRequest", "UpdateBatcher"]


class UpdateRequest:
    """One pending ``(session, delta, scan)`` update."""

    __slots__ = ("session", "delta", "scan_ranges", "beam_angles", "pose")

    def __init__(
        self,
        session: LocalizationSession,
        delta: OdometryDelta,
        scan_ranges: np.ndarray,
        beam_angles: np.ndarray,
    ) -> None:
        self.session = session
        self.delta = delta
        self.scan_ranges = scan_ranges
        self.beam_angles = beam_angles
        self.pose: np.ndarray | None = None  # set by flush()


def _fold_key(session: LocalizationSession) -> Tuple | None:
    """Grouping key for foldable sessions; ``None`` means run solo.

    Two sessions fold together only when their dedup wrappers would map
    every query onto the same representative answered by the same
    caster: same map, same shared inner method object, same bin
    geometry.
    """
    pf = session.pf
    if pf is None:
        return None
    method = pf.range_method
    if not isinstance(method, DedupRangeMethod):
        return None
    return (
        session.map_key,
        id(method.inner),
        method.xy_bin_cells,
        method.theta_bins,
    )


class UpdateBatcher:
    """Execute batches of session updates, folding raycasts where exact.

    Parameters
    ----------
    metrics:
        Optional fleet :class:`~repro.telemetry.registry.MetricsRegistry`;
        flushes record ``serve.batch.requests`` / ``serve.batch.folded``
        counters and the ``serve.batch.fold_size`` histogram.
    """

    def __init__(self, metrics=None) -> None:
        self.metrics = metrics

    # ------------------------------------------------------------------
    def flush(self, requests: Sequence[UpdateRequest]) -> None:
        """Run every request; poses land on ``request.pose``."""
        groups: Dict[Tuple, List[UpdateRequest]] = {}
        solo: List[UpdateRequest] = []
        for req in requests:
            key = _fold_key(req.session)
            if key is None:
                solo.append(req)
            else:
                groups.setdefault(key, []).append(req)

        folded = 0
        for group in groups.values():
            if len(group) >= 2:
                self._flush_folded(group)
                folded += len(group)
            else:
                solo.extend(group)
        for req in solo:
            req.pose = req.session.update(
                req.delta, req.scan_ranges, req.beam_angles
            )

        if self.metrics is not None:
            self.metrics.counter("serve.batch.requests").inc(len(requests))
            self.metrics.counter("serve.batch.folded").inc(folded)
            for group in groups.values():
                if len(group) >= 2:
                    self.metrics.histogram(
                        "serve.batch.fold_size",
                        edges=(1, 2, 4, 8, 16, 32, 64, 128),
                    ).observe(len(group))

    # ------------------------------------------------------------------
    def _flush_folded(self, group: List[UpdateRequest]) -> None:
        """One shared raycast for a group of same-map dedup sessions."""
        pendings = []
        flats = []
        shapes = []
        for req in group:
            pf = req.session.pf
            pending = pf.prepare_update(
                req.delta, req.scan_ranges, req.beam_angles
            )
            poses, angles = pending.sensor_poses, pending.angles
            n_poses, n_beams = poses.shape[0], angles.size
            # Replicate calc_ranges_pose_batch's buffer fill exactly —
            # same broadcasting, same float association — so the folded
            # queries are bit-identical to the solo path's.
            flat = np.empty((n_poses * n_beams, 3))
            view = flat.reshape(n_poses, n_beams, 3)
            view[:, :, 0] = poses[:, 0, None]
            view[:, :, 1] = poses[:, 1, None]
            view[:, :, 2] = poses[:, 2, None] + angles[None, :]
            pendings.append(pending)
            flats.append(flat)
            shapes.append((n_poses, n_beams))

        # Any member's wrapper answers for the whole group: the fold key
        # pinned the inner method object and the bin geometry, and bin
        # centres make the result a pure per-query function.
        shared_method = group[0].session.pf.range_method
        results = shared_method.calc_ranges(np.concatenate(flats, axis=0))

        offset = 0
        for req, pending, (n_poses, n_beams) in zip(group, pendings, shapes):
            count = n_poses * n_beams
            expected = results[offset:offset + count].reshape(n_poses, n_beams)
            offset += count
            est = req.session.pf.complete_update(pending, expected)
            req.session.num_updates += 1
            req.pose = est.pose
