"""Session lifecycle: create / update / estimate / evict, with TTL.

The :class:`SessionRegistry` is the fleet server's synchronous core —
everything the async front-end (:mod:`repro.serve.server`) does lands
here.  It owns the three shared resources of the serving layer:

* the **artifact cache** (:class:`~repro.serve.artifacts.MapArtifactCache`)
  — map precomputes built once and shared by every session on that map;
* the **fleet metrics registry** — aggregate counters
  (``serve.sessions.*``, ``serve.updates``), the active-session gauge
  and the ``serve.update.latency_ms`` windowed histogram whose recency
  view (:meth:`SessionRegistry.update_latency_quantile`) is the bench's
  p99 figure and the governor's feedback signal, exportable as
  Prometheus text;
* the **clock** — injectable (default ``time.monotonic``) so idle-TTL
  eviction is testable without sleeping.

Eviction is cooperative: :meth:`evict_idle` sweeps sessions whose idle
time exceeds ``idle_ttl_s``.  The async server calls it on every flush;
a plain synchronous host can call it on whatever cadence it likes.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.motion_models import OdometryDelta
from repro.maps.occupancy_grid import OccupancyGrid
from repro.serve.artifacts import MapArtifactCache
from repro.serve.session import LocalizationSession
from repro.telemetry.export import to_prometheus_text
from repro.telemetry.registry import MetricsRegistry

__all__ = ["SessionRegistry"]


class SessionRegistry:
    """Registry of live :class:`LocalizationSession` objects.

    Parameters
    ----------
    idle_ttl_s:
        Sessions idle longer than this are removed by
        :meth:`evict_idle`.  ``None`` disables TTL eviction.
    max_sessions:
        Hard cap on live sessions.  When full, :meth:`create` first
        sweeps expired sessions; if still full it raises
        ``RuntimeError`` — admission control is the caller's policy.
    metrics:
        Fleet :class:`MetricsRegistry`; created internally when omitted.
    artifact_cache:
        Shared map-artifact cache; created internally when omitted
        (wired to the fleet metrics so build/hit counters are visible).
    clock:
        Monotonic-seconds callable, injectable for tests.
    """

    def __init__(
        self,
        idle_ttl_s: Optional[float] = None,
        max_sessions: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        artifact_cache: Optional[MapArtifactCache] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if idle_ttl_s is not None and idle_ttl_s <= 0:
            raise ValueError("idle_ttl_s must be positive (or None)")
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be >= 1 (or None)")
        self.idle_ttl_s = idle_ttl_s
        self.max_sessions = max_sessions
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.artifact_cache = (
            artifact_cache
            if artifact_cache is not None
            else MapArtifactCache(registry=self.metrics)
        )
        self.clock = clock
        self._sessions: Dict[str, LocalizationSession] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(
        self,
        grid: OccupancyGrid,
        method: str = "synpf",
        session_id: Optional[str] = None,
        initial_pose: Optional[np.ndarray] = None,
        **overrides,
    ) -> LocalizationSession:
        """Admit a new session; returns it (id on ``.session_id``)."""
        if session_id is not None and session_id in self._sessions:
            raise ValueError(f"session id {session_id!r} already exists")
        if (
            self.max_sessions is not None
            and len(self._sessions) >= self.max_sessions
        ):
            # Same TTL sweep as the periodic one, but attributed to the
            # admission path: a "capacity" eviction means a new tenant
            # displaced an expired one, an "idle" eviction is pure TTL.
            self.evict_idle(reason="capacity")
            if len(self._sessions) >= self.max_sessions:
                raise RuntimeError(
                    f"session limit reached ({self.max_sessions}); "
                    "evict or raise max_sessions"
                )
        session = LocalizationSession(
            grid,
            method=method,
            session_id=session_id,
            registry=self.metrics,
            artifact_cache=self.artifact_cache,
            **overrides,
        )
        now = self.clock()
        session.created_at = session.last_access = now
        if initial_pose is not None:
            session.initialize(initial_pose)
        self._sessions[session.session_id] = session
        self.metrics.counter("serve.sessions.created").inc()
        self.metrics.gauge("serve.sessions.active").set(len(self._sessions))
        return session

    def get(self, session_id: str) -> LocalizationSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"unknown session {session_id!r}") from None

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    def list_sessions(self) -> List[Dict]:
        """Descriptors of every live session, sorted by id."""
        return [
            self._sessions[sid].describe() for sid in sorted(self._sessions)
        ]

    def evict(self, session_id: str, reason: str = "explicit") -> None:
        """Remove a session (KeyError when unknown)."""
        self.get(session_id)
        del self._sessions[session_id]
        self.metrics.counter(f"serve.sessions.evicted.{reason}").inc()
        self.metrics.gauge("serve.sessions.active").set(len(self._sessions))

    def evict_idle(
        self, now: Optional[float] = None, reason: str = "idle"
    ) -> List[str]:
        """Sweep sessions idle past the TTL; returns the evicted ids.

        ``reason`` tags the ``serve.sessions.evicted.*`` counter so fleet
        metrics can attribute the removal: ``"idle"`` for the periodic
        TTL sweep, ``"capacity"`` when :meth:`create` sweeps to admit a
        new tenant (the governor's load-shedding uses ``"shed"`` via
        :meth:`evict` directly).
        """
        if self.idle_ttl_s is None:
            return []
        now = self.clock() if now is None else now
        expired = [
            sid
            for sid, session in self._sessions.items()
            if session.idle_for(now) > self.idle_ttl_s
        ]
        for sid in expired:
            self.evict(sid, reason=reason)
        return expired

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def update(
        self,
        session_id: str,
        delta: OdometryDelta,
        scan_ranges: np.ndarray,
        beam_angles: np.ndarray,
    ) -> np.ndarray:
        """Route one scan update to a session; returns its pose estimate.

        Per-update wall time lands in the fleet
        ``serve.update.latency_ms`` histogram — the latency a *tenant*
        observes, which under the async server includes batching.
        """
        session = self.get(session_id)
        start = self.clock()
        pose = session.update(delta, scan_ranges, beam_angles)
        self.observe_update(session, self.clock() - start)
        return pose

    def observe_update(
        self, session: LocalizationSession, elapsed_s: float
    ) -> None:
        """Record one completed update in the fleet metrics."""
        session.last_access = self.clock()
        self.metrics.counter("serve.updates").inc()
        # Windowed family: lifetime buckets keep the merge contract,
        # while update_latency_quantile() reads the recency window —
        # the view the governor and the bench's p99 react to.
        self.metrics.windowed_histogram("serve.update.latency_ms").observe(
            elapsed_s * 1e3
        )

    def update_latency_quantile(self, q: float) -> float:
        """Exact ``q``-quantile of *recent* update latencies (ms).

        Reads the recency window of ``serve.update.latency_ms`` — a
        sliding view that tracks load shifts, unlike the lifetime
        histogram whose quantiles converge to the long-run mixture.
        Returns 0.0 before any update has been recorded.
        """
        hist = self.metrics.windowed_histogram("serve.update.latency_ms")
        return hist.windowed_quantile(q)

    def estimate(self, session_id: str) -> Dict:
        """Pose + uncertainty snapshot without advancing the filter."""
        session = self.get(session_id)
        session.last_access = self.clock()
        pose = session.pose
        out = {
            "session_id": session.session_id,
            "pose": [float(v) for v in pose],
            "num_updates": session.num_updates,
        }
        if session.pf is not None:
            from repro.core.pose_estimation import particle_spread

            spread = particle_spread(session.pf.particles, session.pf.weights)
            out["position_rms"] = float(spread.position_rms)
            out["std_theta"] = float(spread.std_theta)
        return out

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def telemetry(self) -> Dict:
        """JSON-ready fleet snapshot: metrics + artifact-cache stats."""
        return {
            "sessions": self.list_sessions(),
            "artifacts": self.artifact_cache.stats(),
            "metrics": self.metrics.snapshot(),
        }

    def prometheus(self) -> str:
        """Fleet metrics in the Prometheus text exposition format."""
        return to_prometheus_text(self.metrics)
