"""Fleet serving layer: many concurrent localization sessions, one process.

The serving stack (docs/serving.md), bottom-up:

* :mod:`repro.serve.artifacts` — map-artifact cache: range-method
  precomputes (distance fields, LUT tables, CDDT bins) built once per
  map content digest and shared read-only by every session on that map.
* :mod:`repro.serve.session` — one hosted localizer plus fleet
  metadata (id, map digest, provenance manifest, idle tracking).
* :mod:`repro.serve.registry` — session lifecycle
  (create/update/estimate/evict), idle-TTL eviction, fleet metrics and
  Prometheus export.
* :mod:`repro.serve.batcher` — folds same-map sessions' raycast
  workloads into single dedup calls, bit-identically to solo updates.
* :mod:`repro.serve.server` — asyncio front-end microbatching
  concurrent ``update`` calls through the batcher.
* :mod:`repro.serve.bench` — the ``repro bench serve`` load-test
  harness behind ``benchmarks/BENCH_serve.json``.
"""

from repro.serve.artifacts import MapArtifactCache, map_digest
from repro.serve.batcher import UpdateBatcher, UpdateRequest
from repro.serve.registry import SessionRegistry
from repro.serve.server import FleetServer
from repro.serve.session import LocalizationSession

__all__ = [
    "MapArtifactCache",
    "map_digest",
    "LocalizationSession",
    "SessionRegistry",
    "UpdateBatcher",
    "UpdateRequest",
    "FleetServer",
]
