"""Async fleet front-end: concurrent sessions over one event loop.

:class:`FleetServer` is the in-process serving surface ROADMAP item 1
asks for: many tenants (simulated cars, evaluation workers, notebook
clients) hold sessions concurrently, and their ``update`` calls are
**microbatched** — requests arriving within ``batch_window_s`` of each
other (or until ``max_batch`` accumulate) flush together through the
:class:`~repro.serve.batcher.UpdateBatcher`, so same-map sessions share
one raycast.

Everything runs on a single event loop; no locks are needed and the
shared read-only artifacts are safe by construction (see
:mod:`repro.serve.artifacts`).  Determinism: each session owns its RNG,
and batching never reorders the per-session stages or changes raycast
results (the batcher's exactness contract), so a fixed-seed session
produces the same pose trace no matter how many neighbours it shares
the loop with — the property ``tests/test_serve.py`` pins.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

import numpy as np

from repro.core.motion_models import OdometryDelta
from repro.maps.occupancy_grid import OccupancyGrid
from repro.serve.batcher import UpdateBatcher, UpdateRequest
from repro.serve.registry import SessionRegistry

__all__ = ["FleetServer"]


class FleetServer:
    """Asyncio host for concurrent localization sessions.

    Parameters
    ----------
    registry:
        The synchronous core; created with defaults when omitted.
    batch_window_s:
        How long the first pending update waits for companions before a
        flush.  0 still batches whatever lands in the same loop tick.
    max_batch:
        Flush immediately once this many updates are pending.
    budget:
        Optional :class:`~repro.govern.budget.LatencyBudget`.  When
        given, every particle-filter session gets a per-session
        :class:`~repro.govern.governor.Governor` and the fleet runs a
        :class:`~repro.govern.fleet.FleetArbiter` on each flush —
        coherent degradation under load, shedding when the knob ladder
        is exhausted (``serve.sessions.evicted.shed``).  ``None`` (the
        default) keeps serving ungoverned.
    shed:
        Whether the arbiter may evict sessions once the ladder is
        exhausted; ignored without a ``budget``.
    """

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        batch_window_s: float = 0.002,
        max_batch: int = 64,
        budget=None,
        shed: bool = True,
    ) -> None:
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.registry = registry if registry is not None else SessionRegistry()
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.batcher = UpdateBatcher(metrics=self.registry.metrics)
        if budget is not None:
            from repro.govern.fleet import FleetArbiter

            self.arbiter: Optional[FleetArbiter] = FleetArbiter(
                self.registry, budget, shed=shed
            )
        else:
            self.arbiter = None
        self._pending: List = []  # (UpdateRequest, Future, enqueued_at)
        self._flusher: Optional[asyncio.Task] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Session lifecycle (thin async shims over the registry)
    # ------------------------------------------------------------------
    async def create_session(
        self,
        grid: OccupancyGrid,
        method: str = "synpf",
        session_id: Optional[str] = None,
        initial_pose: Optional[np.ndarray] = None,
        **overrides,
    ) -> str:
        self._check_open()
        session = self.registry.create(
            grid, method=method, session_id=session_id,
            initial_pose=initial_pose, **overrides,
        )
        if self.arbiter is not None:
            self.arbiter.attach(session)
        return session.session_id

    async def estimate(self, session_id: str) -> Dict:
        self._check_open()
        return self.registry.estimate(session_id)

    async def close_session(self, session_id: str) -> None:
        self._check_open()
        self.registry.evict(session_id, reason="client")
        if self.arbiter is not None:
            self.arbiter.detach(session_id)

    async def close(self) -> None:
        """Flush pending work and refuse further requests."""
        if self._closed:
            return
        if self._flusher is not None:
            self._flusher.cancel()
            self._flusher = None
        await self._flush()
        self._closed = True

    async def __aenter__(self) -> "FleetServer":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    async def update(
        self,
        session_id: str,
        delta: OdometryDelta,
        scan_ranges: np.ndarray,
        beam_angles: np.ndarray,
    ) -> np.ndarray:
        """Enqueue one scan update; resolves with the pose estimate.

        The await spans enqueue → flush, so the latency recorded per
        session includes the batching window — what a tenant actually
        experiences.
        """
        self._check_open()
        session = self.registry.get(session_id)
        request = UpdateRequest(session, delta, scan_ranges, beam_angles)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append((request, future, time.perf_counter()))
        if len(self._pending) >= self.max_batch:
            await self._flush()
        elif self._flusher is None:
            self._flusher = asyncio.ensure_future(self._flush_after_window())
        return await future

    # ------------------------------------------------------------------
    async def _flush_after_window(self) -> None:
        try:
            await asyncio.sleep(self.batch_window_s)
            await self._flush()
        except asyncio.CancelledError:
            pass

    async def _flush(self) -> None:
        if self._flusher is not None:
            self._flusher.cancel()
            self._flusher = None
        pending, self._pending = self._pending, []
        if not pending:
            return
        requests = [req for req, _, _ in pending]
        try:
            self.batcher.flush(requests)
        except Exception as exc:
            for _, future, _ in pending:
                if not future.done():
                    future.set_exception(exc)
            return
        done = time.perf_counter()
        for (request, future, enqueued), req in zip(pending, requests):
            elapsed = done - enqueued
            self.registry.observe_update(request.session, elapsed)
            if self.arbiter is not None:
                self.arbiter.observe(
                    request.session.session_id, elapsed * 1e3
                )
            if not future.done():
                future.set_result(req.pose)
        if self.arbiter is not None:
            self.arbiter.step()
        for sid in self.registry.evict_idle():
            if self.arbiter is not None:
                self.arbiter.detach(sid)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("server is closed")
