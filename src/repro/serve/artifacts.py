"""Shared map-artifact cache: one precompute per map, many sessions.

Every range method front-loads work that depends only on the map and the
constructor arguments — the ray-marching distance field, the LUT/GLT
theta-binned range table, the CDDT angle bins.  A fleet server hosting N
sessions on the same track would repeat that build N times (today each
:class:`~repro.core.particle_filter.SynPF` does exactly that); at LUT
scale that is hundreds of milliseconds and tens of megabytes per
session for bit-identical tables.

:class:`MapArtifactCache` keys the built method on the **map content
digest** plus the constructor signature, so sessions created from
*different* ``OccupancyGrid`` objects with equal content still share one
build.  Cached methods are shared read-only: the precomputed structures
are immutable after construction, and the only mutable state on a
:class:`~repro.raycast.base.RangeMethod` is the pose-batch scratch
buffer, which is safe under the fleet server's single-threaded event
loop (``calc_ranges_pose_batch`` is documented non-re-entrant across
threads — a multi-threaded host must keep one cache per thread).

The per-filter ``+dedup`` wrapper is deliberately **not** cached: it
carries per-owner hit-rate counters (``repro.accel.dedup``), so
:func:`~repro.raycast.factory.make_range_method` always wraps fresh
around the shared base.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Optional, Tuple, Type

from repro.maps.occupancy_grid import OccupancyGrid
from repro.raycast.base import RangeMethod

__all__ = ["map_digest", "MapArtifactCache"]


def map_digest(grid: OccupancyGrid) -> str:
    """Content digest of a map: cell data + resolution + origin.

    Two grids with equal content get equal digests regardless of object
    identity, which is what lets sessions created from independently
    loaded copies of the same map share artifacts.
    """
    h = hashlib.sha256()
    h.update(grid.data.tobytes())
    h.update(struct.pack("<ddd", grid.resolution, *grid.origin))
    return h.hexdigest()[:16]


class MapArtifactCache:
    """Build range-method artifacts once per map, share them read-only.

    Parameters
    ----------
    registry:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry`.
        Every lookup bumps ``serve.artifacts.builds`` (a miss that
        constructed the method) or ``serve.artifacts.hits`` (a reuse) —
        the counters the serve bench uses to *prove* N sessions on one
        map triggered a single build.
    """

    def __init__(self, registry=None) -> None:
        self._grids: Dict[str, OccupancyGrid] = {}
        self._methods: Dict[Tuple, RangeMethod] = {}
        self._registry = registry
        self.builds = 0
        self.hits = 0

    # ------------------------------------------------------------------
    def canonical_grid(self, grid: OccupancyGrid) -> OccupancyGrid:
        """The first-seen grid object for this content digest.

        Handing every session the same grid *object* lets downstream
        per-grid caches (``OccupancyGrid.distance_field()`` memoises on
        the instance) collapse too.
        """
        digest = map_digest(grid)
        canonical = self._grids.get(digest)
        if canonical is None:
            canonical = self._grids[digest] = grid
        return canonical

    def get_range_method(
        self,
        grid: OccupancyGrid,
        cls: Type[RangeMethod],
        max_range: Optional[float] = None,
        **kwargs,
    ) -> RangeMethod:
        """Fetch-or-build ``cls(grid, max_range=..., **kwargs)``.

        The cache key covers the map digest, the concrete class and the
        full keyword signature (sorted), so e.g. LUTs with different
        ``num_theta_bins`` never alias.  Keyword values must therefore
        be hashable — true for every constructor the factory forwards
        (backend strings, bin counts, ``pruned`` flags).
        """
        digest = map_digest(grid)
        canonical = self._grids.get(digest)
        if canonical is None:
            canonical = self._grids[digest] = grid
        key = (
            digest,
            cls.__module__,
            cls.__qualname__,
            None if max_range is None else float(max_range),
            tuple(sorted(kwargs.items())),
        )
        method = self._methods.get(key)
        if method is None:
            method = self._methods[key] = cls(
                canonical, max_range=max_range, **kwargs
            )
            self.builds += 1
            if self._registry is not None:
                self._registry.counter("serve.artifacts.builds").inc()
        else:
            self.hits += 1
            if self._registry is not None:
                self._registry.counter("serve.artifacts.hits").inc()
        return method

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._methods)

    def memory_bytes(self) -> int:
        """Total footprint of the cached precomputed structures."""
        return sum(m.memory_bytes() for m in self._methods.values())

    def stats(self) -> Dict:
        """JSON-ready cache effectiveness snapshot."""
        return {
            "maps": len(self._grids),
            "artifacts": len(self._methods),
            "builds": self.builds,
            "hits": self.hits,
            "memory_bytes": self.memory_bytes(),
        }
