"""String-keyed construction of range methods.

Experiment configs select the ray-casting backend by name (mirroring the
``range_method`` ROS parameter of the original particle-filter packages);
this factory maps those names onto classes.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.maps.occupancy_grid import OccupancyGrid
from repro.raycast.base import RangeMethod
from repro.raycast.bresenham import BresenhamRayCast
from repro.raycast.cddt import CDDT
from repro.raycast.lut import LookupTable
from repro.raycast.ray_marching import RayMarching

__all__ = ["make_range_method", "RANGE_METHODS"]

RANGE_METHODS: Dict[str, Type[RangeMethod]] = {
    "bresenham": BresenhamRayCast,
    "bl": BresenhamRayCast,
    "ray_marching": RayMarching,
    "rm": RayMarching,
    "cddt": CDDT,
    "pcddt": CDDT,
    "lut": LookupTable,
    "glt": LookupTable,
}


def make_range_method(
    name: str, grid: OccupancyGrid, max_range: float | None = None, **kwargs
) -> RangeMethod:
    """Build a range method by name.

    Recognised names (rangelibc aliases in parentheses): ``bresenham``
    (``bl``), ``ray_marching`` (``rm``), ``cddt``, ``pcddt``, ``lut``
    (``glt``).  Extra keyword arguments are forwarded to the constructor;
    ``pcddt`` implies ``pruned=True``.
    """
    key = name.lower()
    if key not in RANGE_METHODS:
        raise ValueError(
            f"unknown range method {name!r}; choose from {sorted(RANGE_METHODS)}"
        )
    cls = RANGE_METHODS[key]
    if key == "pcddt":
        kwargs.setdefault("pruned", True)
    return cls(grid, max_range=max_range, **kwargs)
