"""String-keyed construction of range methods.

Experiment configs select the ray-casting backend by name (mirroring the
``range_method`` ROS parameter of the original particle-filter packages);
this factory maps those names onto classes.

Names accept two optional acceleration suffixes (:mod:`repro.accel`):

* ``@<backend>`` — compute backend for methods that support one
  (``bresenham``/``ray_marching``): ``@numpy``, ``@numba``, ``@auto``.
* ``+dedup`` — wrap the method in
  :class:`~repro.accel.dedup.DedupRangeMethod` (pose-quantized
  within-batch query deduplication).

Examples: ``"ray_marching"``, ``"ray_marching@numba"``, ``"bl+dedup"``,
``"rm@numpy+dedup"``.  The same switches are available as explicit
keyword arguments (``backend=``, ``dedup=``, ``dedup_xy_bin_cells=``,
``dedup_theta_bins=``, ``registry=``); a suffix and a conflicting keyword
is an error.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

from repro.maps.occupancy_grid import OccupancyGrid
from repro.raycast.base import RangeMethod
from repro.raycast.bresenham import BresenhamRayCast
from repro.raycast.cddt import CDDT
from repro.raycast.lut import LookupTable
from repro.raycast.ray_marching import RayMarching

__all__ = ["make_range_method", "parse_range_spec", "RANGE_METHODS"]

RANGE_METHODS: Dict[str, Type[RangeMethod]] = {
    "bresenham": BresenhamRayCast,
    "bl": BresenhamRayCast,
    "ray_marching": RayMarching,
    "rm": RayMarching,
    "cddt": CDDT,
    "pcddt": CDDT,
    "lut": LookupTable,
    "glt": LookupTable,
}

# Methods whose constructors take a compute ``backend`` argument.  CDDT
# and the LUT are table-driven (binary search / gather) and have no
# per-ray kernel to swap.
_BACKEND_AWARE = {"bresenham", "bl", "ray_marching", "rm"}


def parse_range_spec(spec: str) -> Tuple[str, Optional[str], bool]:
    """Split ``"name[@backend][+dedup]"`` into its three parts.

    Returns ``(base_name, backend_or_None, dedup)``.  Suffix order is
    fixed (``@`` before ``+``); the base name is *not* validated here so
    the caller controls the error message.
    """
    rest = spec.strip().lower()
    dedup = False
    if rest.endswith("+dedup"):
        dedup = True
        rest = rest[: -len("+dedup")]
    backend: Optional[str] = None
    if "@" in rest:
        rest, _, backend = rest.partition("@")
    return rest, backend or None, dedup


def make_range_method(
    name: str,
    grid: OccupancyGrid,
    max_range: float | None = None,
    *,
    backend: Optional[str] = None,
    dedup: Optional[bool] = None,
    dedup_xy_bin_cells: float = 1.0,
    dedup_theta_bins: int = 2048,
    registry=None,
    artifact_cache=None,
    **kwargs,
) -> RangeMethod:
    """Build a range method from a spec string.

    Recognised base names (rangelibc aliases in parentheses):
    ``bresenham`` (``bl``), ``ray_marching`` (``rm``), ``cddt``,
    ``pcddt``, ``lut`` (``glt``); plus the ``@backend`` / ``+dedup``
    suffixes documented in the module docstring.  Extra keyword arguments
    are forwarded to the constructor; ``pcddt`` implies ``pruned=True``.

    ``artifact_cache`` (a :class:`~repro.serve.artifacts.MapArtifactCache`)
    makes construction of the *base* method go through a shared cache
    keyed by map content digest + constructor signature: the expensive
    precomputed structures (LUT table, CDDT bins, distance field) are
    built once per map and shared read-only by every caller.  The
    ``+dedup`` wrapper is always constructed fresh — it carries per-owner
    hit-rate counters.
    """
    key, spec_backend, spec_dedup = parse_range_spec(name)
    if key not in RANGE_METHODS:
        raise ValueError(
            f"unknown range method {name!r}; choose from {sorted(RANGE_METHODS)}"
        )
    if spec_backend is not None:
        if backend is not None and backend != spec_backend:
            raise ValueError(
                f"conflicting backends: spec {name!r} vs backend={backend!r}"
            )
        backend = spec_backend
    if spec_dedup:
        if dedup is False:
            raise ValueError(f"conflicting dedup: spec {name!r} vs dedup=False")
        dedup = True

    cls = RANGE_METHODS[key]
    if key == "pcddt":
        kwargs.setdefault("pruned", True)
    if backend is not None:
        if key not in _BACKEND_AWARE:
            raise ValueError(
                f"range method {key!r} does not take a compute backend "
                f"(only {sorted(set(RANGE_METHODS[k].__name__ for k in _BACKEND_AWARE))})"
            )
        kwargs["backend"] = backend

    if artifact_cache is not None:
        method = artifact_cache.get_range_method(
            grid, cls, max_range=max_range, **kwargs
        )
    else:
        method = cls(grid, max_range=max_range, **kwargs)
    if dedup:
        from repro.accel.dedup import DedupRangeMethod  # avoid import cycle

        method = DedupRangeMethod(
            method,
            xy_bin_cells=dedup_xy_bin_cells,
            theta_bins=dedup_theta_bins,
            registry=registry,
        )
    return method
