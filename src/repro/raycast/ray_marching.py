"""Distance-transform ray marching ("sphere tracing", rangelibc "RM").

The Euclidean distance transform of the map tells us, at any point, the
radius of the largest obstacle-free disc centred there.  A ray can therefore
safely jump forward by that distance.  Repeating until the distance falls
below a threshold converges on the first obstacle in a handful of
iterations on corridor-like maps — far fewer steps than cell-by-cell
traversal, at the cost of a one-off distance-transform precomputation.

With the default ``numpy`` backend, all rays in a batch march in
lock-step as NumPy arrays; each iteration advances every still-active ray
by its local clearance.  With ``backend="numba"`` (or ``"auto"`` on a
machine with numba) the same arithmetic runs as a fused per-ray JIT
kernel parallelised over rays — see :mod:`repro.accel`.
"""

from __future__ import annotations

import numpy as np

from repro.accel.backends import get_numba_kernels, resolve_backend
from repro.maps.occupancy_grid import OccupancyGrid
from repro.raycast.base import RangeMethod

__all__ = ["RayMarching"]


class RayMarching(RangeMethod):
    """Sphere tracing over the map's Euclidean distance field.

    Parameters
    ----------
    grid, max_range:
        See :class:`~repro.raycast.base.RangeMethod`.
    epsilon:
        Hit threshold in metres: a ray terminates when local clearance
        drops below this, and reports ``travelled + clearance`` (the
        clearance is the remaining distance to the obstacle surface).
        Defaults to half a cell, giving sub-cell accuracy comparable to
        exact traversal.
    max_iters:
        Safety cap on marching iterations per batch.  Defaults to enough
        iterations for a minimum-step ray to creep the full ``max_range``,
        so only a pathological field can exhaust it; rays that do are
        clamped to ``max_range`` like rays that leave the map.
    backend:
        ``"auto"`` (default), ``"numpy"`` or ``"numba"`` — see
        :func:`repro.accel.backends.resolve_backend`.  ``"numba"`` runs
        the identical per-ray arithmetic as a JIT kernel and silently
        degrades to ``"numpy"`` when numba is absent.
    """

    def __init__(
        self,
        grid: OccupancyGrid,
        max_range: float | None = None,
        epsilon: float | None = None,
        max_iters: int | None = None,
        backend: str = "auto",
    ) -> None:
        super().__init__(grid, max_range)
        self.epsilon = float(epsilon) if epsilon is not None else grid.resolution / 2.0
        # Minimum step prevents stalling when skimming along a wall: the
        # clearance there is ~0 but the ray has not hit anything ahead.
        self._min_step = grid.resolution * 0.5
        # The distance field stores *cell-centre to cell-centre* distances.
        # From an arbitrary point inside a cell, the true free clearance to
        # the nearest obstacle *surface* can be up to one cell diagonal
        # smaller (half a diagonal for the position within the cell, half
        # for the obstacle cell's extent).  A jump by the raw field value
        # can therefore tunnel straight through a wall; every step subtracts
        # this margin.
        self._margin = grid.resolution * float(np.sqrt(2.0))
        if max_iters is None:
            max_iters = int(np.ceil(self.max_range / self._min_step)) + 64
        self.max_iters = int(max_iters)
        # Precompute once, widened to float64 up front: the grid caches a
        # float32 field, and casting it per clearance lookup used to cost
        # a fresh copy every marching iteration.  float32 -> float64 is
        # exact, so results are unchanged.
        self._field = np.ascontiguousarray(grid.distance_field(), dtype=np.float64)
        self.backend = resolve_backend(backend)

    def memory_bytes(self) -> int:
        return self._field.nbytes

    def calc_ranges(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        if self.backend == "numba":
            return self._calc_ranges_numba(queries)
        return self._calc_ranges_numpy(queries)

    def _calc_ranges_numba(self, queries: np.ndarray) -> np.ndarray:
        kernels = get_numba_kernels()
        return kernels.ray_march_ranges(
            np.ascontiguousarray(queries[:, 0]),
            np.ascontiguousarray(queries[:, 1]),
            np.ascontiguousarray(queries[:, 2]),
            self._field,
            float(self.grid.origin[0]),
            float(self.grid.origin[1]),
            float(self.grid.resolution),
            float(self.epsilon),
            float(self._min_step),
            float(self._margin),
            float(self.max_range),
            self.max_iters,
        )

    def _calc_ranges_numpy(self, queries: np.ndarray) -> np.ndarray:
        n = queries.shape[0]
        grid = self.grid
        res = grid.resolution
        field = self._field
        height, width = field.shape

        cos_t = np.cos(queries[:, 2])
        sin_t = np.sin(queries[:, 2])
        px = queries[:, 0].copy()
        py = queries[:, 1].copy()
        travelled = np.zeros(n)
        ranges = np.full(n, self.max_range)
        active = np.ones(n, dtype=bool)

        min_step = self._min_step
        margin = self._margin

        for _ in range(self.max_iters):
            act = np.flatnonzero(active)
            if act.size == 0:
                break
            ix = np.floor((px[act] - grid.origin[0]) / res).astype(np.int64)
            iy = np.floor((py[act] - grid.origin[1]) / res).astype(np.int64)

            inside = (ix >= 0) & (ix < width) & (iy >= 0) & (iy < height)
            # Leaving the map = no obstacle found within the map: max_range.
            out_idx = act[~inside]
            ranges[out_idx] = self.max_range
            active[out_idx] = False

            in_idx = act[inside]
            if in_idx.size == 0:
                continue
            clearance = field[iy[inside], ix[inside]]

            # Clearance below epsilon: the obstacle surface is at most
            # `clearance` ahead, so the range is travelled *plus* the
            # remaining clearance — reporting bare `travelled` would
            # underestimate by up to epsilon.  (With the default epsilon
            # of half a cell this only triggers inside occupied cells,
            # where clearance is exactly 0.)
            hit = clearance < self.epsilon
            hit_idx = in_idx[hit]
            ranges[hit_idx] = np.minimum(
                travelled[hit_idx] + clearance[hit], self.max_range
            )
            active[hit_idx] = False

            step_idx = in_idx[~hit]
            step = np.maximum(clearance[~hit] - margin, min_step)
            px[step_idx] += step * cos_t[step_idx]
            py[step_idx] += step * sin_t[step_idx]
            travelled[step_idx] += step

            over = step_idx[travelled[step_idx] >= self.max_range]
            ranges[over] = self.max_range
            active[over] = False

        # Iteration budget exhausted: same contract as leaving the map —
        # no obstacle was found, so clamp at max_range (see
        # RangeMethod.calc_ranges).
        ranges[active] = self.max_range
        return ranges
