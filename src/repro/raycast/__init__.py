"""Ray casting on occupancy grids — a reproduction of ``rangelibc`` [3].

The dominant cost in map-based MCL is evaluating the *expected* LiDAR range
at a hypothesised pose (paper §II).  Walsh & Karaman's rangelibc offers a
family of algorithms trading precomputation and memory for query speed; this
subpackage reimplements the four relevant ones with a common interface:

* :class:`BresenhamRayCast` — exact cell-by-cell grid traversal
  (Amanatides–Woo), no precomputation, slowest queries;
* :class:`RayMarching` — sphere tracing over the Euclidean distance
  transform, cheap precomputation, fast on open maps;
* :class:`CDDT` / :class:`PCDDT <repro.raycast.cddt.CDDT>` — the compressed
  directional distance transform: per-heading-slice sorted obstacle
  projections queried by binary search;
* :class:`LookupTable` — ranges precomputed for every discretised
  ``(x, y, theta)``; constant-time queries at the price of memory.  This is
  the mode the paper runs on the GPU-less Intel NUC.

All methods implement :class:`RangeMethod`; batch queries are NumPy-
vectorised, standing in for rangelibc's GPU/SIMD parallelism.
"""

from repro.raycast.base import RangeMethod
from repro.raycast.bresenham import BresenhamRayCast
from repro.raycast.cddt import CDDT
from repro.raycast.factory import make_range_method, parse_range_spec
from repro.raycast.lut import LookupTable
from repro.raycast.ray_marching import RayMarching

__all__ = [
    "CDDT",
    "BresenhamRayCast",
    "LookupTable",
    "RangeMethod",
    "RayMarching",
    "make_range_method",
    "parse_range_spec",
]
