"""Dense 3D range lookup table (the rangelibc "GLT" mode).

Pre-computes the range for *every* discretised ``(x, y, theta)`` in the map,
giving constant-time queries at the cost of memory — the trade the paper
makes explicit: on the GPU-less Intel NUC, "the LUT option in rangelibc was
utilized" (§III).

The table is filled once using distance-transform ray marching (itself
validated against exact traversal), slice by heading slice so peak memory
during construction stays bounded.  Queries reduce to a single fancy-index
into a float32 array, which NumPy executes in tens of nanoseconds per
query — the Python stand-in for rangelibc's O(1) array read.
"""

from __future__ import annotations

import numpy as np

from repro.maps.occupancy_grid import OccupancyGrid
from repro.raycast.base import RangeMethod
from repro.raycast.ray_marching import RayMarching

__all__ = ["LookupTable"]


class LookupTable(RangeMethod):
    """Precomputed dense ``(theta, row, col)`` range table.

    Parameters
    ----------
    grid, max_range:
        See :class:`~repro.raycast.base.RangeMethod`.
    num_theta_bins:
        Heading discretisation over ``[0, 2*pi)``.  120 bins (3 degrees)
        keeps the angular quantisation error below typical beam spacing
        after scanline subsampling.
    downsample:
        Spatial stride: build the table every ``downsample`` cells and
        nearest-index at query time.  1 = full map resolution.
    """

    def __init__(
        self,
        grid: OccupancyGrid,
        max_range: float | None = None,
        num_theta_bins: int = 120,
        downsample: int = 1,
    ) -> None:
        super().__init__(grid, max_range)
        if num_theta_bins < 1:
            raise ValueError("num_theta_bins must be >= 1")
        if downsample < 1:
            raise ValueError("downsample must be >= 1")
        self.num_theta_bins = int(num_theta_bins)
        self.downsample = int(downsample)
        self._table = self._build()

    def _build(self) -> np.ndarray:
        grid = self.grid
        ds = self.downsample
        rows = np.arange(0, grid.height, ds)
        cols = np.arange(0, grid.width, ds)
        col_grid, row_grid = np.meshgrid(cols, rows)
        centers = grid.grid_to_world(
            np.stack([col_grid.ravel(), row_grid.ravel()], axis=-1).astype(float)
        )
        n_cells = centers.shape[0]

        # Only free cells need real values; rays from inside obstacles
        # return 0 by convention and the table is initialised accordingly.
        free = ~grid.is_occupied_world(centers, unknown_is_occupied=True)

        marcher = RayMarching(grid, max_range=self.max_range)
        table = np.zeros((self.num_theta_bins, len(rows), len(cols)), dtype=np.float32)
        thetas = (np.arange(self.num_theta_bins) + 0.5) * 2.0 * np.pi / self.num_theta_bins

        free_centers = centers[free]
        flat_free = np.flatnonzero(free)
        queries = np.empty((free_centers.shape[0], 3))
        queries[:, 0] = free_centers[:, 0]
        queries[:, 1] = free_centers[:, 1]
        for k, theta in enumerate(thetas):
            queries[:, 2] = theta
            slice_vals = np.full(n_cells, 0.0, dtype=np.float32)
            slice_vals[flat_free] = marcher.calc_ranges(queries).astype(np.float32)
            table[k] = slice_vals.reshape(len(rows), len(cols))
        return table

    def memory_bytes(self) -> int:
        return self._table.nbytes

    def calc_ranges_pose_batch(self, poses: np.ndarray, angles: np.ndarray) -> np.ndarray:
        """Particle-filter fast path: ``(P,)`` poses x ``(B,)`` beams.

        Exploits the workload's structure: the spatial index is computed
        once per *pose* (P ops) rather than once per query (P*B ops), and
        only the heading bin and the final table gather touch the full
        P x B lattice.  This is the Python analogue of rangelibc's batched
        ``calc_range_many`` entry point.
        """
        poses = np.asarray(poses, dtype=float)
        angles = np.asarray(angles, dtype=float)
        grid = self.grid
        ds = self.downsample

        inv_res = 1.0 / grid.resolution
        # floor (not int truncation): poses slightly below the origin must
        # index negative and be caught by the bounds mask.
        ri = np.floor((poses[:, 1] - grid.origin[1]) * inv_res).astype(np.int64) // ds
        ci = np.floor((poses[:, 0] - grid.origin[0]) * inv_res).astype(np.int64) // ds

        bin_scale = self.num_theta_bins / (2.0 * np.pi)
        theta = poses[:, 2][:, None] + angles[None, :]
        k = (np.mod(theta, 2.0 * np.pi) * bin_scale).astype(np.int64)
        np.clip(k, 0, self.num_theta_bins - 1, out=k)

        n_rows, n_cols = self._table.shape[1], self._table.shape[2]
        inside = (ri >= 0) & (ri < n_rows) & (ci >= 0) & (ci < n_cols)

        out = np.full((poses.shape[0], angles.size), self.max_range)
        idx = np.flatnonzero(inside)
        if idx.size:
            out[idx] = self._table[k[idx], ri[idx, None], ci[idx, None]]
        return out

    def calc_ranges(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        grid = self.grid
        ds = self.downsample

        theta = np.mod(queries[:, 2], 2.0 * np.pi)
        k = np.floor(theta * self.num_theta_bins / (2.0 * np.pi)).astype(np.int64)
        k = np.clip(k, 0, self.num_theta_bins - 1)

        ix = np.floor((queries[:, 0] - grid.origin[0]) / grid.resolution).astype(np.int64)
        iy = np.floor((queries[:, 1] - grid.origin[1]) / grid.resolution).astype(np.int64)
        ri = iy // ds
        ci = ix // ds

        n_rows, n_cols = self._table.shape[1], self._table.shape[2]
        inside = (ri >= 0) & (ri < n_rows) & (ci >= 0) & (ci < n_cols)

        out = np.zeros(queries.shape[0], dtype=float)
        out[inside] = self._table[k[inside], ri[inside], ci[inside]]
        # Off-map queries see no obstacle within the table: report max range.
        out[~inside] = self.max_range
        return out
