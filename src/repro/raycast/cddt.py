"""Compressed Directional Distance Transform (CDDT / PCDDT) [3].

Walsh & Karaman's key observation: for a *fixed* ray heading theta, a range
query reduces to a 1D problem.  Rotate the map by ``-theta`` so the ray
points along +x; then the first obstacle is simply the smallest stored
obstacle x-coordinate greater than the query's x, within the ray's row.

The structure therefore stores, for each discretised heading slice and each
projected row ("bin"), a *sorted* array of obstacle coordinates.  A query
costs one binary search — O(log obstacles-per-bin) — independent of range,
and the whole structure is far smaller than a dense 3D table because each
slice is only O(occupied cells).

Headings are discretised over ``[0, pi)`` only: a query pointing "backwards"
(theta in ``[pi, 2pi)``) reuses the same slice, searching in the negative
direction.  This halves memory, exactly as in the original library.

PCDDT ("pruned" CDDT) additionally collapses runs of contiguous obstacle
cells in each bin to their two endpoints: interior cells of a solid wall
can never be the *first* hit of a ray travelling along the bin, so dropping
them preserves query results (queries originating inside a wall return ~0
either way) while shrinking memory further.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.maps.occupancy_grid import OccupancyGrid
from repro.raycast.base import RangeMethod
from repro.utils.angles import wrap_to_pi

__all__ = ["CDDT"]


class _Slice:
    """One heading slice: sorted obstacle projections grouped by bin.

    Stored flat for cache friendliness: ``values`` holds every obstacle's
    along-ray coordinate, bin by bin; ``starts[i]:starts[i+1]`` delimits bin
    ``i + bin_lo``'s sorted sub-array.
    """

    __slots__ = ("bin_lo", "starts", "values")

    def __init__(self, bin_lo: int, starts: np.ndarray, values: np.ndarray) -> None:
        self.bin_lo = bin_lo
        self.starts = starts
        self.values = values

    def num_bins(self) -> int:
        return len(self.starts) - 1

    def bin_values(self, bin_index: int) -> np.ndarray:
        i = bin_index - self.bin_lo
        if i < 0 or i >= self.num_bins():
            return self.values[:0]
        return self.values[self.starts[i] : self.starts[i + 1]]

    def nbytes(self) -> int:
        return self.starts.nbytes + self.values.nbytes


class CDDT(RangeMethod):
    """Compressed directional distance transform ray casting.

    Parameters
    ----------
    grid, max_range:
        See :class:`~repro.raycast.base.RangeMethod`.
    num_theta_bins:
        Number of heading slices over ``[0, pi)``.  More slices = less
        angular discretisation error; 120 (1.5 degrees) matches the
        original library's default regime.
    pruned:
        Enable PCDDT run-collapsing (see module docstring).
    """

    def __init__(
        self,
        grid: OccupancyGrid,
        max_range: float | None = None,
        num_theta_bins: int = 120,
        pruned: bool = False,
    ) -> None:
        super().__init__(grid, max_range)
        if num_theta_bins < 1:
            raise ValueError("num_theta_bins must be >= 1")
        self.num_theta_bins = int(num_theta_bins)
        self.pruned = bool(pruned)
        self._bin_width = grid.resolution
        self._slices: List[_Slice] = []
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        grid = self.grid
        rows, cols = np.nonzero(grid.occupancy_mask(unknown_is_occupied=True))
        centers = grid.grid_to_world(np.stack([cols, rows], axis=-1).astype(float))
        # Half the cell diagonal: projecting a square cell onto the slice
        # axes smears it by up to this much, so each obstacle is inserted
        # into every bin its footprint touches.  Conservative (ranges can
        # come out up to ~half a cell short) but never misses thin walls at
        # off-slice angles.
        half_diag = grid.resolution * np.sqrt(2.0) / 2.0
        w = self._bin_width

        thetas = (np.arange(self.num_theta_bins) + 0.5) * np.pi / self.num_theta_bins
        for theta in thetas:
            c, s = np.cos(theta), np.sin(theta)
            along = centers[:, 0] * c + centers[:, 1] * s      # x' (ray direction)
            across = -centers[:, 0] * s + centers[:, 1] * c    # y' (bin axis)

            lo_bins = np.floor((across - half_diag) / w).astype(np.int64)
            hi_bins = np.floor((across + half_diag) / w).astype(np.int64)
            spans = hi_bins - lo_bins + 1
            total = int(spans.sum())

            all_bins = np.empty(total, dtype=np.int64)
            all_vals = np.empty(total, dtype=np.float32)
            pos = 0
            for extra in range(int(spans.max()) if total else 0):
                mask = spans > extra
                cnt = int(mask.sum())
                all_bins[pos : pos + cnt] = lo_bins[mask] + extra
                all_vals[pos : pos + cnt] = along[mask]
                pos += cnt

            if total == 0:
                self._slices.append(
                    _Slice(0, np.zeros(1, dtype=np.int64), all_vals[:0])
                )
                continue

            bin_lo = int(all_bins.min())
            bin_hi = int(all_bins.max())
            n_bins = bin_hi - bin_lo + 1
            order = np.lexsort((all_vals, all_bins))
            sorted_bins = all_bins[order] - bin_lo
            sorted_vals = all_vals[order]
            counts = np.bincount(sorted_bins, minlength=n_bins)
            starts = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

            if self.pruned:
                sorted_vals, starts = self._prune(sorted_vals, starts)

            self._slices.append(_Slice(bin_lo, starts, sorted_vals))

    def _prune(
        self, values: np.ndarray, starts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Collapse contiguous runs within each bin to their endpoints."""
        gap = self._bin_width * 1.5
        new_vals: List[np.ndarray] = []
        new_starts = np.zeros_like(starts)
        for i in range(len(starts) - 1):
            vals = values[starts[i] : starts[i + 1]]
            if vals.size <= 2:
                kept = vals
            else:
                diffs = np.diff(vals)
                breaks = diffs > gap
                # Keep the first and last element of each run.
                keep = np.zeros(vals.size, dtype=bool)
                keep[0] = keep[-1] = True
                keep[1:][breaks] = True      # run starts
                keep[:-1][breaks] = True     # run ends
                kept = vals[keep]
            new_vals.append(kept)
            new_starts[i + 1] = new_starts[i] + kept.size
        flat = np.concatenate(new_vals) if new_vals else values[:0]
        return flat, new_starts

    def memory_bytes(self) -> int:
        return sum(sl.nbytes() for sl in self._slices)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def calc_ranges(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        n = queries.shape[0]
        ranges = np.full(n, self.max_range)

        theta = np.asarray(wrap_to_pi(queries[:, 2]))
        # Map heading onto a slice in [0, pi); backwards rays search the
        # same slice in the negative direction.
        forward = theta >= 0
        phi = np.where(forward, theta, theta + np.pi)
        slice_idx = np.floor(phi * self.num_theta_bins / np.pi).astype(np.int64)
        slice_idx = np.clip(slice_idx, 0, self.num_theta_bins - 1)

        slice_theta = (slice_idx + 0.5) * np.pi / self.num_theta_bins
        c, s = np.cos(slice_theta), np.sin(slice_theta)
        along = queries[:, 0] * c + queries[:, 1] * s
        across = -queries[:, 0] * s + queries[:, 1] * c
        bins = np.floor(across / self._bin_width).astype(np.int64)

        # Group queries by (slice, bin) so each group needs one sorted
        # sub-array; searchsorted is then vectorised within the group.
        order = np.lexsort((bins, slice_idx))
        grouped = np.stack([slice_idx[order], bins[order]], axis=-1)
        boundaries = np.flatnonzero(np.any(np.diff(grouped, axis=0) != 0, axis=1)) + 1
        group_starts = np.concatenate([[0], boundaries, [n]])

        for g in range(len(group_starts) - 1):
            members = order[group_starts[g] : group_starts[g + 1]]
            k = int(slice_idx[members[0]])
            b = int(bins[members[0]])
            vals = self._slices[k].bin_values(b)
            if vals.size == 0:
                continue
            q_along = along[members]
            fwd = forward[members]

            # Forward rays: first obstacle with coordinate >= query.
            pos = np.searchsorted(vals, q_along, side="left")
            has_fwd = fwd & (pos < vals.size)
            idx = np.clip(pos, 0, vals.size - 1)
            fwd_range = vals[idx] - q_along
            ranges[members[has_fwd]] = np.maximum(fwd_range[has_fwd], 0.0)

            # Backward rays: first obstacle with coordinate <= query.
            pos_b = np.searchsorted(vals, q_along, side="right") - 1
            has_bwd = ~fwd & (pos_b >= 0)
            idx_b = np.clip(pos_b, 0, vals.size - 1)
            bwd_range = q_along - vals[idx_b]
            ranges[members[has_bwd]] = np.maximum(bwd_range[has_bwd], 0.0)

        return np.minimum(ranges, self.max_range)
