"""Exact grid-traversal ray casting (the rangelibc "BL" baseline).

Walks every cell a ray passes through, in order, until one is occupied.
We use the Amanatides–Woo voxel-traversal algorithm rather than classic
Bresenham because it visits *every* intersected cell (Bresenham skips
corner-cut cells, which can tunnel rays through thin diagonal walls) while
having the same incremental structure.

With the default ``numpy`` backend, the traversal state for a whole batch
of rays is kept in NumPy arrays and all active rays advance one cell per
iteration — the vectorised equivalent of rangelibc's per-ray C loop.
With ``backend="numba"`` the per-ray loop itself is JIT-compiled and
parallelised over rays (see :mod:`repro.accel`).
"""

from __future__ import annotations

import numpy as np

from repro.accel.backends import get_numba_kernels, resolve_backend
from repro.maps.occupancy_grid import OccupancyGrid
from repro.raycast.base import RangeMethod

__all__ = ["BresenhamRayCast"]


class BresenhamRayCast(RangeMethod):
    """Cell-by-cell exact ray casting.

    No precomputation and exact results make this the reference
    implementation the other methods are validated against; queries are
    O(cells traversed), the slowest of the family.

    ``backend`` selects the execution engine (``"auto"``/``"numpy"``/
    ``"numba"``); both run identical arithmetic, see
    :func:`repro.accel.backends.resolve_backend`.
    """

    def __init__(
        self,
        grid: OccupancyGrid,
        max_range: float | None = None,
        backend: str = "auto",
    ) -> None:
        super().__init__(grid, max_range)
        self._occ = grid.occupancy_mask(unknown_is_occupied=True)
        self.backend = resolve_backend(backend)

    def calc_ranges(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        if self.backend == "numba":
            return self._calc_ranges_numba(queries)
        return self._calc_ranges_numpy(queries)

    def _calc_ranges_numba(self, queries: np.ndarray) -> np.ndarray:
        kernels = get_numba_kernels()
        grid = self.grid
        res = grid.resolution
        max_range_cells = self.max_range / res
        max_iters = int(np.ceil(max_range_cells * np.sqrt(2.0))) + 4
        return kernels.bresenham_ranges(
            np.ascontiguousarray(queries[:, 0]),
            np.ascontiguousarray(queries[:, 1]),
            np.ascontiguousarray(queries[:, 2]),
            self._occ,
            float(grid.origin[0]),
            float(grid.origin[1]),
            float(res),
            float(self.max_range),
            max_iters,
        )

    def _calc_ranges_numpy(self, queries: np.ndarray) -> np.ndarray:
        n = queries.shape[0]
        grid = self.grid
        res = grid.resolution
        occ = self._occ
        height, width = occ.shape

        ox = (queries[:, 0] - grid.origin[0]) / res
        oy = (queries[:, 1] - grid.origin[1]) / res
        dx = np.cos(queries[:, 2])
        dy = np.sin(queries[:, 2])

        ix = np.floor(ox).astype(np.int64)
        iy = np.floor(oy).astype(np.int64)

        step_x = np.where(dx >= 0, 1, -1).astype(np.int64)
        step_y = np.where(dy >= 0, 1, -1).astype(np.int64)

        # Parametric distance (in ray lengths) to the next vertical /
        # horizontal cell boundary, and the per-cell increments.
        with np.errstate(divide="ignore"):
            inv_dx = np.where(dx != 0, 1.0 / dx, np.inf)
            inv_dy = np.where(dy != 0, 1.0 / dy, np.inf)
        next_x = np.where(step_x > 0, ix + 1.0, ix * 1.0)
        next_y = np.where(step_y > 0, iy + 1.0, iy * 1.0)
        t_max_x = np.abs((next_x - ox) * inv_dx)
        t_max_y = np.abs((next_y - oy) * inv_dy)
        t_delta_x = np.abs(inv_dx)
        t_delta_y = np.abs(inv_dy)

        max_range_cells = self.max_range / res
        ranges = np.full(n, self.max_range)
        active = np.ones(n, dtype=bool)

        # A ray starting inside an obstacle (or off-map) has range 0.
        inside = (ix >= 0) & (ix < width) & (iy >= 0) & (iy < height)
        start_occupied = np.zeros(n, dtype=bool)
        start_occupied[inside] = occ[iy[inside], ix[inside]]
        ranges[start_occupied | ~inside] = np.where(
            start_occupied[start_occupied | ~inside], 0.0, self.max_range
        )
        active &= inside & ~start_occupied

        # Advance all active rays one cell per iteration.  A ray of length
        # L cells crosses up to |dx|·L + |dy|·L <= sqrt(2)·L cell
        # boundaries, one per iteration.
        max_iters = int(np.ceil(max_range_cells * np.sqrt(2.0))) + 4
        for _ in range(max_iters):
            if not np.any(active):
                break
            go_x = active & (t_max_x < t_max_y)
            go_y = active & ~go_x

            # The parametric distance at which the ray *enters* the next
            # cell is the range if that cell is occupied.
            t_entry = np.where(go_x, t_max_x, t_max_y)

            ix[go_x] += step_x[go_x]
            t_max_x[go_x] += t_delta_x[go_x]
            iy[go_y] += step_y[go_y]
            t_max_y[go_y] += t_delta_y[go_y]

            # Rays that left the map or exceeded max range: clamp and stop.
            escaped = active & (
                (ix < 0) | (ix >= width) | (iy < 0) | (iy >= height)
                | (t_entry > max_range_cells)
            )
            ranges[escaped] = self.max_range
            active &= ~escaped

            if not np.any(active):
                break
            act = np.flatnonzero(active)
            hit = occ[iy[act], ix[act]]
            hit_idx = act[hit]
            ranges[hit_idx] = t_entry[hit_idx] * res
            active[hit_idx] = False

        return np.minimum(ranges, self.max_range)
