"""Common interface for all range-query methods.

A range method answers: *standing at world pose (x, y) and looking along
heading theta, how far is the first obstacle?*  Subclasses implement
:meth:`RangeMethod.calc_ranges` for an ``(N, 3)`` batch of queries; the
base class derives the scalar and scan-shaped conveniences from it.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.maps.occupancy_grid import OccupancyGrid

__all__ = ["RangeMethod"]


class RangeMethod(abc.ABC):
    """Abstract base class for occupancy-grid ray casting.

    Parameters
    ----------
    grid:
        The map to trace through.  Unknown cells block rays (conservative).
    max_range:
        Ranges are clamped to this value, like a real LiDAR's maximum
        range.  Defaults to the map diagonal (nothing is clamped).
    """

    def __init__(self, grid: OccupancyGrid, max_range: float | None = None) -> None:
        self.grid = grid
        self.max_range = float(max_range) if max_range is not None else grid.max_range_m
        # Reused (P*B, 3) query buffer for calc_ranges_pose_batch; lazily
        # allocated, replaced only when the batch shape changes.
        self._batch_buf: np.ndarray | None = None

    @abc.abstractmethod
    def calc_ranges(self, queries: np.ndarray) -> np.ndarray:
        """Ranges for an ``(N, 3)`` array of ``(x, y, theta)`` queries.

        Returns an ``(N,)`` float array in metres, clamped to
        ``self.max_range``.  A query starting inside an obstacle returns 0.

        Fallback contract: any ray that finds no obstacle reports exactly
        ``self.max_range``, regardless of *why* it found none — it left the
        map, it travelled ``max_range`` without a hit, or the
        implementation exhausted its iteration budget.  Implementations
        must not report a partial travelled distance for such rays, so
        downstream consumers (sensor models, scan alignment) can treat
        ``range == max_range`` uniformly as "no return".
        """

    # ------------------------------------------------------------------
    # Conveniences derived from calc_ranges
    # ------------------------------------------------------------------
    def calc_range(self, x: float, y: float, theta: float) -> float:
        """Single-ray convenience wrapper."""
        return float(self.calc_ranges(np.array([[x, y, theta]]))[0])

    def calc_range_many_angles(self, pose: np.ndarray, angles: np.ndarray) -> np.ndarray:
        """Expected scan from one pose: one range per beam angle.

        ``angles`` are beam directions relative to the pose heading, as a
        LiDAR reports them.
        """
        pose = np.asarray(pose, dtype=float)
        angles = np.asarray(angles, dtype=float)
        queries = np.empty((angles.size, 3))
        queries[:, 0] = pose[0]
        queries[:, 1] = pose[1]
        queries[:, 2] = pose[2] + angles
        return self.calc_ranges(queries)

    def calc_ranges_pose_batch(self, poses: np.ndarray, angles: np.ndarray) -> np.ndarray:
        """Expected scans for ``(P, 3)`` poses x ``(B,)`` beam angles.

        Returns ``(P, B)``.  This is the particle-filter hot path: every
        particle needs the expected range along every selected scanline.

        The flattened query array is assembled in a buffer reused across
        calls (reallocated only when ``(P, B)`` changes), written via
        broadcasting instead of fresh ``np.repeat``/``np.tile``
        temporaries.  Implementations never alias the query array into
        their results, so consecutive calls are independent; the method
        is not re-entrant from concurrent threads.
        """
        poses = np.asarray(poses, dtype=float)
        angles = np.asarray(angles, dtype=float)
        n_poses, n_beams = poses.shape[0], angles.size
        buf = self._batch_buf
        if buf is None or buf.shape[0] != n_poses * n_beams:
            buf = np.empty((n_poses * n_beams, 3))
            self._batch_buf = buf
        view = buf.reshape(n_poses, n_beams, 3)
        view[:, :, 0] = poses[:, 0, None]
        view[:, :, 1] = poses[:, 1, None]
        view[:, :, 2] = poses[:, 2, None] + angles[None, :]
        return self.calc_ranges(buf).reshape(n_poses, n_beams)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return type(self).__name__

    def memory_bytes(self) -> int:
        """Approximate size of this method's precomputed structures.

        The paper's LUT mode trades memory for constant-time queries; the
        ablation bench reports this trade-off explicitly.
        """
        return 0
