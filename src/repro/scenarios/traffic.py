"""The traffic axis of a scenario: opponent density, policy mix, spawning.

A :class:`TrafficSpec` declares the opponent field a scenario races
against — how many cars, which policies they run, where they spawn and how
fast they go — as a frozen, JSON-round-trippable value embedded in
:class:`~repro.scenarios.spec.ScenarioSpec`.  The campaign layer turns it
into a picklable factory of :class:`~repro.sim.agents.OpponentAgent`
objects (built worker-side against the track's raceline), seeded through
:func:`~repro.utils.rng.derive_seed` so the same scenario + seed produces
the identical opponent field at any worker count.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.agents import OpponentAgent, POLICY_REGISTRY, make_policy
from repro.utils.rng import derive_seed

__all__ = [
    "TrafficSpec",
    "build_traffic_agents",
    "traffic_agent_factory",
]


@dataclass(frozen=True)
class TrafficSpec:
    """Opponent traffic for one scenario.

    Attributes
    ----------
    density:
        Number of opponent cars (0 = empty track; the control cell of the
        traffic-density axis).
    policies:
        Policy names cycled over the field: opponent ``i`` runs
        ``policies[i % len(policies)]``.  See
        :data:`~repro.sim.agents.POLICY_REGISTRY`.
    spawn_ahead_s:
        Arclength of the first spawn ahead of the ego's start line, m.
    spawn_spacing_s:
        Arclength between consecutive spawns, m.
    speed:
        Nominal opponent pace, m/s (policies scale it: the blocker runs
        slightly under, the overtaker over).
    lateral_offset:
        Characteristic lane magnitude, m; opponents alternate sides.
    radius:
        Occlusion/hull radius per opponent, m.
    seed:
        Explicit field seed; ``None`` lets the campaign derive one from
        the run seed (the usual, worker-count-invariant path).
    """

    density: int = 0
    policies: Tuple[str, ...] = ("raceline",)
    spawn_ahead_s: float = 4.0
    spawn_spacing_s: float = 5.0
    speed: float = 2.5
    lateral_offset: float = 0.3
    radius: float = 0.25
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "policies", tuple(self.policies))

    def validate(self) -> "TrafficSpec":
        if self.density < 0:
            raise ValueError("traffic density must be >= 0")
        if not self.policies:
            raise ValueError("traffic needs at least one policy name")
        unknown = [p for p in self.policies if p not in POLICY_REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown opponent policies {unknown}; "
                f"available: {sorted(POLICY_REGISTRY)}"
            )
        if self.spawn_spacing_s <= 0:
            raise ValueError("spawn_spacing_s must be positive")
        if self.speed <= 0:
            raise ValueError("traffic speed must be positive")
        if self.radius <= 0:
            raise ValueError("traffic radius must be positive")
        return self

    # -- JSON round trip ------------------------------------------------
    def to_dict(self) -> Dict:
        out: Dict = {"__type__": "TrafficSpec"}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            out[spec_field.name] = (
                list(value) if spec_field.name == "policies" else value
            )
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "TrafficSpec":
        data = dict(data)
        tag = data.pop("__type__", "TrafficSpec")
        if tag != "TrafficSpec":
            raise ValueError(f"expected a TrafficSpec dict, got {tag!r}")
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown traffic fields: {sorted(unknown)}")
        data["policies"] = tuple(data.get("policies", ("raceline",)))
        return cls(**data)

    def with_overrides(self, **overrides) -> "TrafficSpec":
        changes = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **changes) if changes else self


def build_traffic_agents(spec: TrafficSpec, raceline,
                         seed: int) -> List[OpponentAgent]:
    """Instantiate the opponent field a :class:`TrafficSpec` declares.

    Opponent ``i`` spawns at ``spawn_ahead_s + i * spawn_spacing_s`` of
    arclength, runs ``policies[i % len(policies)]`` with a per-agent seed
    from ``derive_seed(seed, i, policy)``, and alternates lane side — the
    layout is a pure function of ``(spec, seed)``.
    """
    spec.validate()
    agents: List[OpponentAgent] = []
    for i in range(spec.density):
        name = spec.policies[i % len(spec.policies)]
        agent_seed = derive_seed(seed, i, name)
        side = 1.0 if i % 2 == 0 else -1.0
        policy = make_policy(
            name, seed=agent_seed, speed=spec.speed,
            lane=side * spec.lateral_offset,
        )
        agents.append(OpponentAgent(
            raceline, policy,
            start_s=spec.spawn_ahead_s + i * spec.spawn_spacing_s,
            radius=spec.radius,
            agent_id=i,
        ))
    return agents


def traffic_agent_factory(spec: TrafficSpec, seed: int) -> Callable:
    """A track-consuming agent factory for the experiment condition.

    The returned callable matches the ``ExperimentCondition``
    ``traffic_factory`` contract — called with the built track inside the
    worker process, after the scenario dict has crossed the process
    boundary as plain data.
    """
    spec = spec.validate()
    field_seed = spec.seed if spec.seed is not None else int(seed)

    def factory(track) -> List[OpponentAgent]:
        return build_traffic_agents(spec, track.centerline, field_seed)

    return factory
