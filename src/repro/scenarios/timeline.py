"""Timeline engine: arms, fires and reverts fault events inside a run.

A :class:`Timeline` is the bridge between a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` and the live experiment loop.
It implements the injection-hook protocol that
:meth:`repro.eval.experiment.LapExperiment.run` accepts (``bind(ctx)`` +
``tick(sim_time, lap_index)``), so the eval layer stays ignorant of what a
"scenario" is — it just gives the timeline a chance to act once per
control step, *before* the physics step that the tick describes.

Event lifecycle::

    pending --trigger--> (apply)  --duration==0--> done
                         --duration>0--> active --window ends--> (revert) done

While an event is ``active`` its ``update(ctx, memo, frac)`` hook runs
every tick with the window fraction — ramps interpolate there.  Every
``apply`` and ``revert`` appends an :class:`EventLogRecord`; the log is a
deterministic function of (events, seed, run seed), which the tests pin
down by comparing logs across repeated runs and worker counts.

Each event draws randomness only from a generator seeded with
``derive_seed(timeline_seed, event_index, kind)``, so adding an event
never perturbs another event's stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.scenarios.events import FaultEvent
from repro.utils.rng import derive_seed, make_rng

__all__ = ["EventLogRecord", "Timeline"]


@dataclass(frozen=True)
class EventLogRecord:
    """One structured entry in a timeline's event log."""

    time: float
    lap: int
    event_index: int
    kind: str
    phase: str  # "apply" | "revert"
    detail: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "time": round(float(self.time), 9),
            "lap": int(self.lap),
            "event_index": int(self.event_index),
            "kind": self.kind,
            "phase": self.phase,
            "detail": self.detail,
        }


_PENDING, _ACTIVE, _DONE = "pending", "active", "done"


class _EventState:
    __slots__ = ("phase", "memo", "t_applied")

    def __init__(self) -> None:
        self.phase = _PENDING
        self.memo: Dict = {}
        self.t_applied = 0.0


class Timeline:
    """Schedules a sequence of :class:`FaultEvent` over one run.

    Parameters
    ----------
    events:
        The scenario's fault events (order is preserved; ties on the same
        tick fire in sequence order).
    seed:
        Root seed for all event randomness.
    """

    def __init__(self, events: Sequence[FaultEvent], seed: int = 0) -> None:
        for event in events:
            event.validate()
        self.events: Tuple[FaultEvent, ...] = tuple(events)
        self.seed = int(seed)
        self.log: List[EventLogRecord] = []
        self.ctx = None
        self._states: List[_EventState] = []

    # -- injection-hook protocol (see LapExperiment.run) ----------------
    def bind(self, ctx) -> None:
        """Attach to a run; resets all event state and the log."""
        self.ctx = ctx
        self.log = []
        self._states = [_EventState() for _ in self.events]

    def tick(self, sim_time: float, lap_index: int) -> None:
        """Advance the schedule to ``sim_time`` (called once per control
        step; ``lap_index`` is -1 during the warm-up lap)."""
        if self.ctx is None:
            raise RuntimeError("Timeline.tick before bind()")
        for index, (event, state) in enumerate(zip(self.events, self._states)):
            if state.phase == _PENDING:
                if not event.triggered(sim_time, lap_index):
                    continue
                state.memo = {
                    "rng": make_rng(derive_seed(self.seed, index, event.kind)),
                }
                detail = event.apply(self.ctx, state.memo) or {}
                self._record(sim_time, lap_index, index, event, "apply", detail)
                if event.duration > 0:
                    state.phase = _ACTIVE
                    state.t_applied = sim_time
                    event.update(self.ctx, state.memo, 0.0)
                else:
                    state.phase = _DONE
            elif state.phase == _ACTIVE:
                elapsed = sim_time - state.t_applied
                if elapsed >= event.duration:
                    event.update(self.ctx, state.memo, 1.0)
                    detail = event.revert(self.ctx, state.memo) or {}
                    self._record(sim_time, lap_index, index, event,
                                 "revert", detail)
                    state.phase = _DONE
                else:
                    event.update(self.ctx, state.memo,
                                 elapsed / event.duration)

    # ------------------------------------------------------------------
    def _record(self, sim_time: float, lap_index: int, index: int,
                event: FaultEvent, phase: str, detail: Dict) -> None:
        self.log.append(EventLogRecord(
            time=sim_time, lap=lap_index, event_index=index,
            kind=event.kind, phase=phase, detail=detail,
        ))

    @property
    def complete(self) -> bool:
        """True once every event has fired and (if windowed) reverted."""
        return bool(self._states) and all(
            s.phase == _DONE for s in self._states
        ) or (not self.events and self.ctx is not None)

    def pending_count(self) -> int:
        return sum(1 for s in self._states if s.phase == _PENDING)

    def active_count(self) -> int:
        return sum(1 for s in self._states if s.phase == _ACTIVE)

    def log_as_dicts(self) -> List[Dict]:
        """JSON-ready event log (stable across runs for a fixed seed)."""
        return [record.to_dict() for record in self.log]
