"""Declarative scenario schema.

A :class:`ScenarioSpec` captures everything needed to reproduce one
robustness experiment — which localizer, which grip cell, how fast, how
many laps, the odometry perturbation baseline, and a timeline of fault
events — as a frozen, JSON-round-trippable value.  The contract is::

    load_scenario(path) == spec            after save_scenario(spec, path)
    ScenarioSpec.from_dict(spec.to_dict()) == spec

so scenarios can be checked into a repo, diffed, swept over, and shipped
to worker processes without losing information.  Dicts carry a
``schema_version`` so saved files fail loudly (rather than silently
misbehave) when the schema moves.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.eval.perturbations import OdometryPerturbation
from repro.scenarios.events import FaultEvent, event_from_dict, event_to_dict
from repro.scenarios.traffic import TrafficSpec

__all__ = [
    "SCHEMA_VERSION",
    "ScenarioSpec",
    "save_scenario",
    "load_scenario",
]

SCHEMA_VERSION = 1

_KNOWN_METHODS = ("synpf", "cartographer", "vanilla_mcl")


@dataclass(frozen=True)
class ScenarioSpec:
    """One named robustness scenario.

    Attributes
    ----------
    name, description, tags:
        Identity and catalog metadata.
    method:
        Default localizer under test (campaigns may sweep others).
    odom_quality:
        Baseline grip cell, "HQ" or "LQ" (the paper's Table I axis);
        events may change grip mid-run on top of this.
    speed_scale, num_laps, seed:
        Driving demand, scored laps, and the scenario's default seed.
    resolution, max_sim_time:
        Track build resolution and the per-run wall on simulated time.
    supervised:
        Run the localizer under the
        :class:`~repro.core.supervisor.LocalizationSupervisor` so
        divergence/recovery telemetry is recorded (required for scenarios
        whose scoring depends on recovery, e.g. kidnapping).
    perturbation:
        Baseline odometry-signal corruption (events mutate a *copy* of
        it mid-run).  ``None`` means a clean identity baseline.
    events:
        The fault timeline (see :mod:`repro.scenarios.events`).
    traffic:
        Opponent traffic on the track (see
        :class:`~repro.scenarios.traffic.TrafficSpec`); ``None`` means an
        empty track through the single-agent simulator — the pre-traffic
        behaviour, bit-for-bit.
    """

    name: str
    description: str = ""
    schema_version: int = SCHEMA_VERSION
    method: str = "synpf"
    odom_quality: str = "HQ"
    speed_scale: float = 0.9
    num_laps: int = 2
    seed: int = 0
    resolution: float = 0.05
    max_sim_time: float = 600.0
    supervised: bool = True
    perturbation: Optional[OdometryPerturbation] = None
    events: Tuple[FaultEvent, ...] = ()
    traffic: Optional[TrafficSpec] = None
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # Accept lists for the tuple fields (convenient construction and
        # the JSON path) but store tuples so the spec stays hashable-ish
        # and equality is well defined.
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(self, "tags", tuple(self.tags))

    # ------------------------------------------------------------------
    def validate(self) -> "ScenarioSpec":
        """Raise ``ValueError`` on an inconsistent spec; return self."""
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.schema_version != SCHEMA_VERSION:
            raise ValueError(
                f"scenario {self.name!r} has schema_version "
                f"{self.schema_version}, this build supports {SCHEMA_VERSION}"
            )
        if self.method not in _KNOWN_METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; expected one of "
                f"{_KNOWN_METHODS}"
            )
        if self.odom_quality not in ("HQ", "LQ"):
            raise ValueError("odom_quality must be 'HQ' or 'LQ'")
        if self.speed_scale <= 0:
            raise ValueError("speed_scale must be positive")
        if self.num_laps < 1:
            raise ValueError("num_laps must be >= 1")
        if self.resolution <= 0 or self.max_sim_time <= 0:
            raise ValueError("resolution and max_sim_time must be positive")
        for event in self.events:
            event.validate()
        if self.traffic is not None:
            self.traffic.validate()
        return self

    # -- JSON round trip ------------------------------------------------
    def to_dict(self) -> Dict:
        """Lossless JSON-ready dict (``from_dict`` inverts it exactly)."""
        out: Dict = {"__type__": "ScenarioSpec"}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name in ("perturbation", "traffic"):
                out[spec_field.name] = None if value is None else value.to_dict()
            elif spec_field.name == "events":
                out[spec_field.name] = [event_to_dict(e) for e in value]
            elif spec_field.name == "tags":
                out[spec_field.name] = list(value)
            else:
                out[spec_field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (strict: unknown keys rejected)."""
        data = dict(data)
        tag = data.pop("__type__", "ScenarioSpec")
        if tag != "ScenarioSpec":
            raise ValueError(f"expected a ScenarioSpec dict, got {tag!r}")
        version = data.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"scenario file has schema_version {version}; this build "
                f"supports {SCHEMA_VERSION}"
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario fields: {sorted(unknown)}"
            )
        if data.get("perturbation") is not None:
            data["perturbation"] = OdometryPerturbation.from_dict(
                data["perturbation"]
            )
        if data.get("traffic") is not None:
            data["traffic"] = TrafficSpec.from_dict(data["traffic"])
        data["events"] = tuple(
            event_from_dict(e) for e in data.get("events", ())
        )
        data["tags"] = tuple(data.get("tags", ()))
        return cls(**data)

    # -- convenience ----------------------------------------------------
    def with_overrides(self, **overrides) -> "ScenarioSpec":
        """A copy with the given fields replaced (``None`` values skipped)."""
        changes = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **changes) if changes else self

    def fresh_copy(self) -> "ScenarioSpec":
        """Deep copy via the JSON round trip.

        Runs must never share mutable state (the perturbation instance
        carries rng state and gets mutated by events), so every run starts
        from a fresh copy.
        """
        return ScenarioSpec.from_dict(self.to_dict())

    def summary_line(self) -> str:
        base = (f"{self.name:<18} {self.method:<12} {self.odom_quality:<3} "
                f"laps={self.num_laps} events={len(self.events)}")
        if self.traffic is not None:
            base += f" traffic={self.traffic.density}"
        return base + (f"  [{', '.join(self.tags)}]" if self.tags else "")


def save_scenario(spec: ScenarioSpec, path) -> None:
    """Write a validated scenario to a JSON file."""
    spec.validate()
    Path(path).write_text(json.dumps(spec.to_dict(), indent=2) + "\n")


def load_scenario(path) -> ScenarioSpec:
    """Read and validate a scenario JSON file."""
    data = json.loads(Path(path).read_text())
    return ScenarioSpec.from_dict(data).validate()
