"""Canonical scenario catalog.

Named, versioned scenarios covering the paper's two Table I cells plus an
escalating set of fault gauntlets.  Each entry is a builder function so
every call returns a *fresh* spec (perturbations are mutable); access them
through :func:`get_scenario` / :func:`list_scenarios`.

Timing notes baked into the triggers: on the replica test track at
``speed_scale = 0.9`` a lap takes roughly 10-12 s, and the run starts with
one unscored warm-up lap (``lap_index = -1``).  Triggers therefore use
``at_lap`` (which fires at scored-lap boundaries) for lap-scale faults and
``at_time`` offsets comfortably past the warm-up for mid-lap windows.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.eval.perturbations import OdometryPerturbation
from repro.scenarios.events import (
    GripChange,
    KidnapTeleport,
    LidarFault,
    ObstacleSpawn,
    OdometryFault,
    ScanLatencyJitter,
    SlipBurst,
)
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.traffic import TrafficSpec

__all__ = ["SCENARIO_LIBRARY", "get_scenario", "list_scenarios", "scenario_names"]


# ---------------------------------------------------------------------------
# Paper cells as scenarios
# ---------------------------------------------------------------------------
def _nominal_hq() -> ScenarioSpec:
    return ScenarioSpec(
        name="nominal-hq",
        description=("Paper Table I, fresh-tire cell: high-quality odometry, "
                     "no injected faults. The control scenario every other "
                     "entry is compared against."),
        odom_quality="HQ",
        tags=("paper", "baseline"),
    )


def _taped_lq() -> ScenarioSpec:
    return ScenarioSpec(
        name="taped-lq",
        description=("Paper Table I, taped-tire cell: low-grip tires corrupt "
                     "wheel odometry while the demanded speed stays the "
                     "same. Cartographer's cell, per the paper."),
        odom_quality="LQ",
        tags=("paper", "baseline"),
    )


# ---------------------------------------------------------------------------
# Single-axis faults
# ---------------------------------------------------------------------------
def _grip_cliff() -> ScenarioSpec:
    return ScenarioSpec(
        name="grip-cliff",
        description=("Oil-patch grip collapse: friction steps down to "
                     "taped-tire levels for one lap mid-run, then recovers. "
                     "Tests transient odometry corruption."),
        odom_quality="HQ",
        num_laps=3,
        events=(
            GripChange(mu=0.50, longitudinal_stiffness=2.2,
                       cornering_stiffness=6.0, at_lap=1, duration=11.0),
        ),
        tags=("grip", "transient"),
    )


def _odometry_decay() -> ScenarioSpec:
    return ScenarioSpec(
        name="odometry-decay",
        description=("Progressive odometry failure: noise gain and a yaw-rate "
                     "bias ramp up over 20 s and stay — an encoder/IMU "
                     "mount degrading mid-stint."),
        odom_quality="HQ",
        num_laps=3,
        perturbation=OdometryPerturbation(),
        events=(
            OdometryFault(noise_gain=0.6, yaw_bias=0.12, ramp=True,
                          permanent=True, at_lap=0, duration=20.0),
        ),
        tags=("odometry", "ramp"),
    )


def _slip_storm() -> ScenarioSpec:
    return ScenarioSpec(
        name="slip-storm",
        description=("Repeated wheel-slip bursts (standing water on the "
                     "racing line): every odometry interval inside two "
                     "windows over-reports translation by 80%."),
        odom_quality="HQ",
        num_laps=3,
        perturbation=OdometryPerturbation(),
        events=(
            SlipBurst(scale=1.8, burst_duration=0.4, prob=0.6,
                      at_lap=0, duration=6.0),
            SlipBurst(scale=2.2, burst_duration=0.5, prob=0.8,
                      at_lap=2, duration=6.0),
        ),
        tags=("odometry", "slip"),
    )


def _lidar_blackout() -> ScenarioSpec:
    return ScenarioSpec(
        name="lidar-blackout",
        description=("Sensor outage: the LiDAR reports max range on every "
                     "beam for 1.5 s mid-lap, then a lap of inflated noise "
                     "and beam dropouts (rain). Localizers must coast on "
                     "odometry and re-converge."),
        odom_quality="HQ",
        num_laps=3,
        events=(
            LidarFault(blackout=True, at_lap=1, duration=1.5),
            LidarFault(noise_scale=4.0, dropout_prob=0.06,
                       at_lap=2, duration=8.0),
        ),
        tags=("lidar", "transient"),
    )


def _scan_jitter() -> ScenarioSpec:
    return ScenarioSpec(
        name="scan-jitter",
        description=("Transport jitter on the LiDAR path: scan arrivals are "
                     "delayed by |N(0, 15 ms)| for two laps, stressing the "
                     "odometry-accumulation bookkeeping between updates."),
        odom_quality="HQ",
        num_laps=3,
        events=(
            ScanLatencyJitter(jitter_std=0.015, at_lap=0, duration=22.0),
        ),
        tags=("lidar", "timing"),
    )


def _kidnap_chicane() -> ScenarioSpec:
    return ScenarioSpec(
        name="kidnap-chicane",
        description=("Kidnapped robot at speed: the car teleports 2 m of "
                     "arclength down the track, rotated 0.45 rad, during "
                     "the first scored lap. Odometry never sees the jump; "
                     "only the supervisor's scan-consistency monitor can "
                     "notice and relocalize."),
        odom_quality="HQ",
        speed_scale=0.6,
        num_laps=2,
        seed=5,
        supervised=True,
        events=(
            KidnapTeleport(offset_s=2.0, rotate=0.45, at_lap=0),
        ),
        tags=("kidnap", "supervisor"),
    )


def _traffic() -> ScenarioSpec:
    return ScenarioSpec(
        name="traffic",
        description=("Unmapped obstacles: an opponent car laps the raceline "
                     "ahead of the ego, and a pylon appears on the line for "
                     "one lap — scan points that match no map cell."),
        odom_quality="HQ",
        num_laps=3,
        events=(
            ObstacleSpawn(obstacle="follower", s=6.0, speed=2.5,
                          lateral_offset=0.25, radius=0.25, at_lap=0),
            ObstacleSpawn(obstacle="static", s=12.0, lateral_offset=0.3,
                          radius=0.15, at_lap=1, duration=11.0),
        ),
        tags=("obstacles",),
    )


# ---------------------------------------------------------------------------
# Traffic density axis — multi-agent racing
# ---------------------------------------------------------------------------
def _traffic_density(density: int, policies, description: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"traffic-density-{density}",
        description=description,
        odom_quality="HQ",
        num_laps=2,
        traffic=TrafficSpec(
            density=density,
            policies=tuple(policies),
            spawn_ahead_s=4.0,
            spawn_spacing_s=5.0,
            speed=2.5,
            lateral_offset=0.3,
        ),
        tags=("traffic", "occlusion"),
    )


def _traffic_density_0() -> ScenarioSpec:
    return _traffic_density(
        0, ("raceline",),
        "Traffic axis control cell: the multi-agent scheduler with an "
        "empty field. Must match the single-agent path bit-for-bit.",
    )


def _traffic_density_1() -> ScenarioSpec:
    return _traffic_density(
        1, ("raceline",),
        "One opponent lapping the raceline ahead of the ego: the minimal "
        "inter-vehicle occlusion case.",
    )


def _traffic_density_2() -> ScenarioSpec:
    return _traffic_density(
        2, ("raceline", "lane_switcher"),
        "Two opponents, one weaving between lanes: moving occlusion "
        "sweeping across the beam fan.",
    )


def _traffic_density_4() -> ScenarioSpec:
    return _traffic_density(
        4, ("raceline", "blocker", "lane_switcher", "overtaker"),
        "A full field of four mixed-policy opponents — blocking, weaving "
        "and overtaking — so a large fraction of every scan is car, not "
        "map.",
    )


# ---------------------------------------------------------------------------
# Gauntlets — compound, escalating
# ---------------------------------------------------------------------------
def _gauntlet_lq() -> ScenarioSpec:
    return ScenarioSpec(
        name="gauntlet-lq",
        description=("Everything at once on taped tires: slip bursts, a "
                     "LiDAR noise window and scan jitter stacked on the "
                     "LQ baseline. The paper's hard cell, made harder."),
        odom_quality="LQ",
        num_laps=3,
        perturbation=OdometryPerturbation(noise_gain=0.2),
        events=(
            SlipBurst(scale=1.8, burst_duration=0.4, prob=0.5,
                      at_lap=0, duration=6.0),
            LidarFault(noise_scale=3.0, dropout_prob=0.04,
                       at_lap=1, duration=8.0),
            ScanLatencyJitter(jitter_std=0.01, at_lap=2, duration=10.0),
        ),
        tags=("gauntlet", "compound"),
    )


def _gauntlet_kidnap() -> ScenarioSpec:
    return ScenarioSpec(
        name="gauntlet-kidnap",
        description=("Divergence-and-recovery gauntlet: degraded odometry, "
                     "then a kidnapping. The supervisor must detect the "
                     "divergence and recover within the remaining laps."),
        odom_quality="HQ",
        speed_scale=0.6,
        num_laps=3,
        supervised=True,
        perturbation=OdometryPerturbation(noise_gain=0.15),
        events=(
            OdometryFault(yaw_bias=0.06, at_lap=0),
            KidnapTeleport(offset_s=2.0, rotate=0.45, at_lap=1),
        ),
        tags=("gauntlet", "kidnap", "supervisor"),
    )


def _gauntlet_traffic() -> ScenarioSpec:
    return ScenarioSpec(
        name="gauntlet-traffic",
        description=("Kidnapped in traffic: two opponents occlude the scan "
                     "while the car teleports mid-lap. The supervisor must "
                     "relocalize against a map whose evidence is partly "
                     "blocked by other cars."),
        odom_quality="HQ",
        speed_scale=0.6,
        num_laps=3,
        supervised=True,
        events=(
            KidnapTeleport(offset_s=2.0, rotate=0.45, at_lap=1),
        ),
        traffic=TrafficSpec(
            density=2,
            policies=("raceline", "lane_switcher"),
            spawn_ahead_s=4.0,
            spawn_spacing_s=6.0,
            speed=2.0,
            lateral_offset=0.3,
        ),
        tags=("gauntlet", "traffic", "kidnap", "supervisor"),
    )


_BUILDERS: Dict[str, Callable[[], ScenarioSpec]] = {
    builder().name: builder
    for builder in (
        _nominal_hq,
        _taped_lq,
        _grip_cliff,
        _odometry_decay,
        _slip_storm,
        _lidar_blackout,
        _scan_jitter,
        _kidnap_chicane,
        _traffic,
        _traffic_density_0,
        _traffic_density_1,
        _traffic_density_2,
        _traffic_density_4,
        _gauntlet_lq,
        _gauntlet_kidnap,
        _gauntlet_traffic,
    )
}

#: Public name -> builder mapping (builders return fresh specs).
SCENARIO_LIBRARY: Dict[str, Callable[[], ScenarioSpec]] = dict(_BUILDERS)


def scenario_names() -> List[str]:
    """Catalog names in canonical (definition) order."""
    return list(SCENARIO_LIBRARY)


def get_scenario(name: str) -> ScenarioSpec:
    """A fresh, validated instance of a named scenario."""
    builder = SCENARIO_LIBRARY.get(name)
    if builder is None:
        raise KeyError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        )
    return builder().validate()


def list_scenarios() -> List[ScenarioSpec]:
    """Fresh instances of every catalog scenario, in canonical order."""
    return [get_scenario(name) for name in scenario_names()]
