"""Fault-event library: the vocabulary of declarative scenarios.

Every event is a frozen dataclass describing *what goes wrong and when* —
never *how the run reacts* (that is measured).  The timeline engine
(:mod:`repro.scenarios.timeline`) arms events, fires them against the live
run's :class:`~repro.eval.experiment.RunContext`, and reverts windowed
events when their duration elapses.

Common trigger fields (exactly one of ``at_time`` / ``at_lap`` must be
set):

``at_time``
    Simulation time in seconds (the clock starts at the warm-up lap).
``at_lap``
    Scored-lap index: 0 fires at the start of the first scored lap.
``duration``
    0 makes the event instantaneous and permanent (teleport, permanent
    parameter change); > 0 opens a *window* — the effect is active for
    that many seconds and then reverted (unless the event declares itself
    ``permanent``, in which case the window only shapes a ramp).

Events that draw random numbers receive a generator seeded by
``derive_seed(timeline_seed, event_index, kind)`` — behaviour is
bit-reproducible for a given scenario seed regardless of what other
events do.

Serialisation: events round-trip through JSON via
:func:`event_to_dict` / :func:`event_from_dict`; the ``__type__`` tag is
resolved against :data:`EVENT_REGISTRY`, so new event kinds only need the
``@register_event`` decorator.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Type

import numpy as np

from repro.utils.config_io import config_from_dict, config_to_dict

__all__ = [
    "FaultEvent",
    "GripChange",
    "OdometryFault",
    "SlipBurst",
    "LidarFault",
    "ScanLatencyJitter",
    "KidnapTeleport",
    "ObstacleSpawn",
    "EVENT_REGISTRY",
    "register_event",
    "event_to_dict",
    "event_from_dict",
]


EVENT_REGISTRY: Dict[str, Type["FaultEvent"]] = {}


def register_event(cls: Type["FaultEvent"]) -> Type["FaultEvent"]:
    """Class decorator adding an event type to the serialisation registry."""
    EVENT_REGISTRY[cls.__name__] = cls
    return cls


def event_to_dict(event: "FaultEvent") -> Dict:
    """JSON-ready dict of an event (tagged with its registered type)."""
    return config_to_dict(event)


def event_from_dict(data: Dict) -> "FaultEvent":
    """Rebuild an event from :func:`event_to_dict` output."""
    tag = data.get("__type__")
    if tag is None:
        raise ValueError("event dict is missing its '__type__' tag")
    cls = EVENT_REGISTRY.get(tag)
    if cls is None:
        raise ValueError(
            f"unknown event type {tag!r}; known: {sorted(EVENT_REGISTRY)}"
        )
    return config_from_dict(cls, data)


@dataclass(frozen=True)
class FaultEvent(abc.ABC):
    """Base declaration: trigger + optional active window.

    Subclasses implement :meth:`apply` (fire), and optionally
    :meth:`update` (called while the window is open, with the window
    fraction in [0, 1] — ramps live here) and :meth:`revert` (window
    closed).  All three receive the run's
    :class:`~repro.eval.experiment.RunContext` and a per-event ``memo``
    dict (holds the event's seeded rng under ``"rng"`` plus whatever
    ``apply`` stashes for ``revert``).  ``apply``/``revert`` may return a
    small JSON-able dict that the timeline embeds in its event log.
    """

    kind: ClassVar[str] = "fault"

    at_time: Optional[float] = None
    at_lap: Optional[int] = None
    duration: float = 0.0

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if (self.at_time is None) == (self.at_lap is None):
            raise ValueError(
                f"{type(self).__name__}: exactly one of at_time / at_lap "
                "must be set"
            )
        if self.at_time is not None and self.at_time < 0:
            raise ValueError("at_time must be non-negative")
        if self.at_lap is not None and self.at_lap < 0:
            raise ValueError("at_lap must be non-negative")
        if self.duration < 0:
            raise ValueError("duration must be non-negative")
        self._validate_params()

    def _validate_params(self) -> None:
        """Subclass parameter checks (default: nothing extra)."""

    # ------------------------------------------------------------------
    def triggered(self, sim_time: float, lap_index: int) -> bool:
        if self.at_time is not None:
            return sim_time >= self.at_time
        return lap_index >= self.at_lap

    @abc.abstractmethod
    def apply(self, ctx, memo: Dict) -> Optional[Dict]:
        """Fire the event against the live run."""

    def update(self, ctx, memo: Dict, frac: float) -> None:
        """Called every tick while the window is open (``frac`` in [0, 1])."""

    def revert(self, ctx, memo: Dict) -> Optional[Dict]:
        """Undo the effect when the window closes."""
        return None


def _require_perturbation(ctx, event: FaultEvent):
    perturbation = getattr(ctx, "perturbation", None)
    if perturbation is None:
        raise RuntimeError(
            f"{type(event).__name__} needs an odometry perturbation in the "
            "run context; scenario runs always provide one (see "
            "repro.scenarios.campaign.run_scenario)"
        )
    return perturbation


def _lerp(a: float, b: float, frac: float) -> float:
    return a + (b - a) * frac


# ---------------------------------------------------------------------------
# Grip
# ---------------------------------------------------------------------------
@register_event
@dataclass(frozen=True)
class GripChange(FaultEvent):
    """Friction change: oil patch, rain band, tire wear, the paper's taping.

    ``mu`` is the target friction coefficient; stiffness targets default to
    "unchanged".  ``ramp=True`` (requires ``duration > 0``) interpolates
    from the current tire to the target across the window instead of
    stepping.  Windowed changes revert to the original tire when the
    window closes unless ``permanent=True``.
    """

    kind: ClassVar[str] = "grip"

    mu: float = 0.56
    longitudinal_stiffness: Optional[float] = None
    cornering_stiffness: Optional[float] = None
    ramp: bool = False
    permanent: bool = False

    def _validate_params(self) -> None:
        if self.mu <= 0:
            raise ValueError("mu must be positive")
        if self.ramp and self.duration <= 0:
            raise ValueError("ramp=True requires duration > 0")

    def _target(self, original):
        return dataclasses.replace(
            original,
            mu=self.mu,
            longitudinal_stiffness=(
                self.longitudinal_stiffness
                if self.longitudinal_stiffness is not None
                else original.longitudinal_stiffness
            ),
            cornering_stiffness=(
                self.cornering_stiffness
                if self.cornering_stiffness is not None
                else original.cornering_stiffness
            ),
        )

    def apply(self, ctx, memo: Dict) -> Optional[Dict]:
        original = ctx.sim.tire
        memo["original"] = original
        memo["target"] = self._target(original)
        if not self.ramp:
            ctx.sim.set_tire(memo["target"])
        return {"mu_from": original.mu, "mu_to": memo["target"].mu}

    def update(self, ctx, memo: Dict, frac: float) -> None:
        if not self.ramp:
            return
        original, target = memo["original"], memo["target"]
        ctx.sim.set_tire(dataclasses.replace(
            original,
            mu=_lerp(original.mu, target.mu, frac),
            longitudinal_stiffness=_lerp(
                original.longitudinal_stiffness,
                target.longitudinal_stiffness, frac,
            ),
            cornering_stiffness=_lerp(
                original.cornering_stiffness,
                target.cornering_stiffness, frac,
            ),
        ))

    def revert(self, ctx, memo: Dict) -> Optional[Dict]:
        if self.permanent:
            ctx.sim.set_tire(memo["target"])
            return {"held": True, "mu": memo["target"].mu}
        ctx.sim.set_tire(memo["original"])
        return {"mu": memo["original"].mu}


# ---------------------------------------------------------------------------
# Odometry signal
# ---------------------------------------------------------------------------
@register_event
@dataclass(frozen=True)
class OdometryFault(FaultEvent):
    """Degrade the odometry *signal* through the perturbation harness.

    Fields left ``None`` keep the perturbation's current value.
    ``ramp=True`` interpolates numeric fields from their current values to
    the targets across the window; windowed faults restore the originals
    afterwards unless ``permanent=True``.
    """

    kind: ClassVar[str] = "odometry"

    noise_gain: Optional[float] = None
    speed_scale: Optional[float] = None
    yaw_bias: Optional[float] = None
    dropout_prob: Optional[float] = None
    ramp: bool = False
    permanent: bool = False

    _FIELDS: ClassVar[tuple] = (
        "noise_gain", "speed_scale", "yaw_bias", "dropout_prob",
    )

    def _validate_params(self) -> None:
        if all(getattr(self, name) is None for name in self._FIELDS):
            raise ValueError("OdometryFault with no effect: set at least "
                             "one of noise_gain/speed_scale/yaw_bias/"
                             "dropout_prob")
        if self.noise_gain is not None and self.noise_gain < 0:
            raise ValueError("noise_gain must be >= 0")
        if self.speed_scale is not None and self.speed_scale <= 0:
            raise ValueError("speed_scale must be > 0")
        if self.dropout_prob is not None and not 0 <= self.dropout_prob <= 1:
            raise ValueError("dropout_prob must be in [0, 1]")
        if self.ramp and self.duration <= 0:
            raise ValueError("ramp=True requires duration > 0")

    def apply(self, ctx, memo: Dict) -> Optional[Dict]:
        perturbation = _require_perturbation(ctx, self)
        targets = {name: getattr(self, name) for name in self._FIELDS
                   if getattr(self, name) is not None}
        memo["original"] = {name: getattr(perturbation, name)
                            for name in targets}
        memo["targets"] = targets
        if not self.ramp:
            for name, value in targets.items():
                setattr(perturbation, name, value)
        return {"targets": dict(targets)}

    def update(self, ctx, memo: Dict, frac: float) -> None:
        if not self.ramp:
            return
        perturbation = _require_perturbation(ctx, self)
        for name, target in memo["targets"].items():
            setattr(perturbation, name,
                    _lerp(memo["original"][name], target, frac))

    def revert(self, ctx, memo: Dict) -> Optional[Dict]:
        perturbation = _require_perturbation(ctx, self)
        if self.permanent:
            for name, value in memo["targets"].items():
                setattr(perturbation, name, value)
            return {"held": True}
        for name, value in memo["original"].items():
            setattr(perturbation, name, value)
        return {"restored": sorted(memo["original"])}


@register_event
@dataclass(frozen=True)
class SlipBurst(FaultEvent):
    """A window of wheel-slip bursts (standing water, painted kerbs).

    While the window is open the perturbation enters slip bursts with
    probability ``prob`` per odometry interval, each multiplying reported
    translation by ``scale`` for ``burst_duration`` seconds.
    """

    kind: ClassVar[str] = "slip-burst"

    scale: float = 1.8
    burst_duration: float = 0.4
    prob: float = 1.0

    def _validate_params(self) -> None:
        if self.duration <= 0:
            raise ValueError("SlipBurst needs duration > 0 (it is a window)")
        if self.scale <= 0 or self.burst_duration <= 0:
            raise ValueError("scale and burst_duration must be positive")
        if not 0 <= self.prob <= 1:
            raise ValueError("prob must be in [0, 1]")

    def apply(self, ctx, memo: Dict) -> Optional[Dict]:
        perturbation = _require_perturbation(ctx, self)
        memo["original"] = {
            "slip_burst_prob": perturbation.slip_burst_prob,
            "slip_burst_scale": perturbation.slip_burst_scale,
            "slip_burst_duration": perturbation.slip_burst_duration,
        }
        perturbation.slip_burst_prob = self.prob
        perturbation.slip_burst_scale = self.scale
        perturbation.slip_burst_duration = self.burst_duration
        return {"scale": self.scale, "prob": self.prob}

    def revert(self, ctx, memo: Dict) -> Optional[Dict]:
        perturbation = _require_perturbation(ctx, self)
        for name, value in memo["original"].items():
            setattr(perturbation, name, value)
        return None


# ---------------------------------------------------------------------------
# LiDAR
# ---------------------------------------------------------------------------
@register_event
@dataclass(frozen=True)
class LidarFault(FaultEvent):
    """Exteroceptive degradation: outage, noise inflation, beam dropouts.

    ``blackout`` makes every beam report max range (cable/driver outage);
    ``noise_scale`` multiplies the configured range-noise std (rain, dust);
    ``dropout_prob`` overrides the per-beam dropout probability (dark or
    specular surfaces).  Windowed faults clear when the window closes.
    """

    kind: ClassVar[str] = "lidar"

    blackout: bool = False
    noise_scale: Optional[float] = None
    dropout_prob: Optional[float] = None

    def _validate_params(self) -> None:
        if (not self.blackout and self.noise_scale is None
                and self.dropout_prob is None):
            raise ValueError("LidarFault with no effect: set blackout, "
                             "noise_scale or dropout_prob")
        if self.noise_scale is not None and self.noise_scale < 0:
            raise ValueError("noise_scale must be >= 0")
        if self.dropout_prob is not None and not 0 <= self.dropout_prob < 1:
            raise ValueError("dropout_prob must be in [0, 1)")

    def apply(self, ctx, memo: Dict) -> Optional[Dict]:
        ctx.sim.lidar.set_fault(
            blackout=self.blackout or None,
            noise_scale=self.noise_scale,
            dropout_prob=self.dropout_prob,
        )
        detail: Dict = {}
        if self.blackout:
            detail["blackout"] = True
        if self.noise_scale is not None:
            detail["noise_scale"] = self.noise_scale
        if self.dropout_prob is not None:
            detail["dropout_prob"] = self.dropout_prob
        return detail

    def revert(self, ctx, memo: Dict) -> Optional[Dict]:
        ctx.sim.lidar.clear_fault()
        return None


@register_event
@dataclass(frozen=True)
class ScanLatencyJitter(FaultEvent):
    """Irregular scan arrival: transport/compute jitter on the LiDAR path.

    Each emitted scan delays the next one by
    ``jitter_mean + |N(0, jitter_std)|`` extra seconds, drawn from the
    event's own seeded generator.
    """

    kind: ClassVar[str] = "scan-jitter"

    jitter_std: float = 0.01
    jitter_mean: float = 0.0

    def _validate_params(self) -> None:
        if self.jitter_std < 0 or self.jitter_mean < 0:
            raise ValueError("jitter parameters must be non-negative")
        if self.jitter_std == 0 and self.jitter_mean == 0:
            raise ValueError("ScanLatencyJitter with no effect")

    def apply(self, ctx, memo: Dict) -> Optional[Dict]:
        rng = memo["rng"]

        def draw() -> float:
            return self.jitter_mean + abs(float(rng.normal(0.0, self.jitter_std)))

        ctx.sim.scan_jitter_fn = draw
        return {"jitter_std": self.jitter_std, "jitter_mean": self.jitter_mean}

    def revert(self, ctx, memo: Dict) -> Optional[Dict]:
        ctx.sim.scan_jitter_fn = None
        return None


# ---------------------------------------------------------------------------
# Kidnapping
# ---------------------------------------------------------------------------
@register_event
@dataclass(frozen=True)
class KidnapTeleport(FaultEvent):
    """Teleport the car along the raceline; odometry never notices.

    The car's ground-truth pose jumps ``offset_s`` metres of arclength
    ahead (projected onto the centerline), offset laterally by
    ``lateral_offset`` and rotated by ``rotate`` radians — the classic
    kidnapped-robot fault that only the supervisor's scan-consistency
    monitoring can detect.  Always instantaneous.
    """

    kind: ClassVar[str] = "kidnap"

    offset_s: float = 5.0
    lateral_offset: float = 0.0
    rotate: float = 0.0

    def _validate_params(self) -> None:
        if self.duration != 0:
            raise ValueError("KidnapTeleport is instantaneous "
                             "(duration must be 0)")
        if self.offset_s == 0 and self.lateral_offset == 0 and self.rotate == 0:
            raise ValueError("KidnapTeleport with no displacement")

    def apply(self, ctx, memo: Dict) -> Optional[Dict]:
        line = ctx.track.centerline
        pose = ctx.sim.state.pose()
        s_now, _ = line.project(pose[None, :2])
        s_target = float(s_now[0]) + self.offset_s
        point = line.point_at(s_target)
        heading = line.heading_at(s_target)
        if self.lateral_offset != 0.0:
            point = point + self.lateral_offset * np.array(
                [-np.sin(heading), np.cos(heading)]
            )
        target = np.array([point[0], point[1], heading + self.rotate])
        ctx.sim.teleport(target)
        return {
            "from": [round(float(v), 6) for v in pose],
            "to": [round(float(v), 6) for v in target],
        }


# ---------------------------------------------------------------------------
# Unmapped obstacles
# ---------------------------------------------------------------------------
@register_event
@dataclass(frozen=True)
class ObstacleSpawn(FaultEvent):
    """Spawn an unmapped obstacle; despawn it when the window closes.

    Placement is raceline-relative (arclength ``s`` plus
    ``lateral_offset``, positive = left), so catalog scenarios work on any
    track.  ``obstacle="static"`` drops a fixed disc there;
    ``obstacle="follower"`` launches an opponent car lapping the raceline
    from ``s`` at ``speed``.  ``duration == 0`` leaves the obstacle in
    place for the rest of the run.
    """

    kind: ClassVar[str] = "obstacle"

    obstacle: str = "static"     # "static" | "follower"
    s: float = 0.0
    speed: float = 3.0
    lateral_offset: float = 0.0
    radius: float = 0.25

    def _validate_params(self) -> None:
        if self.obstacle not in ("static", "follower"):
            raise ValueError("obstacle must be 'static' or 'follower'")
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.obstacle == "follower" and self.speed < 0:
            raise ValueError("speed must be non-negative")

    def apply(self, ctx, memo: Dict) -> Optional[Dict]:
        from repro.sim.obstacles import RacelineFollower, StaticObstacle

        line = ctx.track.centerline
        if self.obstacle == "static":
            point = line.point_at(self.s)
            if self.lateral_offset != 0.0:
                heading = line.heading_at(self.s)
                point = point + self.lateral_offset * np.array(
                    [-np.sin(heading), np.cos(heading)]
                )
            obj = StaticObstacle(float(point[0]), float(point[1]),
                                 radius=self.radius)
        else:
            obj = RacelineFollower(
                line, start_s=self.s, speed=self.speed,
                lateral_offset=self.lateral_offset, radius=self.radius,
            )
        memo["obstacle"] = obj
        ctx.sim.obstacles.append(obj)
        return {"obstacle": self.obstacle, "radius": self.radius}

    def revert(self, ctx, memo: Dict) -> Optional[Dict]:
        try:
            ctx.sim.obstacles.remove(memo["obstacle"])
        except ValueError:
            pass  # externally cleared
        return None
