"""Robustness campaigns: scenario x localizer x trial matrices.

A *campaign* fans a set of :class:`~repro.scenarios.spec.ScenarioSpec`
across localization methods and Monte-Carlo trials through the
fault-tolerant :class:`~repro.eval.runner.SweepRunner` pool, then folds
the per-trial records into a *robustness scorecard*: survival rate,
pooled localization-error quantiles, crash counts, supervisor recoveries
and time-to-recover per (scenario, method) cell.

Determinism contract (inherited from the runner and extended here): every
number in a trial record and in the scorecard is a function of
``(scenario dict, method, derived seed)`` only — wall-clock latencies are
deliberately excluded — so the same campaign is bit-identical at any
worker count, which the tests assert.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.eval.runner import (
    SweepResult,
    SweepRunner,
    TrialFailure,
    TrialRecord,
    TrialSpec,
    _experiment_for,
)
from repro.eval.perturbations import OdometryPerturbation
from repro.scenarios.library import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.timeline import Timeline
from repro.utils.rng import derive_seed

__all__ = [
    "ScenarioOutcome",
    "run_scenario",
    "run_scenario_trial",
    "make_campaign_specs",
    "aggregate_scorecard",
    "format_scorecard",
    "run_campaign",
    "save_scorecard",
]

# v2: added the merged "telemetry" metrics block (campaign.* counters and
# fixed-bucket histograms folded over trials in sorted-trial_id order).
# v3: traffic columns — per-cell opponent count and occluded-beam-fraction
# aggregates, plus traffic.* counters and the occlusion histogram in the
# merged telemetry block.
SCORECARD_SCHEMA_VERSION = 3

# Fixed bucket edges for time-to-recover; lap-time and loc-error edges are
# shared with the lap sweep (repro.eval.runner).
RECOVERY_TIME_EDGES_S = (0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0)


@dataclasses.dataclass
class ScenarioOutcome:
    """Everything one scenario run produced.

    ``summary`` and ``event_log`` contain only deterministic quantities;
    ``result`` additionally carries wall-clock latency fields.
    """

    spec: ScenarioSpec
    method: str
    seed: int
    result: object  # ConditionResult
    event_log: List[Dict]
    summary: Dict


def _resolve(spec_or_name: Union[ScenarioSpec, str]) -> ScenarioSpec:
    if isinstance(spec_or_name, str):
        return get_scenario(spec_or_name)
    return spec_or_name


def _trial_summary(spec: ScenarioSpec, result, event_log: List[Dict]) -> Dict:
    """Deterministic flat metrics for one run (no wall-clock values)."""
    valid = [lap for lap in result.laps if lap.valid]
    telemetry = result.supervisor_telemetry or {}
    episodes = telemetry.get("episodes", [])
    recover_times = [
        e["end_time"] - e["start_time"] for e in episodes
        if e.get("end_time") is not None
    ]
    survived = (len(valid) == spec.num_laps and result.crashes == 0)
    traffic = getattr(result, "traffic_telemetry", None) or {}
    return {
        "survived": bool(survived),
        "laps_completed": len(result.laps),
        "laps_valid": len(valid),
        "crashes": int(result.crashes),
        "lap_times_s": [round(lap.lap_time, 9) for lap in valid],
        "lap_loc_err_cm": [round(lap.localization_error_mean_cm, 9)
                           for lap in valid],
        "lap_loc_err_max_cm": [round(lap.localization_error_max_cm, 9)
                               for lap in valid],
        "lap_lateral_err_cm": [round(lap.lateral_error_mean_cm, 9)
                               for lap in valid],
        "scan_alignment_pct": [round(lap.scan_alignment_percent, 9)
                               for lap in valid],
        "recoveries": int(telemetry.get("num_recoveries", 0)),
        "divergence_episodes": len(episodes),
        "recovered_episodes": len(recover_times),
        "time_to_recover_s": [round(t, 9) for t in recover_times],
        "events_fired": sum(1 for r in event_log if r["phase"] == "apply"),
        "traffic_agents": int(traffic.get("agents", 0)),
        "traffic_scans_occluded": int(traffic.get("scans_occluded", 0)),
        "occluded_beam_fraction_mean": round(
            float(traffic.get("occluded_beam_fraction_mean", 0.0)), 9),
        "occluded_beam_fraction_max": round(
            float(traffic.get("occluded_beam_fraction_max", 0.0)), 9),
        "occlusion_histogram": traffic.get("occlusion_histogram"),
        "traffic_min_gap_m": traffic.get("min_gap_m"),
    }


def run_scenario(
    spec_or_name: Union[ScenarioSpec, str],
    *,
    method: Optional[str] = None,
    seed: Optional[int] = None,
    num_laps: Optional[int] = None,
    speed_scale: Optional[float] = None,
    resolution: Optional[float] = None,
    max_sim_time: Optional[float] = None,
    progress: Optional[Callable] = None,
) -> ScenarioOutcome:
    """Execute one scenario end to end and return its outcome.

    Keyword overrides replace the corresponding spec fields for this run
    only.  The spec is deep-copied through its JSON round trip first, so
    runs never share mutable state (events mutate the perturbation).
    """
    from repro.core.supervisor import SupervisorConfig
    from repro.eval.experiment import ExperimentCondition

    spec = _resolve(spec_or_name).with_overrides(
        method=method, num_laps=num_laps, speed_scale=speed_scale,
        resolution=resolution, max_sim_time=max_sim_time,
    ).validate().fresh_copy()
    run_seed = spec.seed if seed is None else int(seed)

    # Scenario runs always get a perturbation object (identity when the
    # spec declares none) so odometry events have a harness to act on;
    # an unseeded perturbation is pinned to a derived seed for
    # reproducibility at any worker count.
    perturbation = spec.perturbation or OdometryPerturbation()
    if perturbation.seed is None:
        perturbation = dataclasses.replace(
            perturbation, seed=derive_seed(run_seed, spec.name, "perturbation")
        )

    traffic_factory = None
    if spec.traffic is not None:
        from repro.scenarios.traffic import traffic_agent_factory

        traffic_factory = traffic_agent_factory(
            spec.traffic, seed=derive_seed(run_seed, spec.name, "traffic")
        )

    condition = ExperimentCondition(
        method=spec.method,
        odom_quality=spec.odom_quality,
        speed_scale=spec.speed_scale,
        num_laps=spec.num_laps,
        seed=run_seed,
        perturbation=perturbation,
        traffic_factory=traffic_factory,
    )
    timeline = Timeline(
        spec.events, seed=derive_seed(run_seed, spec.name, "timeline")
    )
    supervisor_config = SupervisorConfig() if spec.supervised else None

    experiment = _experiment_for(spec.resolution, spec.max_sim_time)
    result = experiment.run(
        condition, progress=progress, hooks=timeline,
        supervisor_config=supervisor_config,
    )
    event_log = timeline.log_as_dicts()
    return ScenarioOutcome(
        spec=spec, method=spec.method, seed=run_seed, result=result,
        event_log=event_log,
        summary=_trial_summary(spec, result, event_log),
    )


# ---------------------------------------------------------------------------
# Campaign fan-out
# ---------------------------------------------------------------------------
def run_scenario_trial(trial: TrialSpec) -> Dict:
    """Execute one campaign trial (module-level: picklable).

    ``trial.params`` carries the scenario as its JSON dict plus the method
    override, so the payload crossing the process boundary is plain data.
    """
    params = trial.params
    spec = ScenarioSpec.from_dict(params["scenario"])
    outcome = run_scenario(spec, method=params["method"], seed=trial.seed)
    return {
        "scenario": spec.name,
        "method": params["method"],
        "summary": outcome.summary,
        "event_log": outcome.event_log,
        "telemetry": outcome.result.supervisor_telemetry,
        "metrics": _trial_metrics_snapshot(outcome.summary),
    }


def _trial_metrics_snapshot(summary: Dict) -> Dict:
    """Mergeable metrics snapshot for one campaign trial.

    Derived from the deterministic trial summary only — no wall-clock
    values — so folding these across trials keeps the scorecard
    bit-identical at any worker count.
    """
    import math

    from repro.eval.runner import LAP_TIME_EDGES_S, LOC_ERROR_EDGES_CM
    from repro.telemetry import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("campaign.trials").inc()
    if summary["survived"]:
        registry.counter("campaign.survived").inc()
    registry.counter("campaign.crashes").inc(summary["crashes"])
    registry.counter("campaign.laps.completed").inc(summary["laps_completed"])
    registry.counter("campaign.laps.valid").inc(summary["laps_valid"])
    registry.counter("campaign.recoveries").inc(summary["recoveries"])
    registry.counter("campaign.divergence_episodes").inc(
        summary["divergence_episodes"]
    )
    lap_time = registry.histogram("lap_time_s", LAP_TIME_EDGES_S)
    for value in summary["lap_times_s"]:
        lap_time.observe(value)
    loc_err = registry.histogram("localization_error_cm", LOC_ERROR_EDGES_CM)
    for value in summary["lap_loc_err_cm"]:
        if math.isfinite(value):
            loc_err.observe(value)
    ttr = registry.histogram("time_to_recover_s", RECOVERY_TIME_EDGES_S)
    for value in summary["time_to_recover_s"]:
        ttr.observe(value)
    registry.counter("traffic.agents").inc(summary.get("traffic_agents", 0))
    registry.counter("traffic.scans_occluded").inc(
        summary.get("traffic_scans_occluded", 0)
    )
    occ = summary.get("occlusion_histogram")
    if occ:
        hist = registry.histogram(
            "traffic.occluded_beam_fraction", tuple(occ["edges"])
        )
        # The simulator binned per-scan fractions with the Histogram's own
        # bisect_left semantics; adopt its counts rather than re-observing.
        hist.counts = [int(c) for c in occ["counts"]]
        hist.sum = float(occ.get("sum", 0.0))
        hist.count = int(occ.get("count", sum(hist.counts)))
    return registry.snapshot()


def make_campaign_specs(
    scenarios: Sequence[Union[ScenarioSpec, str]],
    methods: Optional[Sequence[str]] = None,
    trials: int = 1,
    base_seed: int = 7,
    **overrides,
) -> List[TrialSpec]:
    """The campaign matrix as runner trial specs.

    ``methods=None`` runs each scenario with its own declared method.
    Seeds derive from ``(base_seed, scenario, method, trial)`` — stable
    under reordering and extension of the matrix.  Extra keyword
    arguments (``num_laps``, ``resolution``, ...) override every spec,
    which is how smoke campaigns shrink the runs.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    specs: List[TrialSpec] = []
    for entry in scenarios:
        scenario = _resolve(entry).with_overrides(**overrides).validate()
        for method in (methods or [scenario.method]):
            scenario_dict = scenario.with_overrides(method=method).to_dict()
            for t in range(trials):
                specs.append(TrialSpec(
                    trial_id=f"{scenario.name}/{method}/t{t}",
                    seed=derive_seed(base_seed, scenario.name, method, t),
                    params={"scenario": scenario_dict, "method": method},
                ))
    return specs


def _quantiles(values: List[float]) -> Optional[Dict]:
    if not values:
        return None
    arr = np.asarray(values, dtype=float)
    return {
        "mean": round(float(arr.mean()), 6),
        "p50": round(float(np.percentile(arr, 50)), 6),
        "p95": round(float(np.percentile(arr, 95)), 6),
        "max": round(float(arr.max()), 6),
    }


def aggregate_scorecard(records: Sequence[TrialRecord]) -> Dict:
    """Fold campaign trial records into the robustness scorecard.

    One cell per (scenario, method), sorted, each aggregating over that
    cell's successful trials; trials that failed inside the runner
    (exception/timeout/worker-crash) are listed under ``"failures"`` and
    count against survival.
    """
    from repro.telemetry import merge_snapshots

    cells: Dict[tuple, Dict] = {}
    failures: List[Dict] = []
    snapshots: Dict[str, Dict] = {}
    for record in records:
        if isinstance(record, TrialFailure):
            failures.append({
                "trial_id": record.trial_id,
                "kind": record.kind,
                "error_type": record.error_type,
            })
            scenario, method = record.trial_id.split("/")[:2]
            cell = cells.setdefault((scenario, method), {"trials": []})
            cell["trials"].append(None)
            continue
        m = record.metrics
        cell = cells.setdefault((m["scenario"], m["method"]), {"trials": []})
        cell["trials"].append(m["summary"])
        if "metrics" in m:  # absent in pre-v2 checkpoint records
            snapshots[record.trial_id] = m["metrics"]

    out_cells = []
    for (scenario, method) in sorted(cells):
        trials = cells[(scenario, method)]["trials"]
        ok = [t for t in trials if t is not None]
        survived = sum(1 for t in ok if t["survived"])
        loc_err = [v for t in ok for v in t["lap_loc_err_cm"]]
        loc_err_max = [v for t in ok for v in t["lap_loc_err_max_cm"]]
        lap_times = [v for t in ok for v in t["lap_times_s"]]
        recover_times = [v for t in ok for v in t["time_to_recover_s"]]
        recoveries = sum(t["recoveries"] for t in ok)
        episodes = sum(t["divergence_episodes"] for t in ok)
        # .get defaults keep pre-v3 checkpoint records (no traffic keys)
        # loadable.
        occ_mean = [t.get("occluded_beam_fraction_mean", 0.0) for t in ok]
        occ_max = [t.get("occluded_beam_fraction_max", 0.0) for t in ok]
        out_cells.append({
            "scenario": scenario,
            "method": method,
            "trials": len(trials),
            "runner_failures": sum(1 for t in trials if t is None),
            "survival_rate": round(survived / len(trials), 6),
            "crashes": sum(t["crashes"] for t in ok),
            "loc_err_cm": _quantiles(loc_err),
            "loc_err_max_cm": _quantiles(loc_err_max),
            "lap_time_s": _quantiles(lap_times),
            "recoveries": recoveries,
            "divergence_episodes": episodes,
            "recovered_episodes": sum(t["recovered_episodes"] for t in ok),
            "time_to_recover_s": _quantiles(recover_times),
            "events_fired": sum(t["events_fired"] for t in ok),
            "traffic_agents": max(
                (t.get("traffic_agents", 0) for t in ok), default=0
            ),
            "occluded_beam_fraction_mean": (
                round(float(np.mean(occ_mean)), 9) if occ_mean else 0.0
            ),
            "occluded_beam_fraction_max": (
                round(float(np.max(occ_max)), 9) if occ_max else 0.0
            ),
        })
    return {
        "schema_version": SCORECARD_SCHEMA_VERSION,
        "cells": out_cells,
        "failures": sorted(failures, key=lambda f: f["trial_id"]),
        # Campaign-wide mergeable metrics, folded in sorted-trial_id order
        # (bit-identical at any worker count).
        "telemetry": merge_snapshots(snapshots),
    }


def format_scorecard(scorecard: Dict) -> str:
    """Human-readable scorecard table (deterministic)."""
    header = (f"{'scenario':<18} {'method':<12} {'trials':>6} {'surv%':>6} "
              f"{'crash':>5} {'locerr p50/p95 cm':>18} {'recov':>5} "
              f"{'TTR p95 s':>9} {'opp':>3} {'occl%':>6}")
    lines = [header, "-" * len(header)]
    for cell in scorecard["cells"]:
        loc = cell["loc_err_cm"]
        loc_txt = (f"{loc['p50']:.1f}/{loc['p95']:.1f}" if loc else "--")
        ttr = cell["time_to_recover_s"]
        ttr_txt = f"{ttr['p95']:.2f}" if ttr else "--"
        opponents = cell.get("traffic_agents", 0)
        occ = 100.0 * cell.get("occluded_beam_fraction_mean", 0.0)
        occ_txt = f"{occ:.2f}" if opponents else "--"
        lines.append(
            f"{cell['scenario']:<18} {cell['method']:<12} "
            f"{cell['trials']:>6d} {100 * cell['survival_rate']:>6.1f} "
            f"{cell['crashes']:>5d} {loc_txt:>18} "
            f"{cell['recoveries']:>5d} {ttr_txt:>9} "
            f"{opponents:>3d} {occ_txt:>6}"
        )
    if scorecard["failures"]:
        lines.append("")
        lines.append("runner failures:")
        for failure in scorecard["failures"]:
            lines.append(f"  {failure['trial_id']}: {failure['kind']} "
                         f"{failure['error_type']}")
    return "\n".join(lines)


def run_campaign(
    scenarios: Sequence[Union[ScenarioSpec, str]],
    methods: Optional[Sequence[str]] = None,
    trials: int = 1,
    base_seed: int = 7,
    *,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    checkpoint_path: Optional[str] = None,
    progress: Optional[Callable] = None,
    **overrides,
) -> tuple:
    """Run the full campaign matrix; returns ``(scorecard, sweep_result)``.

    Extra keyword arguments override every scenario (e.g. ``num_laps=1,
    resolution=0.1`` for a CI smoke campaign).
    """
    specs = make_campaign_specs(
        scenarios, methods=methods, trials=trials, base_seed=base_seed,
        **overrides,
    )
    runner = SweepRunner(
        run_scenario_trial, workers=workers, timeout_s=timeout_s,
        retries=retries, checkpoint_path=checkpoint_path, progress=progress,
    )
    sweep: SweepResult = runner.run(specs)
    return aggregate_scorecard(sweep.records), sweep


def save_scorecard(scorecard: Dict, path) -> None:
    """Write a scorecard to JSON."""
    from pathlib import Path

    Path(path).write_text(json.dumps(scorecard, indent=2) + "\n")
