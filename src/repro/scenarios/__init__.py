"""Declarative fault-injection scenarios and robustness campaigns.

The paper compares SynPF and Cartographer across exactly two conditions
(fresh vs. taped tires).  This subsystem generalises that experiment into
a declarative language of *scenarios* — a baseline configuration plus a
timeline of fault events (grip loss, odometry decay, slip bursts, LiDAR
outages, scan jitter, kidnapping, unmapped obstacles) — and a *campaign*
runner that fans scenario x localizer x trial matrices through the
fault-tolerant sweep pool and folds the results into a robustness
scorecard.

Layers:

* :mod:`~repro.scenarios.events` — the fault-event vocabulary;
* :mod:`~repro.scenarios.timeline` — the engine that fires/reverts events
  inside the experiment loop;
* :mod:`~repro.scenarios.spec` — the JSON-round-trippable scenario schema;
* :mod:`~repro.scenarios.library` — the canonical named catalog;
* :mod:`~repro.scenarios.campaign` — matrix execution and the scorecard.
"""

from repro.scenarios.campaign import (
    ScenarioOutcome,
    aggregate_scorecard,
    format_scorecard,
    make_campaign_specs,
    run_campaign,
    run_scenario,
    run_scenario_trial,
    save_scorecard,
)
from repro.scenarios.events import (
    EVENT_REGISTRY,
    FaultEvent,
    GripChange,
    KidnapTeleport,
    LidarFault,
    ObstacleSpawn,
    OdometryFault,
    ScanLatencyJitter,
    SlipBurst,
    event_from_dict,
    event_to_dict,
    register_event,
)
from repro.scenarios.library import (
    SCENARIO_LIBRARY,
    get_scenario,
    list_scenarios,
    scenario_names,
)
from repro.scenarios.spec import (
    SCHEMA_VERSION,
    ScenarioSpec,
    load_scenario,
    save_scenario,
)
from repro.scenarios.timeline import EventLogRecord, Timeline
from repro.scenarios.traffic import (
    TrafficSpec,
    build_traffic_agents,
    traffic_agent_factory,
)

__all__ = [
    # events
    "FaultEvent",
    "GripChange",
    "OdometryFault",
    "SlipBurst",
    "LidarFault",
    "ScanLatencyJitter",
    "KidnapTeleport",
    "ObstacleSpawn",
    "EVENT_REGISTRY",
    "register_event",
    "event_to_dict",
    "event_from_dict",
    # timeline
    "Timeline",
    "EventLogRecord",
    # spec
    "ScenarioSpec",
    "SCHEMA_VERSION",
    "save_scenario",
    "load_scenario",
    # library
    "SCENARIO_LIBRARY",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    # traffic
    "TrafficSpec",
    "build_traffic_agents",
    "traffic_agent_factory",
    # campaign
    "ScenarioOutcome",
    "run_scenario",
    "run_scenario_trial",
    "make_campaign_specs",
    "aggregate_scorecard",
    "format_scorecard",
    "run_campaign",
    "save_scorecard",
]
