"""Cartographer-style SLAM facade: mapping and pure-localization modes.

**Pure localization** is the configuration raced in the paper's Table I:
the map is frozen, and each incoming scan is matched against it starting
from the odometry-extrapolated prediction; nodes and constraints
(odometry + scan-match) accumulate in a pose graph optimised over a
sliding window, which smooths the published trajectory.

**Mapping** builds the map from scratch: scans are matched against the
active submap, inserted into it, submaps are finished after a fixed number
of insertions, and finished submaps are candidates for loop-closure
matches that, once found, trigger a full graph optimisation.  The final
map is rendered by re-inserting every scan at its optimised pose.

Design notes on fidelity (see DESIGN.md):

* odometry enters exactly as in Cartographer — as the scan matcher's
  initial guess and as graph constraints with *fixed, pre-calibrated*
  information.  Neither mechanism can know the tires were taped; that is
  the robustness weakness the paper exposes.
* scan matching is correlative search + Gauss-Newton refinement
  (:mod:`repro.slam.scan_matcher`), the same two-stage structure as
  Cartographer's online matcher.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.motion_models import OdometryDelta
from repro.maps.occupancy_grid import OccupancyGrid
from repro.slam.pose_graph import ORIGIN_NODE, PoseGraph, apply_relative, relative_pose
from repro.slam.optimizer import optimize_pose_graph
from repro.slam.scan_matcher import (
    GaussNewtonRefiner,
    LikelihoodField,
    ScanMatcher,
    ScanMatchResult,
)
from repro.slam.submap import ProbabilityGrid, Submap
from repro.telemetry.spans import SpanTracer
from repro.utils.profiling import TimingStats

__all__ = ["CartographerConfig", "Cartographer"]


@dataclass(frozen=True)
class CartographerConfig:
    """Tuning parameters for both modes."""

    # Scan matching.  With odometry available Cartographer defaults to the
    # Ceres-style matcher alone, anchored to the odometry extrapolation by
    # the prior weights (translation_weight / rotation_weight); the online
    # correlative matcher is opt-in.
    linear_search_window: float = 0.15
    angular_search_window: float = 0.10
    match_max_points: int = 120
    likelihood_sigma: float = 0.12
    use_online_correlative: bool = False
    prior_translation_weight: float = 0.1   # per scan point
    prior_rotation_weight: float = 0.3      # per scan point
    # Correlative-stage penalty on candidates far from the prediction
    # (Cartographer's translation/rotation_delta_cost_weight): regularises
    # featureless directions such as a corridor's axis.
    translation_delta_cost: float = 100.0   # per m^2
    rotation_delta_cost: float = 10.0       # per rad^2

    # Pose graph
    odom_info_xy: float = 400.0       # 1/(5 cm)^2 — calibrated for good odometry
    odom_info_theta: float = 800.0
    optimize_every: int = 10          # nodes between sliding-window solves
    window_size: int = 30             # nodes per sliding window

    # Mapping mode
    submap_size_m: float = 14.0
    submap_resolution: float = 0.05
    scans_per_submap: int = 40
    field_rebuild_every: int = 3
    loop_closure_min_score: float = 0.65
    loop_closure_search_window: float = 0.6
    loop_closure_min_node_gap: int = 60

    def validate(self) -> None:
        if self.linear_search_window <= 0 or self.angular_search_window <= 0:
            raise ValueError("search windows must be positive")
        if self.optimize_every < 1 or self.window_size < 2:
            raise ValueError("invalid optimisation cadence")
        if self.scans_per_submap < 2:
            raise ValueError("scans_per_submap must be >= 2")


class Cartographer:
    """Pose-graph SLAM / localizer.

    Parameters
    ----------
    frozen_map:
        If given, the system runs in *pure localization* mode against this
        map (the Table I configuration).  If ``None``, it runs in mapping
        mode and builds its own submaps.
    config:
        See :class:`CartographerConfig`.
    registry:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry`
        receiving per-stage span latency histograms
        (``span.update/scan_match``, ...).
    timing:
        Optional externally-owned :class:`TimingStats` (e.g. a bounded
        one from :func:`repro.core.interfaces.make_localizer`).
    """

    def __init__(
        self,
        frozen_map: Optional[OccupancyGrid] = None,
        config: CartographerConfig | None = None,
        registry=None,
        timing: TimingStats | None = None,
    ) -> None:
        self.config = config or CartographerConfig()
        self.config.validate()
        self.graph = PoseGraph()
        self.timing = timing if timing is not None else TimingStats()
        self.tracer = SpanTracer(timing=self.timing, registry=registry)
        self.pose = np.zeros(3)

        self.frozen_map = frozen_map
        self.pure_localization = frozen_map is not None
        if self.pure_localization:
            self._map_field = LikelihoodField(frozen_map, self.config.likelihood_sigma)
            self._map_matcher = self._make_local_matcher(self._map_field)

        # Mapping-mode state
        self.submaps: List[Submap] = []
        self._active_field: Optional[LikelihoodField] = None
        self._active_matcher: Optional[ScanMatcher] = None
        self._inserts_since_rebuild = 0
        self._scan_cache: List[np.ndarray] = []  # sensor-frame points per node
        self._node_ids: List[int] = []
        self._last_node_pose: Optional[np.ndarray] = None
        self._initialized = False
        self.num_loop_closures = 0

    # ------------------------------------------------------------------
    # Common
    # ------------------------------------------------------------------
    def _make_local_matcher(self, field: LikelihoodField) -> ScanMatcher:
        """Front-end matcher with the configured odometry anchoring."""
        return ScanMatcher(
            field,
            linear_window=self.config.linear_search_window,
            angular_window=self.config.angular_search_window,
            max_points=self.config.match_max_points,
            use_correlative=self.config.use_online_correlative,
            prior_translation_weight=self.config.prior_translation_weight,
            prior_rotation_weight=self.config.prior_rotation_weight,
            translation_delta_cost=self.config.translation_delta_cost,
            rotation_delta_cost=self.config.rotation_delta_cost,
        )

    def initialize(self, pose: np.ndarray) -> None:
        """Set the starting pose (both modes require a known start)."""
        self.pose = np.asarray(pose, dtype=float).copy()
        node = self.graph.add_node(self.pose)
        self._node_ids.append(node)
        self._last_node_pose = self.pose.copy()
        self._initialized = True
        if not self.pure_localization:
            self._start_submap(self.pose)

    def _odom_information(self) -> np.ndarray:
        cfg = self.config
        return np.diag([cfg.odom_info_xy, cfg.odom_info_xy, cfg.odom_info_theta])

    @staticmethod
    def _match_information(result: ScanMatchResult) -> np.ndarray:
        try:
            info = np.linalg.inv(result.covariance)
        except np.linalg.LinAlgError:
            info = np.eye(3) * 100.0
        # Down-weight poor matches: a half-score match carries half the
        # information.
        return info * max(result.score, 1e-3)

    def update(self, delta: OdometryDelta, points_sensor: np.ndarray,
               sensor_offset_x: float = 0.27) -> np.ndarray:
        """Process one (odometry interval, scan) pair; returns the new pose.

        ``points_sensor``: scan hit points in the sensor frame (max-range
        returns removed); ``sensor_offset_x``: sensor mount ahead of base.
        """
        if not self._initialized:
            raise RuntimeError("call initialize() first")
        # The outer span makes "update" the end-to-end per-scan wall time
        # (graph bookkeeping and the amortised optimiser included), which
        # is what latency_ms() reports — comparable to SynPF's.
        with self.tracer.span("update"):
            return self._update(delta, points_sensor, sensor_offset_x)

    def _update(self, delta: OdometryDelta, points_sensor: np.ndarray,
                sensor_offset_x: float) -> np.ndarray:
        rel = np.array([delta.dx, delta.dy, delta.dtheta])
        predicted = apply_relative(self.pose, rel)

        # The matcher works in the sensor frame; shift prediction to the
        # sensor, match, then shift back.
        pred_sensor = self._base_to_sensor(predicted, sensor_offset_x)

        with self.tracer.span("scan_match"):
            if points_sensor.shape[0] < 3:
                # Blind or near-blind scan (sensor outage, total occlusion):
                # nothing to match against — dead-reckon on the odometry
                # prediction rather than letting the matcher latch onto
                # noise.
                result = ScanMatchResult(
                    pred_sensor.copy(), 0.0, np.eye(3) * 1e-3, False
                )
            elif self.pure_localization:
                result = self._map_matcher.match(pred_sensor, points_sensor)
            elif self._matching_submap().num_scans >= 2:
                result = self._active_matcher.match(pred_sensor, points_sensor)
            else:
                # The matching submap is still (nearly) empty — e.g. the
                # very first scans: trust the odometry extrapolation, as
                # Cartographer does when inserting into a fresh submap.
                result = ScanMatchResult(
                    pred_sensor.copy(), 0.0, np.eye(3) * 1e-3, False
                )

        if not self.pure_localization and result.score < 0.15 \
                and self._matching_submap().num_scans >= 2:
            # A match this poor means the scan found no overlap (fast
            # motion into unseen space); falling back to the prediction is
            # safer than committing a random alignment.
            result = ScanMatchResult(pred_sensor.copy(), 0.0, np.eye(3) * 1e-3, False)

        matched_base = self._sensor_to_base(result.pose, sensor_offset_x)

        node = self.graph.add_node(matched_base)
        prev_node = self._node_ids[-1]
        self._node_ids.append(node)

        self.graph.add_constraint(
            prev_node, node,
            relative_pose(self._last_node_pose, predicted),
            self._odom_information(), kind="odometry",
        )
        self.graph.add_constraint(
            ORIGIN_NODE, node, matched_base,
            self._match_information(result), kind="scan_match",
        )

        if not self.pure_localization:
            self._mapping_insert(node, matched_base, points_sensor, sensor_offset_x)

        if len(self._node_ids) % self.config.optimize_every == 0:
            with self.tracer.span("optimize"):
                window = self._node_ids[-self.config.window_size :]
                optimize_pose_graph(self.graph, free_nodes=window[1:])

        self.pose = self.graph.poses[node].copy()
        self._last_node_pose = self.pose.copy()
        return self.pose.copy()

    @staticmethod
    def _base_to_sensor(pose: np.ndarray, offset: float) -> np.ndarray:
        return np.array(
            [
                pose[0] + offset * np.cos(pose[2]),
                pose[1] + offset * np.sin(pose[2]),
                pose[2],
            ]
        )

    @staticmethod
    def _sensor_to_base(pose: np.ndarray, offset: float) -> np.ndarray:
        return np.array(
            [
                pose[0] - offset * np.cos(pose[2]),
                pose[1] - offset * np.sin(pose[2]),
                pose[2],
            ]
        )

    def latency_ms(self) -> float:
        """Mean end-to-end wall time per processed scan.

        Includes graph bookkeeping and the sliding-window optimiser
        amortised over scans, so it is directly comparable with
        ``SynPF.latency_ms()``.
        """
        if self.timing.count("update") == 0:
            raise RuntimeError("no scans processed yet")
        return self.timing.mean_ms("update")

    def mean_match_latency_ms(self) -> float:
        """Deprecated: mean scan-matching stage wall time.

        Use :meth:`latency_ms` for the end-to-end per-scan figure, or
        ``timing.mean_ms("scan_match")`` for just the matcher stage.
        """
        warnings.warn(
            "Cartographer.mean_match_latency_ms() is deprecated; use "
            "latency_ms()",
            DeprecationWarning,
            stacklevel=2,
        )
        if self.timing.count("scan_match") == 0:
            raise RuntimeError("no scans processed yet")
        return self.timing.mean_ms("scan_match")

    def telemetry(self) -> Dict:
        """JSON-serialisable observability snapshot of this localizer."""
        return {
            "num_nodes": len(self._node_ids),
            "num_loop_closures": self.num_loop_closures,
            "pure_localization": self.pure_localization,
            "timing": self.timing.summary(),
        }

    # ------------------------------------------------------------------
    # Mapping mode internals
    # ------------------------------------------------------------------
    # As in Cartographer, (up to) two submaps are active at once and every
    # scan is inserted into both: a new submap is opened when the current
    # one is half full, and a submap is finished once full.  Matching always
    # targets the *fuller* active submap, so there is never a gap where the
    # matcher faces an empty map.

    def _unfinished_submaps(self) -> List[Submap]:
        return [s for s in self.submaps if not s.finished]

    def _matching_submap(self) -> Submap:
        """The active submap the front-end matches against."""
        active = self._unfinished_submaps()
        if not active:
            return self.submaps[-1]
        return max(active, key=lambda s: s.num_scans)

    def _start_submap(self, pose: np.ndarray) -> None:
        submap = Submap.create(
            pose[:2], len(self.submaps),
            size_m=self.config.submap_size_m,
            resolution=self.config.submap_resolution,
        )
        self.submaps.append(submap)
        self._rebuild_active_field()

    def _rebuild_active_field(self) -> None:
        grid = self._matching_submap().grid.to_occupancy_grid()
        # Neutral score for unmapped cells: the submap is partial by
        # definition, and penalising scan points ahead of the mapped
        # frontier would drag every match backwards (see LikelihoodField).
        self._active_field = LikelihoodField(
            grid, self.config.likelihood_sigma, unknown_value=0.45
        )
        self._active_matcher = self._make_local_matcher(self._active_field)
        self._inserts_since_rebuild = 0

    def _mapping_insert(self, node: int, base_pose: np.ndarray,
                        points_sensor: np.ndarray, sensor_offset_x: float) -> None:
        sensor_pose = self._base_to_sensor(base_pose, sensor_offset_x)
        for submap in self._unfinished_submaps():
            submap.insert(sensor_pose, points_sensor, node_id=node)
        self._scan_cache.append(np.asarray(points_sensor, dtype=float))
        self._inserts_since_rebuild += 1

        if (len(self._unfinished_submaps()) == 1
                and self.submaps[-1].num_scans >= self.config.scans_per_submap // 2):
            self._start_submap(base_pose)

        oldest = self._unfinished_submaps()[0]
        if oldest.num_scans >= self.config.scans_per_submap:
            oldest.finish()
            self._try_loop_closure(node, base_pose, points_sensor, sensor_offset_x)
            self._rebuild_active_field()
        elif self._inserts_since_rebuild >= self.config.field_rebuild_every:
            self._rebuild_active_field()

    def _try_loop_closure(self, node: int, base_pose: np.ndarray,
                          points_sensor: np.ndarray, sensor_offset_x: float) -> None:
        """Match the current scan against old finished submaps."""
        cfg = self.config
        for submap in self.submaps[:-1]:
            if not submap.finished or not submap.node_ids:
                continue
            if node - submap.node_ids[-1] < cfg.loop_closure_min_node_gap:
                continue
            center = np.array(
                [
                    submap.grid.origin[0] + submap.grid.shape[1] * submap.grid.resolution / 2,
                    submap.grid.origin[1] + submap.grid.shape[0] * submap.grid.resolution / 2,
                ]
            )
            if np.hypot(*(base_pose[:2] - center)) > cfg.submap_size_m / 2:
                continue

            field = LikelihoodField(
                submap.grid.to_occupancy_grid(), cfg.likelihood_sigma,
                unknown_value=0.45,
            )
            # Loop closures search a large window; branch and bound gives
            # the provably best alignment in it (Hess et al. [1], §6) —
            # essential, since a wrong loop edge corrupts the whole graph.
            from repro.slam.branch_and_bound import BranchAndBoundMatcher

            matcher = BranchAndBoundMatcher(
                field, max_points=cfg.match_max_points,
                min_score=cfg.loop_closure_min_score,
            )
            sensor_pose = self._base_to_sensor(base_pose, sensor_offset_x)
            coarse = matcher.match(
                sensor_pose, points_sensor,
                linear_window=cfg.loop_closure_search_window,
                angular_window=cfg.angular_search_window * 2,
            )
            if not coarse.converged:
                continue
            refiner = GaussNewtonRefiner(field)
            result = refiner.refine(coarse.pose, points_sensor)
            if result.score < cfg.loop_closure_min_score:
                continue

            matched_base = self._sensor_to_base(result.pose, sensor_offset_x)
            anchor_node = submap.node_ids[0]
            anchor_pose = self.graph.poses[anchor_node]
            self.graph.add_constraint(
                anchor_node, node,
                relative_pose(anchor_pose, matched_base),
                self._match_information(result), kind="loop_closure",
            )
            self.num_loop_closures += 1
            with self.tracer.span("loop_optimize"):
                optimize_pose_graph(self.graph)

    # ------------------------------------------------------------------
    # Map export (mapping mode)
    # ------------------------------------------------------------------
    def render_map(self, resolution: float = 0.05, margin: float = 1.0,
                   sensor_offset_x: float = 0.27) -> OccupancyGrid:
        """Re-insert every cached scan at its optimised pose into one grid."""
        if self.pure_localization:
            raise RuntimeError("render_map is for mapping mode")
        if not self._scan_cache:
            raise RuntimeError("no scans recorded")
        from repro.utils.geometry import transform_points

        # Exact extents: transform every cached scan to world coordinates
        # once, so the rendered grid is as tight as the data allows.
        lo = np.array([np.inf, np.inf])
        hi = np.array([-np.inf, -np.inf])
        for node_id, points in zip(self._node_ids[1:], self._scan_cache):
            sensor = self._base_to_sensor(self.graph.poses[node_id], sensor_offset_x)
            world = transform_points(sensor, points)
            lo = np.minimum(lo, world.min(axis=0))
            hi = np.maximum(hi, world.max(axis=0))
        lo -= margin
        hi += margin
        width = int(np.ceil((hi[0] - lo[0]) / resolution))
        height = int(np.ceil((hi[1] - lo[1]) / resolution))
        grid = ProbabilityGrid(width, height, resolution, (float(lo[0]), float(lo[1])))
        for node_id, points in zip(self._node_ids[1:], self._scan_cache):
            base = self.graph.poses[node_id]
            grid.insert_scan(self._base_to_sensor(base, sensor_offset_x), points)
        return grid.to_occupancy_grid()
