"""Pose-graph SLAM baseline (Cartographer-style [1]).

The paper benchmarks SynPF against Google Cartographer.  This subpackage
reimplements the parts of that system the comparison exercises:

* :mod:`~repro.slam.submap` — probability-grid submaps built from scans
  with hit/miss log-odds updates;
* :mod:`~repro.slam.scan_matcher` — a real-time correlative scan matcher
  (grid search over a window around the odometry prediction) followed by
  Gauss-Newton refinement against a smoothed likelihood field — the same
  two-stage local matching Cartographer's front-end uses;
* :mod:`~repro.slam.pose_graph` / :mod:`~repro.slam.optimizer` — SE(2)
  pose-graph with odometry, scan-match and loop-closure constraints,
  optimised by sparse Gauss-Newton;
* :mod:`~repro.slam.cartographer` — the facade: *mapping* mode (build a
  map with loop closure) and *pure localization* mode (race against a
  frozen map), the latter being what Table I evaluates.

The architectural property under test carries over: the front-end seeds
scan matching from **odometry extrapolation** and the graph contains
**odometry constraints**, so degraded odometry degrades the whole pipeline
— whereas a particle filter's hypothesis spread absorbs it.
"""

from repro.slam.branch_and_bound import BranchAndBoundMatcher
from repro.slam.cartographer import Cartographer, CartographerConfig
from repro.slam.pose_graph import Constraint, PoseGraph
from repro.slam.optimizer import optimize_pose_graph
from repro.slam.scan_matcher import (
    CorrelativeScanMatcher,
    GaussNewtonRefiner,
    LikelihoodField,
    ScanMatcher,
    ScanMatchResult,
)
from repro.slam.submap import ProbabilityGrid, Submap

__all__ = [
    "BranchAndBoundMatcher",
    "Cartographer",
    "CartographerConfig",
    "Constraint",
    "CorrelativeScanMatcher",
    "GaussNewtonRefiner",
    "LikelihoodField",
    "PoseGraph",
    "ProbabilityGrid",
    "ScanMatchResult",
    "ScanMatcher",
    "Submap",
    "optimize_pose_graph",
]
