"""Two-stage local scan matching (Cartographer front-end style [1]).

Stage 1 — :class:`CorrelativeScanMatcher`: exhaustive search over a small
``(x, y, theta)`` window centred on the *odometry-extrapolated* prediction,
scoring each candidate by the mean likelihood-field value at the scan
points.  This is the "real-time correlative scan matching" of Olson 2009
that Cartographer uses for its online matcher.

Stage 2 — :class:`GaussNewtonRefiner`: continuous refinement of the best
grid candidate by Gauss-Newton on the bilinear-interpolated field (the
grid-search equivalent of Cartographer's Ceres matcher).

The :class:`LikelihoodField` smooths the map's occupancy into
``exp(-d^2 / (2 sigma^2))`` of the distance-to-nearest-obstacle — wide
enough basins for gradient refinement, sharp enough peaks for accuracy.

Why this architecture degrades with odometry quality (the paper's §III/IV
finding): the search window is *finite and centred on the odometry
prediction*.  Good odometry keeps the true pose well inside the window and
the matcher is extremely accurate; slip pushes the prediction — and in
corridor-like environments the longitudinal direction is weakly constrained
by geometry, so the matcher cannot fully pull it back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.maps.occupancy_grid import OccupancyGrid
from repro.utils.angles import wrap_to_pi

__all__ = [
    "LikelihoodField",
    "CorrelativeScanMatcher",
    "GaussNewtonRefiner",
    "ScanMatcher",
    "ScanMatchResult",
]


class LikelihoodField:
    """Smoothed occupancy likelihood with bilinear sampling and gradients.

    Parameters
    ----------
    grid, sigma:
        Map and Gaussian smoothing width.
    unknown_value:
        Field value assigned to *unknown* cells.  For matching against a
        complete frozen map, 0 is correct (a scan point in unknown space is
        evidence of misalignment).  For matching against a *partial* map
        being built (SLAM mapping mode) it must be neutral (~0.5, as in
        Cartographer's probability grids): with 0, scan points reaching
        into not-yet-mapped space systematically drag the match back toward
        mapped territory.
    """

    def __init__(self, grid: OccupancyGrid, sigma: float = 0.12,
                 unknown_value: float = 0.0) -> None:
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if not 0.0 <= unknown_value <= 1.0:
            raise ValueError("unknown_value must be in [0, 1]")
        self.grid = grid
        self.sigma = float(sigma)
        self.unknown_value = float(unknown_value)
        dist = grid.distance_field().astype(np.float64)
        self.field = np.exp(-0.5 * (dist / sigma) ** 2)
        if unknown_value > 0.0:
            from repro.maps.occupancy_grid import UNKNOWN

            unknown = grid.data == UNKNOWN
            self.field[unknown] = np.maximum(self.field[unknown], unknown_value)
        self.resolution = grid.resolution
        self.origin = grid.origin

    def _continuous_index(self, points: np.ndarray):
        # Field samples live at cell centres, hence the -0.5.
        fx = (points[:, 0] - self.origin[0]) / self.resolution - 0.5
        fy = (points[:, 1] - self.origin[1]) / self.resolution - 0.5
        return fx, fy

    def sample(self, points: np.ndarray) -> np.ndarray:
        """Bilinear field values at world points; 0 outside the map."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        fx, fy = self._continuous_index(points)
        h, w = self.field.shape
        x0 = np.floor(fx).astype(np.int64)
        y0 = np.floor(fy).astype(np.int64)
        tx = fx - x0
        ty = fy - y0
        valid = (x0 >= 0) & (x0 < w - 1) & (y0 >= 0) & (y0 < h - 1)
        out = np.zeros(points.shape[0])
        x0v, y0v = x0[valid], y0[valid]
        txv, tyv = tx[valid], ty[valid]
        f = self.field
        out[valid] = (
            f[y0v, x0v] * (1 - txv) * (1 - tyv)
            + f[y0v, x0v + 1] * txv * (1 - tyv)
            + f[y0v + 1, x0v] * (1 - txv) * tyv
            + f[y0v + 1, x0v + 1] * txv * tyv
        )
        return out

    def sample_with_gradient(self, points: np.ndarray):
        """Values and spatial gradients ``(d/dx, d/dy)`` at world points."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        fx, fy = self._continuous_index(points)
        h, w = self.field.shape
        x0 = np.floor(fx).astype(np.int64)
        y0 = np.floor(fy).astype(np.int64)
        tx = fx - x0
        ty = fy - y0
        valid = (x0 >= 0) & (x0 < w - 1) & (y0 >= 0) & (y0 < h - 1)
        values = np.zeros(points.shape[0])
        grads = np.zeros((points.shape[0], 2))
        if np.any(valid):
            x0v, y0v = x0[valid], y0[valid]
            txv, tyv = tx[valid], ty[valid]
            f = self.field
            f00 = f[y0v, x0v]
            f10 = f[y0v, x0v + 1]
            f01 = f[y0v + 1, x0v]
            f11 = f[y0v + 1, x0v + 1]
            values[valid] = (
                f00 * (1 - txv) * (1 - tyv)
                + f10 * txv * (1 - tyv)
                + f01 * (1 - txv) * tyv
                + f11 * txv * tyv
            )
            dfdx = ((f10 - f00) * (1 - tyv) + (f11 - f01) * tyv) / self.resolution
            dfdy = ((f01 - f00) * (1 - txv) + (f11 - f10) * txv) / self.resolution
            grads[valid, 0] = dfdx
            grads[valid, 1] = dfdy
        return values, grads


@dataclass(frozen=True)
class ScanMatchResult:
    """Outcome of one scan-match attempt."""

    pose: np.ndarray
    score: float          # mean field value at scan points in [0, 1]
    covariance: np.ndarray  # 3x3 estimate from the score surface
    converged: bool


class CorrelativeScanMatcher:
    """Exhaustive window search over translated/rotated scan placements."""

    def __init__(
        self,
        field: LikelihoodField,
        linear_window: float = 0.15,
        angular_window: float = 0.10,
        linear_step: float | None = None,
        angular_step: float = 0.0125,
        translation_delta_cost: float = 0.0,
        rotation_delta_cost: float = 0.0,
    ) -> None:
        """``*_delta_cost``: multiplicative penalty on candidates far from
        the initial guess — ``score * exp(-(w_t |dt|^2 + w_r dtheta^2))``,
        Cartographer's ``translation/rotation_delta_cost_weight``.  Without
        it, featureless directions (a corridor's axis) are decided by
        noise or by the mapped/unknown asymmetry instead of by odometry."""
        if linear_window <= 0 or angular_window <= 0:
            raise ValueError("search windows must be positive")
        if translation_delta_cost < 0 or rotation_delta_cost < 0:
            raise ValueError("delta costs must be non-negative")
        self.field = field
        self.linear_window = float(linear_window)
        self.angular_window = float(angular_window)
        self.linear_step = (
            float(linear_step) if linear_step is not None else field.resolution / 2.0
        )
        self.angular_step = float(angular_step)
        self.translation_delta_cost = float(translation_delta_cost)
        self.rotation_delta_cost = float(rotation_delta_cost)

    def match(self, initial_pose: np.ndarray, points_sensor: np.ndarray) -> ScanMatchResult:
        """Best pose in the window around ``initial_pose``.

        ``points_sensor``: ``(N, 2)`` scan hit points in the sensor frame.
        """
        initial_pose = np.asarray(initial_pose, dtype=float)
        points_sensor = np.asarray(points_sensor, dtype=float)
        if points_sensor.shape[0] == 0:
            return ScanMatchResult(initial_pose.copy(), 0.0, np.eye(3), False)

        n_lin = int(np.ceil(self.linear_window / self.linear_step))
        offsets = np.arange(-n_lin, n_lin + 1) * self.linear_step
        n_ang = int(np.ceil(self.angular_window / self.angular_step))
        dthetas = np.arange(-n_ang, n_ang + 1) * self.angular_step

        best_score = -1.0
        best_pose = initial_pose.copy()
        scores_acc = []  # (score, dx, dy, dtheta) for covariance estimation

        for dth in dthetas:
            theta = initial_pose[2] + dth
            c, s = np.cos(theta), np.sin(theta)
            base = np.empty_like(points_sensor)
            base[:, 0] = c * points_sensor[:, 0] - s * points_sensor[:, 1] + initial_pose[0]
            base[:, 1] = s * points_sensor[:, 0] + c * points_sensor[:, 1] + initial_pose[1]

            # Evaluate all (dx, dy) shifts of this rotation in one call:
            # tile the points across the translation lattice.
            n_off = offsets.size
            pts = np.empty((n_off * n_off * base.shape[0], 2))
            shift_x = np.repeat(offsets, n_off)
            shift_y = np.tile(offsets, n_off)
            pts[:, 0] = (base[:, 0][None, :] + shift_x[:, None]).ravel()
            pts[:, 1] = (base[:, 1][None, :] + shift_y[:, None]).ravel()
            values = self.field.sample(pts).reshape(n_off * n_off, base.shape[0])
            mean_scores = values.mean(axis=1)
            if self.translation_delta_cost > 0 or self.rotation_delta_cost > 0:
                penalty = (
                    self.translation_delta_cost * (shift_x**2 + shift_y**2)
                    + self.rotation_delta_cost * dth**2
                )
                mean_scores = mean_scores * np.exp(-penalty)

            k = int(np.argmax(mean_scores))
            if mean_scores[k] > best_score:
                best_score = float(mean_scores[k])
                best_pose = np.array(
                    [
                        initial_pose[0] + shift_x[k],
                        initial_pose[1] + shift_y[k],
                        wrap_to_pi(theta),
                    ]
                )
            scores_acc.append((mean_scores, shift_x, shift_y, np.full(n_off * n_off, dth)))

        covariance = self._covariance_from_scores(scores_acc, best_pose, initial_pose)
        return ScanMatchResult(best_pose, best_score, covariance, best_score > 0.0)

    def _covariance_from_scores(self, scores_acc, best_pose, initial_pose) -> np.ndarray:
        """Weighted second moments of the score surface around its peak.

        Olson's multi-resolution matcher derives the same quantity; it
        feeds the pose-graph information matrices.
        """
        all_scores = np.concatenate([s for s, *_ in scores_acc])
        all_dx = np.concatenate([dx for _, dx, _, _ in scores_acc])
        all_dy = np.concatenate([dy for _, _, dy, _ in scores_acc])
        all_dth = np.concatenate([dth for _, _, _, dth in scores_acc])

        # Soft-max weighting concentrates mass near the peak.
        w = np.exp((all_scores - all_scores.max()) * 40.0)
        w /= w.sum()
        mx = all_dx - (best_pose[0] - initial_pose[0])
        my = all_dy - (best_pose[1] - initial_pose[1])
        mth = all_dth - wrap_to_pi(best_pose[2] - initial_pose[2])
        dev = np.stack([mx, my, mth], axis=-1)
        cov = (w[:, None, None] * dev[:, :, None] * dev[:, None, :]).sum(axis=0)
        # Regularise: never report tighter than a quarter step.
        floor = np.diag(
            [
                (self.linear_step / 4.0) ** 2,
                (self.linear_step / 4.0) ** 2,
                (self.angular_step / 4.0) ** 2,
            ]
        )
        return cov + floor


class GaussNewtonRefiner:
    """Continuous pose refinement on the interpolated likelihood field.

    Minimises ``sum_i (1 - field(T_pose p_i))^2`` — the standard occupied-
    space cost of Cartographer's Ceres scan matcher — by Gauss-Newton with
    analytic Jacobians from the bilinear gradient.
    """

    def __init__(self, field: LikelihoodField, max_iterations: int = 30,
                 convergence_eps: float = 1e-5,
                 prior_translation_weight: float = 0.0,
                 prior_rotation_weight: float = 0.0) -> None:
        self.field = field
        self.max_iterations = int(max_iterations)
        self.convergence_eps = float(convergence_eps)
        if prior_translation_weight < 0 or prior_rotation_weight < 0:
            raise ValueError("prior weights must be non-negative")
        self.prior_translation_weight = float(prior_translation_weight)
        self.prior_rotation_weight = float(prior_rotation_weight)

    def refine(self, pose: np.ndarray, points_sensor: np.ndarray,
               prior_pose: np.ndarray | None = None) -> ScanMatchResult:
        """Refine ``pose``; optionally anchored to ``prior_pose``.

        When prior weights are set, the cost gains
        ``w_t * ||t - t_prior||^2 + w_r * wrap(theta - theta_prior)^2`` —
        Cartographer's ``translation_weight`` / ``rotation_weight`` terms
        that keep the solution near the odometry extrapolation.  This is
        the channel through which degraded odometry degrades the SLAM
        baseline (paper §III/IV); set the weights to 0 to disable.
        """
        pose = np.asarray(pose, dtype=float).copy()
        points_sensor = np.asarray(points_sensor, dtype=float)
        n = points_sensor.shape[0]
        if n == 0:
            return ScanMatchResult(pose, 0.0, np.eye(3), False)
        if prior_pose is None:
            prior_pose = pose.copy()
        else:
            prior_pose = np.asarray(prior_pose, dtype=float)
        # Normalise prior strength against the per-point data term.
        w_t = self.prior_translation_weight * n
        w_r = self.prior_rotation_weight * n

        converged = False
        h_matrix = np.eye(3)
        for _ in range(self.max_iterations):
            c, s = np.cos(pose[2]), np.sin(pose[2])
            world = np.empty_like(points_sensor)
            world[:, 0] = c * points_sensor[:, 0] - s * points_sensor[:, 1] + pose[0]
            world[:, 1] = s * points_sensor[:, 0] + c * points_sensor[:, 1] + pose[1]

            values, grads = self.field.sample_with_gradient(world)
            residuals = 1.0 - values

            # d(world)/d(theta) = [-s x - c y, c x - s y]
            dworld_dth = np.empty_like(points_sensor)
            dworld_dth[:, 0] = -s * points_sensor[:, 0] - c * points_sensor[:, 1]
            dworld_dth[:, 1] = c * points_sensor[:, 0] - s * points_sensor[:, 1]

            jac = np.empty((n, 3))
            jac[:, 0] = -grads[:, 0]
            jac[:, 1] = -grads[:, 1]
            jac[:, 2] = -(grads[:, 0] * dworld_dth[:, 0] + grads[:, 1] * dworld_dth[:, 1])

            h_matrix = jac.T @ jac + 1e-6 * np.eye(3)
            g = jac.T @ residuals

            if w_t > 0.0 or w_r > 0.0:
                # Prior residuals: sqrt(w) * (pose - prior); their normal-
                # equation contribution is diagonal.
                h_matrix[0, 0] += w_t
                h_matrix[1, 1] += w_t
                h_matrix[2, 2] += w_r
                g[0] += w_t * (pose[0] - prior_pose[0])
                g[1] += w_t * (pose[1] - prior_pose[1])
                g[2] += w_r * wrap_to_pi(pose[2] - prior_pose[2])

            try:
                step = np.linalg.solve(h_matrix, -g)
            except np.linalg.LinAlgError:
                break
            pose[0] += step[0]
            pose[1] += step[1]
            pose[2] = wrap_to_pi(pose[2] + step[2])
            if float(np.abs(step).max()) < self.convergence_eps:
                converged = True
                break

        final_vals = self.field.sample(
            self._transform(pose, points_sensor)
        )
        score = float(final_vals.mean())
        try:
            covariance = np.linalg.inv(h_matrix)
        except np.linalg.LinAlgError:
            covariance = np.eye(3)
        return ScanMatchResult(pose, score, covariance, converged)

    @staticmethod
    def _transform(pose: np.ndarray, pts: np.ndarray) -> np.ndarray:
        c, s = np.cos(pose[2]), np.sin(pose[2])
        out = np.empty_like(pts)
        out[:, 0] = c * pts[:, 0] - s * pts[:, 1] + pose[0]
        out[:, 1] = s * pts[:, 0] + c * pts[:, 1] + pose[1]
        return out


class ScanMatcher:
    """Cartographer-style local matcher: optional correlative search, then
    prior-anchored Gauss-Newton refinement.

    With odometry available, Cartographer's default front-end skips the
    online correlative matcher and relies on the Ceres matcher seeded (and
    anchored, via ``translation_weight``/``rotation_weight``) at the
    odometry extrapolation; set ``use_correlative=True`` to enable the
    windowed search in front (used for loop closure, and as the
    odometry-free fallback).
    """

    def __init__(
        self,
        field: LikelihoodField,
        linear_window: float = 0.15,
        angular_window: float = 0.10,
        max_points: int = 120,
        use_correlative: bool = True,
        prior_translation_weight: float = 0.0,
        prior_rotation_weight: float = 0.0,
        translation_delta_cost: float = 0.0,
        rotation_delta_cost: float = 0.0,
    ) -> None:
        self.field = field
        self.use_correlative = bool(use_correlative)
        self.correlative = CorrelativeScanMatcher(
            field, linear_window=linear_window, angular_window=angular_window,
            translation_delta_cost=translation_delta_cost,
            rotation_delta_cost=rotation_delta_cost,
        )
        self.refiner = GaussNewtonRefiner(
            field,
            prior_translation_weight=prior_translation_weight,
            prior_rotation_weight=prior_rotation_weight,
        )
        self.max_points = int(max_points)

    def subsample(self, points_sensor: np.ndarray) -> np.ndarray:
        """Uniformly thin a scan to at most ``max_points`` points."""
        n = points_sensor.shape[0]
        if n <= self.max_points:
            return points_sensor
        idx = np.linspace(0, n - 1, self.max_points).round().astype(np.int64)
        return points_sensor[np.unique(idx)]

    def match(self, initial_pose: np.ndarray, points_sensor: np.ndarray) -> ScanMatchResult:
        pts = self.subsample(np.asarray(points_sensor, dtype=float))
        initial_pose = np.asarray(initial_pose, dtype=float)

        if self.use_correlative:
            coarse = self.correlative.match(initial_pose, pts)
            fine = self.refiner.refine(coarse.pose, pts, prior_pose=initial_pose)
            # Guard: refinement must not wander out of the search basin.
            drift = np.hypot(*(fine.pose[:2] - coarse.pose[:2]))
            if fine.score < coarse.score or drift > 2 * self.correlative.linear_window:
                return coarse
            return ScanMatchResult(
                fine.pose, fine.score, coarse.covariance, fine.converged
            )

        # Odometry-seeded Ceres-style matching only (Cartographer default).
        return self.refiner.refine(initial_pose, pts, prior_pose=initial_pose)
