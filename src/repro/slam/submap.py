"""Probability-grid submaps (Cartographer's local mapping unit [1]).

A :class:`ProbabilityGrid` stores per-cell occupancy odds updated by scan
insertion: cells containing scan endpoints receive a *hit* update, cells
along the ray a *miss* update, applied multiplicatively in odds space
exactly as in Cartographer (probability_values.cc).  A :class:`Submap`
anchors such a grid at a world pose and counts insertions so the front-end
knows when to finish it and start the next.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.maps.occupancy_grid import FREE, OCCUPIED, UNKNOWN, OccupancyGrid
from repro.utils.geometry import transform_points

__all__ = ["ProbabilityGrid", "Submap"]


def _odds(p: float) -> float:
    return p / (1.0 - p)


def _prob_from_odds(o: np.ndarray) -> np.ndarray:
    return o / (1.0 + o)


class ProbabilityGrid:
    """Occupancy probabilities with multiplicative odds updates.

    Cells start unknown (probability NaN); the first observation sets them
    to the hit/miss probability directly, later ones multiply odds.
    Probabilities are clamped to ``[p_min, p_max]`` to keep cells revisable
    (Cartographer uses [0.12, 0.98]; see mapping/2d/probability_grid.cc).
    """

    def __init__(
        self,
        width: int,
        height: int,
        resolution: float,
        origin=(0.0, 0.0),
        p_hit: float = 0.62,
        p_miss: float = 0.44,
        p_min: float = 0.12,
        p_max: float = 0.98,
    ) -> None:
        if width < 1 or height < 1:
            raise ValueError("grid dimensions must be positive")
        if not (0.5 < p_hit < 1.0 and 0.0 < p_miss < 0.5):
            raise ValueError("need p_hit in (0.5, 1) and p_miss in (0, 0.5)")
        self.resolution = float(resolution)
        self.origin = (float(origin[0]), float(origin[1]))
        self.prob = np.full((height, width), np.nan, dtype=np.float32)
        self._odds_hit = _odds(p_hit)
        self._odds_miss = _odds(p_miss)
        self.p_hit = p_hit
        self.p_miss = p_miss
        self.p_min = p_min
        self.p_max = p_max

    @property
    def shape(self):
        return self.prob.shape

    def world_to_grid(self, xy: np.ndarray) -> np.ndarray:
        xy = np.asarray(xy, dtype=float)
        out = np.empty(xy.shape, dtype=np.int64)
        out[..., 0] = np.floor((xy[..., 0] - self.origin[0]) / self.resolution)
        out[..., 1] = np.floor((xy[..., 1] - self.origin[1]) / self.resolution)
        return out

    def _apply(self, rows: np.ndarray, cols: np.ndarray, odds_factor: float) -> None:
        h, w = self.prob.shape
        ok = (rows >= 0) & (rows < h) & (cols >= 0) & (cols < w)
        rows, cols = rows[ok], cols[ok]
        if rows.size == 0:
            return
        current = self.prob[rows, cols]
        unknown = np.isnan(current)
        seed = self.p_hit if odds_factor == self._odds_hit else self.p_miss
        new = np.where(
            unknown,
            seed,
            _prob_from_odds(_odds_vec(current) * odds_factor),
        )
        self.prob[rows, cols] = np.clip(new, self.p_min, self.p_max)

    def insert_scan(self, sensor_pose: np.ndarray, points_sensor: np.ndarray) -> None:
        """Insert one scan: hits at endpoints, misses along the rays.

        ``points_sensor`` are hit points in the sensor frame (max-range
        returns already removed).
        """
        sensor_pose = np.asarray(sensor_pose, dtype=float)
        pts_world = transform_points(sensor_pose, np.asarray(points_sensor, dtype=float))
        hit_ij = self.world_to_grid(pts_world)

        # Miss cells: sample along each ray just short of the endpoint.
        # Sampling at half-resolution steps visits essentially every cell.
        ox, oy = sensor_pose[0], sensor_pose[1]
        deltas = pts_world - np.array([ox, oy])
        lengths = np.hypot(deltas[:, 0], deltas[:, 1])
        miss_rows: List[np.ndarray] = []
        miss_cols: List[np.ndarray] = []
        step = self.resolution * 0.7
        for d, length in zip(deltas, lengths):
            n = int(length / step)
            if n < 1:
                continue
            ts = (np.arange(n) + 0.5) / (n + 1)  # stop short of the hit cell
            xs = ox + ts * d[0]
            ys = oy + ts * d[1]
            ij = self.world_to_grid(np.stack([xs, ys], axis=-1))
            miss_cols.append(ij[:, 0])
            miss_rows.append(ij[:, 1])

        if miss_rows:
            rows = np.concatenate(miss_rows)
            cols = np.concatenate(miss_cols)
            # Never miss-update a cell that this scan hits.
            flat_miss = rows * self.prob.shape[1] + cols
            flat_hit = hit_ij[:, 1] * self.prob.shape[1] + hit_ij[:, 0]
            keep = ~np.isin(flat_miss, flat_hit)
            # Deduplicate: Cartographer applies at most one update per cell
            # per scan.
            flat_unique = np.unique(flat_miss[keep])
            self._apply(
                flat_unique // self.prob.shape[1],
                flat_unique % self.prob.shape[1],
                self._odds_miss,
            )
        flat_hit_unique = np.unique(hit_ij[:, 1] * self.prob.shape[1] + hit_ij[:, 0])
        self._apply(
            flat_hit_unique // self.prob.shape[1],
            flat_hit_unique % self.prob.shape[1],
            self._odds_hit,
        )

    def to_occupancy_grid(self, occupied_thresh: float = 0.55,
                          free_thresh: float = 0.45) -> OccupancyGrid:
        """Threshold probabilities into a discrete occupancy grid."""
        data = np.full(self.prob.shape, UNKNOWN, dtype=np.int8)
        known = ~np.isnan(self.prob)
        data[known & (self.prob > occupied_thresh)] = OCCUPIED
        data[known & (self.prob < free_thresh)] = FREE
        return OccupancyGrid(data, self.resolution, self.origin)


def _odds_vec(p: np.ndarray) -> np.ndarray:
    return p / (1.0 - p)


@dataclass
class Submap:
    """A probability grid anchored at a world pose.

    ``local_pose`` is the submap origin in the world frame at creation
    time; graph optimisation may later revise it (the grid itself is in
    submap-local coordinates).
    """

    local_pose: np.ndarray
    grid: ProbabilityGrid
    index: int
    num_scans: int = 0
    finished: bool = False
    node_ids: List[int] = field(default_factory=list)

    @staticmethod
    def create(
        center_world: np.ndarray,
        index: int,
        size_m: float = 14.0,
        resolution: float = 0.05,
    ) -> "Submap":
        """A square submap centred on the current sensor position."""
        half = size_m / 2.0
        origin = (float(center_world[0]) - half, float(center_world[1]) - half)
        cells = int(np.ceil(size_m / resolution))
        grid = ProbabilityGrid(cells, cells, resolution, origin)
        pose = np.array([center_world[0], center_world[1], 0.0])
        return Submap(local_pose=pose, grid=grid, index=index)

    def insert(self, sensor_pose_world: np.ndarray, points_sensor: np.ndarray,
               node_id: Optional[int] = None) -> None:
        if self.finished:
            raise RuntimeError(f"submap {self.index} is finished")
        self.grid.insert_scan(sensor_pose_world, points_sensor)
        self.num_scans += 1
        if node_id is not None:
            self.node_ids.append(node_id)

    def finish(self) -> None:
        self.finished = True
