"""Branch-and-bound scan matching (Cartographer's loop-closure search [1]).

Exhaustive correlative search over a large window costs
O(n_x · n_y · n_theta · n_points); Cartographer's global matcher (Hess et
al., ICRA 2016, §6) gets the *same, provably optimal* answer far faster by
branch and bound:

* **precompute** a pyramid of max-pooled score grids: level ``h`` stores,
  at each cell, the maximum field value over the ``2^h x 2^h`` window
  anchored there;
* **bound**: the score of a whole translation sub-window of side ``2^h``
  is upper-bounded by evaluating the scan against level ``h`` at the
  window's anchor (max over each point's reachable cells);
* **branch**: depth-first, best-bound-first splitting of windows into four
  children, pruning any window whose bound cannot beat the best leaf found
  so far.

The returned solution is identical to exhaustive search at the same
resolution (the bound is admissible — a property the test suite checks),
which is what makes it trustworthy for loop closures: a wrong loop edge is
far worse than a missed one.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.slam.scan_matcher import LikelihoodField, ScanMatchResult
from repro.utils.angles import wrap_to_pi

__all__ = ["BranchAndBoundMatcher"]


@dataclass(order=True)
class _Candidate:
    """A translation sub-window at one rotation, ordered by bound (max-heap
    via negation)."""

    neg_bound: float
    tiebreak: int
    height: int = 0
    off_x: int = 0           # window anchor, in cells, relative to window origin
    off_y: int = 0
    theta_index: int = 0


class BranchAndBoundMatcher:
    """Globally optimal windowed scan matching against a likelihood field.

    Parameters
    ----------
    field:
        The (smoothed) map to match against.
    angular_step:
        Rotation discretisation, radians.
    max_points:
        Scan subsampling cap (points dominate bound-evaluation cost).
    min_score:
        Matches scoring below this are reported with ``converged=False``
        (loop-closure callers should reject them).
    """

    def __init__(
        self,
        field: LikelihoodField,
        angular_step: float = 0.02,
        max_points: int = 100,
        min_score: float = 0.3,
    ) -> None:
        if angular_step <= 0:
            raise ValueError("angular_step must be positive")
        self.field = field
        self.angular_step = float(angular_step)
        self.max_points = int(max_points)
        self.min_score = float(min_score)
        self._max_height = 7
        self._pad = 2 ** self._max_height
        self._pyramid = self._build_pyramid(field.field, self._max_height,
                                            self._pad)

    # ------------------------------------------------------------------
    @staticmethod
    def _build_pyramid(base: np.ndarray, max_height: int,
                       pad: int) -> List[np.ndarray]:
        """Level h: max over the 2^h x 2^h window anchored at each cell.

        The base is zero-padded by the largest window size on every side so
        that windows straddling the map edge are bounded correctly (the
        outside scores exactly 0, same as an out-of-map point in the exact
        evaluation) — required for bound admissibility at the borders.
        Built by the standard doubling trick: each level maxes two copies
        of the previous level offset by its window size, so construction is
        O(levels * cells).
        """
        padded = np.zeros(
            (base.shape[0] + 2 * pad, base.shape[1] + 2 * pad), dtype=np.float64
        )
        padded[pad:-pad, pad:-pad] = base
        levels = [padded]
        for h in range(1, max_height + 1):
            prev = levels[-1]
            step = 2 ** (h - 1)
            shifted_x = np.zeros_like(prev)
            shifted_x[:, :-step] = prev[:, step:]
            horiz = np.maximum(prev, shifted_x)
            shifted_y = np.zeros_like(horiz)
            shifted_y[:-step, :] = horiz[step:, :]
            levels.append(np.maximum(horiz, shifted_y))
        return levels

    def _grid_indices(self, points_world: np.ndarray) -> np.ndarray:
        """Cell indices (col, row) of world points; may be out of bounds."""
        res = self.field.resolution
        out = np.empty(points_world.shape, dtype=np.int64)
        out[:, 0] = np.floor((points_world[:, 0] - self.field.origin[0]) / res)
        out[:, 1] = np.floor((points_world[:, 1] - self.field.origin[1]) / res)
        return out

    def _score_at(self, level: int, cols: np.ndarray, rows: np.ndarray,
                  dx: int, dy: int) -> float:
        """Mean (upper-bound) score of the scan shifted by (dx, dy) cells,
        evaluated on pyramid ``level``.

        Indices are into the padded pyramid; anything beyond even the
        padding (scan points far outside the map) scores 0.
        """
        grid = self._pyramid[level]
        h, w = grid.shape
        c = cols + dx + self._pad
        r = rows + dy + self._pad
        valid = (c >= 0) & (c < w) & (r >= 0) & (r < h)
        if not np.any(valid):
            return 0.0
        vals = np.zeros(cols.shape[0])
        vals[valid] = grid[r[valid], c[valid]]
        return float(vals.mean())

    # ------------------------------------------------------------------
    def match(
        self,
        initial_pose: np.ndarray,
        points_sensor: np.ndarray,
        linear_window: float = 2.0,
        angular_window: float = 0.5,
    ) -> ScanMatchResult:
        """Best pose within the window around ``initial_pose``; optimal at
        (cell, angular_step) resolution."""
        initial_pose = np.asarray(initial_pose, dtype=float)
        points_sensor = np.asarray(points_sensor, dtype=float)
        if points_sensor.shape[0] == 0:
            return ScanMatchResult(initial_pose.copy(), 0.0, np.eye(3), False)
        if points_sensor.shape[0] > self.max_points:
            idx = np.linspace(0, points_sensor.shape[0] - 1,
                              self.max_points).round().astype(np.int64)
            points_sensor = points_sensor[np.unique(idx)]

        res = self.field.resolution
        n_lin = int(np.ceil(linear_window / res))
        # Translations beyond the pyramid padding cannot be bounded; clamp
        # (a >6 m search window at 5 cm cells exceeds any sane loop search).
        n_lin = min(n_lin, self._pad - 1)
        n_ang = int(np.ceil(angular_window / self.angular_step))
        thetas = initial_pose[2] + np.arange(-n_ang, n_ang + 1) * self.angular_step

        # Starting height: smallest pyramid level covering the window.
        height0 = 0
        while 2 ** height0 < 2 * n_lin + 1 and height0 < len(self._pyramid) - 1:
            height0 += 1

        # Precompute per-rotation base cell indices (translation zero).
        per_theta = []
        for theta in thetas:
            c, s = np.cos(theta), np.sin(theta)
            world = np.empty_like(points_sensor)
            world[:, 0] = (c * points_sensor[:, 0] - s * points_sensor[:, 1]
                           + initial_pose[0])
            world[:, 1] = (s * points_sensor[:, 0] + c * points_sensor[:, 1]
                           + initial_pose[1])
            ij = self._grid_indices(world)
            per_theta.append((ij[:, 0], ij[:, 1]))

        counter = itertools.count()
        heap: List[_Candidate] = []
        for k in range(len(thetas)):
            cols, rows = per_theta[k]
            bound = self._score_at(height0, cols, rows, -n_lin, -n_lin)
            heapq.heappush(
                heap,
                _Candidate(-bound, next(counter), height0, -n_lin, -n_lin, k),
            )

        best_score = -1.0
        best: Optional[_Candidate] = None
        while heap:
            cand = heapq.heappop(heap)
            bound = -cand.neg_bound
            if bound <= best_score:
                break  # best-first: nothing left can beat the incumbent
            cols, rows = per_theta[cand.theta_index]
            if cand.height == 0:
                score = bound  # level-0 bound is exact
                if score > best_score:
                    best_score = score
                    best = cand
                continue
            # Branch: split the window into four half-size children.
            child_h = cand.height - 1
            step = 2 ** child_h
            for ddx in (0, step):
                for ddy in (0, step):
                    off_x = cand.off_x + ddx
                    off_y = cand.off_y + ddy
                    if off_x > n_lin or off_y > n_lin:
                        continue
                    child_bound = self._score_at(child_h, cols, rows, off_x, off_y)
                    if child_bound > best_score:
                        heapq.heappush(
                            heap,
                            _Candidate(-child_bound, next(counter), child_h,
                                       off_x, off_y, cand.theta_index),
                        )

        if best is None:
            return ScanMatchResult(initial_pose.copy(), 0.0, np.eye(3), False)

        pose = np.array(
            [
                initial_pose[0] + best.off_x * res,
                initial_pose[1] + best.off_y * res,
                wrap_to_pi(thetas[best.theta_index]),
            ]
        )
        covariance = np.diag([res**2, res**2, self.angular_step**2])
        return ScanMatchResult(
            pose, best_score, covariance, best_score >= self.min_score
        )
