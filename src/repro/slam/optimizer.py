"""Sparse Gauss-Newton optimisation of an SE(2) pose graph.

Solves the nonlinear least-squares problem

``min_T  sum_c  r_c(T)^T  Omega_c  r_c(T)``

over a selected subset of node poses (the rest held fixed — sliding-window
smoothing holds old nodes, full optimisation frees everything but the
first).  Residual Jacobians are analytic; the normal equations are
assembled densely per window, which is ample for window sizes up to a few
hundred nodes (scipy handles the solve).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.slam.pose_graph import ORIGIN_NODE, Constraint, PoseGraph
from repro.utils.angles import wrap_to_pi

__all__ = ["optimize_pose_graph"]


def _residual_and_jacobians(
    pose_i: np.ndarray, pose_j: np.ndarray, measurement: np.ndarray
):
    """Residual of one constraint and its Jacobians wrt both endpoint poses.

    Residual: ``r = R_i^T (t_j - t_i) - z_t ,  wrap(th_j - th_i - z_th)``.
    """
    ci, si = np.cos(pose_i[2]), np.sin(pose_i[2])
    dx = pose_j[0] - pose_i[0]
    dy = pose_j[1] - pose_i[1]

    r = np.array(
        [
            ci * dx + si * dy - measurement[0],
            -si * dx + ci * dy - measurement[1],
            wrap_to_pi(pose_j[2] - pose_i[2] - measurement[2]),
        ]
    )

    jac_i = np.array(
        [
            [-ci, -si, -si * dx + ci * dy],
            [si, -ci, -ci * dx - si * dy],
            [0.0, 0.0, -1.0],
        ]
    )
    jac_j = np.array(
        [
            [ci, si, 0.0],
            [-si, ci, 0.0],
            [0.0, 0.0, 1.0],
        ]
    )
    return r, jac_i, jac_j


def optimize_pose_graph(
    graph: PoseGraph,
    free_nodes: Optional[Iterable[int]] = None,
    max_iterations: int = 20,
    tolerance: float = 1e-8,
    damping: float = 1e-6,
) -> float:
    """Optimise ``graph`` in place; returns the final total error.

    Parameters
    ----------
    graph:
        The pose graph; ``graph.poses`` is updated in place.
    free_nodes:
        Node ids allowed to move.  Default: every node except the first
        (which anchors the gauge).  Passing a recent-node subset yields
        sliding-window smoothing.
    max_iterations, tolerance:
        Gauss-Newton stopping criteria (step infinity-norm).
    damping:
        Levenberg-style diagonal damping for rank-deficient windows.
    """
    if graph.num_nodes == 0:
        return 0.0

    if free_nodes is None:
        all_ids = sorted(graph.poses)
        free = all_ids[1:]
    else:
        free = [n for n in free_nodes if n in graph.poses]
    if not free:
        return graph.total_error()

    index: Dict[int, int] = {node_id: k for k, node_id in enumerate(free)}
    constraints: List[Constraint] = graph.constraints_touching(free)
    if not constraints:
        return graph.total_error()

    n_vars = 3 * len(free)
    for _ in range(max_iterations):
        h_matrix = np.zeros((n_vars, n_vars))
        g = np.zeros(n_vars)

        for c in constraints:
            pose_i = graph.node_pose(c.node_i)
            pose_j = graph.node_pose(c.node_j)
            r, jac_i, jac_j = _residual_and_jacobians(pose_i, pose_j, c.measurement)
            omega = c.information

            i_free = c.node_i in index and c.node_i != ORIGIN_NODE
            j_free = c.node_j in index
            if i_free:
                a = index[c.node_i] * 3
                h_matrix[a : a + 3, a : a + 3] += jac_i.T @ omega @ jac_i
                g[a : a + 3] += jac_i.T @ omega @ r
            if j_free:
                b = index[c.node_j] * 3
                h_matrix[b : b + 3, b : b + 3] += jac_j.T @ omega @ jac_j
                g[b : b + 3] += jac_j.T @ omega @ r
            if i_free and j_free:
                a = index[c.node_i] * 3
                b = index[c.node_j] * 3
                cross = jac_i.T @ omega @ jac_j
                h_matrix[a : a + 3, b : b + 3] += cross
                h_matrix[b : b + 3, a : a + 3] += cross.T

        h_matrix += damping * np.eye(n_vars)
        try:
            step = np.linalg.solve(h_matrix, -g)
        except np.linalg.LinAlgError:
            break

        for node_id, k in index.items():
            pose = graph.poses[node_id]
            pose[0] += step[3 * k]
            pose[1] += step[3 * k + 1]
            pose[2] = wrap_to_pi(pose[2] + step[3 * k + 2])

        if float(np.abs(step).max()) < tolerance:
            break

    return graph.total_error()
