"""SE(2) pose graph: nodes, constraints, residuals.

The graph's nodes are robot poses at scan times; constraints are relative
SE(2) measurements with information matrices:

* ``odometry`` — between consecutive nodes, from wheel odometry;
* ``scan_match`` — absolute (node-to-map) matches, encoded as constraints
  to a fixed virtual node (id -1) at the world origin;
* ``loop_closure`` — relative matches between temporally distant nodes
  found by searching old submaps.

The optimizer (see :mod:`repro.slam.optimizer`) minimises the weighted sum
of squared residuals ``r = (T_i^{-1} T_j) ominus z_ij``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.utils.angles import wrap_to_pi

__all__ = ["Constraint", "PoseGraph", "relative_pose", "apply_relative"]

ORIGIN_NODE: int = -1  # virtual fixed node for absolute constraints


def relative_pose(pose_i: np.ndarray, pose_j: np.ndarray) -> np.ndarray:
    """``T_i^{-1} T_j`` as an ``(dx, dy, dtheta)`` triple in i's frame."""
    ci, si = np.cos(pose_i[2]), np.sin(pose_i[2])
    dx = pose_j[0] - pose_i[0]
    dy = pose_j[1] - pose_i[1]
    return np.array(
        [
            ci * dx + si * dy,
            -si * dx + ci * dy,
            wrap_to_pi(pose_j[2] - pose_i[2]),
        ]
    )


def apply_relative(pose_i: np.ndarray, rel: np.ndarray) -> np.ndarray:
    """``T_i  (+)  rel`` — invert :func:`relative_pose`."""
    ci, si = np.cos(pose_i[2]), np.sin(pose_i[2])
    return np.array(
        [
            pose_i[0] + ci * rel[0] - si * rel[1],
            pose_i[1] + si * rel[0] + ci * rel[1],
            wrap_to_pi(pose_i[2] + rel[2]),
        ]
    )


@dataclass(frozen=True)
class Constraint:
    """A relative SE(2) measurement between two nodes.

    ``node_i == ORIGIN_NODE`` encodes an absolute (world-frame) constraint,
    e.g. a scan match against the frozen map.
    """

    node_i: int
    node_j: int
    measurement: np.ndarray          # (dx, dy, dtheta) of j in i's frame
    information: np.ndarray          # 3x3, inverse covariance
    kind: str = "odometry"           # "odometry" | "scan_match" | "loop_closure"

    def __post_init__(self) -> None:
        if self.measurement.shape != (3,):
            raise ValueError("measurement must be a 3-vector")
        if self.information.shape != (3, 3):
            raise ValueError("information must be 3x3")
        if self.kind not in ("odometry", "scan_match", "loop_closure"):
            raise ValueError(f"unknown constraint kind {self.kind!r}")


class PoseGraph:
    """Container for nodes and constraints with residual evaluation."""

    def __init__(self) -> None:
        self.poses: Dict[int, np.ndarray] = {}
        self.constraints: List[Constraint] = []
        self._next_id = 0

    def add_node(self, pose: np.ndarray) -> int:
        node_id = self._next_id
        self.poses[node_id] = np.asarray(pose, dtype=float).copy()
        self._next_id += 1
        return node_id

    def add_constraint(
        self,
        node_i: int,
        node_j: int,
        measurement: np.ndarray,
        information: np.ndarray,
        kind: str = "odometry",
    ) -> Constraint:
        if node_i != ORIGIN_NODE and node_i not in self.poses:
            raise KeyError(f"unknown node {node_i}")
        if node_j not in self.poses:
            raise KeyError(f"unknown node {node_j}")
        c = Constraint(
            node_i,
            node_j,
            np.asarray(measurement, dtype=float),
            np.asarray(information, dtype=float),
            kind,
        )
        self.constraints.append(c)
        return c

    def node_pose(self, node_id: int) -> np.ndarray:
        if node_id == ORIGIN_NODE:
            return np.zeros(3)
        return self.poses[node_id]

    def residual(self, constraint: Constraint) -> np.ndarray:
        """``(predicted relative) - (measured relative)``, angle wrapped."""
        pose_i = self.node_pose(constraint.node_i)
        pose_j = self.node_pose(constraint.node_j)
        predicted = relative_pose(pose_i, pose_j)
        r = predicted - constraint.measurement
        r[2] = wrap_to_pi(r[2])
        return r

    def total_error(self) -> float:
        """Weighted sum of squared residuals (the optimisation objective)."""
        total = 0.0
        for c in self.constraints:
            r = self.residual(c)
            total += float(r @ c.information @ r)
        return total

    def constraints_touching(self, node_ids) -> List[Constraint]:
        """Constraints with at least one endpoint in ``node_ids``."""
        wanted = set(node_ids)
        return [
            c
            for c in self.constraints
            if c.node_i in wanted or c.node_j in wanted
        ]

    @property
    def num_nodes(self) -> int:
        return len(self.poses)

    def latest_node_id(self) -> Optional[int]:
        if not self.poses:
            return None
        return self._next_id - 1
