"""Reproduction of *Robustness Evaluation of Localization Techniques for
Autonomous Racing* (Lim, Ghignone, Baumann, Magno — DATE 2024).

The paper introduces **SynPF**, a particle-filter localizer for high-speed
autonomous racing, and shows that while pose-graph SLAM (Cartographer) wins
under nominal conditions, SynPF stays accurate when wheel odometry degrades
(slippery tires) — at 1.25 ms scan-matching latency without a GPU.

Package map (see DESIGN.md for the full inventory):

=================  ====================================================
``repro.core``     SynPF: motion models, sensor model, scan layouts,
                   resampling, the filter itself
``repro.maps``     occupancy grids, map file I/O, synthetic racetracks
``repro.raycast``  rangelibc reproduction (Bresenham / RM / CDDT / LUT)
``repro.slam``     Cartographer-style pose-graph SLAM baseline
``repro.sim``      F1TENTH vehicle + sensor simulation with wheel slip
``repro.eval``     Table I experiment harness, metrics, perturbations
``repro.telemetry``  metrics registry, span tracing, run manifests,
                   JSONL streams + report rendering
=================  ====================================================

Quickstart::

    from repro.maps import generate_track
    from repro.core import make_synpf
    from repro.sim import Simulator

    track = generate_track(seed=1)
    pf = make_synpf(track.grid)
    pf.initialize(track.centerline.start_pose())
    # feed pf.update(odometry_delta, scan_ranges, beam_angles) per scan

See ``examples/quickstart.py`` for the complete closed loop.
"""

from repro.core import Localizer, SynPF, make_localizer, make_synpf, make_vanilla_mcl
from repro.eval import ExperimentCondition, LapExperiment, format_table1
from repro.maps import OccupancyGrid, generate_track, load_map_yaml, replica_test_track
from repro.sim import SimConfig, Simulator
from repro.slam import Cartographer, CartographerConfig

__version__ = "1.0.0"

__all__ = [
    "Cartographer",
    "CartographerConfig",
    "ExperimentCondition",
    "LapExperiment",
    "Localizer",
    "OccupancyGrid",
    "SimConfig",
    "Simulator",
    "SynPF",
    "format_table1",
    "generate_track",
    "load_map_yaml",
    "make_localizer",
    "make_synpf",
    "make_vanilla_mcl",
    "replica_test_track",
    "__version__",
]
