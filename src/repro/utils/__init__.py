"""Shared low-level utilities: planar geometry, angle arithmetic, RNG, timing.

These helpers are deliberately dependency-light (NumPy only) and are used by
every other subpackage.  Nothing in here is specific to the paper; it is the
mathematical bedrock the localization stack sits on.
"""

from repro.utils.angles import (
    angle_diff,
    circular_mean,
    circular_std,
    wrap_to_pi,
)
from repro.utils.config_io import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.utils.geometry import (
    SE2,
    homogeneous_from_pose,
    pose_from_homogeneous,
    rot2d,
    transform_points,
)
from repro.utils.profiling import Stopwatch, TimingStats
from repro.utils.rng import derive_seed, make_rng, split_rng

__all__ = [
    "SE2",
    "Stopwatch",
    "TimingStats",
    "angle_diff",
    "circular_mean",
    "circular_std",
    "config_from_dict",
    "config_to_dict",
    "load_config",
    "save_config",
    "homogeneous_from_pose",
    "derive_seed",
    "make_rng",
    "split_rng",
    "pose_from_homogeneous",
    "rot2d",
    "transform_points",
    "wrap_to_pi",
]
