"""Deterministic random-number-generator plumbing.

Every stochastic component in the package (particle filter, tire noise,
sensor noise, track generator) takes an explicit ``numpy.random.Generator``
so that experiments are reproducible bit-for-bit from a single seed.  This
module centralises construction and seed-splitting.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

__all__ = ["make_rng", "split_rng", "derive_seed"]

RngLike = Union[None, int, np.random.Generator]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged).  This lets every public constructor take
    a single ``seed`` argument with uniform semantics.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def split_rng(rng: np.random.Generator, count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``.

    Used when one experiment seed must fan out to several subsystems
    (vehicle noise, LiDAR noise, filter resampling) without their draw
    sequences interleaving — changing how often one subsystem samples must
    not perturb the others.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(*components) -> int:
    """Deterministic 63-bit seed from arbitrary printable components.

    Hashes the ``repr`` of every component through SHA-256, so the result
    is stable across processes and Python invocations (unlike built-in
    ``hash``, which is salted per process).  The parallel sweep runner
    uses this to give every (condition, trial-index) pair its own seed:
    results are then independent of which worker runs the trial and of
    completion order, which is what makes a sweep's output bit-identical
    regardless of worker count.

    >>> derive_seed("synpf/HQ", 0) == derive_seed("synpf/HQ", 0)
    True
    >>> derive_seed("synpf/HQ", 0) != derive_seed("synpf/HQ", 1)
    True
    """
    digest = hashlib.sha256()
    for component in components:
        digest.update(repr(component).encode("utf-8"))
        digest.update(b"\x1f")  # separator: ("ab", "c") != ("a", "bc")
    return int.from_bytes(digest.digest()[:8], "little") & (2**63 - 1)
