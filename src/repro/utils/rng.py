"""Deterministic random-number-generator plumbing.

Every stochastic component in the package (particle filter, tire noise,
sensor noise, track generator) takes an explicit ``numpy.random.Generator``
so that experiments are reproducible bit-for-bit from a single seed.  This
module centralises construction and seed-splitting.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["make_rng", "split_rng"]

RngLike = Union[None, int, np.random.Generator]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged).  This lets every public constructor take
    a single ``seed`` argument with uniform semantics.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def split_rng(rng: np.random.Generator, count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``.

    Used when one experiment seed must fan out to several subsystems
    (vehicle noise, LiDAR noise, filter resampling) without their draw
    sequences interleaving — changing how often one subsystem samples must
    not perturb the others.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
