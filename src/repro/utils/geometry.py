"""Planar rigid-body (SE(2)) geometry.

Poses throughout this package are ``(x, y, theta)`` triples — position in
metres in the map frame, heading in radians.  Batches of poses are ``(N, 3)``
float arrays.  This module provides composition, inversion, point transforms
and conversions to/from 3x3 homogeneous matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.angles import wrap_to_pi

__all__ = [
    "SE2",
    "rot2d",
    "homogeneous_from_pose",
    "pose_from_homogeneous",
    "transform_points",
    "transform_points_batch",
]


def rot2d(theta: float) -> np.ndarray:
    """2x2 rotation matrix for angle ``theta``."""
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, -s], [s, c]])


def homogeneous_from_pose(pose: np.ndarray) -> np.ndarray:
    """3x3 homogeneous transform matrix for a pose ``(x, y, theta)``."""
    x, y, theta = pose
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, -s, x], [s, c, y], [0.0, 0.0, 1.0]])


def pose_from_homogeneous(matrix: np.ndarray) -> np.ndarray:
    """Inverse of :func:`homogeneous_from_pose`."""
    return np.array(
        [matrix[0, 2], matrix[1, 2], np.arctan2(matrix[1, 0], matrix[0, 0])]
    )


def transform_points(pose: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Transform ``(N, 2)`` points from the frame of ``pose`` into its parent.

    Equivalent to ``R(theta) @ p + t`` for each point ``p``.
    """
    x, y, theta = float(pose[0]), float(pose[1]), float(pose[2])
    c, s = np.cos(theta), np.sin(theta)
    points = np.asarray(points, dtype=float)
    out = np.empty_like(points)
    out[:, 0] = c * points[:, 0] - s * points[:, 1] + x
    out[:, 1] = s * points[:, 0] + c * points[:, 1] + y
    return out


def transform_points_batch(poses: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Transform the same ``(M, 2)`` point set by each of ``(N, 3)`` poses.

    Returns an ``(N, M, 2)`` array.  Used by the sensor model to place the
    LiDAR origin of every particle at once.
    """
    poses = np.asarray(poses, dtype=float)
    points = np.asarray(points, dtype=float)
    c = np.cos(poses[:, 2])[:, None]
    s = np.sin(poses[:, 2])[:, None]
    px = points[None, :, 0]
    py = points[None, :, 1]
    out = np.empty((poses.shape[0], points.shape[0], 2))
    out[:, :, 0] = c * px - s * py + poses[:, 0][:, None]
    out[:, :, 1] = s * px + c * py + poses[:, 1][:, None]
    return out


@dataclass(frozen=True)
class SE2:
    """An immutable SE(2) element with composition operators.

    This is the reader-friendly interface; hot loops use the raw-array
    functions above.  ``a @ b`` composes (apply ``b`` in ``a``'s frame),
    ``a.inverse()`` inverts, ``a.apply(points)`` maps points into the
    parent frame.

    >>> origin_to_car = SE2(1.0, 2.0, np.pi / 2)
    >>> car_to_lidar = SE2(0.3, 0.0, 0.0)
    >>> (origin_to_car @ car_to_lidar).x
    1.0
    """

    x: float
    y: float
    theta: float

    @staticmethod
    def identity() -> "SE2":
        return SE2(0.0, 0.0, 0.0)

    @staticmethod
    def from_array(pose: np.ndarray) -> "SE2":
        return SE2(float(pose[0]), float(pose[1]), float(wrap_to_pi(pose[2])))

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y, self.theta])

    def __matmul__(self, other: "SE2") -> "SE2":
        c, s = np.cos(self.theta), np.sin(self.theta)
        return SE2(
            self.x + c * other.x - s * other.y,
            self.y + s * other.x + c * other.y,
            float(wrap_to_pi(self.theta + other.theta)),
        )

    def inverse(self) -> "SE2":
        c, s = np.cos(self.theta), np.sin(self.theta)
        return SE2(
            -(c * self.x + s * self.y),
            -(-s * self.x + c * self.y),
            float(wrap_to_pi(-self.theta)),
        )

    def relative_to(self, other: "SE2") -> "SE2":
        """Express ``self`` in the frame of ``other`` (``other^-1 @ self``)."""
        return other.inverse() @ self

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Map ``(N, 2)`` points from this frame into the parent frame."""
        return transform_points(self.as_array(), points)

    def distance_to(self, other: "SE2") -> float:
        """Euclidean translation distance to another pose (ignores heading)."""
        return float(np.hypot(self.x - other.x, self.y - other.y))
