"""Dataclass-config serialisation: to/from dicts and JSON files.

Every tunable in this package lives in a (frozen) dataclass —
:class:`~repro.core.particle_filter.ParticleFilterConfig`,
:class:`~repro.slam.cartographer.CartographerConfig`,
:class:`~repro.sim.simulator.SimConfig`, ...  Reproducing an experiment
months later requires storing those configs next to the results; this
module round-trips any such config through plain JSON, handling nested
dataclasses, tuples, and NumPy scalars.

Unknown keys on load raise by default (typos in config files should fail
loudly), with an opt-out for forward compatibility.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Type, TypeVar, get_args, get_origin, get_type_hints

import numpy as np

__all__ = ["config_to_dict", "config_from_dict", "save_config", "load_config"]

T = TypeVar("T")


def _to_jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return config_to_dict(value)
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot serialise {type(value).__name__} "
        "(configs must contain plain data)"
    )


def config_to_dict(config: Any) -> Dict[str, Any]:
    """A JSON-ready dict of a dataclass config (nested configs recurse)."""
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise TypeError("config_to_dict expects a dataclass instance")
    out: Dict[str, Any] = {"__type__": type(config).__name__}
    for field in dataclasses.fields(config):
        out[field.name] = _to_jsonable(getattr(config, field.name))
    return out


def _coerce(value: Any, annotation: Any) -> Any:
    origin = get_origin(annotation)
    if dataclasses.is_dataclass(annotation) and isinstance(value, dict):
        return config_from_dict(annotation, value)
    if origin is tuple and isinstance(value, list):
        args = get_args(annotation)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_coerce(v, args[0]) for v in value)
        if args:
            return tuple(_coerce(v, a) for v, a in zip(value, args))
        return tuple(value)
    if annotation in (tuple,) and isinstance(value, list):
        return tuple(value)
    # Optional[X] and similar unions: try each member type.
    if origin is not None and origin.__module__ == "typing":
        return value
    if str(annotation).startswith("typing.Optional") or "Union" in str(origin):
        return value
    return value


def config_from_dict(cls: Type[T], data: Dict[str, Any],
                     strict: bool = True) -> T:
    """Rebuild a dataclass config from :func:`config_to_dict` output.

    ``strict=True`` (default) rejects unknown keys; the embedded
    ``__type__`` tag, if present, must match ``cls.__name__``.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError("config_from_dict expects a dataclass type")
    data = dict(data)
    tag = data.pop("__type__", None)
    if tag is not None and tag != cls.__name__:
        raise ValueError(
            f"config type mismatch: file says {tag!r}, expected "
            f"{cls.__name__!r}"
        )
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown and strict:
        raise ValueError(f"unknown config keys for {cls.__name__}: "
                         f"{sorted(unknown)}")
    try:
        hints = get_type_hints(cls)
    except Exception:
        hints = {f.name: f.type for f in dataclasses.fields(cls)}

    kwargs = {}
    for field in dataclasses.fields(cls):
        if field.name not in data:
            continue
        raw = data[field.name]
        annotation = hints.get(field.name, None)
        # Nested dataclass detection also via the default value's type,
        # which survives string annotations.
        if isinstance(raw, dict) and "__type__" in raw:
            default = getattr(cls, field.name, None)
            if field.default_factory is not dataclasses.MISSING:  # type: ignore
                default = field.default_factory()  # type: ignore
            elif field.default is not dataclasses.MISSING:
                default = field.default
            if default is not None and dataclasses.is_dataclass(default):
                kwargs[field.name] = config_from_dict(type(default), raw,
                                                      strict=strict)
                continue
        if annotation is not None:
            raw = _coerce(raw, annotation)
        elif isinstance(raw, list):
            # Without a resolvable annotation, restore tuples (the only
            # sequence type our configs use).
            raw = tuple(raw)
        kwargs[field.name] = raw
    return cls(**kwargs)


def save_config(config: Any, path: str) -> None:
    with open(path, "w") as f:
        json.dump(config_to_dict(config), f, indent=2, sort_keys=True)
        f.write("\n")


def load_config(cls: Type[T], path: str, strict: bool = True) -> T:
    with open(path) as f:
        return config_from_dict(cls, json.load(f), strict=strict)
