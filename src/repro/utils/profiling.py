"""Lightweight timing instrumentation.

The paper's headline latency claim ("1.25 ms scan matching on an i5 without
a GPU") makes per-update timing a first-class measurement.  ``Stopwatch``
wraps ``time.perf_counter`` as a context manager; ``TimingStats`` accumulates
samples and reports the summary statistics the benchmark harness prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["Stopwatch", "TimingStats"]


class Stopwatch:
    """Context-manager timer recording elapsed seconds.

    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed > 0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1e3


@dataclass
class TimingStats:
    """Accumulates named timing samples and summarises them.

    Typical use: the experiment loop records one sample per localization
    update under the key ``"update"``; the report prints mean/median/p99 in
    milliseconds.
    """

    samples: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, name: str, seconds: float) -> None:
        self.samples.setdefault(name, []).append(seconds)

    def time(self, name: str):
        """Return a context manager that records its elapsed time as ``name``."""
        stats = self

        class _Recorder(Stopwatch):
            def __exit__(self, *exc) -> None:
                super().__exit__(*exc)
                stats.record(name, self.elapsed)

        return _Recorder()

    def count(self, name: str) -> int:
        return len(self.samples.get(name, []))

    def mean_ms(self, name: str) -> float:
        return float(np.mean(self.samples[name])) * 1e3

    def median_ms(self, name: str) -> float:
        return float(np.median(self.samples[name])) * 1e3

    def percentile_ms(self, name: str, q: float) -> float:
        return float(np.percentile(self.samples[name], q)) * 1e3

    def total_s(self, name: str) -> float:
        return float(np.sum(self.samples.get(name, [])))

    def merge(self, other: "TimingStats") -> None:
        """Fold another instance's samples into this one.

        The sweep runner times every trial in the orchestrating process
        and merges per-batch stats into a sweep-wide accumulator.
        """
        for name, values in other.samples.items():
            self.samples.setdefault(name, []).extend(values)

    def histogram_ms(self, name: str, bins: int = 12):
        """``(counts, edges_ms)`` histogram of the samples under ``name``.

        Returns empty arrays when no samples exist, so progress callbacks
        can render unconditionally.
        """
        arr = np.asarray(self.samples.get(name, []), dtype=float) * 1e3
        if arr.size == 0:
            return np.zeros(0, dtype=int), np.zeros(0)
        counts, edges = np.histogram(arr, bins=bins)
        return counts, edges

    def format_histogram_ms(self, name: str, bins: int = 8, width: int = 30) -> str:
        """ASCII latency histogram, one ``lo-hi ms | bar count`` row per bin."""
        counts, edges = self.histogram_ms(name, bins=bins)
        if counts.size == 0:
            return "(no samples)"
        peak = max(int(counts.max()), 1)
        rows = []
        for i, count in enumerate(counts):
            bar = "#" * max(1 if count else 0, int(round(width * count / peak)))
            rows.append(
                f"{edges[i]:9.1f}-{edges[i + 1]:9.1f} ms |{bar:<{width}}| {count}"
            )
        return "\n".join(rows)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Dict of ``{name: {mean_ms, median_ms, p99_ms, count}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for name, values in self.samples.items():
            arr = np.asarray(values) * 1e3
            out[name] = {
                "mean_ms": float(arr.mean()),
                "median_ms": float(np.median(arr)),
                "p99_ms": float(np.percentile(arr, 99)),
                "count": float(arr.size),
            }
        return out
