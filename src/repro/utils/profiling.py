"""Lightweight timing instrumentation.

The paper's headline latency claim ("1.25 ms scan matching on an i5 without
a GPU") makes per-update timing a first-class measurement.  ``Stopwatch``
wraps ``time.perf_counter`` as a context manager; ``TimingStats`` accumulates
samples and reports the summary statistics the benchmark harness prints.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["Stopwatch", "TimingStats"]


class Stopwatch:
    """Context-manager timer recording elapsed seconds.

    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed > 0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1e3


@dataclass
class TimingStats:
    """Accumulates named timing samples and summarises them.

    Typical use: the experiment loop records one sample per localization
    update under the key ``"update"``; the report prints mean/median/p99 in
    milliseconds.

    ``max_samples`` bounds memory for long runs: each key keeps at most
    that many raw samples, replaced by uniform reservoir sampling
    (Vitter's Algorithm R) once the stream exceeds the bound.  Counts,
    totals and therefore means stay *exact* via running accumulators;
    medians/percentiles/histograms become estimates over the reservoir.
    ``None`` (the default) keeps every sample, as before.
    """

    samples: Dict[str, List[float]] = field(default_factory=dict)
    max_samples: Optional[int] = None
    # Exact per-key accumulators; lazily synced so instances built with a
    # pre-seeded ``samples`` dict keep working.
    _totals: Dict[str, float] = field(default_factory=dict, repr=False)
    _counts: Dict[str, int] = field(default_factory=dict, repr=False)
    _rng: Optional[random.Random] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.max_samples is not None and self.max_samples < 1:
            raise ValueError("max_samples must be >= 1 (or None)")

    def _sync(self, name: str) -> None:
        if name not in self._counts:
            values = self.samples.get(name, [])
            self._counts[name] = len(values)
            self._totals[name] = float(sum(values))

    def _reservoir_rng(self) -> random.Random:
        if self._rng is None:
            # Fixed seed: which samples survive the reservoir is
            # repeatable run to run.
            self._rng = random.Random(0x5EED)
        return self._rng

    def record(self, name: str, seconds: float) -> None:
        self._sync(name)
        self._counts[name] += 1
        self._totals[name] += seconds
        bucket = self.samples.setdefault(name, [])
        if self.max_samples is None or len(bucket) < self.max_samples:
            bucket.append(seconds)
        else:
            j = self._reservoir_rng().randrange(self._counts[name])
            if j < self.max_samples:
                bucket[j] = seconds

    def time(self, name: str):
        """Return a context manager that records its elapsed time as ``name``."""
        stats = self

        class _Recorder(Stopwatch):
            def __exit__(self, *exc) -> None:
                super().__exit__(*exc)
                stats.record(name, self.elapsed)

        return _Recorder()

    def count(self, name: str) -> int:
        if name in self._counts:
            return self._counts[name]
        return len(self.samples.get(name, []))

    def mean_ms(self, name: str) -> float:
        values = self.samples[name]
        if self._counts.get(name, 0) > 0:
            return self._totals[name] / self._counts[name] * 1e3
        return float(np.mean(values)) * 1e3

    def median_ms(self, name: str) -> float:
        return float(np.median(self.samples[name])) * 1e3

    def percentile_ms(self, name: str, q: float) -> float:
        return float(np.percentile(self.samples[name], q)) * 1e3

    def total_s(self, name: str) -> float:
        if name in self._totals:
            return self._totals[name]
        return float(np.sum(self.samples.get(name, [])))

    def merge(self, other: "TimingStats") -> None:
        """Fold another instance's samples into this one.

        The sweep runner times every trial in the orchestrating process
        and merges per-batch stats into a sweep-wide accumulator.  Exact
        counts and totals carry over even when either side is bounded.
        """
        for name in sorted(set(other.samples) | set(other._counts)):
            self._sync(name)
            self._counts[name] += other.count(name)
            self._totals[name] += other.total_s(name)
            bucket = self.samples.setdefault(name, [])
            bucket.extend(other.samples.get(name, []))
            if self.max_samples is not None and len(bucket) > self.max_samples:
                keep = sorted(self._reservoir_rng().sample(
                    range(len(bucket)), self.max_samples
                ))
                self.samples[name] = [bucket[i] for i in keep]

    def histogram_ms(self, name: str, bins: int = 12):
        """``(counts, edges_ms)`` histogram of the samples under ``name``.

        Returns empty arrays when no samples exist, so progress callbacks
        can render unconditionally.
        """
        arr = np.asarray(self.samples.get(name, []), dtype=float) * 1e3
        if arr.size == 0:
            return np.zeros(0, dtype=int), np.zeros(0)
        counts, edges = np.histogram(arr, bins=bins)
        return counts, edges

    def format_histogram_ms(self, name: str, bins: int = 8, width: int = 30) -> str:
        """ASCII latency histogram, one ``lo-hi ms | bar count`` row per bin."""
        counts, edges = self.histogram_ms(name, bins=bins)
        if counts.size == 0:
            return "(no samples)"
        peak = max(int(counts.max()), 1)
        rows = []
        for i, count in enumerate(counts):
            bar = "#" * max(1 if count else 0, int(round(width * count / peak)))
            rows.append(
                f"{edges[i]:9.1f}-{edges[i + 1]:9.1f} ms |{bar:<{width}}| {count}"
            )
        return "\n".join(rows)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Dict of ``{name: {mean_ms, median_ms, p99_ms, count}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for name, values in self.samples.items():
            arr = np.asarray(values) * 1e3
            out[name] = {
                # mean/count come from the exact accumulators, so they
                # survive reservoir truncation.
                "mean_ms": self.mean_ms(name),
                "median_ms": float(np.median(arr)),
                "p99_ms": float(np.percentile(arr, 99)),
                "count": float(self.count(name)),
            }
        return out
