"""Angle arithmetic on the circle.

All localization math in this package represents headings as radians in
``(-pi, pi]``.  Naive arithmetic on angles (subtraction, averaging) is wrong
near the wrap-around point, so every module routes angle operations through
the helpers here.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "wrap_to_pi",
    "angle_diff",
    "circular_mean",
    "circular_std",
    "angle_linspace",
]


def wrap_to_pi(angle: ArrayLike) -> ArrayLike:
    """Wrap an angle (or array of angles) to the interval ``(-pi, pi]``.

    Works for scalars and NumPy arrays alike.

    >>> round(wrap_to_pi(3 * np.pi), 6)
    3.141593
    """
    wrapped = np.mod(np.asarray(angle) + np.pi, 2.0 * np.pi) - np.pi
    # np.mod maps exact multiples of 2*pi to -pi; the convention here is +pi.
    wrapped = np.where(wrapped == -np.pi, np.pi, wrapped)
    if np.isscalar(angle) or np.ndim(angle) == 0:
        return float(wrapped)
    return wrapped


def angle_diff(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    """Signed smallest difference ``a - b`` on the circle, in ``(-pi, pi]``.

    ``angle_diff(0.1, -0.1)`` is ``0.2``; ``angle_diff(pi - 0.1, -pi + 0.1)``
    is ``-0.2`` (the short way around), not ``2*pi - 0.2``.
    """
    return wrap_to_pi(np.asarray(a) - np.asarray(b))


def circular_mean(angles: np.ndarray, weights: np.ndarray | None = None) -> float:
    """Weighted circular mean of a set of angles.

    Computed via the mean resultant vector, which is the maximum-likelihood
    estimator for the location of a von Mises distribution.  This is the
    correct way to average particle headings in an MCL filter: the arithmetic
    mean of ``[pi - eps, -pi + eps]`` is 0 (pointing backwards), whereas the
    circular mean is ``pi`` as expected.
    """
    angles = np.asarray(angles, dtype=float)
    if angles.size == 0:
        raise ValueError("circular_mean of an empty set is undefined")
    if weights is None:
        sin_sum = float(np.sum(np.sin(angles)))
        cos_sum = float(np.sum(np.cos(angles)))
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != angles.shape:
            raise ValueError(
                f"weights shape {weights.shape} != angles shape {angles.shape}"
            )
        sin_sum = float(np.dot(weights, np.sin(angles)))
        cos_sum = float(np.dot(weights, np.cos(angles)))
    if np.hypot(sin_sum, cos_sum) < 1e-12 * max(angles.size, 1):
        # (Near-)perfectly symmetric distribution: the mean direction is
        # undefined; return 0 deterministically instead of noise-driven
        # arctan2 output.
        return 0.0
    return float(np.arctan2(sin_sum, cos_sum))


def circular_std(angles: np.ndarray, weights: np.ndarray | None = None) -> float:
    """Weighted circular standard deviation, ``sqrt(-2 ln R)``.

    ``R`` is the mean resultant length; the result is ~equal to the linear
    standard deviation for tightly clustered angles and grows without bound
    as the distribution approaches uniform on the circle.
    """
    angles = np.asarray(angles, dtype=float)
    if angles.size == 0:
        raise ValueError("circular_std of an empty set is undefined")
    if weights is None:
        weights = np.full(angles.shape, 1.0 / angles.size)
    else:
        weights = np.asarray(weights, dtype=float)
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must have positive sum")
        weights = weights / total
    resultant = np.hypot(
        float(np.dot(weights, np.sin(angles))),
        float(np.dot(weights, np.cos(angles))),
    )
    # Numerical guard: R can exceed 1 by epsilon for a single angle.
    resultant = min(max(resultant, 1e-12), 1.0)
    return float(np.sqrt(-2.0 * np.log(resultant)))


def angle_linspace(start: float, stop: float, num: int) -> np.ndarray:
    """``num`` angles evenly spaced from ``start`` to ``stop`` inclusive.

    Unlike ``np.linspace`` the result is wrapped to ``(-pi, pi]``, which is
    what LiDAR beam-angle tables expect.
    """
    if num < 1:
        raise ValueError("num must be >= 1")
    return wrap_to_pi(np.linspace(start, stop, num))
