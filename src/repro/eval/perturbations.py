"""Odometry perturbation harness.

The paper degrades odometry *physically* (taped tires); the simulator
reproduces that through the grip parameter.  This module adds a second,
orthogonal axis: direct perturbation of the odometry **signal**, applied to
the :class:`~repro.core.motion_models.OdometryDelta` stream between sensor
and localizer.  It serves two purposes:

* robustness *sweeps* — degrade odometry continuously (noise gain, scale
  miscalibration, bias, slip bursts, dropouts) to find each localizer's
  breaking point, extending the paper's two-condition comparison into a
  curve;
* failure injection for tests — deterministic worst-case signals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.motion_models import OdometryDelta
from repro.utils.config_io import config_from_dict, config_to_dict
from repro.utils.rng import make_rng

__all__ = ["OdometryPerturbation"]


@dataclass
class OdometryPerturbation:
    """Configurable corruption of an odometry-delta stream.

    All effects default to off; enable any combination.

    Attributes
    ----------
    noise_gain:
        Multiplies white noise added to translation and rotation
        (std = ``noise_gain * magnitude``).
    speed_scale:
        Multiplies translation (wheel-diameter miscalibration; slip-like
        when > 1).
    yaw_bias:
        Constant added to each interval's heading change, rad/s.
    slip_burst_prob:
        Per-interval probability of *entering* a slip burst, during which
        translation is multiplied by ``slip_burst_scale``.
    slip_burst_scale, slip_burst_duration:
        Burst magnitude and length (seconds).
    dropout_prob:
        Per-interval probability the odometry reports zero motion
        (encoder glitch).
    """

    noise_gain: float = 0.0
    speed_scale: float = 1.0
    yaw_bias: float = 0.0
    slip_burst_prob: float = 0.0
    slip_burst_scale: float = 1.6
    slip_burst_duration: float = 0.3
    dropout_prob: float = 0.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.noise_gain < 0 or self.speed_scale <= 0:
            raise ValueError("noise_gain must be >= 0 and speed_scale > 0")
        if not 0 <= self.slip_burst_prob <= 1 or not 0 <= self.dropout_prob <= 1:
            raise ValueError("probabilities must be in [0, 1]")
        self._rng = make_rng(self.seed)
        self._burst_remaining = 0.0

    @property
    def is_identity(self) -> bool:
        """True when every effect is disabled."""
        return (
            self.noise_gain == 0.0
            and self.speed_scale == 1.0
            and self.yaw_bias == 0.0
            and self.slip_burst_prob == 0.0
            and self.dropout_prob == 0.0
        )

    def reset(self) -> None:
        """Restart the deterministic corruption sequence."""
        self._rng = make_rng(self.seed)
        self._burst_remaining = 0.0

    # -- serialisation (scenario specs embed perturbations) ------------
    def to_dict(self) -> Dict:
        """JSON-ready dict (configuration only, no rng state)."""
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "OdometryPerturbation":
        """Inverse of :meth:`to_dict`; the rebuilt instance starts a fresh
        deterministic sequence from its ``seed``."""
        return config_from_dict(cls, data)

    def apply(self, delta: OdometryDelta) -> OdometryDelta:
        """Return the corrupted version of one odometry interval."""
        if self.is_identity and self._burst_remaining <= 0.0:
            # Identity config AND no burst still draining (configs can be
            # mutated mid-stream, e.g. to stop injecting new bursts).
            return delta

        rng = self._rng
        if rng.uniform() < self.dropout_prob:
            return OdometryDelta(0.0, 0.0, 0.0, 0.0, delta.dt)

        scale = self.speed_scale
        if self._burst_remaining > 0.0:
            scale *= self.slip_burst_scale
            self._burst_remaining -= delta.dt
        elif rng.uniform() < self.slip_burst_prob:
            # Entering a burst consumes this interval's dt too, so a burst
            # of duration D corrupts exactly ceil(D / dt) intervals.
            self._burst_remaining = self.slip_burst_duration - delta.dt
            scale *= self.slip_burst_scale

        dx = delta.dx * scale
        dy = delta.dy * scale
        dtheta = delta.dtheta + self.yaw_bias * delta.dt
        if self.noise_gain > 0.0:
            trans = abs(delta.trans)
            dx += rng.normal(0.0, self.noise_gain * (trans + 1e-4))
            dy += rng.normal(0.0, self.noise_gain * (trans + 1e-4))
            dtheta += rng.normal(
                0.0, self.noise_gain * (abs(delta.dtheta) + 1e-4)
            )
        return OdometryDelta(
            float(dx), float(dy), float(dtheta),
            delta.velocity * scale, delta.dt,
        )
