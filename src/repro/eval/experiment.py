"""The lap experiment: the paper's §III protocol, end to end.

For one *condition* — a localizer (SynPF / Cartographer / vanilla MCL), a
grip level (nominal "HQ" vs taped-tire "LQ") and a speed scaling — the
experiment:

1. builds the simulator on the test track with that grip;
2. wires the localizer's pose estimate into the pure-pursuit controller
   (the car drives on what the localizer believes, as on the real car);
3. runs one uncounted warm-up lap, then ``num_laps`` scored laps;
4. records per lap: lap time, the driven path's lateral deviation from the
   ideal race line, the scan-alignment score of the *estimated* pose, the
   localizer's ground-truth error, and its update latency.

:func:`format_table1` renders a list of condition results in the layout of
the paper's Table I.
"""

from __future__ import annotations

import dataclasses
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.interfaces import (
    CartographerLocalizer,
    SynPFLocalizer,
    make_localizer,
)
from repro.core.motion_models import OdometryDelta
from repro.core.supervisor import LocalizationSupervisor, SupervisorConfig
from repro.eval.metrics import (
    Summary,
    compute_load_percent,
    scan_alignment_score,
    summarize,
)
from repro.eval.perturbations import OdometryPerturbation
from repro.maps.track_generator import GeneratedTrack
from repro.sim.controllers import PurePursuitController, SpeedProfile
from repro.sim.lidar import LidarScan
from repro.sim.multi_agent import MultiAgentSimulator
from repro.sim.simulator import SimConfig, Simulator
from repro.sim.tire import TireModel
from repro.telemetry import Telemetry

__all__ = [
    "ExperimentCondition",
    "LapRecord",
    "ConditionResult",
    "LapExperiment",
    "RunContext",
    "format_table1",
]

# Paper §III grip conditions, converted via the pull-force protocol for the
# 3.46 kg car: 26 N -> mu = 0.766 ("HQ"), 19 N -> mu = 0.560 ("LQ").
GRIP_HQ: float = 0.766
GRIP_LQ: float = 0.560

# Tire presets for the two conditions.  Taping does more than lower the
# friction ceiling: the smooth tape creeps under load, so the *stiffness*
# (force per unit slip) collapses.  That is what corrupts wheel odometry at
# driving demands below the friction limit — the paper's stated goal of
# "isolating the odometry degradation effect" while racing the same speed
# scaling in both settings.
TIRE_HQ = TireModel(mu=GRIP_HQ, longitudinal_stiffness=12.0, cornering_stiffness=9.0)
TIRE_LQ = TireModel(mu=GRIP_LQ, longitudinal_stiffness=2.2, cornering_stiffness=6.0)


@dataclass(frozen=True)
class ExperimentCondition:
    """One cell of Table I.

    ``odom_quality`` selects the tire preset ("HQ" -> :data:`TIRE_HQ`,
    "LQ" -> :data:`TIRE_LQ`) unless an explicit ``tire`` is given.
    """

    method: str                 # "synpf" | "cartographer" | "vanilla_mcl"
    odom_quality: str           # "HQ" | "LQ"
    tire: Optional[TireModel] = None
    speed_scale: float = 0.9
    num_laps: int = 10
    seed: int = 0
    localizer_overrides: Dict = field(default_factory=dict)
    perturbation: Optional[OdometryPerturbation] = None
    # "wheel": raw wheel odometry (the paper's setup).
    # "fused": wheel + IMU through the planar EKF.
    # (Scan-to-scan laser odometry exists as a library component,
    # repro.core.laser_odometry, but is not a viable sole odometry source
    # at race pace in corridors — both ICP and the filter lack the
    # longitudinal constraint there, so the errors compound.)
    odometry_source: str = "wheel"
    # Factory returning unmapped obstacles for this run (called with the
    # track so followers can be built on its raceline).  Obstacles occlude
    # LiDAR beams but are not collision-checked against the ego car.
    obstacle_factory: Optional[Callable] = None
    # Factory returning dynamics-stepped opponent agents (called with the
    # track).  When set — even if it returns an empty field — the run uses
    # the MultiAgentSimulator and the result carries traffic telemetry.
    traffic_factory: Optional[Callable] = None

    def resolved_tire(self) -> TireModel:
        if self.tire is not None:
            return self.tire
        if self.odom_quality == "HQ":
            return TIRE_HQ
        if self.odom_quality == "LQ":
            return TIRE_LQ
        raise ValueError(
            f"odom_quality {self.odom_quality!r} has no tire preset; "
            "pass an explicit tire"
        )

    def label(self) -> str:
        return f"{self.method}/{self.odom_quality}"


@dataclass
class LapRecord:
    """Measurements from one scored lap."""

    lap_time: float
    lateral_error_mean_cm: float
    lateral_error_max_cm: float
    scan_alignment_percent: float
    localization_error_mean_cm: float
    localization_error_max_cm: float
    valid: bool = True

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "LapRecord":
        return cls(**data)


@dataclass
class ConditionResult:
    """Aggregated Table I row for one condition.

    ``supervisor_telemetry`` is present only for supervised runs (scenario
    campaigns): the :class:`~repro.core.supervisor.SupervisorTelemetry`
    dict — recovery count, divergence episodes, times-to-recover.
    """

    condition: ExperimentCondition
    laps: List[LapRecord]
    mean_update_ms: float
    compute_load_percent: float
    crashes: int = 0
    supervisor_telemetry: Optional[Dict] = None
    traffic_telemetry: Optional[Dict] = None

    def _valid_laps(self) -> List[LapRecord]:
        valid = [lap for lap in self.laps if lap.valid]
        if not valid:
            raise RuntimeError(
                f"condition {self.condition.label()} has no valid laps"
            )
        return valid

    @property
    def lap_time(self) -> Summary:
        return summarize([lap.lap_time for lap in self._valid_laps()])

    @property
    def lateral_error_cm(self) -> Summary:
        return summarize([lap.lateral_error_mean_cm for lap in self._valid_laps()])

    @property
    def scan_alignment(self) -> Summary:
        return summarize([lap.scan_alignment_percent for lap in self._valid_laps()])

    @property
    def localization_error_cm(self) -> Summary:
        return summarize(
            [lap.localization_error_mean_cm for lap in self._valid_laps()]
        )

    def to_dict(self) -> Dict:
        """JSON-serialisable form, used by the sweep checkpoint stream.

        Only the condition fields that survive a round-trip through JSON
        are kept: ``tire``, ``perturbation`` and ``obstacle_factory`` are
        dropped (tire presets are re-resolved from ``odom_quality``).
        """
        condition = {
            "method": self.condition.method,
            "odom_quality": self.condition.odom_quality,
            "speed_scale": self.condition.speed_scale,
            "num_laps": self.condition.num_laps,
            "seed": self.condition.seed,
            "odometry_source": self.condition.odometry_source,
        }
        out = {
            "condition": condition,
            "laps": [lap.to_dict() for lap in self.laps],
            "mean_update_ms": self.mean_update_ms,
            "compute_load_percent": self.compute_load_percent,
            "crashes": self.crashes,
        }
        if self.supervisor_telemetry is not None:
            out["supervisor_telemetry"] = self.supervisor_telemetry
        if self.traffic_telemetry is not None:
            out["traffic_telemetry"] = self.traffic_telemetry
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "ConditionResult":
        return cls(
            condition=ExperimentCondition(**data["condition"]),
            laps=[LapRecord.from_dict(lap) for lap in data["laps"]],
            mean_update_ms=float(data["mean_update_ms"]),
            compute_load_percent=float(data["compute_load_percent"]),
            crashes=int(data.get("crashes", 0)),
            supervisor_telemetry=data.get("supervisor_telemetry"),
            traffic_telemetry=data.get("traffic_telemetry"),
        )


# The adapters formerly defined here privately are now the public
# protocol implementations in repro.core.interfaces; the old names are
# kept as aliases for any code that imported them.
_SynPFAdapter = SynPFLocalizer
_CartographerAdapter = CartographerLocalizer


class _SupervisedLocalizer:
    """Protocol-localizer wrapper adding divergence detection and recovery.

    Exposes the same scan-consuming interface plus a ``timestamp`` on
    update (fed to the supervisor's recovery telemetry).  Since both the
    supervisor and the wrapped localizer speak the
    :class:`~repro.core.interfaces.Localizer` protocol, the scan passes
    straight through — no out-of-band shim.
    """

    consumes_scan = True

    def __init__(self, localizer, grid, config: SupervisorConfig,
                 registry=None):
        self.localizer = localizer
        self.supervisor = LocalizationSupervisor(
            localizer, grid, config, registry=registry
        )
        self.last_report = None

    def initialize(self, pose: np.ndarray) -> None:
        self.supervisor.initialize(pose)

    def update(self, delta: OdometryDelta, scan: LidarScan,
               timestamp: Optional[float] = None) -> np.ndarray:
        report = self.supervisor.update(delta, scan, timestamp=timestamp)
        self.last_report = report
        return report.pose

    @property
    def pose(self) -> np.ndarray:
        return self.localizer.pose

    def latency_ms(self) -> float:
        return self.localizer.latency_ms()

    def telemetry(self) -> Dict:
        return self.localizer.telemetry()


@dataclass
class RunContext:
    """The live objects of one experiment run, handed to injection hooks.

    A timeline engine (see :mod:`repro.scenarios.timeline`) receives this
    via ``hooks.bind(ctx)`` and mutates the simulation through it while
    the run is in flight.
    """

    sim: Simulator
    track: GeneratedTrack
    condition: ExperimentCondition
    controller: PurePursuitController
    perturbation: Optional[OdometryPerturbation]
    localizer: object
    supervisor: Optional[LocalizationSupervisor] = None


class LapExperiment:
    """Runs Table I conditions on one track.

    Parameters
    ----------
    track:
        The test track (grid + ideal raceline).
    sim_config:
        Base simulation config; the per-condition grip overrides its
        vehicle's tire.
    max_sim_time:
        Hard wall per condition, seconds of sim time — guards against a
        lost localizer driving in circles forever.
    """

    def __init__(
        self,
        track: GeneratedTrack,
        sim_config: SimConfig | None = None,
        max_sim_time: float = 600.0,
        update_every_scans: int = 1,
        alignment_tolerance: float = 0.05,
        profile_kwargs: Optional[Dict] = None,
    ) -> None:
        self.track = track
        self.base_config = sim_config or SimConfig()
        self.max_sim_time = float(max_sim_time)
        self.update_every_scans = int(update_every_scans)
        self.alignment_tolerance = float(alignment_tolerance)
        # Racing profile: top speed and acceleration matched to the paper's
        # regime (straights up to ~7.5 m/s; lateral budget below the LQ
        # friction ceiling so handling stays comparable across conditions).
        self.profile_kwargs = {
            "v_max": 7.5,
            "a_lat_budget": 4.2,
            "a_accel": 5.0,
            "a_brake": 6.0,
        }
        if profile_kwargs:
            self.profile_kwargs.update(profile_kwargs)

    #: Cap on raw per-update timing samples kept by a localizer's
    #: TimingStats: enough for exact-ish percentiles over any realistic
    #: condition, bounded for the max_sim_time-capped pathological ones.
    TIMING_MAX_SAMPLES = 65536

    # ------------------------------------------------------------------
    def _build_localizer(self, condition: ExperimentCondition, registry=None):
        overrides = dict(condition.localizer_overrides)
        if condition.method in ("synpf", "vanilla_mcl"):
            overrides.setdefault("seed", condition.seed)
        return make_localizer(
            condition.method,
            self.track.grid,
            max_range=self.base_config.lidar.max_range,
            lidar_offset_x=self.base_config.lidar.mount_offset_x,
            registry=registry,
            timing_max_samples=self.TIMING_MAX_SAMPLES,
            **overrides,
        )

    # ------------------------------------------------------------------
    def run(self, condition: ExperimentCondition,
            progress: Optional[Callable[[str], None]] = None,
            seed: Optional[int] = None,
            hooks=None,
            supervisor_config: Optional[SupervisorConfig] = None,
            telemetry: Optional[Telemetry] = None) -> ConditionResult:
        """Run one condition; returns its aggregated Table I row.

        ``seed`` overrides ``condition.seed`` for this run.  The parallel
        sweep runner uses it to inject a per-trial Monte-Carlo seed while
        keeping the condition itself shared across trials; the returned
        result's condition carries the seed actually used.

        ``hooks`` is an optional injection object with ``bind(ctx)`` and
        ``tick(sim_time, lap_index)`` — the scenario timeline engine
        implements it to fire fault events mid-run (``lap_index`` is -1
        during the warm-up lap, then the 0-based scored-lap number).

        ``supervisor_config`` wraps the localizer in the divergence
        supervisor; the result then carries ``supervisor_telemetry``.

        ``telemetry`` turns on observability for the run: a manifest and
        lap/crash events go to its JSONL stream, and the localizer's
        span latency histograms plus lap counters accumulate in its
        registry.  ``None`` (the default) runs telemetry-off.
        """
        if seed is not None:
            condition = dataclasses.replace(condition, seed=int(seed))
        registry = telemetry.registry if telemetry is not None else None
        if telemetry is not None:
            telemetry.manifest(
                config={
                    "method": condition.method,
                    "odom_quality": condition.odom_quality,
                    "speed_scale": condition.speed_scale,
                    "num_laps": condition.num_laps,
                    "odometry_source": condition.odometry_source,
                    "supervised": supervisor_config is not None,
                },
                seeds={"condition": condition.seed},
            )
        raceline = self.track.centerline

        vehicle = dataclasses.replace(
            self.base_config.vehicle, tire=condition.resolved_tire()
        )
        sim_cfg = dataclasses.replace(
            self.base_config, vehicle=vehicle, seed=condition.seed
        )
        if condition.traffic_factory is not None:
            # Even an empty field goes through the multi-agent scheduler:
            # it is bit-identical to the single-agent path (pinned by
            # tests), and keeps traffic telemetry uniformly present
            # across a density sweep's cells.
            sim = MultiAgentSimulator(
                self.track.grid, sim_cfg,
                agents=condition.traffic_factory(self.track),
            )
        else:
            sim = Simulator(self.track.grid, sim_cfg)
        if condition.obstacle_factory is not None:
            sim.obstacles.extend(condition.obstacle_factory(self.track))
        profile = SpeedProfile(
            raceline, speed_scale=condition.speed_scale, **self.profile_kwargs
        )
        controller = PurePursuitController(
            raceline, profile, wheelbase=sim_cfg.vehicle.wheelbase,
            max_steer=sim_cfg.vehicle.max_steer,
        )
        localizer = self._build_localizer(condition, registry=registry)
        if supervisor_config is not None:
            if supervisor_config.sensor_max_range is None:
                supervisor_config = dataclasses.replace(
                    supervisor_config,
                    sensor_max_range=sim_cfg.lidar.max_range,
                )
            localizer = _SupervisedLocalizer(
                localizer, self.track.grid, supervisor_config,
                registry=registry,
            )
        perturbation = condition.perturbation
        if perturbation is not None:
            perturbation.reset()

        if hooks is not None:
            hooks.bind(RunContext(
                sim=sim,
                track=self.track,
                condition=condition,
                controller=controller,
                perturbation=perturbation,
                localizer=localizer,
                supervisor=(localizer.supervisor
                            if isinstance(localizer, _SupervisedLocalizer)
                            else None),
            ))

        if condition.odometry_source not in ("wheel", "fused"):
            raise ValueError(
                f"unknown odometry_source {condition.odometry_source!r}"
            )
        fusion_ekf = None
        imu = None
        if condition.odometry_source == "fused":
            from repro.core.odometry_fusion import OdometryImuEkf
            from repro.sim.odometry import ImuSensor
            from repro.utils.rng import make_rng

            fusion_ekf = OdometryImuEkf()
            imu = ImuSensor()
            imu_rng = make_rng(condition.seed + 101)

        start = raceline.start_pose()
        sim.reset(start, speed=1.0)
        localizer.initialize(start)

        pose_est = start.copy()
        speed_est = 1.0
        pending: Optional[OdometryDelta] = None
        scan_counter = 0

        offset = sim_cfg.lidar.mount_offset_x

        # Lap accounting via raceline progress of the ground-truth pose.
        s_prev, _ = raceline.project(start[:2])
        s_prev = float(s_prev[0])
        progress_in_lap = 0.0
        lap_index = -1  # lap -1 is the uncounted warm-up
        lap_start_time = 0.0
        lap_valid = True
        lat_samples: List[float] = []
        align_samples: List[float] = []
        loc_err_samples: List[float] = []
        laps: List[LapRecord] = []
        crashes = 0

        steps_per_lat_sample = 5  # 100 Hz physics / 5 = 20 Hz sampling

        step_count = 0
        while sim.time < self.max_sim_time and len(laps) < condition.num_laps:
            if hooks is not None:
                hooks.tick(sim.time, lap_index)
            target_speed, steer = controller.control(pose_est, speed_est)
            frame = sim.step(target_speed, steer)
            step_count += 1

            delta = frame.odom_delta
            if perturbation is not None:
                delta = perturbation.apply(delta)
            if fusion_ekf is not None:
                # Re-derive the raw sensor channels the EKF fuses from the
                # (possibly perturbed) wheel delta, plus a gyro reading.
                wheel_yaw_rate = delta.dtheta / delta.dt if delta.dt > 0 else 0.0
                imu_yaw_rate = imu.read(frame.state, imu_rng)
                delta = fusion_ekf.step(
                    delta.velocity, wheel_yaw_rate, imu_yaw_rate,
                    sim_cfg.physics_dt,
                )
            pending = delta if pending is None else pending.compose(delta)
            speed_est = delta.velocity

            gt_pose = frame.state.pose()

            if frame.scan is not None:
                scan_counter += 1
                if scan_counter % self.update_every_scans == 0:
                    if isinstance(localizer, _SupervisedLocalizer):
                        pose_est = np.asarray(
                            localizer.update(pending, frame.scan,
                                             timestamp=sim.time),
                            dtype=float,
                        )
                    else:
                        pose_est = np.asarray(
                            localizer.update(pending, frame.scan), dtype=float
                        )
                    pending = None
                    if lap_index >= 0:
                        est_sensor = np.array(
                            [
                                pose_est[0] + offset * np.cos(pose_est[2]),
                                pose_est[1] + offset * np.sin(pose_est[2]),
                                pose_est[2],
                            ]
                        )
                        align_samples.append(
                            scan_alignment_score(
                                self.track.grid, est_sensor, frame.scan,
                                tolerance=self.alignment_tolerance,
                                max_range=sim_cfg.lidar.max_range,
                            )
                        )
                        loc_err_samples.append(
                            float(np.hypot(*(pose_est[:2] - gt_pose[:2])))
                        )

            if step_count % steps_per_lat_sample == 0:
                s_now, d_now = raceline.project(gt_pose[:2])
                s_now = float(s_now[0])
                progress_in_lap += raceline.progress_difference(s_now, s_prev)
                s_prev = s_now
                if lap_index >= 0:
                    lat_samples.append(abs(float(d_now[0])))

                if frame.collided:
                    crashes += 1
                    lap_valid = False
                    if telemetry is not None:
                        telemetry.counter("experiment.crashes").inc()
                        telemetry.event("crash", time=sim.time,
                                        lap=lap_index)
                    # Re-rail the car on the centerline and re-seed the
                    # localizer; the spoiled lap is recorded as invalid.
                    rail = raceline.point_at(s_now)
                    heading = raceline.heading_at(s_now)
                    new_pose = np.array([rail[0], rail[1], heading])
                    sim.reset(new_pose, speed=1.0, reset_time=False)
                    localizer.initialize(new_pose)
                    if fusion_ekf is not None:
                        fusion_ekf.reset(new_pose, speed=1.0)
                    pose_est = new_pose.copy()
                    pending = None

                if progress_in_lap >= raceline.total_length:
                    progress_in_lap -= raceline.total_length
                    lap_time = sim.time - lap_start_time
                    if lap_index >= 0:
                        laps.append(
                            LapRecord(
                                lap_time=lap_time,
                                lateral_error_mean_cm=100.0 * float(np.mean(lat_samples))
                                if lat_samples else float("nan"),
                                lateral_error_max_cm=100.0 * float(np.max(lat_samples))
                                if lat_samples else float("nan"),
                                scan_alignment_percent=100.0 * float(np.mean(align_samples))
                                if align_samples else float("nan"),
                                localization_error_mean_cm=100.0
                                * float(np.mean(loc_err_samples))
                                if loc_err_samples else float("nan"),
                                localization_error_max_cm=100.0
                                * float(np.max(loc_err_samples))
                                if loc_err_samples else float("nan"),
                                valid=lap_valid,
                            )
                        )
                        if telemetry is not None:
                            telemetry.counter("experiment.laps.completed").inc()
                            if laps[-1].valid:
                                telemetry.counter("experiment.laps.valid").inc()
                            telemetry.event(
                                "lap", time=sim.time, lap=len(laps),
                                lap_time_s=lap_time, valid=laps[-1].valid,
                            )
                        if progress is not None:
                            progress(
                                f"{condition.label()} lap {len(laps)}: "
                                f"{lap_time:.2f} s"
                            )
                    lap_index += 1
                    lap_start_time = sim.time
                    lap_valid = True
                    lat_samples, align_samples, loc_err_samples = [], [], []

        if len(laps) < condition.num_laps and progress is not None:
            progress(
                f"{condition.label()}: wall-time cap hit after {len(laps)} laps"
            )

        mean_ms = localizer.latency_ms()
        load = compute_load_percent(
            mean_ms / 1e3, sim_cfg.lidar.rate_hz / self.update_every_scans
        )
        supervisor_telemetry = None
        if isinstance(localizer, _SupervisedLocalizer):
            supervisor_telemetry = localizer.supervisor.telemetry.to_dict()
        traffic_telemetry = None
        if isinstance(sim, MultiAgentSimulator):
            traffic_telemetry = sim.traffic_telemetry()
            if telemetry is not None:
                telemetry.counter("traffic.scans").inc(
                    traffic_telemetry["scans"])
                telemetry.counter("traffic.scans_occluded").inc(
                    traffic_telemetry["scans_occluded"])
                telemetry.counter("traffic.occluded_beams").inc(
                    traffic_telemetry["occluded_beams"])
                occ = traffic_telemetry["occlusion_histogram"]
                hist = telemetry.registry.histogram(
                    "traffic.occluded_beam_fraction", tuple(occ["edges"])
                )
                # The simulator accumulated with the Histogram's own
                # bisect_left binning; adopt the counts directly.
                hist.counts = [a + b for a, b in zip(hist.counts,
                                                     occ["counts"])]
                hist.sum += float(occ["sum"])
                hist.count += int(occ["count"])
        if telemetry is not None:
            telemetry.gauge("experiment.latency_ms").set(mean_ms)
            telemetry.gauge("experiment.compute_load_percent").set(load)
            telemetry.flush_metrics(label=condition.label())
        return ConditionResult(condition, laps, mean_ms, load, crashes,
                               supervisor_telemetry=supervisor_telemetry,
                               traffic_telemetry=traffic_telemetry)


def format_table1(results: List[ConditionResult]) -> str:
    """Render condition results in the layout of the paper's Table I."""
    lines = [
        f"{'Method':<14}{'Odom':<6}{'LapTime mu':>11}{'sigma':>8}"
        f"{'Err[cm] mu':>12}{'sigma':>8}{'Align[%]':>10}{'Load[%]':>9}",
        "-" * 78,
    ]
    for r in results:
        lines.append(
            f"{r.condition.method:<14}{r.condition.odom_quality:<6}"
            f"{r.lap_time.mean:>11.3f}{r.lap_time.std:>8.3f}"
            f"{r.lateral_error_cm.mean:>12.3f}{r.lateral_error_cm.std:>8.3f}"
            f"{r.scan_alignment.mean:>10.3f}{r.compute_load_percent:>9.2f}"
        )
    return "\n".join(lines)
