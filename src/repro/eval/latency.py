"""Latency measurement harness (the paper's §I/§IV timing claims).

Three measurements:

* :func:`measure_range_method_latency` — per-query cost of each rangelibc
  mode for the particle-filter workload (P particles x B beams), the basis
  of the paper's LUT-on-CPU choice;
* :func:`measure_filter_latency` — SynPF end-to-end update time vs
  particle count (the 1.25 ms scan-matching figure, which on the real
  system is the sensor-evaluation stage of the filter);
* :func:`measure_scan_match_latency` — Cartographer's two-stage scan
  match, the latency SynPF is compared against.

Absolute numbers here are Python/NumPy, not C++/CUDA; DESIGN.md's
reproduction criterion is the *ordering and scaling*, which these
functions expose.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.core.motion_models import OdometryDelta
from repro.core.particle_filter import make_synpf
from repro.maps.track_generator import GeneratedTrack
from repro.raycast.factory import make_range_method
from repro.sim.lidar import LidarConfig, SimulatedLidar
from repro.slam.cartographer import Cartographer
from repro.utils.profiling import Stopwatch

__all__ = [
    "measure_range_method_latency",
    "measure_filter_latency",
    "measure_scan_match_latency",
]


def _warm_and_time(fn, repeats: int = 5) -> float:
    """Median wall time of ``fn`` over ``repeats`` runs after one warm-up."""
    fn()
    times = []
    for _ in range(repeats):
        with Stopwatch() as sw:
            fn()
        times.append(sw.elapsed)
    return float(np.median(times))


def measure_range_method_latency(
    track: GeneratedTrack,
    methods: Sequence[str] = ("bresenham", "ray_marching", "cddt", "pcddt", "lut"),
    num_particles: int = 1000,
    num_beams: int = 60,
    max_range: float = 12.0,
    repeats: int = 5,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Time one sensor-evaluation batch per range method.

    Returns one record per method with construction time, batch query
    time, per-query nanoseconds and memory footprint.
    """
    rng = np.random.default_rng(seed)
    raceline = track.centerline
    s_positions = rng.uniform(0.0, raceline.total_length, size=num_particles)
    poses = np.empty((num_particles, 3))
    for i, s in enumerate(s_positions):
        pt = raceline.point_at(float(s))
        poses[i] = [pt[0], pt[1], raceline.heading_at(float(s))]
    angles = np.linspace(-np.pi / 2, np.pi / 2, num_beams)

    records = []
    for name in methods:
        with Stopwatch() as build_sw:
            method = make_range_method(name, track.grid, max_range=max_range)
        query_s = _warm_and_time(
            lambda m=method: m.calc_ranges_pose_batch(poses, angles), repeats
        )
        n_queries = num_particles * num_beams
        records.append(
            {
                "method": name,
                "build_s": build_sw.elapsed,
                "batch_ms": query_s * 1e3,
                "per_query_ns": query_s / n_queries * 1e9,
                "memory_mb": method.memory_bytes() / 1e6,
            }
        )
    return records


def measure_filter_latency(
    track: GeneratedTrack,
    particle_counts: Iterable[int] = (500, 1000, 2000, 3000, 4000),
    num_beams: int = 60,
    repeats: int = 10,
    seed: int = 0,
    **filter_overrides,
) -> List[Dict[str, float]]:
    """SynPF update latency vs particle count, with stage breakdown."""
    lidar = SimulatedLidar(track.grid, LidarConfig(), seed=seed)
    start = track.centerline.start_pose()
    scan = lidar.scan(start)
    delta = OdometryDelta(0.08, 0.0, 0.01, velocity=4.0, dt=0.025)

    records = []
    for n in particle_counts:
        pf = make_synpf(
            track.grid, num_particles=int(n), num_beams=num_beams,
            seed=seed, **filter_overrides,
        )
        pf.initialize(start)
        pf.update(delta, scan.ranges, scan.angles)  # warm-up / JIT caches
        for _ in range(repeats):
            pf.update(delta, scan.ranges, scan.angles)
        summary = pf.timing.summary()
        records.append(
            {
                "num_particles": int(n),
                "update_ms": summary["update"]["median_ms"],
                "motion_ms": summary["motion"]["median_ms"],
                "raycast_ms": summary["raycast"]["median_ms"],
                "sensor_ms": summary["sensor"]["median_ms"],
            }
        )
    return records


def measure_scan_match_latency(
    track: GeneratedTrack,
    repeats: int = 10,
    seed: int = 0,
) -> Dict[str, float]:
    """Cartographer pure-localization scan-match latency on this track."""
    lidar = SimulatedLidar(track.grid, LidarConfig(), seed=seed)
    start = track.centerline.start_pose()
    scan = lidar.scan(start)
    points = scan.points_in_sensor_frame(max_range=lidar.config.max_range)
    delta = OdometryDelta(0.08, 0.0, 0.01, velocity=4.0, dt=0.025)

    carto = Cartographer(frozen_map=track.grid)
    carto.initialize(start)
    for _ in range(repeats + 1):
        carto.update(delta, points)
    return {
        "scan_match_ms": carto.timing.median_ms("scan_match"),
        "num_scans": float(carto.timing.count("scan_match")),
    }
