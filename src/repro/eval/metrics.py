"""Localization-accuracy proxy metrics (Table I columns).

The paper measures localization quality indirectly, through quantities
observable on a real car; this module implements the same proxies so the
simulated numbers are comparable in *kind*:

* **lap time** — slower, more erratic driving indicates worse pose feed to
  the controller;
* **lateral error** — deviation of the driven path from the ideal race
  line (cm in the paper's table);
* **scan alignment** — "the average percentage of overlapping scans and
  the track boundary" (§III, Tab. I caption): project the scan through the
  *estimated* pose and count the fraction of points landing within a
  tolerance of occupied map cells;
* **compute load** — htop core percentage in the paper; here, update time
  as a share of the sensor period (a 40 Hz sensor gives 25 ms per update).

Ground-truth pose error (available only in simulation) is reported
alongside as a sanity check that the proxies track the real quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.maps.occupancy_grid import OccupancyGrid
from repro.sim.lidar import LidarScan
from repro.utils.angles import angle_diff
from repro.utils.geometry import transform_points

__all__ = [
    "scan_alignment_score",
    "pose_error",
    "compute_load_percent",
    "summarize",
    "Summary",
]


def scan_alignment_score(
    grid: OccupancyGrid,
    estimated_sensor_pose: np.ndarray,
    scan: LidarScan,
    tolerance: float = 0.10,
    max_range: float | None = None,
) -> float:
    """Fraction (0-1) of scan points that land on the track boundary.

    Points are expressed in the world frame through the *estimated* sensor
    pose; a point "overlaps" the boundary if it lies within ``tolerance``
    metres of an occupied cell.  A perfectly localized scan scores close
    to 1 (minus sensor noise and dropouts); a mislocalized one paints its
    points into free space or beyond walls and scores low.
    """
    limit = max_range if max_range is not None else float(np.max(scan.ranges))
    points_sensor = scan.points_in_sensor_frame(drop_max_range=True, max_range=limit)
    if points_sensor.shape[0] == 0:
        return 0.0
    world = transform_points(np.asarray(estimated_sensor_pose, dtype=float), points_sensor)
    distances = grid.distance_at_world(world)
    inside = grid.in_bounds(world)
    hits = (distances <= tolerance) & inside
    return float(np.mean(hits))


def pose_error(estimated: np.ndarray, ground_truth: np.ndarray) -> Dict[str, float]:
    """Translation (m) and heading (rad) error between two poses."""
    estimated = np.asarray(estimated, dtype=float)
    ground_truth = np.asarray(ground_truth, dtype=float)
    return {
        "translation": float(np.hypot(*(estimated[:2] - ground_truth[:2]))),
        "heading": float(abs(angle_diff(estimated[2], ground_truth[2]))),
    }


def compute_load_percent(mean_update_seconds: float, update_rate_hz: float) -> float:
    """Update cost as a percentage of one core at the sensor rate.

    ``100 * t_update / (1 / rate)`` — the simulation analogue of the
    paper's htop core-utilisation column.
    """
    if update_rate_hz <= 0:
        raise ValueError("update_rate_hz must be positive")
    if mean_update_seconds < 0:
        raise ValueError("mean_update_seconds must be non-negative")
    return 100.0 * mean_update_seconds * update_rate_hz


@dataclass(frozen=True)
class Summary:
    """Mean/std/min/max of a sample, in the sample's own units."""

    mean: float
    std: float
    min: float
    max: float
    count: int


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics; std is the sample standard deviation (ddof=1)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return Summary(
        mean=float(arr.mean()),
        std=std,
        min=float(arr.min()),
        max=float(arr.max()),
        count=int(arr.size),
    )
