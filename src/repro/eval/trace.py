"""Session traces: record a run once, replay it against any localizer.

The rosbag workflow, minus ROS: a :class:`TraceRecorder` captures the
per-scan stream of a simulation session — ground-truth pose, odometry
delta, and the full LiDAR scan — into a single compressed ``.npz``.
:func:`replay` then feeds the identical stream to any localizer, so
configurations can be compared *offline* on byte-identical input, with no
re-simulation variance between candidates.

Typical use::

    recorder = TraceRecorder(beam_angles=lidar.angles)
    ...  # inside the sim loop, at each scan:
    recorder.append(t, gt_pose, pending_delta, scan.ranges)
    recorder.save("session.npz")

    trace = RunTrace.load("session.npz")
    errors = replay(trace, make_synpf(grid, num_particles=500))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.motion_models import OdometryDelta

__all__ = ["RunTrace", "TraceRecorder", "replay"]

_FORMAT_VERSION = 1


@dataclass
class RunTrace:
    """An immutable recorded session.

    Attributes
    ----------
    times:
        ``(N,)`` scan timestamps, seconds.
    gt_poses:
        ``(N, 3)`` ground-truth base poses at scan times.
    odometry:
        ``(N, 5)`` per-interval ``(dx, dy, dtheta, velocity, dt)`` —
        the odometry accumulated since the previous scan.
    scans:
        ``(N, B)`` float32 range arrays.
    beam_angles:
        ``(B,)`` beam-angle table shared by all scans.
    metadata:
        Free-form string dict (track seed, grip, notes).
    """

    times: np.ndarray
    gt_poses: np.ndarray
    odometry: np.ndarray
    scans: np.ndarray
    beam_angles: np.ndarray
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = self.times.shape[0]
        if not (self.gt_poses.shape == (n, 3)
                and self.odometry.shape == (n, 5)
                and self.scans.shape[0] == n
                and self.scans.shape[1] == self.beam_angles.shape[0]):
            raise ValueError("inconsistent trace array shapes")

    def __len__(self) -> int:
        return int(self.times.shape[0])

    def delta_at(self, index: int) -> OdometryDelta:
        dx, dy, dtheta, velocity, dt = self.odometry[index]
        return OdometryDelta(float(dx), float(dy), float(dtheta),
                             float(velocity), float(dt))

    def save(self, path: str) -> None:
        meta_keys = np.array(sorted(self.metadata), dtype=object)
        meta_vals = np.array(
            [self.metadata[k] for k in sorted(self.metadata)], dtype=object
        )
        np.savez_compressed(
            path,
            format_version=np.array([_FORMAT_VERSION]),
            times=self.times,
            gt_poses=self.gt_poses,
            odometry=self.odometry,
            scans=self.scans.astype(np.float32),
            beam_angles=self.beam_angles,
            meta_keys=meta_keys,
            meta_vals=meta_vals,
        )

    @staticmethod
    def load(path: str) -> "RunTrace":
        with np.load(path, allow_pickle=True) as data:
            version = int(data["format_version"][0])
            if version != _FORMAT_VERSION:
                raise ValueError(
                    f"trace format {version} unsupported "
                    f"(this build reads {_FORMAT_VERSION})"
                )
            metadata = {
                str(k): str(v)
                for k, v in zip(data["meta_keys"], data["meta_vals"])
            }
            return RunTrace(
                times=data["times"],
                gt_poses=data["gt_poses"],
                odometry=data["odometry"],
                scans=data["scans"],
                beam_angles=data["beam_angles"],
                metadata=metadata,
            )


class TraceRecorder:
    """Accumulates scan-time records and builds a :class:`RunTrace`."""

    def __init__(self, beam_angles: np.ndarray,
                 metadata: Optional[Dict[str, str]] = None) -> None:
        self.beam_angles = np.asarray(beam_angles, dtype=float).copy()
        self.metadata = dict(metadata or {})
        self._times: List[float] = []
        self._gt: List[np.ndarray] = []
        self._odom: List[np.ndarray] = []
        self._scans: List[np.ndarray] = []

    def append(self, time: float, gt_pose: np.ndarray,
               delta: OdometryDelta, scan_ranges: np.ndarray) -> None:
        scan_ranges = np.asarray(scan_ranges, dtype=np.float32)
        if scan_ranges.shape != self.beam_angles.shape:
            raise ValueError("scan length does not match beam table")
        self._times.append(float(time))
        self._gt.append(np.asarray(gt_pose, dtype=float).copy())
        self._odom.append(
            np.array([delta.dx, delta.dy, delta.dtheta, delta.velocity,
                      delta.dt])
        )
        self._scans.append(scan_ranges.copy())

    def __len__(self) -> int:
        return len(self._times)

    def build(self) -> RunTrace:
        if not self._times:
            raise ValueError("nothing recorded")
        return RunTrace(
            times=np.array(self._times),
            gt_poses=np.stack(self._gt),
            odometry=np.stack(self._odom),
            scans=np.stack(self._scans),
            beam_angles=self.beam_angles,
            metadata=self.metadata,
        )

    def save(self, path: str) -> None:
        self.build().save(path)


def replay(trace: RunTrace, localizer, initialize: bool = True) -> dict:
    """Feed a recorded session through a localizer; returns error stats.

    ``localizer`` is either a :class:`~repro.core.interfaces.Localizer`
    protocol object (``update(delta, scan)``, marked by
    ``consumes_scan`` — anything from
    :func:`~repro.core.interfaces.make_localizer`) or a legacy engine
    with ``update(delta, ranges, angles) -> estimate-with-.pose`` —
    :class:`~repro.core.particle_filter.SynPF` natively.  Returns
    translation-error statistics against the recorded ground truth plus
    the per-step error array.
    """
    if len(trace) == 0:
        raise ValueError("empty trace")
    if initialize:
        localizer.initialize(trace.gt_poses[0])
    consumes_scan = getattr(localizer, "consumes_scan", False)

    errors = np.empty(len(trace))
    estimates = np.empty((len(trace), 3))
    for i in range(len(trace)):
        ranges = trace.scans[i].astype(float)
        if consumes_scan:
            from repro.sim.lidar import LidarScan

            est = localizer.update(
                trace.delta_at(i),
                LidarScan(
                    ranges=ranges,
                    angles=trace.beam_angles,
                    timestamp=float(trace.times[i]),
                    sensor_pose=np.zeros(3),
                ),
            )
        else:
            est = localizer.update(trace.delta_at(i), ranges, trace.beam_angles)
        pose = est.pose if hasattr(est, "pose") else np.asarray(est)
        estimates[i] = pose
        errors[i] = np.hypot(*(pose[:2] - trace.gt_poses[i, :2]))
    return {
        "mean_error": float(errors.mean()),
        "max_error": float(errors.max()),
        "rmse": float(np.sqrt(np.mean(errors**2))),
        "errors": errors,
        "estimates": estimates,
    }
