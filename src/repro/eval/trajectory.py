"""Trajectory accuracy metrics: ATE and RPE.

The SLAM community's standard pair (Sturm et al., IROS 2012), complementing
the racing proxies of Table I:

* **ATE** (absolute trajectory error) — RMSE of positions after optimal
  rigid alignment of the estimated trajectory onto ground truth.  The
  alignment matters when comparing a SLAM-built (self-consistent but
  globally warped) trajectory: without it, a constant frame offset
  dominates.
* **RPE** (relative pose error) — error of the *motion* over a fixed
  horizon, insensitive to global drift; the right lens for odometry and
  front-end quality.

Both take ``(N, 3)`` pose arrays sampled at matching times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.slam.pose_graph import relative_pose
from repro.utils.angles import wrap_to_pi

__all__ = ["align_trajectories", "absolute_trajectory_error",
           "relative_pose_error", "TrajectoryErrors"]


def align_trajectories(estimated: np.ndarray, reference: np.ndarray):
    """Optimal rigid (rotation + translation) alignment, Umeyama/Horn.

    Returns ``(aligned_estimate, rotation_2x2, translation_2)`` minimising
    the sum of squared position errors.  Headings are rotated consistently.
    """
    estimated = np.atleast_2d(np.asarray(estimated, dtype=float))
    reference = np.atleast_2d(np.asarray(reference, dtype=float))
    if estimated.shape != reference.shape:
        raise ValueError(
            f"trajectory shapes differ: {estimated.shape} vs {reference.shape}"
        )
    if estimated.shape[0] < 2:
        raise ValueError("need at least 2 poses to align")

    est_xy = estimated[:, :2]
    ref_xy = reference[:, :2]
    mu_e = est_xy.mean(axis=0)
    mu_r = ref_xy.mean(axis=0)
    cov = (ref_xy - mu_r).T @ (est_xy - mu_e)
    u, _, vt = np.linalg.svd(cov)
    d = np.sign(np.linalg.det(u @ vt))
    rot = u @ np.diag([1.0, d]) @ vt
    trans = mu_r - rot @ mu_e

    aligned = estimated.copy()
    aligned[:, :2] = est_xy @ rot.T + trans
    dtheta = np.arctan2(rot[1, 0], rot[0, 0])
    aligned[:, 2] = wrap_to_pi(estimated[:, 2] + dtheta)
    return aligned, rot, trans


@dataclass(frozen=True)
class TrajectoryErrors:
    """RMSE / mean / max of a per-pose error sequence (metres or radians)."""

    rmse: float
    mean: float
    max: float

    @staticmethod
    def from_samples(samples: np.ndarray) -> "TrajectoryErrors":
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            raise ValueError("no error samples")
        return TrajectoryErrors(
            rmse=float(np.sqrt(np.mean(samples**2))),
            mean=float(np.mean(samples)),
            max=float(np.max(samples)),
        )


def absolute_trajectory_error(
    estimated: np.ndarray, reference: np.ndarray, align: bool = True
) -> TrajectoryErrors:
    """ATE of positions, optionally after rigid alignment."""
    estimated = np.atleast_2d(np.asarray(estimated, dtype=float))
    reference = np.atleast_2d(np.asarray(reference, dtype=float))
    if align:
        estimated, _, _ = align_trajectories(estimated, reference)
    errors = np.hypot(
        estimated[:, 0] - reference[:, 0], estimated[:, 1] - reference[:, 1]
    )
    return TrajectoryErrors.from_samples(errors)


def relative_pose_error(
    estimated: np.ndarray, reference: np.ndarray, delta: int = 1
) -> dict:
    """RPE over a horizon of ``delta`` poses.

    Returns ``{"translation": TrajectoryErrors (m), "rotation":
    TrajectoryErrors (rad)}``: the error of each estimated relative motion
    against the true relative motion over the same interval.
    """
    estimated = np.atleast_2d(np.asarray(estimated, dtype=float))
    reference = np.atleast_2d(np.asarray(reference, dtype=float))
    if estimated.shape != reference.shape:
        raise ValueError("trajectory shapes differ")
    if delta < 1 or delta >= estimated.shape[0]:
        raise ValueError("delta must be in [1, len-1]")

    trans_errors = []
    rot_errors = []
    for i in range(estimated.shape[0] - delta):
        rel_est = relative_pose(estimated[i], estimated[i + delta])
        rel_ref = relative_pose(reference[i], reference[i + delta])
        trans_errors.append(float(np.hypot(*(rel_est[:2] - rel_ref[:2]))))
        rot_errors.append(abs(float(wrap_to_pi(rel_est[2] - rel_ref[2]))))
    return {
        "translation": TrajectoryErrors.from_samples(np.array(trans_errors)),
        "rotation": TrajectoryErrors.from_samples(np.array(rot_errors)),
    }
