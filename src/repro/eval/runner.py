"""Parallel, fault-tolerant experiment sweeps.

The paper's headline result (Table I) is a grid of lap experiments —
localizer x grip x speed scaling, each repeated over Monte-Carlo seeds.
Run serially, a full sweep takes minutes and a single crashed or hung
trial loses everything.  This module turns a sweep into a fan-out over a
``concurrent.futures.ProcessPoolExecutor`` with the failure handling a
long-running harness needs:

* **Deterministic seeding** — every trial owns a seed derived from
  ``repro.utils.rng.derive_seed(base_seed, condition, trial_index)``, so
  results are bit-identical regardless of worker count or completion
  order.
* **Per-trial timeouts** — a hung worker is abandoned (the pool is
  rebuilt) instead of stalling the sweep.
* **Retry with backoff** — crashed or timed-out trials are resubmitted up
  to ``retries`` times, waiting ``retry_backoff_s * attempt`` between
  attempts.
* **Graceful degradation** — a trial that exhausts its attempts yields a
  structured :class:`TrialFailure` record; the sweep completes and
  reports it instead of dying.
* **Checkpoint streaming** — every finished trial is appended to a JSONL
  checkpoint as it completes; re-running the same sweep with the same
  checkpoint path skips trials already on disk, so an interrupted sweep
  resumes where it stopped.
* **Progress metrics** — a callback receives a :class:`SweepStats`
  snapshot (done/failed/retried counts, wall clock, per-trial latency
  histogram via :class:`repro.utils.profiling.TimingStats`) after every
  trial.

The runner itself is generic: it executes any picklable ``trial_fn(spec)
-> dict``.  The lap-experiment glue (:func:`run_lap_trial`,
:func:`make_lap_specs`, :func:`summarize_lap_sweep`) lives at the bottom
and is what ``repro sweep`` and the Table I / Fig. 2 benchmark drivers
use.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.utils.profiling import TimingStats
from repro.utils.rng import derive_seed

__all__ = [
    "TrialSpec",
    "TrialResult",
    "TrialFailure",
    "SweepStats",
    "SweepResult",
    "SweepRunner",
    "make_lap_conditions",
    "make_lap_specs",
    "run_lap_trial",
    "summarize_lap_sweep",
    "merge_sweep_telemetry",
    "LAP_TIME_EDGES_S",
    "LOC_ERROR_EDGES_CM",
]


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TrialSpec:
    """One unit of sweep work: an id, its Monte-Carlo seed, and a payload.

    ``params`` is handed verbatim to the trial function; for lap sweeps it
    carries the :class:`~repro.eval.experiment.ExperimentCondition` plus
    the experiment build parameters.  Everything in a spec must be
    picklable so it can cross the process boundary.
    """

    trial_id: str
    seed: int
    params: Any = None


@dataclass
class TrialResult:
    """A trial that completed and returned a metrics dict."""

    trial_id: str
    seed: int
    metrics: Dict
    attempts: int = 1
    elapsed_s: float = 0.0
    from_checkpoint: bool = False

    @property
    def ok(self) -> bool:
        return True

    def to_record(self) -> Dict:
        return {
            "trial_id": self.trial_id,
            "status": "ok",
            "seed": self.seed,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
            "metrics": self.metrics,
        }


@dataclass
class TrialFailure:
    """A trial that exhausted its attempts.

    ``kind`` distinguishes the failure modes the runner degrades through:
    ``"exception"`` (the trial function raised), ``"timeout"`` (the worker
    exceeded the per-trial deadline and was abandoned) and
    ``"worker-crash"`` (the worker process died, e.g. OOM-killed —
    surfaced as a broken pool).
    """

    trial_id: str
    seed: int
    kind: str
    error_type: str = ""
    message: str = ""
    traceback: str = ""
    attempts: int = 1
    elapsed_s: float = 0.0
    from_checkpoint: bool = False

    @property
    def ok(self) -> bool:
        return False

    def to_record(self) -> Dict:
        return {
            "trial_id": self.trial_id,
            "status": "failed",
            "seed": self.seed,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
        }


TrialRecord = Union[TrialResult, TrialFailure]


def _record_from_dict(data: Dict) -> TrialRecord:
    common = {
        "trial_id": data["trial_id"],
        "seed": int(data.get("seed", 0)),
        "attempts": int(data.get("attempts", 1)),
        "elapsed_s": float(data.get("elapsed_s", 0.0)),
        "from_checkpoint": True,
    }
    if data.get("status") == "ok":
        return TrialResult(metrics=data.get("metrics", {}), **common)
    return TrialFailure(
        kind=data.get("kind", "exception"),
        error_type=data.get("error_type", ""),
        message=data.get("message", ""),
        traceback=data.get("traceback", ""),
        **common,
    )


# ---------------------------------------------------------------------------
# Progress
# ---------------------------------------------------------------------------
@dataclass
class SweepStats:
    """Live sweep metrics, handed to the progress callback after each trial.

    ``timing`` accumulates one ``"trial"`` sample per completed attempt
    batch (successful or not), measured in the orchestrating process —
    the per-trial latency histogram comes from
    ``timing.histogram_ms("trial")``.
    """

    total: int = 0
    done: int = 0
    failed: int = 0
    retried: int = 0
    from_checkpoint: int = 0
    wall_s: float = 0.0
    timing: TimingStats = field(default_factory=TimingStats)

    @property
    def completed(self) -> int:
        return self.done + self.failed

    def summary_line(self) -> str:
        return (
            f"{self.completed}/{self.total} trials "
            f"({self.done} ok, {self.failed} failed, {self.retried} retried, "
            f"{self.from_checkpoint} from checkpoint) in {self.wall_s:.1f} s"
        )


@dataclass
class SweepResult:
    """All trial records, in input-spec order, plus final stats."""

    records: List[TrialRecord]
    stats: SweepStats

    @property
    def results(self) -> List[TrialResult]:
        return [r for r in self.records if r.ok]

    @property
    def failures(self) -> List[TrialFailure]:
        return [r for r in self.records if not r.ok]

    def metrics_by_id(self) -> Dict[str, Dict]:
        return {r.trial_id: r.metrics for r in self.results}


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------
@dataclass
class _Pending:
    spec: TrialSpec
    attempt: int            # 1-based attempt about to run / running
    not_before: float = 0.0  # monotonic time gate for retry backoff
    started: float = 0.0
    first_started: float = 0.0


class SweepRunner:
    """Fans trial specs out over worker processes; never dies mid-sweep.

    Parameters
    ----------
    trial_fn:
        Picklable callable ``(TrialSpec) -> dict`` returning
        JSON-serialisable metrics.  Determinism contract: the return value
        may depend only on the spec (seed included) — never on wall clock,
        worker identity or completion order.
    workers:
        ``1`` runs trials inline in the calling process (no pool, easiest
        to debug; timeouts are not enforceable).  ``>= 2`` uses a
        ``ProcessPoolExecutor`` of that size.
    timeout_s:
        Per-trial deadline.  A worker that exceeds it is abandoned and the
        pool rebuilt, so one wedged trial cannot stall the sweep.
    retries:
        Extra attempts after the first, per trial.
    retry_backoff_s:
        Base backoff; attempt ``k`` waits ``retry_backoff_s * k`` before
        resubmission (other trials keep running meanwhile).
    checkpoint_path:
        JSONL file streamed to as trials finish.  If it already exists,
        trials recorded there are *not* re-run: their records are loaded
        and returned as-is, which is what makes sweeps resumable.
    progress:
        Optional callback ``(SweepStats, TrialRecord) -> None`` invoked
        after every completed trial (including checkpointed ones).
    """

    def __init__(
        self,
        trial_fn: Callable[[TrialSpec], Dict],
        *,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        retry_backoff_s: float = 0.5,
        checkpoint_path: Optional[str] = None,
        progress: Optional[Callable[[SweepStats, TrialRecord], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.trial_fn = trial_fn
        self.workers = int(workers)
        self.timeout_s = float(timeout_s) if timeout_s is not None else None
        self.retries = int(retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.checkpoint_path = checkpoint_path
        self.progress = progress

    # -- checkpoint ----------------------------------------------------
    def _load_checkpoint(self) -> Dict[str, TrialRecord]:
        if not self.checkpoint_path or not os.path.exists(self.checkpoint_path):
            return {}
        loaded: Dict[str, TrialRecord] = {}
        with open(self.checkpoint_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from a killed sweep
                loaded[data["trial_id"]] = _record_from_dict(data)
        return loaded

    def _append_checkpoint(self, handle, record: TrialRecord) -> None:
        if handle is None:
            return
        handle.write(json.dumps(record.to_record()) + "\n")
        handle.flush()

    # -- bookkeeping ---------------------------------------------------
    def _finish(self, stats, handle, by_id, record: TrialRecord) -> None:
        by_id[record.trial_id] = record
        if record.ok:
            stats.done += 1
        else:
            stats.failed += 1
        self._append_checkpoint(handle, record)
        if self.progress is not None:
            self.progress(stats, record)

    def _failure_from_exception(
        self, pending: _Pending, exc: BaseException, kind: str, now: float
    ) -> TrialFailure:
        return TrialFailure(
            trial_id=pending.spec.trial_id,
            seed=pending.spec.seed,
            kind=kind,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )[-4000:],
            attempts=pending.attempt,
            elapsed_s=now - pending.first_started,
        )

    # -- execution -----------------------------------------------------
    def run(self, specs: Sequence[TrialSpec]) -> SweepResult:
        specs = list(specs)
        ids = [spec.trial_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ValueError("trial_id values must be unique within a sweep")

        stats = SweepStats(total=len(specs))
        start = time.monotonic()
        checkpointed = self._load_checkpoint()
        by_id: Dict[str, TrialRecord] = {}

        handle = None
        if self.checkpoint_path:
            parent = os.path.dirname(os.path.abspath(self.checkpoint_path))
            os.makedirs(parent, exist_ok=True)
            handle = open(self.checkpoint_path, "a", encoding="utf-8")

        try:
            todo: List[TrialSpec] = []
            for spec in specs:
                record = checkpointed.get(spec.trial_id)
                if record is not None:
                    stats.from_checkpoint += 1
                    stats.wall_s = time.monotonic() - start
                    self._finish(stats, None, by_id, record)  # already on disk
                else:
                    todo.append(spec)

            if self.workers == 1:
                self._run_inline(todo, stats, handle, by_id, start)
            else:
                self._run_pool(todo, stats, handle, by_id, start)
        finally:
            if handle is not None:
                handle.close()

        stats.wall_s = time.monotonic() - start
        return SweepResult([by_id[i] for i in ids], stats)

    def _run_inline(self, todo, stats, handle, by_id, start) -> None:
        for spec in todo:
            first_started = time.monotonic()
            attempt = 0
            while True:
                attempt += 1
                trial_start = time.monotonic()
                try:
                    metrics = self.trial_fn(spec)
                except Exception as exc:  # noqa: BLE001 - degrade, don't die
                    if attempt <= self.retries:
                        stats.retried += 1
                        time.sleep(self.retry_backoff_s * attempt)
                        continue
                    now = time.monotonic()
                    pending = _Pending(spec, attempt, first_started=first_started)
                    record: TrialRecord = self._failure_from_exception(
                        pending, exc, "exception", now
                    )
                else:
                    now = time.monotonic()
                    record = TrialResult(
                        trial_id=spec.trial_id,
                        seed=spec.seed,
                        metrics=metrics,
                        attempts=attempt,
                        elapsed_s=now - first_started,
                    )
                stats.timing.record("trial", now - trial_start)
                stats.wall_s = now - start
                self._finish(stats, handle, by_id, record)
                break

    def _run_pool(self, todo, stats, handle, by_id, start) -> None:
        queue = deque(_Pending(spec, attempt=1) for spec in todo)
        executor = ProcessPoolExecutor(max_workers=self.workers)
        in_flight: Dict[Any, _Pending] = {}

        def submit_ready(now: float) -> None:
            # Keep at most `workers` futures in flight so a submitted
            # future is (practically) always running: timeouts then always
            # mean a wedged worker, never queue backlog.
            for _ in range(len(queue)):
                if len(in_flight) >= self.workers:
                    break
                pending = queue.popleft()
                if pending.not_before > now:
                    queue.append(pending)
                    continue
                pending.started = now
                if pending.first_started == 0.0:
                    pending.first_started = now
                future = executor.submit(self.trial_fn, pending.spec)
                in_flight[future] = pending

        def rebuild_pool() -> None:
            nonlocal executor
            # Abandon the wedged/broken pool without waiting on it; the
            # replacement picks the surviving trials back up.
            executor.shutdown(wait=False, cancel_futures=True)
            executor = ProcessPoolExecutor(max_workers=self.workers)

        def retry_or_fail(pending: _Pending, exc, kind: str, now: float) -> None:
            if pending.attempt <= self.retries:
                stats.retried += 1
                queue.append(
                    _Pending(
                        pending.spec,
                        attempt=pending.attempt + 1,
                        not_before=now + self.retry_backoff_s * pending.attempt,
                        first_started=pending.first_started,
                    )
                )
                return
            self._finish(
                stats, handle, by_id,
                self._failure_from_exception(pending, exc, kind, now),
            )

        try:
            submit_ready(time.monotonic())
            while queue or in_flight:
                if not in_flight:
                    # Everything is backing off; sleep to the next gate.
                    gate = min(p.not_before for p in queue)
                    time.sleep(max(0.0, gate - time.monotonic()) + 1e-3)
                    submit_ready(time.monotonic())
                    continue

                done, _ = wait(
                    set(in_flight), timeout=0.05, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                pool_broken = False

                stats.wall_s = now - start
                for future in done:
                    pending = in_flight.pop(future)
                    stats.timing.record("trial", now - pending.started)
                    try:
                        metrics = future.result()
                    except BrokenProcessPool as exc:
                        pool_broken = True
                        retry_or_fail(pending, exc, "worker-crash", now)
                    except Exception as exc:  # noqa: BLE001
                        retry_or_fail(pending, exc, "exception", now)
                    else:
                        self._finish(
                            stats, handle, by_id,
                            TrialResult(
                                trial_id=pending.spec.trial_id,
                                seed=pending.spec.seed,
                                metrics=metrics,
                                attempts=pending.attempt,
                                elapsed_s=now - pending.first_started,
                            ),
                        )

                # Deadline sweep: abandon wedged workers.
                timed_out = []
                if self.timeout_s is not None:
                    timed_out = [
                        future for future, pending in in_flight.items()
                        if now - pending.started > self.timeout_s
                    ]
                if timed_out or pool_broken:
                    survivors = []
                    for future, pending in in_flight.items():
                        if future in timed_out:
                            stats.timing.record("trial", now - pending.started)
                            retry_or_fail(
                                pending,
                                TimeoutError(
                                    f"trial exceeded {self.timeout_s:.1f} s"
                                ),
                                "timeout",
                                now,
                            )
                        else:
                            # Innocent bystanders of the rebuild: resubmit
                            # without charging an attempt.
                            survivors.append(
                                _Pending(
                                    pending.spec,
                                    attempt=pending.attempt,
                                    first_started=pending.first_started,
                                )
                            )
                    in_flight.clear()
                    queue.extendleft(reversed(survivors))
                    rebuild_pool()

                submit_ready(time.monotonic())
        finally:
            executor.shutdown(wait=False, cancel_futures=True)


# ---------------------------------------------------------------------------
# Lap-experiment glue (what `repro sweep` and the benches run)
# ---------------------------------------------------------------------------
def make_lap_conditions(
    methods: Sequence[str] = ("cartographer", "synpf"),
    qualities: Sequence[str] = ("HQ", "LQ"),
    speed_scales: Sequence[float] = (1.0,),
    num_laps: int = 2,
) -> List:
    """The Table I condition grid: methods x grip qualities x speed scales."""
    from repro.eval.experiment import ExperimentCondition

    return [
        ExperimentCondition(
            method=method, odom_quality=quality,
            speed_scale=float(scale), num_laps=int(num_laps),
        )
        for method in methods
        for quality in qualities
        for scale in speed_scales
    ]


def make_lap_specs(
    conditions: Sequence,
    trials: int = 1,
    base_seed: int = 7,
    resolution: float = 0.05,
    max_sim_time: float = 600.0,
) -> List[TrialSpec]:
    """Fan conditions out into per-trial specs with derived seeds.

    The seed of trial ``t`` of a condition depends only on
    ``(base_seed, condition identity, t)`` — never on list order — so
    adding conditions to a sweep does not reshuffle existing results.
    """
    specs = []
    for condition in conditions:
        key = (condition.label(), condition.speed_scale,
               condition.odometry_source)
        for trial_index in range(int(trials)):
            specs.append(
                TrialSpec(
                    trial_id=(
                        f"{condition.label()}/x{condition.speed_scale:g}"
                        f"/t{trial_index}"
                    ),
                    seed=derive_seed(base_seed, key, trial_index),
                    params={
                        "condition": condition,
                        "resolution": float(resolution),
                        "max_sim_time": float(max_sim_time),
                    },
                )
            )
    return specs


# One experiment per (resolution, max_sim_time) per worker process: the
# replica track rasterisation and the localizers' precomputed tables are
# the expensive part of a trial, and every trial on the same track reuses
# them.
_EXPERIMENT_CACHE: Dict = {}


def _experiment_for(resolution: float, max_sim_time: float):
    key = (round(float(resolution), 6), round(float(max_sim_time), 3))
    experiment = _EXPERIMENT_CACHE.get(key)
    if experiment is None:
        from repro.eval.experiment import LapExperiment
        from repro.maps import replica_test_track

        track = replica_test_track(resolution=key[0])
        experiment = LapExperiment(track, max_sim_time=key[1])
        _EXPERIMENT_CACHE[key] = experiment
    return experiment


# Fixed bucket edges for the deterministic per-trial telemetry snapshot.
# Part of the sweep telemetry contract: every worker uses the same
# literal edges, so per-trial histograms always merge.
LAP_TIME_EDGES_S = (5.0, 7.5, 10.0, 12.5, 15.0, 20.0, 25.0, 30.0, 40.0,
                    60.0, 90.0, 120.0)
LOC_ERROR_EDGES_CM = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)


def _trial_telemetry_snapshot(result) -> Dict:
    """Deterministic metrics snapshot for one finished lap trial.

    Built *from the result*, never from the wall clock: counters and
    histograms here are functions of the trial spec alone, so merged
    sweep snapshots are bit-identical at any worker count (latency spans
    live in per-run JSONL streams instead).
    """
    import math

    from repro.telemetry import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("sweep.trials").inc()
    registry.counter("sweep.crashes").inc(result.crashes)
    lap_time = registry.histogram("lap_time_s", LAP_TIME_EDGES_S)
    loc_err = registry.histogram("localization_error_cm", LOC_ERROR_EDGES_CM)
    for lap in result.laps:
        registry.counter("sweep.laps.completed").inc()
        if lap.valid:
            registry.counter("sweep.laps.valid").inc()
            lap_time.observe(lap.lap_time)
            if math.isfinite(lap.localization_error_mean_cm):
                loc_err.observe(lap.localization_error_mean_cm)
    return registry.snapshot()


def run_lap_trial(spec: TrialSpec) -> Dict:
    """Execute one lap-experiment trial (module-level: picklable).

    Returns the full :class:`ConditionResult` as a dict plus a flat
    ``summary`` of the deterministic metrics and a mergeable
    ``telemetry`` snapshot (see :func:`merge_sweep_telemetry`).
    Latency-derived fields (``mean_update_ms``, ``compute_load_percent``)
    are wall-clock measurements and intentionally stay out of both —
    everything in ``summary`` and ``telemetry`` is bit-identical across
    worker counts.
    """
    params = spec.params
    experiment = _experiment_for(params["resolution"], params["max_sim_time"])
    result = experiment.run(params["condition"], seed=spec.seed)
    return {
        "condition": params["condition"].label(),
        "result": result.to_dict(),
        "summary": {
            "lap_time_mean_s": result.lap_time.mean,
            "lap_time_std_s": result.lap_time.std,
            "lateral_error_mean_cm": result.lateral_error_cm.mean,
            "scan_alignment_mean_pct": result.scan_alignment.mean,
            "localization_error_mean_cm": result.localization_error_cm.mean,
            "crashes": result.crashes,
            "valid_laps": sum(1 for lap in result.laps if lap.valid),
        },
        "telemetry": _trial_telemetry_snapshot(result),
    }


def merge_sweep_telemetry(records: Sequence[TrialRecord]) -> Dict:
    """Merge every successful trial's telemetry snapshot into one.

    Trials are folded in sorted-``trial_id`` order via
    :func:`repro.telemetry.merge_snapshots`, so the merged snapshot is
    bit-identical regardless of worker count or completion order.
    Records without a ``telemetry`` block (failures, checkpoints written
    by older versions) are skipped.
    """
    from repro.telemetry import merge_snapshots

    snapshots = {
        record.trial_id: record.metrics["telemetry"]
        for record in records
        if record.ok and "telemetry" in record.metrics
    }
    return merge_snapshots(snapshots)


def summarize_lap_sweep(records: Sequence[TrialRecord]) -> str:
    """Deterministic per-condition summary table for a lap sweep.

    Aggregates the ``summary`` block of every successful trial by
    condition (mean over trials) and lists failures at the end.  Contains
    no wall-clock quantities, so the same sweep produces byte-identical
    output at any worker count.
    """
    import numpy as np

    by_condition: Dict[str, List[Dict]] = {}
    failures: List[TrialFailure] = []
    for record in records:
        if record.ok:
            by_condition.setdefault(
                record.metrics["condition"], []
            ).append(record.metrics["summary"])
        else:
            failures.append(record)

    lines = [
        f"{'Condition':<22}{'Trials':>7}{'LapTime[s]':>11}{'Lat[cm]':>9}"
        f"{'Align[%]':>10}{'Loc[cm]':>9}{'Crashes':>8}",
        "-" * 76,
    ]
    for label in sorted(by_condition):
        rows = by_condition[label]
        mean = lambda key: float(np.mean([r[key] for r in rows]))  # noqa: E731
        lines.append(
            f"{label:<22}{len(rows):>7}"
            f"{mean('lap_time_mean_s'):>11.3f}"
            f"{mean('lateral_error_mean_cm'):>9.3f}"
            f"{mean('scan_alignment_mean_pct'):>10.3f}"
            f"{mean('localization_error_mean_cm'):>9.3f}"
            f"{int(sum(r['crashes'] for r in rows)):>8d}"
        )
    for failure in failures:
        lines.append(
            f"FAILED {failure.trial_id}: {failure.kind} "
            f"({failure.error_type}: {failure.message})"
        )
    return "\n".join(lines)
