"""Robustness evaluation harness.

Reproduces the paper's experimental protocol (§III): N laps at a fixed
speed scaling under each (localizer, grip) condition, collecting the
Table I proxy measurements — lap time, lateral error w.r.t. the ideal race
line, scan-alignment score, and compute load — plus the latency figures
quoted in §I/§IV.
"""

from repro.eval.experiment import (
    ConditionResult,
    ExperimentCondition,
    LapExperiment,
    LapRecord,
    format_table1,
)
from repro.eval.latency import (
    measure_filter_latency,
    measure_range_method_latency,
    measure_scan_match_latency,
)
from repro.eval.metrics import (
    compute_load_percent,
    pose_error,
    scan_alignment_score,
    summarize,
)
from repro.eval.perturbations import OdometryPerturbation
from repro.eval.runner import (
    SweepResult,
    SweepRunner,
    SweepStats,
    TrialFailure,
    TrialResult,
    TrialSpec,
    make_lap_conditions,
    make_lap_specs,
    merge_sweep_telemetry,
    run_lap_trial,
    summarize_lap_sweep,
)
from repro.eval.trajectory import (
    TrajectoryErrors,
    absolute_trajectory_error,
    align_trajectories,
    relative_pose_error,
)

__all__ = [
    "TrajectoryErrors",
    "absolute_trajectory_error",
    "align_trajectories",
    "relative_pose_error",
    "ConditionResult",
    "ExperimentCondition",
    "LapExperiment",
    "LapRecord",
    "OdometryPerturbation",
    "SweepResult",
    "SweepRunner",
    "SweepStats",
    "TrialFailure",
    "TrialResult",
    "TrialSpec",
    "compute_load_percent",
    "format_table1",
    "make_lap_conditions",
    "make_lap_specs",
    "merge_sweep_telemetry",
    "run_lap_trial",
    "summarize_lap_sweep",
    "measure_filter_latency",
    "measure_range_method_latency",
    "measure_scan_match_latency",
    "pose_error",
    "scan_alignment_score",
    "summarize",
]
