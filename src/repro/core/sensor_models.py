"""LiDAR beam sensor model with a precomputed probability table.

The classic four-component beam model (*Probabilistic Robotics* ch. 6.3):
given the expected range ``z*`` at a hypothesised pose, the probability of
observing range ``z`` mixes

* ``z_hit``  — Gaussian around ``z*`` (correct measurement, sensor noise),
* ``z_short`` — exponential short readings (unmapped obstacles, other cars),
* ``z_max``  — a spike at maximum range (misses, absorptive surfaces),
* ``z_rand`` — uniform clutter.

As in the MIT particle filter [3], the model is *discretised once* into a
``(expected_bin, measured_bin)`` table so that scoring a particle costs one
table lookup per beam — no transcendentals in the hot loop.  Log
probabilities are summed per particle and tempered by an ``inv_squash``
exponent (equivalent to raising the likelihood to ``1/squash``), the
standard guard against overconfident weights when beam errors are
correlated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.backends import get_numba_kernels, resolve_backend

__all__ = ["SensorModelConfig", "BeamSensorModel"]


@dataclass(frozen=True)
class SensorModelConfig:
    """Beam-model mixture weights and shape parameters.

    The four ``z_*`` weights are renormalised to sum to 1 at table build
    time, so configs may be written in convenient un-normalised units.
    """

    z_hit: float = 0.75
    z_short: float = 0.10
    z_max: float = 0.025
    z_rand: float = 0.125
    sigma_hit: float = 0.10
    lambda_short: float = 2.0
    max_range: float = 12.0
    resolution: float = 0.05
    squash_factor: float = 2.2

    def validate(self) -> None:
        if min(self.z_hit, self.z_short, self.z_max, self.z_rand) < 0:
            raise ValueError("mixture weights must be non-negative")
        if self.z_hit + self.z_short + self.z_max + self.z_rand <= 0:
            raise ValueError("mixture weights must not all be zero")
        if self.sigma_hit <= 0:
            raise ValueError("sigma_hit must be positive")
        if self.lambda_short <= 0:
            raise ValueError("lambda_short must be positive")
        if self.max_range <= 0:
            raise ValueError("max_range must be positive")
        if self.resolution <= 0 or self.resolution > self.max_range:
            raise ValueError("resolution must be in (0, max_range]")
        if self.squash_factor < 1.0:
            raise ValueError("squash_factor must be >= 1 (1 = no tempering)")


class BeamSensorModel:
    """Discretised beam sensor model.

    Parameters
    ----------
    config:
        Mixture parameters; see :class:`SensorModelConfig`.

    Notes
    -----
    The table stores *log* probabilities: scoring ``P`` particles against
    ``B`` beams is a ``(P*B,)`` fancy-index plus a row-sum, the same
    O(1)-per-beam structure rangelibc's ``eval_sensor_model`` uses.
    """

    def __init__(
        self,
        config: SensorModelConfig | None = None,
        backend: str = "auto",
    ) -> None:
        self.config = config or SensorModelConfig()
        self.config.validate()
        self._n_bins = int(np.floor(self.config.max_range / self.config.resolution)) + 1
        self._log_table = self._build_table()
        # Flat view for the numpy gather: `flat.take(row * n + col)` hits
        # a single contiguous fancy-index fast path instead of the 2-D
        # advanced-indexing machinery; values are identical.
        self._flat_table = np.ascontiguousarray(self._log_table).ravel()
        self.backend = resolve_backend(backend)

    @property
    def num_bins(self) -> int:
        return self._n_bins

    def _build_table(self) -> np.ndarray:
        cfg = self.config
        n = self._n_bins
        ranges = np.arange(n) * cfg.resolution  # bin centres for both axes
        expected = ranges[:, None]  # rows: expected z*
        measured = ranges[None, :]  # cols: measured z

        total = cfg.z_hit + cfg.z_short + cfg.z_max + cfg.z_rand
        z_hit, z_short = cfg.z_hit / total, cfg.z_short / total
        z_max, z_rand = cfg.z_max / total, cfg.z_rand / total

        # Hit: Gaussian around the expected range.  Normalising per-column
        # of the truncated Gaussian is skipped (constant factors cancel in
        # the particle-weight normalisation).
        p_hit = np.exp(-0.5 * ((measured - expected) / cfg.sigma_hit) ** 2) / (
            cfg.sigma_hit * np.sqrt(2.0 * np.pi)
        )

        # Short: exponential on [0, z*), normalised over its support.
        with np.errstate(divide="ignore", invalid="ignore"):
            eta = 1.0 / (1.0 - np.exp(-cfg.lambda_short * np.maximum(expected, 1e-9)))
        p_short = np.where(
            measured < expected,
            cfg.lambda_short * np.exp(-cfg.lambda_short * measured) * eta,
            0.0,
        )

        # Max: probability mass on the last bin.
        p_max_comp = np.zeros((n, n))
        p_max_comp[:, -1] = 1.0 / cfg.resolution

        # Rand: uniform over [0, max_range].
        p_rand = np.full((n, n), 1.0 / cfg.max_range)

        mixture = z_hit * p_hit + z_short * p_short + z_max * p_max_comp + z_rand * p_rand
        # Discretise: probability per bin = density * bin width.
        prob = mixture * cfg.resolution
        prob = np.clip(prob, 1e-12, None)
        return np.log(prob).astype(np.float32)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _to_bins(self, ranges: np.ndarray) -> np.ndarray:
        bins = np.round(np.asarray(ranges, dtype=float) / self.config.resolution)
        return np.clip(bins, 0, self._n_bins - 1).astype(np.int64)

    def log_likelihood(self, expected: np.ndarray, measured: np.ndarray) -> np.ndarray:
        """Per-particle tempered log likelihood.

        Parameters
        ----------
        expected:
            ``(P, B)`` expected ranges from ray casting each particle.
        measured:
            ``(B,)`` observed ranges for the selected scanlines.

        Returns
        -------
        ``(P,)`` array of ``sum_b log p(z_b | z*_b) / squash_factor``.
        """
        expected = np.atleast_2d(np.asarray(expected, dtype=float))
        measured = np.asarray(measured, dtype=float)
        if expected.shape[1] != measured.shape[0]:
            raise ValueError(
                f"beam count mismatch: expected {expected.shape[1]}, "
                f"measured {measured.shape[0]}"
            )
        meas_bins = self._to_bins(measured)
        if self.backend == "numba":
            kernels = get_numba_kernels()
            return kernels.sensor_log_likelihood(
                np.ascontiguousarray(expected),
                meas_bins,
                self._log_table,
                1.0 / self.config.resolution,
                self._n_bins,
                self.config.squash_factor,
            )
        exp_bins = self._to_bins(expected)
        log_p = self._flat_table.take(exp_bins * self._n_bins + meas_bins[None, :])
        return log_p.sum(axis=1) / self.config.squash_factor

    def weights(self, expected: np.ndarray, measured: np.ndarray) -> np.ndarray:
        """Normalised particle weights from the tempered likelihood.

        Log-sum-exp stabilised; always sums to 1.
        """
        log_like = self.log_likelihood(expected, measured)
        log_like = log_like - log_like.max()
        w = np.exp(log_like)
        return w / w.sum()

    def beam_probability(self, expected: float, measured: float) -> float:
        """Single-beam mixture probability (un-tempered) — for tests/plots."""
        i = int(self._to_bins(np.array([expected]))[0])
        j = int(self._to_bins(np.array([measured]))[0])
        return float(np.exp(self._log_table[i, j]))
