"""Structure-of-arrays particle storage for the batch-first PF core.

The filter hot loop touches three quantities per particle — position,
heading, weight — and the historical ``(N, 3)`` array-of-structs layout
forced every stage to either strided column reads or fresh
``np.column_stack`` temporaries.  :class:`ParticleCloud` stores them as
three **contiguous** arrays instead::

    xy      float64 (N, 2)   world position
    theta   float64 (N,)     heading, wrapped to (-pi, pi]
    log_w   float64 (N,)     log of the normalized weights (scratch)

with *capacity-based* backing buffers: the arrays the public views slice
into are allocated once at the high-water particle count and only
re-allocated when the cloud grows past it.  Shrinking (the governor's
``num_particles`` downshift, KLD adaptation) narrows the views and keeps
the allocation — ``cloud.xy.base`` stays the same object across a
shrink, which the buffer-pool identity regression test pins.

Weights are canonical in *linear* space (``weights`` always sums to 1 by
construction of its writers); ``log_weights()`` refreshes the ``log_w``
scratch from the linear values on demand, so the Bayes accumulation
``log_w + log_like`` is bitwise identical to the historical
``np.log(self.weights) + log_like`` expression.

:class:`BufferPool` is the companion scratch allocator: named float/int
work buffers keyed by name, grown monotonically, handed out as shaped
views — the fused update pipeline runs allocation-free at steady state.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["BufferPool", "ParticleCloud"]


class BufferPool:
    """Named, monotonically-grown scratch buffers keyed by name.

    ``take(key, shape, dtype)`` returns a view of the flat buffer
    registered under ``key``, reshaped to ``shape``.  The backing
    allocation only grows (to the largest element count ever requested
    for that key), so a steady-state caller — the PF update loop asking
    for the same shapes every cycle — never allocates after warmup.

    Views are only valid until the next ``take`` of the same key with a
    *larger* size; callers must not hold them across pool growth.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, np.dtype], np.ndarray] = {}

    def take(self, key: str, shape, dtype=np.float64) -> np.ndarray:
        if np.isscalar(shape):
            shape = (int(shape),)
        shape = tuple(int(s) for s in shape)
        size = 1
        for s in shape:
            if s < 0:
                raise ValueError(f"negative dimension in shape {shape}")
            size *= s
        dtype = np.dtype(dtype)
        slot = (key, dtype)
        buf = self._buffers.get(slot)
        if buf is None or buf.size < size:
            buf = np.empty(size, dtype=dtype)
            self._buffers[slot] = buf
        return buf[:size].reshape(shape)

    def stats(self) -> Dict[str, int]:
        """Bytes currently held per key (capacity, not live use)."""
        out: Dict[str, int] = {}
        for (key, _dtype), buf in self._buffers.items():
            out[key] = out.get(key, 0) + buf.nbytes
        return out

    @property
    def total_bytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())


class ParticleCloud:
    """Contiguous SoA particle state with capacity-preserving resize.

    Parameters
    ----------
    n:
        Initial particle count (also the initial capacity).
    pool:
        Optional shared :class:`BufferPool` for transient gather/assembly
        scratch.  A private pool is created when omitted.
    """

    def __init__(self, n: int, pool: Optional[BufferPool] = None) -> None:
        if n < 1:
            raise ValueError("particle count must be >= 1")
        self.pool = pool if pool is not None else BufferPool()
        self._capacity = int(n)
        self._n = int(n)
        self._xy = np.zeros((self._capacity, 2))
        self._theta = np.zeros(self._capacity)
        self._w = np.full(self._capacity, 1.0 / n)
        self._log_w = np.empty(self._capacity)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def n(self) -> int:
        return self._n

    @property
    def capacity(self) -> int:
        """Allocated particle slots (>= ``n``; never shrinks)."""
        return self._capacity

    def _grow(self, target: int) -> None:
        """Re-allocate backing buffers at ``target`` capacity, keeping data."""
        new_xy = np.empty((target, 2))
        new_theta = np.empty(target)
        new_w = np.empty(target)
        keep = min(self._n, target)
        new_xy[:keep] = self._xy[:keep]
        new_theta[:keep] = self._theta[:keep]
        new_w[:keep] = self._w[:keep]
        self._xy, self._theta, self._w = new_xy, new_theta, new_w
        self._log_w = np.empty(target)
        self._capacity = target

    def resize(self, n: int) -> None:
        """Set the live count to ``n``.

        Shrinking narrows the views over the existing allocation
        (``xy.base`` identity is preserved); growing past capacity
        re-allocates exactly once to the new size.  Content beyond the
        previous count is uninitialised — callers overwrite it.
        """
        n = int(n)
        if n < 1:
            raise ValueError("particle count must be >= 1")
        if n > self._capacity:
            self._grow(n)
        self._n = n

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def xy(self) -> np.ndarray:
        """``(n, 2)`` contiguous position view (writable, live)."""
        return self._xy[: self._n]

    @property
    def theta(self) -> np.ndarray:
        """``(n,)`` contiguous heading view (writable, live)."""
        return self._theta[: self._n]

    @property
    def weights(self) -> np.ndarray:
        """``(n,)`` linear normalized weights view (writable, live)."""
        return self._w[: self._n]

    def log_weights(self) -> np.ndarray:
        """``log(weights)`` refreshed into the ``log_w`` scratch buffer.

        Recomputed from the canonical linear weights on every call (no
        incremental maintenance), so external in-place weight edits can
        never leave a stale log view; the buffer is reused, not
        re-allocated.  ``-inf`` for exactly-zero weights is deliberate —
        identical to the historical ``np.log(self.weights)``.
        """
        out = self._log_w[: self._n]
        with np.errstate(divide="ignore"):
            np.log(self._w[: self._n], out=out)
        return out

    # ------------------------------------------------------------------
    # Whole-cloud writers
    # ------------------------------------------------------------------
    def set_from_array(self, particles: np.ndarray) -> None:
        """Load an ``(n, 3)`` pose array; weights keep their values when
        the count is unchanged and reset to uniform when it differs."""
        particles = np.asarray(particles, dtype=float)
        if particles.ndim != 2 or particles.shape[1] != 3:
            raise ValueError(f"expected (n, 3) particles, got {particles.shape}")
        n = particles.shape[0]
        count_changed = n != self._n
        self.resize(n)
        self._xy[:n] = particles[:, :2]
        self._theta[:n] = particles[:, 2]
        if count_changed:
            self.set_uniform()

    def set_weights(self, w: np.ndarray) -> None:
        """Replace the weights; a length change resizes the cloud.

        Keeps legacy whole-array assignment (``pf.weights = ...``)
        working: assigning a shorter/longer vector adjusts the live count
        the same way assigning ``pf.particles`` does, preserving the
        surviving pose prefix.
        """
        w = np.asarray(w, dtype=float)
        if w.ndim != 1:
            raise ValueError(f"expected 1-D weights, got shape {w.shape}")
        if w.shape[0] != self._n:
            # The incoming array may view our own buffer (`pf.weights[:k]`);
            # materialise it before the views move.
            w = np.array(w)
            self.resize(w.shape[0])
        self._w[: self._n] = w

    def set_uniform(self, n: Optional[int] = None) -> None:
        """Uniform weights (optionally resizing to ``n`` first)."""
        if n is not None:
            self.resize(n)
        self._w[: self._n] = 1.0 / self._n

    # ------------------------------------------------------------------
    # Reordering
    # ------------------------------------------------------------------
    def gather(self, idx: np.ndarray) -> None:
        """In-place ``cloud[:] = cloud[idx]`` (resample / resize kernel).

        ``idx`` indexes the current cloud; the result has ``len(idx)``
        particles.  Staged through pool scratch so a same-size gather
        allocates nothing and a shrink keeps the backing buffers.
        Weights are untouched except for the count change — callers
        always reset them (uniform after resampling).
        """
        idx = np.asarray(idx)
        m = idx.shape[0]
        tmp_xy = self.pool.take("cloud.gather_xy", (m, 2))
        tmp_theta = self.pool.take("cloud.gather_theta", (m,))
        np.take(self._xy[: self._n], idx, axis=0, out=tmp_xy)
        np.take(self._theta[: self._n], idx, out=tmp_theta)
        self.resize(m)
        self._xy[:m] = tmp_xy
        self._theta[:m] = tmp_theta

    def scatter_poses(self, idx: np.ndarray, poses: np.ndarray) -> None:
        """``cloud[idx] = poses`` for an ``(k, 3)`` pose block (injection)."""
        poses = np.asarray(poses, dtype=float)
        self.xy[idx] = poses[:, :2]
        self.theta[idx] = poses[:, 2]

    # ------------------------------------------------------------------
    # AoS interop
    # ------------------------------------------------------------------
    def as_array(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Assemble the ``(n, 3)`` array-of-structs pose view.

        Returns a fresh array (or fills ``out``); mutating it does not
        touch the cloud.  Hot paths that only need one column should use
        the SoA views instead.
        """
        n = self._n
        if out is None:
            out = np.empty((n, 3))
        out[:, :2] = self._xy[:n]
        out[:, 2] = self._theta[:n]
        return out

    def memory_bytes(self) -> int:
        """Backing allocation size (capacity-based, pool excluded)."""
        return (
            self._xy.nbytes + self._theta.nbytes + self._w.nbytes
            + self._log_w.nbytes
        )
