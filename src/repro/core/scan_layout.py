"""Scanline subset selection: uniform vs. boxed layouts.

A 2D racing LiDAR produces ~1081 beams per revolution; evaluating the
sensor model on all of them per particle is wasteful and correlated.  Both
particle filters therefore score only a subset of scanlines.  How that
subset is chosen matters:

* :class:`UniformScanLayout` — every k-th beam, the obvious choice.  In a
  corridor, angularly uniform beams cluster their *hit points* on the
  nearby side walls; few beams see far down the track.

* :class:`BoxedScanLayout` — the TUM PF scheme [4]: beams are chosen so
  that their intersections with a virtual corridor ("box") of configurable
  aspect ratio are *uniformly spaced along the box perimeter*.  Because a
  racetrack is corridor-like, this spends more beams looking far ahead and
  behind — where the map actually has discriminative geometry — yielding
  more information for the same number of scanlines (paper §II).

Layouts are computed once for a given LiDAR description and return *beam
indices* into the full scan, so they are trivially applied to both real
measurements and expected ranges.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.utils.angles import wrap_to_pi

__all__ = ["ScanLayout", "UniformScanLayout", "BoxedScanLayout"]


class ScanLayout(abc.ABC):
    """Selects a subset of beams from a full scan."""

    @abc.abstractmethod
    def select(self, beam_angles: np.ndarray, num_beams: int) -> np.ndarray:
        """Return sorted unique indices of the selected beams.

        Parameters
        ----------
        beam_angles:
            ``(B,)`` angles of the full scan, radians, relative to the
            sensor's forward axis, ascending.
        num_beams:
            Target number of selected scanlines.  The result may contain
            slightly fewer (duplicate nearest-beam hits are merged).
        """

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class UniformScanLayout(ScanLayout):
    """Angularly uniform subsampling (every k-th beam)."""

    def select(self, beam_angles: np.ndarray, num_beams: int) -> np.ndarray:
        beam_angles = np.asarray(beam_angles)
        total = beam_angles.shape[0]
        if num_beams < 1:
            raise ValueError("num_beams must be >= 1")
        if num_beams >= total:
            return np.arange(total)
        idx = np.linspace(0, total - 1, num_beams)
        return np.unique(np.round(idx).astype(np.int64))


@dataclass(frozen=True)
class BoxedScanLayout(ScanLayout):
    """Corridor-intersection-uniform beam selection [4].

    A virtual box of width ``box_width`` and length ``aspect_ratio *
    box_width`` is centred on the sensor (length along the driving
    direction).  ``num_beams`` target points are placed uniformly along the
    box perimeter; for each, the nearest available beam (by angle) is
    selected.  With a long box this concentrates beams near 0 and pi —
    down the corridor — while still covering the sides.

    Attributes
    ----------
    aspect_ratio:
        Box length / width.  The TUM PF uses elongated boxes (>= 3);
        ``1.0`` degenerates to near-uniform *perimeter* coverage of a
        square, still denser ahead than pure angular uniformity.
    box_width:
        Physical box width in metres.  Only the ratio matters for angles;
        the width is kept for interpretability against track width.
    """

    aspect_ratio: float = 3.0
    box_width: float = 2.0

    def perimeter_angles(self, num_beams: int) -> np.ndarray:
        """Angles (sensor frame) of the ideal boxed directions."""
        if num_beams < 1:
            raise ValueError("num_beams must be >= 1")
        if self.aspect_ratio <= 0 or self.box_width <= 0:
            raise ValueError("aspect_ratio and box_width must be positive")
        half_w = self.box_width / 2.0
        half_l = self.aspect_ratio * self.box_width / 2.0

        # Walk the rectangle perimeter at uniform arclength.  Corners:
        # front-right -> front-left -> rear-left -> rear-right (CCW).
        corners = np.array(
            [
                [half_l, -half_w],
                [half_l, half_w],
                [-half_l, half_w],
                [-half_l, -half_w],
            ]
        )
        seg = np.roll(corners, -1, axis=0) - corners
        seg_len = np.hypot(seg[:, 0], seg[:, 1])
        cum = np.concatenate([[0.0], np.cumsum(seg_len)])
        perimeter = cum[-1]

        s = (np.arange(num_beams) + 0.5) * perimeter / num_beams
        pts = np.empty((num_beams, 2))
        for k, sk in enumerate(s):
            i = int(np.searchsorted(cum, sk, side="right")) - 1
            i = min(i, 3)
            t = (sk - cum[i]) / seg_len[i]
            pts[k] = corners[i] + t * seg[i]
        return np.sort(wrap_to_pi(np.arctan2(pts[:, 1], pts[:, 0])))

    def select(self, beam_angles: np.ndarray, num_beams: int) -> np.ndarray:
        """Select ~``num_beams`` beams (never more), compensating for
        targets lost to the LiDAR's field of view and to duplicate
        nearest-beam hits, so layouts are compared at equal beam budgets."""
        beam_angles = np.asarray(beam_angles)
        lo, hi = float(beam_angles.min()), float(beam_angles.max())

        request = num_beams
        best = np.array([], dtype=np.int64)
        for _ in range(8):
            targets = self.perimeter_angles(request)
            targets = targets[(targets >= lo) & (targets <= hi)]
            if targets.size == 0:
                break
            idx = np.searchsorted(beam_angles, targets)
            idx = np.clip(idx, 1, beam_angles.shape[0] - 1)
            left = beam_angles[idx - 1]
            right = beam_angles[idx]
            nearest = np.where(
                np.abs(targets - left) <= np.abs(right - targets), idx - 1, idx
            )
            best = np.unique(nearest.astype(np.int64))
            if best.size >= num_beams:
                break
            request = int(np.ceil(request * 1.5))

        if best.size > num_beams:
            keep = np.linspace(0, best.size - 1, num_beams).round().astype(np.int64)
            best = best[np.unique(keep)]
        return best
