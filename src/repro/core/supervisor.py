"""Localization health monitoring and automatic recovery.

A racing localizer that silently diverges sends the car into a wall at
7 m/s; operators need the failure *detected* and, when possible,
*repaired*.  The supervisor wraps any SynPF-interface localizer with:

* **health scoring** — the fraction of (subsampled) scan points that land
  near mapped obstacles under the current estimate, i.e. the paper's
  scan-alignment metric turned into an online signal;
* **divergence detection** — health below a threshold for N consecutive
  updates (single bad scans — occlusion, dropout bursts — must not
  trigger);
* **recovery** — re-initialise the filter around the last *healthy* pose
  with a widened cloud, escalating through progressively wider spreads and
  finally to a *global* re-initialisation if anchored attempts keep
  failing.

A scan-consistency monitor has an inherent limit worth stating: on a
self-similar track section, a pose that is *wrong but locally consistent*
scores healthy — no online metric without external information can do
better.  What the supervisor guarantees is that the estimate it blesses
explains the LiDAR data; aliased ambiguities resolve as the car drives
through distinctive geometry.

The supervisor is deliberately filter-agnostic: it consumes poses and
scans, never filter internals, so it could wrap the SLAM baseline's output
just as well (it just could not *recover* it — re-initialisation is an
MCL capability, which is rather the point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.maps.occupancy_grid import OccupancyGrid

__all__ = [
    "SupervisorConfig",
    "LocalizationSupervisor",
    "RecoveryAction",
    "DivergenceEpisode",
    "SupervisorTelemetry",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Detection and recovery thresholds.

    ``healthy_score``/``unhealthy_score`` form a hysteresis band so the
    status does not chatter around a single threshold.
    """

    healthy_score: float = 0.70
    unhealthy_score: float = 0.60
    tolerance: float = 0.12          # m: point-to-wall distance counted as hit
    consecutive_bad: int = 8         # updates below threshold before recovery
    max_beams: int = 120             # health-scoring subsample
    recovery_spreads: tuple = (0.5, 1.5, 4.0)  # escalating sigma_xy, m
    recovery_theta_spread: float = 0.4
    min_valid_points: int = 10
    # The sensor's true maximum range, used to discard no-return beams.
    # None falls back to each scan's own maximum — fine for real scans,
    # degenerate for pathological constant ones.
    sensor_max_range: Optional[float] = None

    def validate(self) -> None:
        if not 0 < self.unhealthy_score <= self.healthy_score <= 1:
            raise ValueError("need 0 < unhealthy <= healthy <= 1")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.consecutive_bad < 1:
            raise ValueError("consecutive_bad must be >= 1")
        if not self.recovery_spreads:
            raise ValueError("need at least one recovery spread")


@dataclass
class SupervisorReport:
    """One update's verdict."""

    pose: np.ndarray
    health: float
    healthy: bool
    recovered: bool
    recovery_level: int


@dataclass
class RecoveryAction:
    """One re-initialisation the supervisor performed."""

    update_index: int
    time: Optional[float]
    level: int
    global_reinit: bool

    def to_dict(self) -> Dict:
        return {
            "update_index": self.update_index,
            "time": self.time,
            "level": self.level,
            "global_reinit": self.global_reinit,
        }


@dataclass
class DivergenceEpisode:
    """One contiguous stretch of detected divergence.

    Opens at the first update whose health falls below the *unhealthy*
    threshold while no episode is active; closes at the next update whose
    health clears the *healthy* threshold.  ``end_index is None`` means the
    run finished (or the supervisor was externally re-initialised) with the
    episode still open.
    """

    start_index: int
    start_time: Optional[float]
    end_index: Optional[int] = None
    end_time: Optional[float] = None
    recoveries: int = 0

    @property
    def closed(self) -> bool:
        return self.end_index is not None

    def time_to_recover(self) -> Optional[float]:
        """Seconds from detection to restored health (None while open or
        when updates carried no timestamps)."""
        if self.end_time is None or self.start_time is None:
            return None
        return self.end_time - self.start_time

    def updates_to_recover(self) -> Optional[int]:
        if self.end_index is None:
            return None
        return self.end_index - self.start_index

    def to_dict(self) -> Dict:
        return {
            "start_index": self.start_index,
            "start_time": self.start_time,
            "end_index": self.end_index,
            "end_time": self.end_time,
            "recoveries": self.recoveries,
            "time_to_recover": self.time_to_recover(),
            "updates_to_recover": self.updates_to_recover(),
        }


@dataclass
class SupervisorTelemetry:
    """Structured recovery telemetry for one supervised run.

    Everything here is derived from the update stream alone, so two runs
    with identical inputs produce identical telemetry — the scenario
    campaign's determinism contract relies on that.
    """

    num_updates: int = 0
    num_recoveries: int = 0
    recoveries: List[RecoveryAction] = field(default_factory=list)
    episodes: List[DivergenceEpisode] = field(default_factory=list)

    @property
    def num_episodes(self) -> int:
        return len(self.episodes)

    def closed_episodes(self) -> List[DivergenceEpisode]:
        return [e for e in self.episodes if e.closed]

    def recovery_times(self) -> List[float]:
        """time-to-recover of every closed, timestamped episode."""
        return [
            t for e in self.episodes
            if (t := e.time_to_recover()) is not None
        ]

    def to_dict(self) -> Dict:
        return {
            "num_updates": self.num_updates,
            "num_recoveries": self.num_recoveries,
            "num_episodes": self.num_episodes,
            "recoveries": [r.to_dict() for r in self.recoveries],
            "episodes": [e.to_dict() for e in self.episodes],
        }


class LocalizationSupervisor:
    """Wraps a localizer's update loop with health checks and recovery.

    Parameters
    ----------
    localizer:
        Either a :class:`~repro.core.interfaces.Localizer` protocol
        object (``update(delta, scan)``, marked by ``consumes_scan``) or
        a legacy engine with ``update(delta, ranges, angles)`` returning
        an estimate with ``.pose`` —
        :class:`~repro.core.particle_filter.SynPF` natively.  Both need
        ``initialize(pose, std_xy=..., std_theta=...)``.
    grid:
        The map used for health scoring.
    registry:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry`; when
        given, the supervisor streams ``supervisor.updates`` /
        ``supervisor.recoveries`` / ``supervisor.episodes`` counters and
        a ``supervisor.health`` histogram into it.  All deterministic
        functions of the update stream, so they are safe to merge across
        sweep workers.
    """

    #: Fixed bucket edges for the health-score histogram (scores live in
    #: [0, 1]); part of the mergeable-telemetry contract.
    HEALTH_EDGES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

    def __init__(
        self,
        localizer,
        grid: OccupancyGrid,
        config: SupervisorConfig | None = None,
        registry=None,
    ) -> None:
        self.config = config or SupervisorConfig()
        self.config.validate()
        self.localizer = localizer
        self.grid = grid
        self.registry = registry
        self._bad_streak = 0
        self._recovery_level = 0
        self._last_healthy_pose: Optional[np.ndarray] = None
        self.num_recoveries = 0
        self.health_history: List[float] = []
        self.telemetry = SupervisorTelemetry()
        self._episode: Optional[DivergenceEpisode] = None

    # ------------------------------------------------------------------
    def health_score(self, pose: np.ndarray, scan_ranges: np.ndarray,
                     beam_angles: np.ndarray,
                     lidar_offset_x: float = 0.27) -> float:
        """Scan-alignment health of ``pose`` in [0, 1]."""
        cfg = self.config
        ranges = np.asarray(scan_ranges, dtype=float)
        angles = np.asarray(beam_angles, dtype=float)
        if ranges.size > cfg.max_beams:
            idx = np.linspace(0, ranges.size - 1, cfg.max_beams).astype(int)
            ranges, angles = ranges[idx], angles[idx]
        if cfg.sensor_max_range is not None:
            max_range = cfg.sensor_max_range
        else:
            max_range = float(ranges.max()) if ranges.size else 0.0
        keep = (ranges > 0.05) & (ranges < max_range - 1e-6)
        if keep.sum() < cfg.min_valid_points:
            return 1.0  # blind scan: no evidence either way
        r, a = ranges[keep], angles[keep]

        sensor_x = pose[0] + lidar_offset_x * np.cos(pose[2])
        sensor_y = pose[1] + lidar_offset_x * np.sin(pose[2])
        world = np.empty((r.size, 2))
        world[:, 0] = sensor_x + r * np.cos(pose[2] + a)
        world[:, 1] = sensor_y + r * np.sin(pose[2] + a)
        distances = self.grid.distance_at_world(world)
        inside = self.grid.in_bounds(world)
        return float(np.mean((distances <= cfg.tolerance) & inside))

    # ------------------------------------------------------------------
    def initialize(self, pose: np.ndarray) -> None:
        self.localizer.initialize(pose)
        self._last_healthy_pose = np.asarray(pose, dtype=float).copy()
        self._bad_streak = 0
        self._recovery_level = 0
        # External re-initialisation (e.g. a crash re-rail) abandons any
        # open divergence episode: it ends without the supervisor having
        # restored health itself, so it stays recorded as unclosed.
        self._episode = None

    def _reinitialize(self, anchor: np.ndarray, std_xy: float,
                      std_theta: float) -> None:
        """Re-seed the wrapped localizer around ``anchor``.

        Localizers without spread parameters (scan matchers re-anchored at
        a point pose) accept the plain-pose form.
        """
        try:
            self.localizer.initialize(anchor, std_xy=std_xy,
                                      std_theta=std_theta)
        except TypeError:
            self.localizer.initialize(anchor)

    def update(self, delta, scan_or_ranges, beam_angles=None,
               timestamp: Optional[float] = None) -> SupervisorReport:
        """Run one supervised localizer update.

        Accepts both call forms: the protocol form ``update(delta, scan)``
        where ``scan`` carries ``ranges``/``angles``
        (:class:`~repro.sim.lidar.LidarScan`), and the legacy form
        ``update(delta, ranges, angles)``.
        """
        if beam_angles is None and hasattr(scan_or_ranges, "ranges"):
            scan = scan_or_ranges
            scan_ranges = scan.ranges
            beam_angles = scan.angles
            if getattr(self.localizer, "consumes_scan", False):
                estimate = self.localizer.update(delta, scan)
            else:
                estimate = self.localizer.update(delta, scan_ranges,
                                                 beam_angles)
        else:
            scan_ranges = scan_or_ranges
            estimate = self.localizer.update(delta, scan_ranges, beam_angles)
        pose = estimate.pose if hasattr(estimate, "pose") else np.asarray(estimate)
        health = self.health_score(pose, scan_ranges, beam_angles)
        self.health_history.append(health)
        cfg = self.config
        index = self.telemetry.num_updates
        self.telemetry.num_updates += 1
        if self.registry is not None:
            self.registry.counter("supervisor.updates").inc()
            self.registry.histogram(
                "supervisor.health", self.HEALTH_EDGES
            ).observe(health)

        healthy = health >= cfg.healthy_score
        if healthy:
            self._last_healthy_pose = pose.copy()
            self._bad_streak = 0
            self._recovery_level = 0
            if self._episode is not None:
                self._episode.end_index = index
                self._episode.end_time = timestamp
                self._episode = None
            return SupervisorReport(pose, health, True, False, 0)

        if health < cfg.unhealthy_score:
            self._bad_streak += 1
            if self._episode is None:
                self._episode = DivergenceEpisode(
                    start_index=index, start_time=timestamp
                )
                self.telemetry.episodes.append(self._episode)
                if self.registry is not None:
                    self.registry.counter("supervisor.episodes").inc()
        recovered = False
        if self._bad_streak >= cfg.consecutive_bad:
            global_reinit = False
            if (self._recovery_level >= len(cfg.recovery_spreads)
                    and hasattr(self.localizer, "initialize_global")):
                # Local recoveries exhausted: the car is not where any
                # anchored cloud can reach — fall back to global MCL.
                self.localizer.initialize_global()
                global_reinit = True
            else:
                level = min(self._recovery_level,
                            len(cfg.recovery_spreads) - 1)
                anchor = (self._last_healthy_pose if self._last_healthy_pose
                          is not None else pose)
                self._reinitialize(
                    anchor,
                    std_xy=cfg.recovery_spreads[level],
                    std_theta=cfg.recovery_theta_spread,
                )
            self.num_recoveries += 1
            self.telemetry.num_recoveries += 1
            if self.registry is not None:
                self.registry.counter("supervisor.recoveries").inc()
            self.telemetry.recoveries.append(
                RecoveryAction(index, timestamp, self._recovery_level,
                               global_reinit)
            )
            if self._episode is not None:
                self._episode.recoveries += 1
            self._recovery_level += 1
            self._bad_streak = 0
            recovered = True
        return SupervisorReport(pose, health, False, recovered,
                                self._recovery_level)
