"""KLD-sampling: adapt the particle count to the cloud's complexity.

Fox's KLD-sampling (NIPS 2001) bounds the Kullback-Leibler divergence
between the particle approximation and the true posterior: the number of
particles needed is a function of ``k``, the number of histogram bins the
cloud currently occupies.  A converged racing filter occupies a handful of
bins and needs only hundreds of particles — directly cutting the update
latency the paper cares about — while a delocalized cloud spreads over
many bins and automatically gets its budget back.

``kld_sample_size`` implements the bound

``n = (k-1)/(2 eps) * (1 - 2/(9(k-1)) + sqrt(2/(9(k-1))) z)^3``

with ``z`` the upper ``1 - delta`` quantile of the standard normal.
``occupied_bins`` counts the (x, y, theta) histogram bins a weighted cloud
occupies.  :class:`~repro.core.particle_filter.SynPF` applies both at
resample time when ``adaptive=True``.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["kld_sample_size", "occupied_bins"]


def kld_sample_size(
    k: int,
    epsilon: float = 0.05,
    delta: float = 0.01,
    n_min: int = 300,
    n_max: int = 10_000,
) -> int:
    """Particles needed so the KLD to the true posterior is <= ``epsilon``
    with probability ``1 - delta``, given ``k`` occupied bins.

    Clamped to ``[n_min, n_max]``; ``k <= 1`` returns ``n_min`` (the bound
    degenerates — a single bin needs no diversity).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if n_min < 1 or n_max < n_min:
        raise ValueError("need 1 <= n_min <= n_max")
    if k <= 1:
        return n_min
    z = float(stats.norm.ppf(1.0 - delta))
    dof = k - 1
    a = 2.0 / (9.0 * dof)
    n = dof / (2.0 * epsilon) * (1.0 - a + np.sqrt(a) * z) ** 3
    return int(np.clip(np.ceil(n), n_min, n_max))


def occupied_bins(
    particles: np.ndarray,
    weights: np.ndarray | None = None,
    xy_bin: float = 0.25,
    theta_bin: float = 0.175,
    weight_floor: float = 1e-6,
) -> int:
    """Number of distinct ``(x, y, theta)`` histogram bins the cloud fills.

    Particles with weight below ``weight_floor`` (relative to uniform) are
    ignored so a freshly resampled cloud and a weighted one measure alike.
    Bin sizes follow the KLD-MCL literature: coarse enough that a tracking
    cloud sits in a few bins, fine enough that delocalization registers.
    """
    particles = np.atleast_2d(np.asarray(particles, dtype=float))
    n = particles.shape[0]
    if n == 0:
        return 0
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        keep = weights > weight_floor / n
        particles = particles[keep]
        if particles.shape[0] == 0:
            return 0
    ix = np.floor(particles[:, 0] / xy_bin).astype(np.int64)
    iy = np.floor(particles[:, 1] / xy_bin).astype(np.int64)
    it = np.floor((particles[:, 2] + np.pi) / theta_bin).astype(np.int64)
    # Hash the triple into one integer per particle; collisions are
    # negligible at these magnitudes.
    key = (ix * 73856093) ^ (iy * 19349663) ^ (it * 83492791)
    return int(np.unique(key).size)
