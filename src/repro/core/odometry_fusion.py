"""Wheel-odometry / IMU fusion (planar EKF).

The paper lists both wheel odometry and IMUs among the proprioceptive
inputs of a racing localization stack (§I); on real F1TENTH cars the two
are fused by an EKF (the ROS ``robot_localization`` node) before reaching
the localizer.  The fusion matters for exactly the failure mode the paper
studies: wheel slip corrupts the *wheel* yaw-rate estimate
(``v tan(steer)/L`` with a slipping ``v``), while a gyro measures yaw rate
directly and does not care about grip.  Fused odometry therefore keeps its
heading under slip even when its translation degrades.

State: ``(x, y, theta, v)`` in the odom frame.
Predict: unicycle kinematics driven by the wheel-speed measurement.
Update: IMU yaw rate (bias-compensated outside) corrects heading rate.

The filter exposes the same :class:`~repro.core.motion_models.OdometryDelta`
stream interface as raw :class:`~repro.sim.odometry.WheelOdometry`, so the
localizers consume either interchangeably — the fusion ablation
(``benchmarks/bench_ablation_fusion.py``) swaps one for the other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.motion_models import OdometryDelta
from repro.utils.angles import wrap_to_pi

__all__ = ["FusionConfig", "OdometryImuEkf"]


@dataclass(frozen=True)
class FusionConfig:
    """Noise model of the planar fusion EKF.

    Process noise reflects how far the unicycle model can be trusted per
    second; measurement noises should match the sensors feeding the filter
    (defaults match the simulator's odometry/IMU configs).
    """

    process_pos: float = 0.02       # m / sqrt(s)
    process_heading: float = 0.05   # rad / sqrt(s)
    process_speed: float = 0.8      # m/s / sqrt(s) — slip changes v fast
    meas_wheel_speed: float = 0.05  # m/s, encoder noise...
    wheel_speed_slip_frac: float = 0.25  # ...plus slip-proportional distrust
    meas_imu_yaw_rate: float = 0.02  # rad/s gyro noise
    meas_wheel_yaw_rate: float = 0.15  # rad/s — Ackermann estimate, slip-prone

    def validate(self) -> None:
        values = [
            self.process_pos, self.process_heading, self.process_speed,
            self.meas_wheel_speed, self.meas_imu_yaw_rate,
            self.meas_wheel_yaw_rate,
        ]
        if min(values) <= 0:
            raise ValueError("all noise parameters must be positive")
        if self.wheel_speed_slip_frac < 0:
            raise ValueError("wheel_speed_slip_frac must be non-negative")


class OdometryImuEkf:
    """Planar EKF over ``(x, y, theta, v)`` fusing wheel speed + gyro.

    Usage per physics step::

        delta = ekf.step(wheel_speed, wheel_yaw_rate, imu_yaw_rate, dt)

    ``wheel_yaw_rate`` is the Ackermann-derived rate the wheel-odometry
    pipeline would integrate; ``imu_yaw_rate`` the gyro reading.  The
    returned delta covers this step in the *fused* odom frame.
    """

    def __init__(self, config: FusionConfig | None = None) -> None:
        self.config = config or FusionConfig()
        self.config.validate()
        self.state = np.zeros(4)  # x, y, theta, v
        self.cov = np.diag([1e-6, 1e-6, 1e-6, 0.1])

    def reset(self, pose: np.ndarray | None = None, speed: float = 0.0) -> None:
        self.state = np.zeros(4)
        if pose is not None:
            self.state[:3] = np.asarray(pose, dtype=float)
        self.state[3] = float(speed)
        self.cov = np.diag([1e-6, 1e-6, 1e-6, 0.1])

    @property
    def pose(self) -> np.ndarray:
        return self.state[:3].copy()

    @property
    def speed(self) -> float:
        return float(self.state[3])

    # ------------------------------------------------------------------
    def _predict(self, yaw_rate: float, dt: float) -> None:
        x, y, theta, v = self.state
        c, s = np.cos(theta), np.sin(theta)
        self.state = np.array(
            [
                x + v * c * dt,
                y + v * s * dt,
                wrap_to_pi(theta + yaw_rate * dt),
                v,
            ]
        )
        jac = np.array(
            [
                [1.0, 0.0, -v * s * dt, c * dt],
                [0.0, 1.0, v * c * dt, s * dt],
                [0.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        cfg = self.config
        q = np.diag(
            [
                cfg.process_pos**2 * dt,
                cfg.process_pos**2 * dt,
                cfg.process_heading**2 * dt,
                cfg.process_speed**2 * dt,
            ]
        )
        self.cov = jac @ self.cov @ jac.T + q

    def _update_scalar(self, h_row: np.ndarray, measured: float,
                       predicted: float, noise_var: float) -> None:
        innovation = measured - predicted
        s = float(h_row @ self.cov @ h_row) + noise_var
        gain = (self.cov @ h_row) / s
        self.state = self.state + gain * innovation
        self.state[2] = wrap_to_pi(self.state[2])
        self.cov = (np.eye(4) - np.outer(gain, h_row)) @ self.cov

    # ------------------------------------------------------------------
    def step(
        self,
        wheel_speed: float,
        wheel_yaw_rate: float,
        imu_yaw_rate: float,
        dt: float,
    ) -> OdometryDelta:
        """Fuse one interval's measurements; returns the fused delta."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        cfg = self.config
        prev_pose = self.pose

        # Heading rate: trust the gyro far above the slip-prone Ackermann
        # estimate (inverse-variance blend).
        w_imu = 1.0 / cfg.meas_imu_yaw_rate**2
        w_whl = 1.0 / cfg.meas_wheel_yaw_rate**2
        yaw_rate = (w_imu * imu_yaw_rate + w_whl * wheel_yaw_rate) / (w_imu + w_whl)

        self._predict(yaw_rate, dt)

        # Speed update from the wheel encoder.  Distrust grows when wheel
        # and chassis dynamics disagree — approximated by the innovation
        # itself via a slip-proportional noise floor.
        slip_proxy = abs(wheel_speed - self.state[3])
        noise = (
            cfg.meas_wheel_speed + cfg.wheel_speed_slip_frac * slip_proxy
        ) ** 2
        self._update_scalar(
            np.array([0.0, 0.0, 0.0, 1.0]), wheel_speed, self.state[3], noise
        )

        now_pose = self.pose
        dx_world = now_pose[0] - prev_pose[0]
        dy_world = now_pose[1] - prev_pose[1]
        c, s = np.cos(prev_pose[2]), np.sin(prev_pose[2])
        return OdometryDelta(
            c * dx_world + s * dy_world,
            -s * dx_world + c * dy_world,
            float(wrap_to_pi(now_pose[2] - prev_pose[2])),
            velocity=self.speed,
            dt=dt,
        )
