"""The SynPF particle filter (paper §II) and its vanilla-MCL baseline.

SynPF is a map-based Monte-Carlo localizer assembled from the pieces this
package provides, with the specific combination the paper advocates:

* **TUM motion model** — speed-aware Ackermann propagation
  (:class:`~repro.core.motion_models.TumMotionModel`), keeping particles
  physically feasible at racing speed;
* **boxed scanline layout** — corridor-aware beam selection
  (:class:`~repro.core.scan_layout.BoxedScanLayout`);
* **discretised beam sensor model** scored against ranges from a
  **precomputed lookup table** (:class:`~repro.raycast.lut.LookupTable`) —
  the GPU-free configuration the paper benchmarks on the Intel NUC.

Every piece is swappable through :class:`ParticleFilterConfig`, which is
how the ablation benchmarks isolate each design choice;
:func:`make_vanilla_mcl` is the conventional diff-drive + uniform-layout
MCL used as the ablation reference point.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np

from repro.core.motion_models import (
    DiffDriveMotionModel,
    MotionModel,
    OdometryDelta,
    TumMotionModel,
)
from repro.core.pose_estimation import ParticleSpread, estimate_pose, particle_spread
from repro.core.resampling import effective_sample_size, resample_indices
from repro.core.scan_layout import BoxedScanLayout, ScanLayout, UniformScanLayout
from repro.core.sensor_models import BeamSensorModel, SensorModelConfig
from repro.maps.occupancy_grid import OccupancyGrid
from repro.raycast.factory import make_range_method, parse_range_spec
from repro.telemetry.spans import SpanTracer
from repro.utils.angles import wrap_to_pi
from repro.utils.profiling import TimingStats
from repro.utils.rng import make_rng

__all__ = [
    "ParticleFilterConfig",
    "FilterEstimate",
    "PendingUpdate",
    "SynPF",
    "make_synpf",
    "make_vanilla_mcl",
]

# Methods whose queries are per-ray traversals: dedup's one-cast-per-bin
# saves real work there.  lut/glt answer in constant time from a table
# (with a specialized pose-batch fast path dedup would bypass), so
# raycast_dedup="auto" leaves them alone.
_DEDUP_AUTO_METHODS = frozenset(
    {"bresenham", "bl", "ray_marching", "rm", "cddt", "pcddt"}
)


@dataclass(frozen=True)
class ParticleFilterConfig:
    """Everything configurable about the filter.

    Defaults are the SynPF configuration from the paper's experiments:
    TUM motion model, boxed layout, LUT ray casting, systematic
    resampling.
    """

    num_particles: int = 3000
    num_beams: int = 60
    motion_model: str = "tum"  # "tum" | "diff_drive"
    motion_params: Dict = field(default_factory=dict)  # forwarded to the model
    layout: str = "boxed"  # "boxed" | "uniform"
    boxed_aspect_ratio: float = 3.0
    boxed_width: float = 2.0
    range_method: str = "lut"  # any spec known to repro.raycast.factory
    lut_theta_bins: int = 120
    # Acceleration layer (repro.accel).  "auto" picks the numba JIT
    # kernels when numba is importable and falls back to the NumPy
    # reference otherwise — on-with-fallback, never a hard requirement.
    accel_backend: str = "auto"  # "auto" | "numpy" | "numba"
    # Pose-quantized raycast query dedup.  "auto" enables it for the
    # per-ray traversal methods (bresenham/ray_marching/cddt), where one
    # cast per unique (cell, angle-bin) saves real work, and disables it
    # for lut/glt, whose constant-time table gather is already cheaper
    # than the dedup bookkeeping (and has its own pose-batch fast path).
    raycast_dedup: object = "auto"  # True | False | "auto"
    dedup_xy_bin_cells: float = 1.0
    dedup_theta_bins: int = 2048
    resample_scheme: str = "systematic"
    resample_ess_fraction: float = 0.5
    lidar_offset_x: float = 0.27  # sensor mount ahead of the base frame
    # KLD-sampling (Fox 2001): adapt the particle count at resample time to
    # the cloud's occupied-bin count.  num_particles becomes the initial /
    # maximum budget; kld_n_min the converged-tracking floor.
    adaptive: bool = False
    kld_epsilon: float = 0.05
    kld_delta: float = 0.01
    kld_n_min: int = 300
    # Augmented MCL (Thrun et al. ch. 8.3.3): track short/long-term
    # likelihood averages and inject random free-space particles in
    # proportion to max(0, 1 - w_fast / w_slow) — automatic kidnapped-robot
    # recovery.  Requires 0 < alpha_slow < alpha_fast.
    augmented: bool = False
    augment_alpha_slow: float = 0.03
    augment_alpha_fast: float = 0.3
    sensor: SensorModelConfig = field(default_factory=SensorModelConfig)
    init_std_xy: float = 0.25
    init_std_theta: float = 0.1
    seed: Optional[int] = None

    def validate(self) -> None:
        if self.num_particles < 1:
            raise ValueError("num_particles must be >= 1")
        if self.num_beams < 1:
            raise ValueError("num_beams must be >= 1")
        if self.motion_model not in ("tum", "diff_drive"):
            raise ValueError(f"unknown motion model {self.motion_model!r}")
        if self.layout not in ("boxed", "uniform"):
            raise ValueError(f"unknown layout {self.layout!r}")
        if not 0.0 < self.resample_ess_fraction <= 1.0:
            raise ValueError("resample_ess_fraction must be in (0, 1]")
        if self.adaptive:
            if self.kld_epsilon <= 0 or not 0 < self.kld_delta < 1:
                raise ValueError("invalid KLD parameters")
            if not 1 <= self.kld_n_min <= self.num_particles:
                raise ValueError("need 1 <= kld_n_min <= num_particles")
        if self.augmented:
            if not 0 < self.augment_alpha_slow < self.augment_alpha_fast <= 1:
                raise ValueError(
                    "need 0 < augment_alpha_slow < augment_alpha_fast <= 1"
                )
        if self.accel_backend not in ("auto", "numpy", "numba"):
            raise ValueError(f"unknown accel backend {self.accel_backend!r}")
        if self.raycast_dedup not in (True, False, "auto"):
            raise ValueError("raycast_dedup must be True, False or 'auto'")
        if self.dedup_xy_bin_cells <= 0:
            raise ValueError("dedup_xy_bin_cells must be positive")
        if self.dedup_theta_bins < 1:
            raise ValueError("dedup_theta_bins must be >= 1")
        self.sensor.validate()


@dataclass(frozen=True)
class FilterEstimate:
    """One filter update's output."""

    pose: np.ndarray
    spread: ParticleSpread
    ess: float
    resampled: bool


@dataclass(frozen=True)
class PendingUpdate:
    """The raycast workload of one in-flight update.

    Produced by :meth:`SynPF.prepare_update` after the motion stage;
    consumed by :meth:`SynPF.complete_update` once the expected ranges
    are available.  The split lets a fleet batcher
    (:mod:`repro.serve.batcher`) fold the raycast stage of many sessions
    sharing a map into one call while every other stage stays
    per-session.
    """

    sensor_poses: np.ndarray  # (P, 3) sensor-frame particle poses
    angles: np.ndarray  # (B,) selected beam angles (sensor-relative)
    measured: np.ndarray  # (B,) sanitised measured ranges


class SynPF:
    """Map-based Monte-Carlo localizer.

    Parameters
    ----------
    grid:
        The (pre-existing) map to localize in — MCL does not map.
    config:
        See :class:`ParticleFilterConfig`.
    motion_model:
        Optional explicit :class:`~repro.core.motion_models.MotionModel`
        instance, overriding ``config.motion_model``.
    registry:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry`; when
        given, per-stage span latencies stream into it as
        ``span.update/...`` histograms.  ``None`` keeps the filter in the
        telemetry-off configuration (TimingStats only).
    timing:
        Optional externally-owned :class:`TimingStats` (e.g. a bounded
        one from :func:`repro.core.interfaces.make_localizer`).
    artifact_cache:
        Optional :class:`~repro.serve.artifacts.MapArtifactCache`.  When
        given, the (expensive, read-only) base range method — LUT table,
        CDDT bins, distance field — is fetched from the cache instead of
        rebuilt, so many filters on the same map share one build.  The
        dedup wrapper (which carries per-filter counters) stays private.

    Usage
    -----
    >>> pf = make_synpf(grid)                      # doctest: +SKIP
    >>> pf.initialize(start_pose)                  # doctest: +SKIP
    >>> est = pf.update(odom_delta, ranges, angles)  # doctest: +SKIP
    """

    def __init__(
        self,
        grid: OccupancyGrid,
        config: ParticleFilterConfig | None = None,
        motion_model: MotionModel | None = None,
        registry=None,
        timing: TimingStats | None = None,
        artifact_cache=None,
    ) -> None:
        self.config = config or ParticleFilterConfig()
        self.config.validate()
        self.grid = grid
        self.rng = make_rng(self.config.seed)
        # A shared (artifact-cache) base range method is read-only by
        # contract: the runtime-reconfiguration seam must not mutate it.
        self._owns_base_method = artifact_cache is None

        if motion_model is not None:
            self.motion_model = motion_model
        elif self.config.motion_model == "tum":
            self.motion_model = TumMotionModel(**self.config.motion_params)
        else:
            self.motion_model = DiffDriveMotionModel(**self.config.motion_params)

        if self.config.layout == "boxed":
            self.layout: ScanLayout = BoxedScanLayout(
                aspect_ratio=self.config.boxed_aspect_ratio,
                box_width=self.config.boxed_width,
            )
        else:
            self.layout = UniformScanLayout()

        self.sensor_model = BeamSensorModel(
            self.config.sensor, backend=self.config.accel_backend
        )
        base_method, spec_backend, spec_dedup = parse_range_spec(
            self.config.range_method
        )
        range_kwargs = {}
        if base_method in ("lut", "glt"):
            range_kwargs["num_theta_bins"] = self.config.lut_theta_bins
        if spec_backend is None and base_method in (
            "bresenham", "bl", "ray_marching", "rm",
        ):
            range_kwargs["backend"] = self.config.accel_backend
        dedup: Optional[bool]
        if self.config.raycast_dedup == "auto":
            # A "+dedup" spec suffix wins; otherwise on for per-ray
            # traversal methods, off for the table-driven ones.
            dedup = (
                None if spec_dedup else (base_method in _DEDUP_AUTO_METHODS) or None
            )
        else:
            dedup = bool(self.config.raycast_dedup)
        self.range_method = make_range_method(
            self.config.range_method,
            grid,
            max_range=self.config.sensor.max_range,
            dedup=dedup,
            dedup_xy_bin_cells=self.config.dedup_xy_bin_cells,
            dedup_theta_bins=self.config.dedup_theta_bins,
            registry=registry,
            artifact_cache=artifact_cache,
            **range_kwargs,
        )
        self._registry = registry
        if registry is not None:
            # One-shot kernel-selection record: which backend actually won
            # the auto-resolution on this host, per hot-path component.
            raycast_backend = getattr(self.range_method, "backend", None) or getattr(
                getattr(self.range_method, "inner", None), "backend", "numpy"
            )
            registry.counter(f"accel.raycast.{raycast_backend}").inc()
            registry.counter(f"accel.sensor.{self.sensor_model.backend}").inc()

        self.particles = np.zeros((self.config.num_particles, 3))
        self.weights = np.full(self.config.num_particles, 1.0 / self.config.num_particles)
        self.timing = timing if timing is not None else TimingStats()
        self.tracer = SpanTracer(timing=self.timing, registry=registry)
        self.num_updates = 0
        self._initialized = False
        self._layout_cache: dict = {}
        # Augmented-MCL state: short/long-term geometric-mean beam
        # likelihood averages (Thrun ch. 8.3.3).  The explicit init flag
        # (rather than `_w_slow == 0.0` sentinel testing) keeps the
        # recovery armed even when the very first w_avg underflows to
        # exactly 0.0 — a zero average is *data* (total likelihood
        # collapse), not "not yet seeded".
        self._w_slow = 0.0
        self._w_fast = 0.0
        self._w_initialized = False
        self._last_inject_frac = 0.0
        self._free_cells_cache = None

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def initialize(self, pose: np.ndarray, std_xy: float | None = None,
                   std_theta: float | None = None) -> None:
        """Gaussian particle cloud around a known start pose."""
        pose = np.asarray(pose, dtype=float)
        n = self.config.num_particles
        std_xy = self.config.init_std_xy if std_xy is None else std_xy
        std_theta = self.config.init_std_theta if std_theta is None else std_theta
        self.particles = np.empty((n, 3))
        self.particles[:, 0] = pose[0] + self.rng.normal(0.0, std_xy, n)
        self.particles[:, 1] = pose[1] + self.rng.normal(0.0, std_xy, n)
        self.particles[:, 2] = wrap_to_pi(pose[2] + self.rng.normal(0.0, std_theta, n))
        self.weights = np.full(n, 1.0 / n)
        self._initialized = True

    def _sample_free_space(self, n: int) -> np.ndarray:
        """``(n, 3)`` uniform poses over the map's free cells."""
        if self._free_cells_cache is None:
            rows, cols = np.nonzero(self.grid.free_mask())
            if rows.size == 0:
                raise ValueError("map has no free cells to initialise in")
            self._free_cells_cache = (rows, cols)
        rows, cols = self._free_cells_cache
        pick = self.rng.integers(0, rows.size, size=n)
        centers = self.grid.grid_to_world(
            np.stack([cols[pick], rows[pick]], axis=-1).astype(float)
        )
        jitter = self.rng.uniform(
            -self.grid.resolution / 2.0, self.grid.resolution / 2.0, size=(n, 2)
        )
        out = np.empty((n, 3))
        out[:, :2] = centers + jitter
        out[:, 2] = self.rng.uniform(-np.pi, np.pi, size=n)
        return out

    def initialize_global(self) -> None:
        """Uniform particle cloud over the map's free space (kidnapped robot)."""
        n = self.config.num_particles
        self.particles = self._sample_free_space(n)
        self.weights = np.full(n, 1.0 / n)
        self._initialized = True

    # ------------------------------------------------------------------
    # Runtime reconfiguration (the compute-governor actuation seam)
    # ------------------------------------------------------------------
    def _resize_particles(self, target_n: int) -> None:
        """Weighted resample of the cloud to ``target_n`` particles.

        The same machinery KLD adaptation uses at resample time, applied
        mid-run: draw ``target_n`` indices in proportion to the current
        weights, then reset to uniform.  The result is a valid particle
        approximation of the same posterior at the new budget — weights
        stay normalized and the count lands exactly on target, which is
        what :class:`~repro.verify.invariants.InvariantChecker` audits
        across knob changes.
        """
        current = int(self.particles.shape[0])
        if target_n == current:
            return
        idx = resample_indices(
            self.weights, self.rng, self.config.resample_scheme,
            size=target_n,
        )
        self.particles = self.particles[idx]
        self.weights = np.full(target_n, 1.0 / target_n)

    def reconfigure(
        self,
        num_particles: Optional[int] = None,
        num_beams: Optional[int] = None,
        dedup_xy_bin_cells: Optional[float] = None,
        accel_backend: Optional[str] = None,
        **ignored,
    ) -> Dict:
        """Apply runtime knob changes; returns ``{knob: new_value}`` applied.

        The public actuation seam for :mod:`repro.govern`: every knob that
        trades accuracy for per-update latency and was previously frozen
        at construction becomes adjustable between updates.

        * ``num_particles`` — the particle budget.  A fixed-size filter is
          resized immediately (weighted resample, see
          :meth:`_resize_particles`); an adaptive (KLD) filter has its
          band ceiling moved and is shrunk only if it currently exceeds
          the new ceiling (``kld_n_min`` is clamped to stay <= the
          budget).
        * ``num_beams`` — scan-layout subsampling target; the layout
          selection cache is invalidated so the next update re-selects.
        * ``dedup_xy_bin_cells`` — raycast dedup bin coarseness (no-op
          with the dedup wrapper off).  Coarser bins mean fewer casts and
          a wider substitution envelope.
        * ``accel_backend`` — compute-kernel choice.  Always switches the
          sensor-model backend; switches the base range method's backend
          only when this filter privately owns it (a shared artifact-cache
          method is read-only, and other sessions may be mid-query).

        Unknown keyword arguments are ignored so a
        :class:`~repro.govern.knobs.KnobSet` can carry knobs some filter
        variants lack.  Changes are validated as a whole; a knob equal to
        its current value is not reported.
        """
        applied: Dict = {}
        if num_particles is not None:
            target = int(num_particles)
            if target != self.config.num_particles:
                self.config = replace(
                    self.config,
                    num_particles=target,
                    kld_n_min=min(self.config.kld_n_min, target),
                )
                if self._initialized:
                    if self.config.adaptive:
                        if self.particles.shape[0] > target:
                            self._resize_particles(target)
                    else:
                        self._resize_particles(target)
                applied["num_particles"] = target
        if num_beams is not None:
            target = int(num_beams)
            if target != self.config.num_beams:
                self.config = replace(self.config, num_beams=target)
                self._layout_cache.clear()
                applied["num_beams"] = target
        if dedup_xy_bin_cells is not None:
            from repro.accel.dedup import DedupRangeMethod

            coarseness = float(dedup_xy_bin_cells)
            if coarseness <= 0:
                raise ValueError("dedup_xy_bin_cells must be positive")
            method = self.range_method
            if (
                isinstance(method, DedupRangeMethod)
                and coarseness != method.xy_bin_cells
            ):
                method.xy_bin_cells = coarseness
                method._bin_size = self.grid.resolution * coarseness
                self.config = replace(
                    self.config, dedup_xy_bin_cells=coarseness
                )
                applied["dedup_xy_bin_cells"] = coarseness
        if accel_backend is not None:
            from repro.accel.backends import resolve_backend

            resolved = resolve_backend(accel_backend, warn=False)
            changed = False
            if self.sensor_model.backend != resolved:
                self.sensor_model.backend = resolved
                changed = True
            base = getattr(self.range_method, "inner", None) or self.range_method
            if (
                self._owns_base_method
                and getattr(base, "backend", None) not in (None, resolved)
            ):
                base.backend = resolved
                changed = True
            if changed:
                self.config = replace(self.config, accel_backend=resolved)
                applied["accel_backend"] = resolved
        if applied:
            self.config.validate()
        return applied

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def select_beams(self, beam_angles: np.ndarray) -> np.ndarray:
        """Layout-selected beam indices for a given full-scan geometry.

        Cached: a LiDAR's beam-angle table never changes at runtime.  The
        key covers the *full* angle-table content — a ``(count, first,
        last)`` endpoint key collides for distinct non-uniform tables
        sharing endpoints, silently reusing the wrong selection.
        """
        beam_angles = np.asarray(beam_angles, dtype=float)
        if beam_angles.size == 0:
            raise ValueError("beam_angles must be non-empty")
        key = (beam_angles.shape[0], hash(beam_angles.tobytes()))
        if key not in self._layout_cache:
            self._layout_cache[key] = self.layout.select(
                beam_angles, self.config.num_beams
            )
        return self._layout_cache[key]

    def update(
        self,
        delta: OdometryDelta,
        scan_ranges: np.ndarray,
        beam_angles: np.ndarray,
    ) -> FilterEstimate:
        """One predict-weight-resample cycle.

        Parameters
        ----------
        delta:
            Odometry-measured motion since the previous update.
        scan_ranges, beam_angles:
            The *full* LiDAR scan and its beam-angle table; the filter
            applies its own scanline layout internally.
        """
        if not self._initialized:
            raise RuntimeError("call initialize() or initialize_global() first")
        scan_ranges = np.asarray(scan_ranges, dtype=float)
        beam_angles = np.asarray(beam_angles, dtype=float)
        if scan_ranges.shape != beam_angles.shape:
            raise ValueError("scan_ranges and beam_angles must have the same shape")
        # The outer span makes "update" the end-to-end wall time of the
        # cycle (pose estimation included), with the stage spans nested
        # under it as span.update/motion, span.update/raycast, ...
        with self.tracer.span("update"):
            return self._update(delta, scan_ranges, beam_angles)

    def _update(
        self,
        delta: OdometryDelta,
        scan_ranges: np.ndarray,
        beam_angles: np.ndarray,
    ) -> FilterEstimate:
        pending = self.prepare_update(delta, scan_ranges, beam_angles)
        with self.tracer.span("raycast"):
            expected = self.range_method.calc_ranges_pose_batch(
                pending.sensor_poses, pending.angles
            )
        return self.complete_update(pending, expected)

    def prepare_update(
        self,
        delta: OdometryDelta,
        scan_ranges: np.ndarray,
        beam_angles: np.ndarray,
    ) -> PendingUpdate:
        """Motion stage + raycast workload extraction (batching seam).

        Runs the motion model, then returns the exact raycast queries the
        sensor stage needs.  ``_update`` feeds them straight to this
        filter's own range method; the fleet batcher instead folds many
        filters' pending queries into one shared call before handing each
        result back to :meth:`complete_update`.
        """
        scan_ranges = np.asarray(scan_ranges, dtype=float)
        beam_angles = np.asarray(beam_angles, dtype=float)
        if scan_ranges.shape != beam_angles.shape:
            raise ValueError("scan_ranges and beam_angles must have the same shape")
        if not self._initialized:
            raise RuntimeError("call initialize() or initialize_global() first")
        with self.tracer.span("motion"):
            self.particles = self.motion_model.propagate(
                self.particles, delta, self.rng
            )

        sel = self.select_beams(beam_angles)
        measured = scan_ranges[sel]
        # Non-finite returns (driver faults, blackout frames encoded as
        # NaN/inf) map to max_range — the documented "no return" value of
        # RangeMethod.calc_ranges — *before* clipping: np.clip passes NaN
        # through, and a single NaN beam poisons log_likelihood and every
        # particle weight downstream.
        measured = np.where(
            np.isfinite(measured), measured, self.config.sensor.max_range
        )
        measured = np.clip(measured, 0.0, self.config.sensor.max_range)

        # Rays originate at the sensor, which is mounted ahead of the
        # base frame the particles (and the published pose) live in.
        sensor_poses = self.particles.copy()
        off = self.config.lidar_offset_x
        if off != 0.0:
            sensor_poses[:, 0] += off * np.cos(sensor_poses[:, 2])
            sensor_poses[:, 1] += off * np.sin(sensor_poses[:, 2])
        return PendingUpdate(
            sensor_poses=sensor_poses, angles=beam_angles[sel],
            measured=measured,
        )

    def complete_update(
        self, pending: PendingUpdate, expected: np.ndarray
    ) -> FilterEstimate:
        """Sensor, estimation and resample stages of one update.

        ``expected`` is the ``(P, B)`` raycast answer for
        ``pending.sensor_poses`` × ``pending.angles`` (normally from this
        filter's own range method; under the fleet batcher, from a shared
        fold of many sessions' queries).
        """
        measured = pending.measured
        with self.tracer.span("sensor"):
            log_like = self.sensor_model.log_likelihood(expected, measured)
            # Bayes recursion: the posterior multiplies the *prior*
            # weights by the new likelihood.  Resampling is ESS-gated, so
            # on non-resample steps the prior is informative — overwriting
            # it with the bare likelihood (the old behaviour) silently
            # discarded every earlier observation since the last resample.
            # Accumulate in log space, normalize once.
            with np.errstate(divide="ignore"):
                log_post = np.log(self.weights) + log_like
            log_post -= log_post.max()
            w = np.exp(log_post)
            self.weights = w / w.sum()
            if self.config.augmented:
                # Geometric-mean per-beam likelihood of the cloud: a
                # bounded, underflow-free version of Thrun's w_avg.
                squash = self.config.sensor.squash_factor
                per_beam = log_like * squash / max(measured.size, 1)
                w_avg = float(np.exp(per_beam).mean())
                alpha_s = self.config.augment_alpha_slow
                alpha_f = self.config.augment_alpha_fast
                if not self._w_initialized:
                    self._w_slow = self._w_fast = w_avg
                    self._w_initialized = True
                else:
                    self._w_slow += alpha_s * (w_avg - self._w_slow)
                    self._w_fast += alpha_f * (w_avg - self._w_fast)

        pose = estimate_pose(self.particles, self.weights)
        spread = particle_spread(self.particles, self.weights)
        ess = effective_sample_size(self.weights)

        resampled = False
        current_n = self.particles.shape[0]
        threshold = self.config.resample_ess_fraction * current_n
        # Augmented MCL must get its injection chance even when a uniformly
        # *bad* cloud keeps the ESS high (classic AMCL resamples every
        # iteration; ESS gating would starve the recovery mechanism).
        inject_frac = 0.0
        if self.config.augmented and self._w_initialized:
            if self._w_slow > 0.0:
                inject_frac = max(0.0, 1.0 - self._w_fast / self._w_slow)
            elif self._w_fast <= 0.0:
                # Both averages underflowed to exactly 0: every particle's
                # likelihood collapsed, the strongest possible kidnap
                # signal.  The old `_w_slow > 0` guard disabled injection
                # here — precisely when recovery matters most.
                inject_frac = 1.0
        self._last_inject_frac = inject_frac
        if ess < threshold or inject_frac > 0.05:
            with self.tracer.span("resample"):
                # Target the *configured* budget, not the incumbent cloud
                # size: after a runtime `reconfigure`, current_n may lag
                # the budget for one step (adaptive growth is also pulled
                # toward the new ceiling through n_max below).
                target_n = self.config.num_particles
                if self.config.adaptive:
                    from repro.core.kld import kld_sample_size, occupied_bins

                    k = occupied_bins(self.particles, self.weights)
                    target_n = kld_sample_size(
                        k,
                        epsilon=self.config.kld_epsilon,
                        delta=self.config.kld_delta,
                        n_min=self.config.kld_n_min,
                        n_max=self.config.num_particles,
                    )
                idx = resample_indices(
                    self.weights, self.rng, self.config.resample_scheme,
                    size=target_n,
                )
                self.particles = self.particles[idx]
                self.weights = np.full(target_n, 1.0 / target_n)

                if self.config.augmented:
                    # Kidnapped-robot injection: when recent likelihoods
                    # fall below the long-term average, seed random
                    # free-space hypotheses in proportion.
                    n_inject = int(inject_frac * target_n)
                    if n_inject > 0:
                        replace = self.rng.choice(target_n, size=n_inject,
                                                  replace=False)
                        self.particles[replace] = self._sample_free_space(
                            n_inject
                        )
            resampled = True

        self.num_updates += 1
        return FilterEstimate(pose, spread, ess, resampled)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pose(self) -> np.ndarray:
        """Current weighted-mean pose estimate."""
        return estimate_pose(self.particles, self.weights)

    @property
    def num_particles(self) -> int:
        """Current particle count (varies when ``adaptive`` is on)."""
        return int(self.particles.shape[0])

    def latency_ms(self) -> float:
        """Mean per-update wall time — the paper's headline latency metric."""
        if self.timing.count("update") == 0:
            raise RuntimeError("no updates recorded yet")
        return self.timing.mean_ms("update")

    def mean_update_latency_ms(self) -> float:
        """Deprecated alias of :meth:`latency_ms`."""
        warnings.warn(
            "SynPF.mean_update_latency_ms() is deprecated; use latency_ms()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.latency_ms()

    def accel_info(self) -> Dict:
        """Acceleration-layer snapshot: chosen kernels + dedup hit-rate."""
        method = self.range_method
        inner = getattr(method, "inner", None)
        info: Dict = {
            "raycast_method": method.name,
            "raycast_backend": getattr(
                inner if inner is not None else method, "backend", "numpy"
            ),
            "sensor_backend": self.sensor_model.backend,
            "dedup": inner is not None,
        }
        if inner is not None:
            info["dedup_stats"] = method.stats()
        return info

    def telemetry(self) -> Dict:
        """JSON-serialisable observability snapshot of this filter."""
        snapshot = {
            "num_updates": self.num_updates,
            "num_particles": self.num_particles,
            "timing": self.timing.summary(),
            "accel": self.accel_info(),
        }
        if self.config.augmented:
            snapshot["augmented"] = {
                "w_slow": self._w_slow,
                "w_fast": self._w_fast,
                "last_inject_frac": self._last_inject_frac,
            }
        return snapshot


def make_synpf(grid: OccupancyGrid, **overrides) -> SynPF:
    """SynPF in its paper configuration, with optional keyword overrides."""
    return SynPF(grid, ParticleFilterConfig(**overrides))


def make_vanilla_mcl(grid: OccupancyGrid, **overrides) -> SynPF:
    """Classic MCL: diff-drive motion model + uniform scanline layout.

    The ablation baseline — identical machinery to SynPF with the two
    paper-specific choices reverted.
    """
    overrides.setdefault("motion_model", "diff_drive")
    overrides.setdefault("layout", "uniform")
    return SynPF(grid, ParticleFilterConfig(**overrides))
