"""The SynPF particle filter (paper §II) and its vanilla-MCL baseline.

SynPF is a map-based Monte-Carlo localizer assembled from the pieces this
package provides, with the specific combination the paper advocates:

* **TUM motion model** — speed-aware Ackermann propagation
  (:class:`~repro.core.motion_models.TumMotionModel`), keeping particles
  physically feasible at racing speed;
* **boxed scanline layout** — corridor-aware beam selection
  (:class:`~repro.core.scan_layout.BoxedScanLayout`);
* **discretised beam sensor model** scored against ranges from a
  **precomputed lookup table** (:class:`~repro.raycast.lut.LookupTable`) —
  the GPU-free configuration the paper benchmarks on the Intel NUC.

Every piece is swappable through :class:`ParticleFilterConfig`, which is
how the ablation benchmarks isolate each design choice;
:func:`make_vanilla_mcl` is the conventional diff-drive + uniform-layout
MCL used as the ablation reference point.

Batch-first core
----------------
Particle state lives in a :class:`~repro.core.particle_cloud.ParticleCloud`
(structure-of-arrays, capacity-preserving buffers); ``pf.particles`` /
``pf.weights`` remain available as array-of-structs compatibility
properties.  The update itself has two executions:

* **staged** — motion → query assembly → ``calc_ranges_pose_batch`` →
  sensor scoring, each stage a separate vectorised pass (the reference
  path, and the only one for table-driven range methods);
* **fused** — the single :mod:`repro.accel.fused` pipeline: motion →
  packed dedup keys → one ``np.unique`` → representative cast →
  likelihood gather, constructed to be *bitwise identical* to the staged
  path and enabled by default (``fused="auto"``) whenever the range
  method carries a dedup wrapper.

:meth:`SynPF.update_batch` extends the fused pipeline across filters:
S same-map sessions execute one synchronized step with a single key
unification and representative cast — the seam
:class:`repro.serve.batcher.UpdateBatcher` drives.  The historical
``prepare_update`` / ``complete_update`` seam is deprecated in its
favour.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.accel.fused import (
    cast_packed,
    fused_update_supported,
    get_pf_update_kernel,
    pack_query_keys,
)
from repro.accel.spec import parse_accel_spec
from repro.core.motion_models import (
    DiffDriveMotionModel,
    MotionModel,
    OdometryDelta,
    TumMotionModel,
)
from repro.core.particle_cloud import BufferPool, ParticleCloud
from repro.core.pose_estimation import ParticleSpread, estimate_pose, particle_spread
from repro.core.resampling import effective_sample_size, resample_indices
from repro.core.scan_layout import BoxedScanLayout, ScanLayout, UniformScanLayout
from repro.core.sensor_models import BeamSensorModel, SensorModelConfig
from repro.maps.occupancy_grid import OccupancyGrid
from repro.raycast.factory import make_range_method, parse_range_spec
from repro.telemetry.spans import SpanTracer
from repro.utils.angles import wrap_to_pi
from repro.utils.profiling import TimingStats
from repro.utils.rng import make_rng

__all__ = [
    "ParticleFilterConfig",
    "FilterEstimate",
    "PendingUpdate",
    "SynPF",
    "make_synpf",
    "make_vanilla_mcl",
]

# Methods whose queries are per-ray traversals: dedup's one-cast-per-bin
# saves real work there.  lut/glt answer in constant time from a table
# (with a specialized pose-batch fast path dedup would bypass), so
# raycast_dedup="auto" leaves them alone.
_DEDUP_AUTO_METHODS = frozenset(
    {"bresenham", "bl", "ray_marching", "rm", "cddt", "pcddt"}
)


@dataclass(frozen=True)
class ParticleFilterConfig:
    """Everything configurable about the filter.

    Defaults are the SynPF configuration from the paper's experiments:
    TUM motion model, boxed layout, LUT ray casting, systematic
    resampling.
    """

    num_particles: int = 3000
    num_beams: int = 60
    motion_model: str = "tum"  # "tum" | "diff_drive"
    motion_params: Dict = field(default_factory=dict)  # forwarded to the model
    layout: str = "boxed"  # "boxed" | "uniform"
    boxed_aspect_ratio: float = 3.0
    boxed_width: float = 2.0
    range_method: str = "lut"  # any spec known to repro.raycast.factory
    lut_theta_bins: int = 120
    # Unified acceleration spec (repro.accel.spec), e.g. "fused@numba+dedup".
    # Components present in the spec are folded into the three per-knob
    # alias fields below by resolved(); None means "speak through the
    # per-knob fields" (the historical spelling, still fully supported).
    accel: Optional[str] = None
    # Acceleration layer (repro.accel).  "auto" picks the numba JIT
    # kernels when numba is importable and falls back to the NumPy
    # reference otherwise — on-with-fallback, never a hard requirement.
    accel_backend: str = "auto"  # "auto" | "numpy" | "numba"
    # Pose-quantized raycast query dedup.  "auto" enables it for the
    # per-ray traversal methods (bresenham/ray_marching/cddt), where one
    # cast per unique (cell, angle-bin) saves real work, and disables it
    # for lut/glt, whose constant-time table gather is already cheaper
    # than the dedup bookkeeping (and has its own pose-batch fast path).
    raycast_dedup: object = "auto"  # True | False | "auto"
    dedup_xy_bin_cells: float = 1.0
    dedup_theta_bins: int = 2048
    # Fused pf_update pipeline (repro.accel.fused).  "auto" runs it
    # whenever the range method is dedup-wrapped (where it is bitwise
    # identical to the staged path and strictly faster); True requests it
    # (with a documented staged fallback where unsupported); False forces
    # the staged reference path.
    fused: object = "auto"  # True | False | "auto"
    resample_scheme: str = "systematic"
    resample_ess_fraction: float = 0.5
    lidar_offset_x: float = 0.27  # sensor mount ahead of the base frame
    # KLD-sampling (Fox 2001): adapt the particle count at resample time to
    # the cloud's occupied-bin count.  num_particles becomes the initial /
    # maximum budget; kld_n_min the converged-tracking floor.
    adaptive: bool = False
    kld_epsilon: float = 0.05
    kld_delta: float = 0.01
    kld_n_min: int = 300
    # Augmented MCL (Thrun et al. ch. 8.3.3): track short/long-term
    # likelihood averages and inject random free-space particles in
    # proportion to max(0, 1 - w_fast / w_slow) — automatic kidnapped-robot
    # recovery.  Requires 0 < alpha_slow < alpha_fast.
    augmented: bool = False
    augment_alpha_slow: float = 0.03
    augment_alpha_fast: float = 0.3
    sensor: SensorModelConfig = field(default_factory=SensorModelConfig)
    init_std_xy: float = 0.25
    init_std_theta: float = 0.1
    seed: Optional[int] = None

    def validate(self) -> None:
        if self.num_particles < 1:
            raise ValueError("num_particles must be >= 1")
        if self.num_beams < 1:
            raise ValueError("num_beams must be >= 1")
        if self.motion_model not in ("tum", "diff_drive"):
            raise ValueError(f"unknown motion model {self.motion_model!r}")
        if self.layout not in ("boxed", "uniform"):
            raise ValueError(f"unknown layout {self.layout!r}")
        if not 0.0 < self.resample_ess_fraction <= 1.0:
            raise ValueError("resample_ess_fraction must be in (0, 1]")
        if self.adaptive:
            if self.kld_epsilon <= 0 or not 0 < self.kld_delta < 1:
                raise ValueError("invalid KLD parameters")
            if not 1 <= self.kld_n_min <= self.num_particles:
                raise ValueError("need 1 <= kld_n_min <= num_particles")
        if self.augmented:
            if not 0 < self.augment_alpha_slow < self.augment_alpha_fast <= 1:
                raise ValueError(
                    "need 0 < augment_alpha_slow < augment_alpha_fast <= 1"
                )
        if self.accel is not None:
            parse_accel_spec(self.accel)  # raises on malformed specs
        if self.accel_backend not in ("auto", "numpy", "numba"):
            raise ValueError(f"unknown accel backend {self.accel_backend!r}")
        if self.raycast_dedup not in (True, False, "auto"):
            raise ValueError("raycast_dedup must be True, False or 'auto'")
        if self.fused not in (True, False, "auto"):
            raise ValueError("fused must be True, False or 'auto'")
        if self.dedup_xy_bin_cells <= 0:
            raise ValueError("dedup_xy_bin_cells must be positive")
        if self.dedup_theta_bins < 1:
            raise ValueError("dedup_theta_bins must be >= 1")
        self.sensor.validate()

    def resolved(self) -> "ParticleFilterConfig":
        """Fold the unified ``accel`` spec into the per-knob alias fields.

        Idempotent; raises ``ValueError`` when a spec component
        contradicts an explicitly non-``"auto"`` per-knob value (the two
        spellings must agree or only one may speak).  ``"auto"``
        components impose nothing.
        """
        if self.accel is None:
            return self
        spec = parse_accel_spec(self.accel)
        updates: Dict = {}
        if spec.backend is not None and spec.backend != "auto":
            if self.accel_backend not in ("auto", spec.backend):
                raise ValueError(
                    f"accel spec {self.accel!r} conflicts with "
                    f"accel_backend={self.accel_backend!r}"
                )
            updates["accel_backend"] = spec.backend
        if spec.dedup is not None:
            if self.raycast_dedup not in ("auto", spec.dedup):
                raise ValueError(
                    f"accel spec {self.accel!r} conflicts with "
                    f"raycast_dedup={self.raycast_dedup!r}"
                )
            updates["raycast_dedup"] = spec.dedup
        mode_fused = spec.fused
        if mode_fused is not None and mode_fused != "auto":
            if self.fused not in ("auto", mode_fused):
                raise ValueError(
                    f"accel spec {self.accel!r} conflicts with "
                    f"fused={self.fused!r}"
                )
            updates["fused"] = mode_fused
        if not updates:
            return self
        return replace(self, **updates)


@dataclass(frozen=True)
class FilterEstimate:
    """One filter update's output."""

    pose: np.ndarray
    spread: ParticleSpread
    ess: float
    resampled: bool


@dataclass(frozen=True)
class PendingUpdate:
    """The raycast workload of one in-flight update (deprecated seam).

    Produced by :meth:`SynPF.prepare_update` after the motion stage;
    consumed by :meth:`SynPF.complete_update` once the expected ranges
    are available.  The split let a fleet batcher fold the raycast stage
    of many sessions into one call; :meth:`SynPF.update_batch` now does
    that fold internally (one fused kernel invocation), and the two-call
    seam survives only as a deprecated compatibility wrapper.
    """

    sensor_poses: np.ndarray  # (P, 3) sensor-frame particle poses
    angles: np.ndarray  # (B,) selected beam angles (sensor-relative)
    measured: np.ndarray  # (B,) sanitised measured ranges


class SynPF:
    """Map-based Monte-Carlo localizer.

    Parameters
    ----------
    grid:
        The (pre-existing) map to localize in — MCL does not map.
    config:
        See :class:`ParticleFilterConfig`.
    motion_model:
        Optional explicit :class:`~repro.core.motion_models.MotionModel`
        instance, overriding ``config.motion_model``.
    registry:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry`; when
        given, per-stage span latencies stream into it as
        ``span.update/...`` histograms.  ``None`` keeps the filter in the
        telemetry-off configuration (TimingStats only).
    timing:
        Optional externally-owned :class:`TimingStats` (e.g. a bounded
        one from :func:`repro.core.interfaces.make_localizer`).
    artifact_cache:
        Optional :class:`~repro.serve.artifacts.MapArtifactCache`.  When
        given, the (expensive, read-only) base range method — LUT table,
        CDDT bins, distance field — is fetched from the cache instead of
        rebuilt, so many filters on the same map share one build.  The
        dedup wrapper (which carries per-filter counters) stays private.

    Usage
    -----
    >>> pf = make_synpf(grid)                      # doctest: +SKIP
    >>> pf.initialize(start_pose)                  # doctest: +SKIP
    >>> est = pf.update(odom_delta, ranges, angles)  # doctest: +SKIP
    """

    def __init__(
        self,
        grid: OccupancyGrid,
        config: ParticleFilterConfig | None = None,
        motion_model: MotionModel | None = None,
        registry=None,
        timing: TimingStats | None = None,
        artifact_cache=None,
    ) -> None:
        self.config = (config or ParticleFilterConfig()).resolved()
        self.config.validate()
        self.grid = grid
        self.rng = make_rng(self.config.seed)
        # A shared (artifact-cache) base range method is read-only by
        # contract: the runtime-reconfiguration seam must not mutate it.
        self._owns_base_method = artifact_cache is None

        if motion_model is not None:
            self.motion_model = motion_model
        elif self.config.motion_model == "tum":
            self.motion_model = TumMotionModel(**self.config.motion_params)
        else:
            self.motion_model = DiffDriveMotionModel(**self.config.motion_params)

        if self.config.layout == "boxed":
            self.layout: ScanLayout = BoxedScanLayout(
                aspect_ratio=self.config.boxed_aspect_ratio,
                box_width=self.config.boxed_width,
            )
        else:
            self.layout = UniformScanLayout()

        self.sensor_model = BeamSensorModel(
            self.config.sensor, backend=self.config.accel_backend
        )
        base_method, spec_backend, spec_dedup = parse_range_spec(
            self.config.range_method
        )
        range_kwargs = {}
        if base_method in ("lut", "glt"):
            range_kwargs["num_theta_bins"] = self.config.lut_theta_bins
        if spec_backend is None and base_method in (
            "bresenham", "bl", "ray_marching", "rm",
        ):
            range_kwargs["backend"] = self.config.accel_backend
        dedup: Optional[bool]
        if self.config.raycast_dedup == "auto":
            # A "+dedup" spec suffix wins; otherwise on for per-ray
            # traversal methods, off for the table-driven ones.
            dedup = (
                None if spec_dedup else (base_method in _DEDUP_AUTO_METHODS) or None
            )
        else:
            dedup = bool(self.config.raycast_dedup)
        self.range_method = make_range_method(
            self.config.range_method,
            grid,
            max_range=self.config.sensor.max_range,
            dedup=dedup,
            dedup_xy_bin_cells=self.config.dedup_xy_bin_cells,
            dedup_theta_bins=self.config.dedup_theta_bins,
            registry=registry,
            artifact_cache=artifact_cache,
            **range_kwargs,
        )
        self._fused_supported = fused_update_supported(self.range_method)
        self._fused_kernel = get_pf_update_kernel(self.config.accel_backend)
        self._registry = registry
        if registry is not None:
            # One-shot kernel-selection record: which backend actually won
            # the auto-resolution on this host, per hot-path component.
            raycast_backend = getattr(self.range_method, "backend", None) or getattr(
                getattr(self.range_method, "inner", None), "backend", "numpy"
            )
            registry.counter(f"accel.raycast.{raycast_backend}").inc()
            registry.counter(f"accel.sensor.{self.sensor_model.backend}").inc()
            mode = "fused" if self._use_fused() else "staged"
            registry.counter(f"accel.pf_update.{mode}").inc()

        self.pool = BufferPool()
        self._cloud = ParticleCloud(self.config.num_particles, pool=self.pool)
        self.timing = timing if timing is not None else TimingStats()
        self.tracer = SpanTracer(timing=self.timing, registry=registry)
        self.num_updates = 0
        self._initialized = False
        self._layout_cache: dict = {}
        # Augmented-MCL state: short/long-term geometric-mean beam
        # likelihood averages (Thrun ch. 8.3.3).  The explicit init flag
        # (rather than `_w_slow == 0.0` sentinel testing) keeps the
        # recovery armed even when the very first w_avg underflows to
        # exactly 0.0 — a zero average is *data* (total likelihood
        # collapse), not "not yet seeded".
        self._w_slow = 0.0
        self._w_fast = 0.0
        self._w_initialized = False
        self._last_inject_frac = 0.0
        self._free_cells_cache = None

    # ------------------------------------------------------------------
    # Particle state (SoA cloud + AoS compatibility properties)
    # ------------------------------------------------------------------
    @property
    def cloud(self) -> ParticleCloud:
        """The structure-of-arrays particle state (the hot-path view)."""
        return self._cloud

    @property
    def particles(self) -> np.ndarray:
        """``(n, 3)`` array-of-structs pose snapshot (compatibility view).

        Assembled fresh on every read — mutate through :attr:`cloud` (or
        assign a whole array back) rather than writing into the snapshot.
        """
        return self._cloud.as_array()

    @particles.setter
    def particles(self, value: np.ndarray) -> None:
        self._cloud.set_from_array(value)

    @property
    def weights(self) -> np.ndarray:
        """``(n,)`` normalized weights (live view into the cloud)."""
        return self._cloud.weights

    @weights.setter
    def weights(self, value: np.ndarray) -> None:
        self._cloud.set_weights(value)

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def initialize(self, pose: np.ndarray, std_xy: float | None = None,
                   std_theta: float | None = None) -> None:
        """Gaussian particle cloud around a known start pose."""
        pose = np.asarray(pose, dtype=float)
        n = self.config.num_particles
        std_xy = self.config.init_std_xy if std_xy is None else std_xy
        std_theta = self.config.init_std_theta if std_theta is None else std_theta
        cloud = self._cloud
        cloud.resize(n)
        cloud.xy[:, 0] = pose[0] + self.rng.normal(0.0, std_xy, n)
        cloud.xy[:, 1] = pose[1] + self.rng.normal(0.0, std_xy, n)
        cloud.theta[:] = wrap_to_pi(pose[2] + self.rng.normal(0.0, std_theta, n))
        cloud.set_uniform()
        self._initialized = True

    def _sample_free_space(self, n: int) -> np.ndarray:
        """``(n, 3)`` uniform poses over the map's free cells."""
        if self._free_cells_cache is None:
            rows, cols = np.nonzero(self.grid.free_mask())
            if rows.size == 0:
                raise ValueError("map has no free cells to initialise in")
            self._free_cells_cache = (rows, cols)
        rows, cols = self._free_cells_cache
        pick = self.rng.integers(0, rows.size, size=n)
        centers = self.grid.grid_to_world(
            np.stack([cols[pick], rows[pick]], axis=-1).astype(float)
        )
        jitter = self.rng.uniform(
            -self.grid.resolution / 2.0, self.grid.resolution / 2.0, size=(n, 2)
        )
        out = np.empty((n, 3))
        out[:, :2] = centers + jitter
        out[:, 2] = self.rng.uniform(-np.pi, np.pi, size=n)
        return out

    def initialize_global(self) -> None:
        """Uniform particle cloud over the map's free space (kidnapped robot)."""
        n = self.config.num_particles
        self._cloud.set_from_array(self._sample_free_space(n))
        self._cloud.set_uniform()
        self._initialized = True

    # ------------------------------------------------------------------
    # Runtime reconfiguration (the compute-governor actuation seam)
    # ------------------------------------------------------------------
    def _resize_particles(self, target_n: int) -> None:
        """Weighted resample of the cloud to ``target_n`` particles.

        The same machinery KLD adaptation uses at resample time, applied
        mid-run: draw ``target_n`` indices in proportion to the current
        weights, then reset to uniform.  The result is a valid particle
        approximation of the same posterior at the new budget — weights
        stay normalized and the count lands exactly on target, which is
        what :class:`~repro.verify.invariants.InvariantChecker` audits
        across knob changes.  Shrinking narrows the cloud's views over
        its existing allocation (no buffer churn); only growth past the
        high-water capacity re-allocates.
        """
        current = self._cloud.n
        if target_n == current:
            return
        idx = resample_indices(
            self.weights, self.rng, self.config.resample_scheme,
            size=target_n,
        )
        self._cloud.gather(idx)
        self._cloud.set_uniform()

    def reconfigure(
        self,
        num_particles: Optional[int] = None,
        num_beams: Optional[int] = None,
        dedup_xy_bin_cells: Optional[float] = None,
        accel_backend: Optional[str] = None,
        **ignored,
    ) -> Dict:
        """Apply runtime knob changes; returns ``{knob: new_value}`` applied.

        The public actuation seam for :mod:`repro.govern`: every knob that
        trades accuracy for per-update latency and was previously frozen
        at construction becomes adjustable between updates.

        * ``num_particles`` — the particle budget.  A fixed-size filter is
          resized immediately (weighted resample, see
          :meth:`_resize_particles`); an adaptive (KLD) filter has its
          band ceiling moved and is shrunk only if it currently exceeds
          the new ceiling (``kld_n_min`` is clamped to stay <= the
          budget).
        * ``num_beams`` — scan-layout subsampling target; the layout
          selection cache is invalidated so the next update re-selects.
        * ``dedup_xy_bin_cells`` — raycast dedup bin coarseness (no-op
          with the dedup wrapper off).  Coarser bins mean fewer casts and
          a wider substitution envelope.
        * ``accel_backend`` — compute-kernel choice.  Always switches the
          sensor-model backend (and the fused-update gather kernel);
          switches the base range method's backend only when this filter
          privately owns it (a shared artifact-cache method is read-only,
          and other sessions may be mid-query).

        Unknown keyword arguments are ignored so a
        :class:`~repro.govern.knobs.KnobSet` can carry knobs some filter
        variants lack.  Changes are validated as a whole; a knob equal to
        its current value is not reported.
        """
        applied: Dict = {}
        if num_particles is not None:
            target = int(num_particles)
            if target != self.config.num_particles:
                self.config = replace(
                    self.config,
                    num_particles=target,
                    kld_n_min=min(self.config.kld_n_min, target),
                )
                if self._initialized:
                    if self.config.adaptive:
                        if self._cloud.n > target:
                            self._resize_particles(target)
                    else:
                        self._resize_particles(target)
                applied["num_particles"] = target
        if num_beams is not None:
            target = int(num_beams)
            if target != self.config.num_beams:
                self.config = replace(self.config, num_beams=target)
                self._layout_cache.clear()
                applied["num_beams"] = target
        if dedup_xy_bin_cells is not None:
            from repro.accel.dedup import DedupRangeMethod

            coarseness = float(dedup_xy_bin_cells)
            if coarseness <= 0:
                raise ValueError("dedup_xy_bin_cells must be positive")
            method = self.range_method
            if (
                isinstance(method, DedupRangeMethod)
                and coarseness != method.xy_bin_cells
            ):
                method.xy_bin_cells = coarseness
                method._bin_size = self.grid.resolution * coarseness
                self.config = replace(
                    self.config, dedup_xy_bin_cells=coarseness
                )
                applied["dedup_xy_bin_cells"] = coarseness
        if accel_backend is not None:
            from repro.accel.backends import resolve_backend

            resolved = resolve_backend(accel_backend, warn=False)
            changed = False
            if self.sensor_model.backend != resolved:
                self.sensor_model.backend = resolved
                changed = True
            base = getattr(self.range_method, "inner", None) or self.range_method
            if (
                self._owns_base_method
                and getattr(base, "backend", None) not in (None, resolved)
            ):
                base.backend = resolved
                changed = True
            if changed:
                self.config = replace(self.config, accel_backend=resolved)
                self._fused_kernel = get_pf_update_kernel(resolved)
                applied["accel_backend"] = resolved
        if applied:
            self.config.validate()
        return applied

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def select_beams(self, beam_angles: np.ndarray) -> np.ndarray:
        """Layout-selected beam indices for a given full-scan geometry.

        Cached: a LiDAR's beam-angle table never changes at runtime.  The
        key covers the *full* angle-table content — a ``(count, first,
        last)`` endpoint key collides for distinct non-uniform tables
        sharing endpoints, silently reusing the wrong selection.
        """
        beam_angles = np.asarray(beam_angles, dtype=float)
        if beam_angles.size == 0:
            raise ValueError("beam_angles must be non-empty")
        key = (beam_angles.shape[0], hash(beam_angles.tobytes()))
        if key not in self._layout_cache:
            self._layout_cache[key] = self.layout.select(
                beam_angles, self.config.num_beams
            )
        return self._layout_cache[key]

    def _use_fused(self) -> bool:
        """Whether solo updates run the fused pipeline.

        ``fused=False`` forces the staged reference path; ``True`` and
        ``"auto"`` run fused wherever the range method supports it
        (dedup-wrapped traversal methods) and fall back to staged
        elsewhere — the fallback is silent because the two paths are
        bitwise identical wherever both exist.
        """
        return self.config.fused is not False and self._fused_supported

    def update(
        self,
        delta: OdometryDelta,
        scan_ranges: np.ndarray,
        beam_angles: np.ndarray,
    ) -> FilterEstimate:
        """One predict-weight-resample cycle.

        Parameters
        ----------
        delta:
            Odometry-measured motion since the previous update.
        scan_ranges, beam_angles:
            The *full* LiDAR scan and its beam-angle table; the filter
            applies its own scanline layout internally.
        """
        if not self._initialized:
            raise RuntimeError("call initialize() or initialize_global() first")
        scan_ranges = np.asarray(scan_ranges, dtype=float)
        beam_angles = np.asarray(beam_angles, dtype=float)
        if scan_ranges.shape != beam_angles.shape:
            raise ValueError("scan_ranges and beam_angles must have the same shape")
        # The outer span makes "update" the end-to-end wall time of the
        # cycle (pose estimation included), with the stage spans nested
        # under it as span.update/motion, span.update/raycast, ...
        with self.tracer.span("update"):
            return self._update(delta, scan_ranges, beam_angles)

    def _update(
        self,
        delta: OdometryDelta,
        scan_ranges: np.ndarray,
        beam_angles: np.ndarray,
    ) -> FilterEstimate:
        if self._use_fused():
            return self._update_fused(delta, scan_ranges, beam_angles)
        pending = self._prepare_update(delta, scan_ranges, beam_angles)
        with self.tracer.span("raycast"):
            expected = self.range_method.calc_ranges_pose_batch(
                pending.sensor_poses, pending.angles
            )
        return self._complete_update(pending, expected)

    # -- shared stages --------------------------------------------------
    def _motion_and_measure(
        self,
        delta: OdometryDelta,
        scan_ranges: np.ndarray,
        beam_angles: np.ndarray,
    ):
        """Motion stage + beam selection + measurement sanitation.

        Returns ``(measured, angles)``: the layout-selected sanitised
        scan and its beam angles.  Shared by the staged, fused and
        batched executions so every path consumes the rng stream and the
        scan identically.
        """
        scan_ranges = np.asarray(scan_ranges, dtype=float)
        beam_angles = np.asarray(beam_angles, dtype=float)
        if scan_ranges.shape != beam_angles.shape:
            raise ValueError("scan_ranges and beam_angles must have the same shape")
        if not self._initialized:
            raise RuntimeError("call initialize() or initialize_global() first")
        cloud = self._cloud
        with self.tracer.span("motion"):
            # In-place SoA propagation: propagate_soa materialises every
            # input read before writing, so aliasing out onto the cloud's
            # own views is safe (and allocation-free).
            self.motion_model.propagate_soa(
                cloud.xy, cloud.theta, delta, self.rng, cloud.xy, cloud.theta
            )

        sel = self.select_beams(beam_angles)
        measured = scan_ranges[sel]
        # Non-finite returns (driver faults, blackout frames encoded as
        # NaN/inf) map to max_range — the documented "no return" value of
        # RangeMethod.calc_ranges — *before* clipping: np.clip passes NaN
        # through, and a single NaN beam poisons log_likelihood and every
        # particle weight downstream.
        measured = np.where(
            np.isfinite(measured), measured, self.config.sensor.max_range
        )
        measured = np.clip(measured, 0.0, self.config.sensor.max_range)
        return measured, beam_angles[sel]

    def _apply_likelihood(self, log_like: np.ndarray, measured: np.ndarray) -> None:
        """Bayes weight accumulation (+ augmented-MCL averages).

        Callers invoke this inside their ``sensor`` span.
        """
        # Bayes recursion: the posterior multiplies the *prior*
        # weights by the new likelihood.  Resampling is ESS-gated, so
        # on non-resample steps the prior is informative — overwriting
        # it with the bare likelihood silently discarded every earlier
        # observation since the last resample.  Accumulate in log space,
        # normalize once.
        log_post = self._cloud.log_weights() + log_like
        log_post -= log_post.max()
        w = np.exp(log_post)
        self._cloud.set_weights(w / w.sum())
        if self.config.augmented:
            # Geometric-mean per-beam likelihood of the cloud: a
            # bounded, underflow-free version of Thrun's w_avg.
            squash = self.config.sensor.squash_factor
            per_beam = log_like * squash / max(measured.size, 1)
            w_avg = float(np.exp(per_beam).mean())
            alpha_s = self.config.augment_alpha_slow
            alpha_f = self.config.augment_alpha_fast
            if not self._w_initialized:
                self._w_slow = self._w_fast = w_avg
                self._w_initialized = True
            else:
                self._w_slow += alpha_s * (w_avg - self._w_slow)
                self._w_fast += alpha_f * (w_avg - self._w_fast)

    def _estimate_and_resample(self) -> FilterEstimate:
        """Pose estimation + ESS-gated resample: the tail of every update."""
        cloud = self._cloud
        particles = cloud.as_array(self.pool.take("pf.aos", (cloud.n, 3)))
        pose = estimate_pose(particles, self.weights)
        spread = particle_spread(particles, self.weights)
        ess = effective_sample_size(self.weights)

        resampled = False
        current_n = cloud.n
        threshold = self.config.resample_ess_fraction * current_n
        # Augmented MCL must get its injection chance even when a uniformly
        # *bad* cloud keeps the ESS high (classic AMCL resamples every
        # iteration; ESS gating would starve the recovery mechanism).
        inject_frac = 0.0
        if self.config.augmented and self._w_initialized:
            if self._w_slow > 0.0:
                inject_frac = max(0.0, 1.0 - self._w_fast / self._w_slow)
            elif self._w_fast <= 0.0:
                # Both averages underflowed to exactly 0: every particle's
                # likelihood collapsed, the strongest possible kidnap
                # signal.  The old `_w_slow > 0` guard disabled injection
                # here — precisely when recovery matters most.
                inject_frac = 1.0
        self._last_inject_frac = inject_frac
        if ess < threshold or inject_frac > 0.05:
            with self.tracer.span("resample"):
                # Target the *configured* budget, not the incumbent cloud
                # size: after a runtime `reconfigure`, current_n may lag
                # the budget for one step (adaptive growth is also pulled
                # toward the new ceiling through n_max below).
                target_n = self.config.num_particles
                if self.config.adaptive:
                    from repro.core.kld import kld_sample_size, occupied_bins

                    k = occupied_bins(particles, self.weights)
                    target_n = kld_sample_size(
                        k,
                        epsilon=self.config.kld_epsilon,
                        delta=self.config.kld_delta,
                        n_min=self.config.kld_n_min,
                        n_max=self.config.num_particles,
                    )
                idx = resample_indices(
                    self.weights, self.rng, self.config.resample_scheme,
                    size=target_n,
                )
                cloud.gather(idx)
                cloud.set_uniform()

                if self.config.augmented:
                    # Kidnapped-robot injection: when recent likelihoods
                    # fall below the long-term average, seed random
                    # free-space hypotheses in proportion.
                    n_inject = int(inject_frac * target_n)
                    if n_inject > 0:
                        pick = self.rng.choice(target_n, size=n_inject,
                                               replace=False)
                        cloud.scatter_poses(
                            pick, self._sample_free_space(n_inject)
                        )
            resampled = True

        self.num_updates += 1
        return FilterEstimate(pose, spread, ess, resampled)

    # -- staged execution ----------------------------------------------
    def _prepare_update(
        self,
        delta: OdometryDelta,
        scan_ranges: np.ndarray,
        beam_angles: np.ndarray,
    ) -> PendingUpdate:
        """Motion stage + staged raycast workload extraction."""
        measured, angles = self._motion_and_measure(
            delta, scan_ranges, beam_angles
        )
        # Rays originate at the sensor, which is mounted ahead of the
        # base frame the particles (and the published pose) live in.
        sensor_poses = self._cloud.as_array()
        off = self.config.lidar_offset_x
        if off != 0.0:
            sensor_poses[:, 0] += off * np.cos(sensor_poses[:, 2])
            sensor_poses[:, 1] += off * np.sin(sensor_poses[:, 2])
        return PendingUpdate(
            sensor_poses=sensor_poses, angles=angles, measured=measured,
        )

    def _complete_update(
        self, pending: PendingUpdate, expected: np.ndarray
    ) -> FilterEstimate:
        """Sensor scoring + estimation/resample on staged raycast output."""
        measured = pending.measured
        with self.tracer.span("sensor"):
            log_like = self.sensor_model.log_likelihood(expected, measured)
            self._apply_likelihood(log_like, measured)
        return self._estimate_and_resample()

    def prepare_update(
        self,
        delta: OdometryDelta,
        scan_ranges: np.ndarray,
        beam_angles: np.ndarray,
    ) -> PendingUpdate:
        """Deprecated two-call seam; use :meth:`update` / :meth:`update_batch`."""
        warnings.warn(
            "SynPF.prepare_update()/complete_update() are deprecated; use "
            "update() for solo steps or SynPF.update_batch() for multi-"
            "session folding",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._prepare_update(delta, scan_ranges, beam_angles)

    def complete_update(
        self, pending: PendingUpdate, expected: np.ndarray
    ) -> FilterEstimate:
        """Deprecated two-call seam; use :meth:`update` / :meth:`update_batch`."""
        warnings.warn(
            "SynPF.prepare_update()/complete_update() are deprecated; use "
            "update() for solo steps or SynPF.update_batch() for multi-"
            "session folding",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._complete_update(pending, expected)

    # -- fused execution -------------------------------------------------
    def _fused_queries(self, angles: np.ndarray) -> np.ndarray:
        """Packed dedup keys for the cloud × ``angles`` (pool-backed).

        Mirrors the staged query assembly bit-for-bit: the sensor origin
        offset uses the same ``pose + off*cos/sin`` expressions, the
        per-query heading the same ``theta[:, None] + angles[None, :]``
        broadcast ``calc_ranges_pose_batch`` performs.
        """
        cloud = self._cloud
        n = cloud.n
        theta = cloud.theta
        off = self.config.lidar_offset_x
        if off != 0.0:
            sx = self.pool.take("pf.sensor_x", (n,))
            np.cos(theta, out=sx)
            sx *= off
            sx += cloud.xy[:, 0]
            sy = self.pool.take("pf.sensor_y", (n,))
            np.sin(theta, out=sy)
            sy *= off
            sy += cloud.xy[:, 1]
        else:
            sx = cloud.xy[:, 0]
            sy = cloud.xy[:, 1]
        qt = self.pool.take("pf.query_theta", (n, angles.size))
        np.add(theta[:, None], angles[None, :], out=qt)
        return pack_query_keys(self.range_method, sx, sy, qt, pool=self.pool)

    def _gather_log_likelihood(
        self,
        rep_ranges: np.ndarray,
        inv: np.ndarray,
        measured: np.ndarray,
        n_beams: int,
    ) -> np.ndarray:
        """Per-particle scores from the fused cast's representatives.

        The fast path scores straight from the ``U`` representative
        ranges via the backend gather kernel — but only when the sensor
        model is the stock :class:`BeamSensorModel`.  A replaced or
        monkeypatched ``log_likelihood`` (custom sensor models, test
        spies) keeps working: the fused path then materialises the same
        ``(P, B)`` expected-range matrix the staged path feeds it.
        """
        sm = self.sensor_model
        if (
            type(sm).log_likelihood is BeamSensorModel.log_likelihood
            and "log_likelihood" not in sm.__dict__
        ):
            return self._fused_kernel.gather_log_likelihood(
                sm, rep_ranges, inv, measured, n_beams, pool=self.pool,
            )
        expected = rep_ranges[inv].reshape(-1, n_beams)
        return sm.log_likelihood(expected, measured)

    def _update_fused(
        self,
        delta: OdometryDelta,
        scan_ranges: np.ndarray,
        beam_angles: np.ndarray,
    ) -> FilterEstimate:
        """The single fused pf_update pipeline (solo session)."""
        measured, angles = self._motion_and_measure(
            delta, scan_ranges, beam_angles
        )
        method = self.range_method
        with self.tracer.span("raycast"):
            packed = self._fused_queries(angles)
            rep_ranges, inv = cast_packed(method, packed)
            method.record_batch(packed.size, rep_ranges.size)
        with self.tracer.span("sensor"):
            log_like = self._gather_log_likelihood(
                rep_ranges, inv, measured, angles.size
            )
            self._apply_likelihood(log_like, measured)
        return self._estimate_and_resample()

    # -- batched execution -----------------------------------------------
    @classmethod
    def update_batch(
        cls,
        filters: Sequence["SynPF"],
        deltas: Sequence[OdometryDelta],
        scans: Sequence[np.ndarray],
        beam_angles,
    ) -> List[FilterEstimate]:
        """One synchronized update step across ``S`` same-map sessions.

        The batch-first API: filters sharing a dedup-wrapped range method
        (same inner method object, same bin geometry — the artifact cache
        guarantees that on a shared map) execute their raycast stage as
        **one fused kernel invocation**: every session's packed keys are
        unified by a single ``np.unique`` and answered by a single
        representative cast.  Because dedup representatives are bin
        centres — a pure function of the key — each session's result is
        bit-identical to what its own solo :meth:`update` would produce;
        folding changes work, never answers.

        Parameters
        ----------
        filters:
            The ``S`` filters to step.  Non-foldable members (table-driven
            range methods, ``fused=False``) transparently run their own
            solo :meth:`update`.
        deltas:
            ``S`` per-session :class:`OdometryDelta` values.
        scans:
            ``S`` full scans (sequence of ``(B,)`` arrays or an ``(S, B)``
            array).
        beam_angles:
            One shared ``(B,)`` beam-angle table, an ``(S, B)`` array, or
            a length-``S`` sequence of per-session tables.

        Returns the ``S`` :class:`FilterEstimate` results in input order.

        Telemetry matches the historical folded path: per-session
        ``motion`` / ``sensor`` / ``resample`` spans fire, but no
        ``update`` or ``raycast`` span (the shared cast belongs to no
        single session; dedup counters for the whole fold are attributed
        to the casting member's wrapper).
        """
        filters = list(filters)
        n_sessions = len(filters)
        deltas = list(deltas)
        if len(deltas) != n_sessions or len(scans) != n_sessions:
            raise ValueError(
                "filters, deltas and scans must have the same length"
            )
        if isinstance(beam_angles, (list, tuple)) and (
            len(beam_angles) > 0 and np.ndim(beam_angles[0]) >= 1
        ):
            angles_list = [np.asarray(a, dtype=float) for a in beam_angles]
        else:
            arr = np.asarray(beam_angles, dtype=float)
            if arr.ndim == 1:
                angles_list = [arr] * n_sessions
            elif arr.ndim == 2:
                angles_list = [arr[i] for i in range(arr.shape[0])]
            else:
                raise ValueError(
                    f"beam_angles must be (B,), (S, B) or a length-S "
                    f"sequence, got ndim={arr.ndim}"
                )
        if len(angles_list) != n_sessions:
            raise ValueError(
                f"expected {n_sessions} beam-angle tables, got {len(angles_list)}"
            )

        results: List[Optional[FilterEstimate]] = [None] * n_sessions
        groups: Dict = {}
        solo: List[int] = []
        for i, f in enumerate(filters):
            if f._use_fused():
                m = f.range_method
                key = (id(m.inner), m.xy_bin_cells, m.theta_bins)
                groups.setdefault(key, []).append(i)
            else:
                solo.append(i)

        for idxs in groups.values():
            if len(idxs) < 2:
                # A fold of one gains nothing; run it solo with the full
                # update/raycast span structure.
                solo.extend(idxs)
                continue
            works = []
            for i in idxs:
                f = filters[i]
                measured, angles = f._motion_and_measure(
                    deltas[i], scans[i], angles_list[i]
                )
                works.append((measured, angles, f._fused_queries(angles)))
            packed_all = np.concatenate([w[2] for w in works])
            caster = filters[idxs[0]].range_method
            rep_ranges, inv = cast_packed(caster, packed_all)
            caster.record_batch(packed_all.size, rep_ranges.size)
            offset = 0
            for i, (measured, angles, packed) in zip(idxs, works):
                f = filters[i]
                sub_inv = inv[offset:offset + packed.size]
                offset += packed.size
                with f.tracer.span("sensor"):
                    log_like = f._gather_log_likelihood(
                        rep_ranges, sub_inv, measured, angles.size
                    )
                    f._apply_likelihood(log_like, measured)
                results[i] = f._estimate_and_resample()

        for i in solo:
            results[i] = filters[i].update(deltas[i], scans[i], angles_list[i])
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pose(self) -> np.ndarray:
        """Current weighted-mean pose estimate."""
        return estimate_pose(self.particles, self.weights)

    @property
    def num_particles(self) -> int:
        """Current particle count (varies when ``adaptive`` is on)."""
        return self._cloud.n

    def latency_ms(self) -> float:
        """Mean per-update wall time — the paper's headline latency metric."""
        if self.timing.count("update") == 0:
            raise RuntimeError("no updates recorded yet")
        return self.timing.mean_ms("update")

    def mean_update_latency_ms(self) -> float:
        """Deprecated alias of :meth:`latency_ms`."""
        warnings.warn(
            "SynPF.mean_update_latency_ms() is deprecated; use latency_ms()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.latency_ms()

    def accel_info(self) -> Dict:
        """Acceleration-layer snapshot: chosen kernels + dedup hit-rate."""
        method = self.range_method
        inner = getattr(method, "inner", None)
        info: Dict = {
            "raycast_method": method.name,
            "raycast_backend": getattr(
                inner if inner is not None else method, "backend", "numpy"
            ),
            "sensor_backend": self.sensor_model.backend,
            "dedup": inner is not None,
            "pf_update": "fused" if self._use_fused() else "staged",
        }
        if inner is not None:
            info["dedup_stats"] = method.stats()
        return info

    def telemetry(self) -> Dict:
        """JSON-serialisable observability snapshot of this filter."""
        snapshot = {
            "num_updates": self.num_updates,
            "num_particles": self.num_particles,
            "timing": self.timing.summary(),
            "accel": self.accel_info(),
            "memory": {
                "cloud_bytes": self._cloud.memory_bytes(),
                "pool_bytes": self.pool.total_bytes,
            },
        }
        if self.config.augmented:
            snapshot["augmented"] = {
                "w_slow": self._w_slow,
                "w_fast": self._w_fast,
                "last_inject_frac": self._last_inject_frac,
            }
        return snapshot


def make_synpf(grid: OccupancyGrid, **overrides) -> SynPF:
    """SynPF in its paper configuration, with optional keyword overrides."""
    return SynPF(grid, ParticleFilterConfig(**overrides))


def make_vanilla_mcl(grid: OccupancyGrid, **overrides) -> SynPF:
    """Classic MCL: diff-drive motion model + uniform scanline layout.

    The ablation baseline — identical machinery to SynPF with the two
    paper-specific choices reverted.
    """
    overrides.setdefault("motion_model", "diff_drive")
    overrides.setdefault("layout", "uniform")
    return SynPF(grid, ParticleFilterConfig(**overrides))
