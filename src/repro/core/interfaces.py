"""The public localizer API: one protocol, one factory.

Every consumer that races a localizer — the lap experiment, the
divergence supervisor, offline trace replay — drives the same surface:

* :class:`Localizer` — ``initialize`` / ``update(delta, scan)`` /
  ``pose`` / ``latency_ms`` / ``telemetry``.  ``update`` consumes a full
  :class:`~repro.sim.lidar.LidarScan`; each implementation extracts what
  it needs (SynPF the ranges + beam-angle table, Cartographer the point
  cloud), so callers never special-case methods.
* :func:`make_localizer` — the single construction path behind the
  ``"synpf" | "vanilla_mcl" | "cartographer"`` method names used by
  experiment conditions, scenario specs and the CLI.

:class:`SynPFLocalizer` and :class:`CartographerLocalizer` are the
protocol implementations over the concrete engines (they were private
``_SynPFAdapter``/``_CartographerAdapter`` classes inside the experiment
harness before this became a supported API).  The engines themselves
(:class:`~repro.core.particle_filter.SynPF`,
:class:`~repro.slam.cartographer.Cartographer`) keep their native
signatures — the adapters are the compatibility boundary.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

import numpy as np

from repro.core.motion_models import OdometryDelta
from repro.maps.occupancy_grid import OccupancyGrid

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.sim.lidar import LidarScan
    from repro.slam.cartographer import Cartographer
    from repro.core.particle_filter import SynPF

__all__ = [
    "Localizer",
    "BatchLocalizer",
    "SynPFLocalizer",
    "CartographerLocalizer",
    "make_localizer",
    "update_localizers_batch",
    "LOCALIZER_METHODS",
]

LOCALIZER_METHODS = ("synpf", "vanilla_mcl", "cartographer")


@runtime_checkable
class Localizer(Protocol):
    """What a map-based localizer looks like to the rest of the system.

    ``consumes_scan`` marks the scan-object update signature; consumers
    that also accept legacy ``update(delta, ranges, angles)`` engines
    (the supervisor, trace replay) dispatch on it.
    """

    consumes_scan: bool

    def initialize(self, pose: np.ndarray, std_xy: Optional[float] = None,
                   std_theta: Optional[float] = None) -> None:
        """(Re-)seed the localizer at a known pose.

        Spread parameters are hints: implementations without an
        uncertainty representation (point-pose scan matchers) ignore
        them.
        """
        ...

    def update(self, delta: OdometryDelta, scan: "LidarScan") -> np.ndarray:
        """Process one (odometry interval, scan) pair; returns the pose."""
        ...

    @property
    def pose(self) -> np.ndarray:
        """Current pose estimate ``(x, y, theta)``."""
        ...

    def latency_ms(self) -> float:
        """Mean wall-clock cost per update, milliseconds."""
        ...

    def telemetry(self) -> Dict:
        """JSON-serialisable observability snapshot (timing + metrics)."""
        ...


@runtime_checkable
class BatchLocalizer(Localizer, Protocol):
    """Optional capability: localizers whose engine can fold same-map steps.

    A batch-capable localizer exposes ``supports_batch = True`` and the
    underlying particle filter as ``pf``;
    :func:`update_localizers_batch` routes conforming instances through
    :meth:`repro.core.particle_filter.SynPF.update_batch` (one fused
    kernel invocation for all of them) and falls back to a solo
    ``update`` loop for everything else — scan matchers and third-party
    localizers conform to the base protocol unchanged.
    """

    supports_batch: bool
    pf: "SynPF"


class SynPFLocalizer:
    """:class:`Localizer` over a SynPF (or vanilla-MCL) particle filter."""

    consumes_scan = True
    supports_batch = True

    def __init__(self, pf: "SynPF") -> None:
        self.pf = pf
        if hasattr(pf, "initialize_global"):
            # Surfaced only when the filter supports global re-init; the
            # supervisor's escalation path checks with hasattr.
            self.initialize_global = pf.initialize_global

    def initialize(self, pose: np.ndarray, std_xy: Optional[float] = None,
                   std_theta: Optional[float] = None) -> None:
        self.pf.initialize(pose, std_xy=std_xy, std_theta=std_theta)

    def update(self, delta: OdometryDelta, scan: "LidarScan") -> np.ndarray:
        return self.pf.update(delta, scan.ranges, scan.angles).pose

    @property
    def pose(self) -> np.ndarray:
        return self.pf.pose

    def latency_ms(self) -> float:
        return self.pf.latency_ms()

    def telemetry(self) -> Dict:
        return self.pf.telemetry()


class CartographerLocalizer:
    """:class:`Localizer` over pure-localization Cartographer.

    ``max_range`` trims max-range returns before point-cloud extraction;
    ``offset_x`` is the sensor mount ahead of the base frame.
    """

    consumes_scan = True

    def __init__(self, carto: "Cartographer", max_range: float,
                 offset_x: float) -> None:
        self.carto = carto
        self.max_range = max_range
        self.offset_x = offset_x

    def initialize(self, pose: np.ndarray, std_xy: Optional[float] = None,
                   std_theta: Optional[float] = None) -> None:
        # A scan matcher has no particle cloud to spread: recovery
        # re-anchors it at the point pose.
        self.carto.initialize(pose)

    def update(self, delta: OdometryDelta, scan: "LidarScan") -> np.ndarray:
        points = scan.points_in_sensor_frame(max_range=self.max_range)
        return self.carto.update(delta, points, sensor_offset_x=self.offset_x)

    @property
    def pose(self) -> np.ndarray:
        return self.carto.pose

    def latency_ms(self) -> float:
        return self.carto.latency_ms()

    def telemetry(self) -> Dict:
        return self.carto.telemetry()


def make_localizer(
    method: str,
    grid: OccupancyGrid,
    *,
    max_range: Optional[float] = None,
    lidar_offset_x: Optional[float] = None,
    registry=None,
    timing_max_samples: Optional[int] = None,
    artifact_cache=None,
    **overrides,
) -> Localizer:
    """Build a protocol-conforming localizer by method name.

    Parameters
    ----------
    method:
        ``"synpf"``, ``"vanilla_mcl"`` or ``"cartographer"``.
    grid:
        The frozen map to localize in.
    max_range:
        Sensor maximum range (defaults to the simulated LiDAR's).  Used
        by the Cartographer adapter to drop no-return beams.
    lidar_offset_x:
        Sensor mount ahead of the base frame (defaults per method
        config).
    registry:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry`; when
        given, the localizer's span tracer streams per-stage latency
        histograms into it.
    timing_max_samples:
        Bound the legacy ``TimingStats`` sample lists (reservoir mode) so
        multi-hour runs do not accumulate per-update floats forever.
    artifact_cache:
        Optional :class:`~repro.serve.artifacts.MapArtifactCache`; the
        MCL methods fetch their precomputed range-method structures from
        it (one build per map, shared read-only) instead of rebuilding
        per localizer.  Ignored by Cartographer, which precomputes
        nothing map-wide.
    **overrides:
        Particle-filter config fields for the MCL methods; only
        ``config=CartographerConfig(...)`` for Cartographer.
    """
    from repro.utils.profiling import TimingStats

    timing = TimingStats(max_samples=timing_max_samples)
    if max_range is None or lidar_offset_x is None:
        from repro.sim.lidar import LidarConfig

        defaults = LidarConfig()
        if max_range is None:
            max_range = defaults.max_range
        if lidar_offset_x is None:
            lidar_offset_x = defaults.mount_offset_x

    if method in ("synpf", "vanilla_mcl"):
        from repro.core.particle_filter import ParticleFilterConfig, SynPF

        if method == "vanilla_mcl":
            overrides.setdefault("motion_model", "diff_drive")
            overrides.setdefault("layout", "uniform")
        overrides.setdefault("lidar_offset_x", lidar_offset_x)
        pf = SynPF(grid, ParticleFilterConfig(**overrides),
                   registry=registry, timing=timing,
                   artifact_cache=artifact_cache)
        return SynPFLocalizer(pf)

    if method == "cartographer":
        from repro.slam.cartographer import Cartographer, CartographerConfig

        config = overrides.pop("config", None) or CartographerConfig()
        if overrides:
            raise ValueError(
                "cartographer accepts only a 'config' override, got "
                f"{sorted(overrides)}"
            )
        carto = Cartographer(frozen_map=grid, config=config,
                             registry=registry, timing=timing)
        return CartographerLocalizer(carto, max_range=max_range,
                                     offset_x=lidar_offset_x)

    raise ValueError(
        f"unknown method {method!r}; expected one of {LOCALIZER_METHODS}"
    )


def update_localizers_batch(
    localizers: Sequence[Localizer],
    deltas: Sequence[OdometryDelta],
    scans: Sequence["LidarScan"],
) -> List[np.ndarray]:
    """One synchronized update across many localizers; returns their poses.

    Batch-capable members (:class:`BatchLocalizer` — the MCL adapters)
    are stepped through :meth:`SynPF.update_batch
    <repro.core.particle_filter.SynPF.update_batch>`, which folds every
    same-map dedup raycast into one fused kernel invocation with
    bit-identical per-session results.  Everything else — scan matchers,
    third-party localizers — falls back to a solo ``update`` loop, so
    heterogeneous fleets work unchanged.
    """
    localizers = list(localizers)
    n = len(localizers)
    if len(deltas) != n or len(scans) != n:
        raise ValueError("localizers, deltas and scans must have the same length")
    poses: List[Optional[np.ndarray]] = [None] * n
    batchable = [
        i for i, loc in enumerate(localizers)
        if isinstance(loc, BatchLocalizer) and getattr(loc, "supports_batch", False)
    ]
    if len(batchable) >= 2:
        from repro.core.particle_filter import SynPF

        estimates = SynPF.update_batch(
            [localizers[i].pf for i in batchable],
            [deltas[i] for i in batchable],
            [scans[i].ranges for i in batchable],
            [scans[i].angles for i in batchable],
        )
        for i, est in zip(batchable, estimates):
            poses[i] = est.pose
    for i in range(n):
        if poses[i] is None:
            poses[i] = localizers[i].update(deltas[i], scans[i])
    return poses  # type: ignore[return-value]
