"""Particle-filter motion models.

Two models are implemented, matching the comparison in the paper's Fig. 1:

* :class:`DiffDriveMotionModel` — the classic odometry motion model from
  *Probabilistic Robotics* [2].  Noise on the rotation components scales
  with distance travelled, which at racing speed produces "unrealistically
  high angular uncertainties ... resulting in particles being in infeasible
  positions" (paper §II).

* :class:`TumMotionModel` — the model of Stahl et al. [4] used by SynPF.
  Particles are propagated through Ackermann (bicycle) kinematics with
  noise injected on *speed* and *steering angle*, and the sampled steering
  is clipped to what the car can physically sustain at its current speed
  (lateral-acceleration limit).  Since the feasible steering angle shrinks
  like ``1/v^2``, heading dispersion *decreases* as the car goes faster —
  exactly the reduced lateral action space of Fig. 1 (right).

Both models consume an :class:`OdometryDelta` — the relative motion
reported by wheel odometry since the last update, plus the measured speed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.utils.angles import wrap_to_pi

__all__ = [
    "OdometryDelta",
    "MotionModel",
    "DiffDriveMotionModel",
    "TumMotionModel",
]


@dataclass(frozen=True)
class OdometryDelta:
    """Relative motion measured by odometry between two filter updates.

    Attributes
    ----------
    dx, dy:
        Translation in the robot frame at the *start* of the interval
        (forward, left), metres.
    dtheta:
        Heading change, radians.
    velocity:
        Longitudinal speed over the interval, m/s (signed; negative =
        reversing).
    dt:
        Interval duration, seconds.
    """

    dx: float
    dy: float
    dtheta: float
    velocity: float = 0.0
    dt: float = 0.0

    @staticmethod
    def from_poses(prev: np.ndarray, now: np.ndarray, dt: float = 0.0) -> "OdometryDelta":
        """Delta between two odometry-frame poses ``(x, y, theta)``."""
        dx_world = float(now[0] - prev[0])
        dy_world = float(now[1] - prev[1])
        c, s = np.cos(prev[2]), np.sin(prev[2])
        dx = c * dx_world + s * dy_world
        dy = -s * dx_world + c * dy_world
        dtheta = float(wrap_to_pi(now[2] - prev[2]))
        velocity = np.hypot(dx, dy) / dt * np.sign(dx if dx != 0 else 1.0) if dt > 0 else 0.0
        return OdometryDelta(dx, dy, dtheta, float(velocity), dt)

    @property
    def trans(self) -> float:
        """Translation magnitude, metres."""
        return float(np.hypot(self.dx, self.dy))

    def compose(self, later: "OdometryDelta") -> "OdometryDelta":
        """Chain two consecutive deltas into one covering both intervals.

        Used to accumulate high-rate odometry (100 Hz) between lower-rate
        filter updates (each LiDAR scan).  Velocity is the duration-weighted
        mean.
        """
        c, s = np.cos(self.dtheta), np.sin(self.dtheta)
        dx = self.dx + c * later.dx - s * later.dy
        dy = self.dy + s * later.dx + c * later.dy
        dtheta = float(wrap_to_pi(self.dtheta + later.dtheta))
        total_dt = self.dt + later.dt
        if total_dt > 0:
            velocity = (self.velocity * self.dt + later.velocity * later.dt) / total_dt
        else:
            velocity = later.velocity
        return OdometryDelta(float(dx), float(dy), dtheta, float(velocity), total_dt)


class MotionModel(abc.ABC):
    """Propagates a particle set through one odometry interval, with noise."""

    @abc.abstractmethod
    def propagate(
        self,
        particles: np.ndarray,
        delta: OdometryDelta,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return a new ``(N, 3)`` particle array moved by ``delta`` + noise.

        The input array is not modified.
        """

    def propagate_soa(
        self,
        xy: np.ndarray,
        theta: np.ndarray,
        delta: OdometryDelta,
        rng: np.random.Generator,
        out_xy: np.ndarray,
        out_theta: np.ndarray,
    ) -> None:
        """Structure-of-arrays propagation (the ParticleCloud hot path).

        Same draws in the same order and the same elementwise float
        expressions as :meth:`propagate`, so results are bitwise
        identical — only the memory layout differs.  Output arrays may
        alias the inputs (implementations must materialise every read of
        an input before writing over it, which plain NumPy expression
        evaluation already guarantees).  This base implementation
        round-trips through :meth:`propagate` so third-party AoS models
        conform unchanged.
        """
        particles = np.empty((theta.shape[0], 3))
        particles[:, :2] = xy
        particles[:, 2] = theta
        out = self.propagate(particles, delta, rng)
        out_xy[:] = out[:, :2]
        out_theta[:] = out[:, 2]

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass
class DiffDriveMotionModel(MotionModel):
    """Odometry motion model, *Probabilistic Robotics* ch. 5.4 [2].

    Motion is decomposed into rotate (``rot1``) – translate (``trans``) –
    rotate (``rot2``); each component is perturbed with zero-mean Gaussian
    noise whose standard deviation mixes all three magnitudes through the
    ``alpha`` gains:

    * ``alpha1``: rotation noise from rotation,
    * ``alpha2``: rotation noise from translation  ← the racing killer:
      at 7 m/s and 25 ms updates, ``trans`` ≈ 0.18 m per step feeds
      directly into heading spread regardless of physical feasibility,
    * ``alpha3``: translation noise from translation,
    * ``alpha4``: translation noise from rotation.
    """

    alpha1: float = 0.2
    alpha2: float = 0.2
    alpha3: float = 0.1
    alpha4: float = 0.05

    def propagate(
        self,
        particles: np.ndarray,
        delta: OdometryDelta,
        rng: np.random.Generator,
    ) -> np.ndarray:
        particles = np.asarray(particles, dtype=float)
        out = np.empty_like(particles)
        self.propagate_soa(
            particles[:, :2], particles[:, 2], delta, rng,
            out[:, :2], out[:, 2],
        )
        return out

    def propagate_soa(
        self,
        xy: np.ndarray,
        theta: np.ndarray,
        delta: OdometryDelta,
        rng: np.random.Generator,
        out_xy: np.ndarray,
        out_theta: np.ndarray,
    ) -> None:
        n = theta.shape[0]
        trans = delta.trans

        # Decompose the measured delta.  For near-zero translation the
        # rot1/rot2 split is ill-defined; attribute everything to rot2.
        if trans > 1e-6:
            rot1 = float(wrap_to_pi(np.arctan2(delta.dy, delta.dx)))
            # Reversing: the robot faces away from its motion direction.
            if delta.dx < 0:
                rot1 = float(wrap_to_pi(rot1 + np.pi))
                trans = -trans
        else:
            rot1 = 0.0
        rot2 = float(wrap_to_pi(delta.dtheta - rot1))

        abs_trans = abs(trans)
        std_rot1 = np.sqrt(self.alpha1 * rot1**2 + self.alpha2 * abs_trans**2)
        std_trans = np.sqrt(
            self.alpha3 * trans**2 + self.alpha4 * (rot1**2 + rot2**2)
        )
        std_rot2 = np.sqrt(self.alpha1 * rot2**2 + self.alpha2 * abs_trans**2)

        rot1_hat = rot1 + rng.normal(0.0, std_rot1 + 1e-12, size=n)
        trans_hat = trans + rng.normal(0.0, std_trans + 1e-12, size=n)
        rot2_hat = rot2 + rng.normal(0.0, std_rot2 + 1e-12, size=n)

        # Every input read below lands in a materialised temporary before
        # the corresponding output column is assigned, so out arrays may
        # alias the inputs (the in-place ParticleCloud path).
        heading = theta + rot1_hat
        out_xy[:, 0] = xy[:, 0] + trans_hat * np.cos(heading)
        out_xy[:, 1] = xy[:, 1] + trans_hat * np.sin(heading)
        out_theta[:] = wrap_to_pi(theta + rot1_hat + rot2_hat)


@dataclass
class TumMotionModel(MotionModel):
    """Ackermann motion model with speed-dependent steering bounds [4].

    Each particle samples a noisy speed and a noisy steering angle around
    the values implied by odometry, then rolls forward through kinematic
    bicycle equations.  The sampled steering is clipped to

    ``delta_max(v) = min(max_steer, atan(a_lat_max * L / v^2))``

    — the largest angle the tires can hold at speed ``v`` without exceeding
    the lateral-acceleration limit.  At 7 m/s with ``a_lat_max = 8 m/s^2``
    and ``L = 0.32 m`` this is just 3 degrees, so fast particles fan out
    far less in heading than the diff-drive model allows (Fig. 1 right).

    Parameters
    ----------
    wheelbase:
        Bicycle-model wheelbase L, metres (F1TENTH: 0.32).
    sigma_speed_frac, sigma_speed_min:
        Speed noise std = ``max(sigma_speed_min, sigma_speed_frac * |v|)``.
        The fractional term models wheel-slip-proportional error; the
        default of 30% is deliberately wide so the particle cloud covers
        genuine wheel-spin/lock-up episodes — this is SynPF's first line
        of robustness against degraded odometry.
    sigma_steer:
        Steering-angle noise std, radians.
    max_steer:
        Mechanical steering limit, radians.
    a_lat_max:
        Lateral-acceleration limit used for the speed-dependent clip.
    sigma_slip_y:
        Lateral diffusion as a *fraction of the distance travelled* this
        step, so the filter can track genuine sideways motion (drift) that
        Ackermann kinematics forbid.  Scaling with travel keeps the model
        consistent with Fig. 1: at crawling speed there is no slip to
        track and the lateral fan stays tight.
    """

    wheelbase: float = 0.32
    sigma_speed_frac: float = 0.30
    sigma_speed_min: float = 0.10
    sigma_steer: float = 0.06
    max_steer: float = 0.42
    a_lat_max: float = 8.0
    sigma_slip_y: float = 0.10

    def steering_bound(self, speed: float) -> float:
        """Feasible steering magnitude at ``speed`` (see class docstring)."""
        speed = abs(float(speed))
        if speed < 0.5:
            return self.max_steer
        geometric = np.arctan(self.a_lat_max * self.wheelbase / speed**2)
        return float(min(self.max_steer, geometric))

    def implied_steering(self, delta: OdometryDelta) -> float:
        """Steering angle that would produce the measured yaw rate."""
        v = abs(delta.velocity)
        if delta.dt <= 0 or v < 1e-3:
            return 0.0
        yaw_rate = delta.dtheta / delta.dt
        return float(np.arctan(yaw_rate * self.wheelbase / max(v, 1e-3)))

    def propagate(
        self,
        particles: np.ndarray,
        delta: OdometryDelta,
        rng: np.random.Generator,
    ) -> np.ndarray:
        particles = np.asarray(particles, dtype=float)
        out = np.empty_like(particles)
        self.propagate_soa(
            particles[:, :2], particles[:, 2], delta, rng,
            out[:, :2], out[:, 2],
        )
        return out

    def propagate_soa(
        self,
        xy: np.ndarray,
        theta: np.ndarray,
        delta: OdometryDelta,
        rng: np.random.Generator,
        out_xy: np.ndarray,
        out_theta: np.ndarray,
    ) -> None:
        n = theta.shape[0]
        dt = delta.dt if delta.dt > 0 else 1.0
        v_meas = delta.velocity if delta.dt > 0 else delta.trans
        steer_meas = self.implied_steering(delta)

        sigma_v = max(self.sigma_speed_min, self.sigma_speed_frac * abs(v_meas))
        v = v_meas + rng.normal(0.0, sigma_v, size=n)
        bound = self.steering_bound(v_meas)
        steer = np.clip(
            steer_meas + rng.normal(0.0, self.sigma_steer, size=n),
            -bound,
            bound,
        )

        yaw_rate = v / self.wheelbase * np.tan(steer)
        dtheta = yaw_rate * dt
        ds = v * dt

        # Exact constant-curvature rollout: the chord of an arc of length
        # ``ds`` turning by ``dtheta`` has length ``ds * sinc(dtheta/2)``
        # and points ``dtheta/2`` off the initial heading.  numpy's sinc is
        # normalised (sin(pi x)/(pi x)), hence the 2*pi divisor; it handles
        # the straight-line limit (dtheta -> 0) without a special case.
        chord = ds * np.sinc(dtheta / (2.0 * np.pi))
        dx_local = chord * np.cos(dtheta / 2.0)
        dy_local = chord * np.sin(dtheta / 2.0)
        # Lateral slip diffusion (drift the kinematics cannot express),
        # proportional to this step's travel.
        slip_std = self.sigma_slip_y * abs(v_meas) * dt + 1e-12
        dy_local = dy_local + rng.normal(0.0, slip_std, size=n)

        # Materialised temporaries before every aliased write, as in the
        # diff-drive model: out arrays may be the input views themselves.
        c, s = np.cos(theta), np.sin(theta)
        new_theta = wrap_to_pi(theta + dtheta)
        out_xy[:, 0] = xy[:, 0] + c * dx_local - s * dy_local
        out_xy[:, 1] = xy[:, 1] + s * dx_local + c * dy_local
        out_theta[:] = new_theta
