"""Laser odometry: ego-motion from consecutive LiDAR scans (ICP).

A third proprioception-free odometry source: match each scan against the
previous one and integrate the relative transforms.  Wheel slip cannot
touch it — the trade is different failure modes (featureless corridors,
fast rotations between scans) and higher compute.

The matcher is classic point-to-point ICP:

1. seed with a constant-velocity prediction (the previous interval's
   motion);
2. associate each new-scan point with its nearest previous-scan point
   (k-d tree), rejecting pairs beyond an adaptive distance gate;
3. solve the closed-form 2D rigid alignment (Horn/umeyama on the matched
   pairs);
4. iterate to convergence.

`LaserOdometry` wraps the matcher into the same
:class:`~repro.core.motion_models.OdometryDelta` stream interface as
:class:`~repro.sim.odometry.WheelOdometry` and the fusion EKF, so the
experiment harness can swap it in (``odometry_source="laser"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.core.motion_models import OdometryDelta
from repro.slam.pose_graph import apply_relative
from repro.utils.angles import wrap_to_pi

__all__ = ["IcpConfig", "icp_match", "LaserOdometry"]


@dataclass(frozen=True)
class IcpConfig:
    """ICP iteration and gating parameters."""

    max_iterations: int = 25
    convergence_eps: float = 1e-4
    max_pair_distance: float = 0.5
    min_pairs: int = 12
    max_points: int = 300
    # A result whose matched-pair RMS residual is below this is accepted
    # even if the iteration cap hit first (ICP commonly oscillates at
    # sub-millimetre scale without formally converging).
    accept_rms: float = 0.08

    def validate(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.max_pair_distance <= 0:
            raise ValueError("max_pair_distance must be positive")
        if self.min_pairs < 3:
            raise ValueError("min_pairs must be >= 3 (rigid 2D needs 3 dof)")


def _rigid_fit(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Closed-form least-squares rigid transform source -> target.

    Returns ``(dx, dy, dtheta)`` such that ``R(dtheta) p + t`` maps each
    source point onto its target.
    """
    mu_s = source.mean(axis=0)
    mu_t = target.mean(axis=0)
    s = source - mu_s
    t = target - mu_t
    # 2D Kabsch: the optimal angle has a closed form.
    num = float(np.sum(s[:, 0] * t[:, 1] - s[:, 1] * t[:, 0]))
    den = float(np.sum(s[:, 0] * t[:, 0] + s[:, 1] * t[:, 1]))
    theta = np.arctan2(num, den)
    c, sn = np.cos(theta), np.sin(theta)
    tx = mu_t[0] - (c * mu_s[0] - sn * mu_s[1])
    ty = mu_t[1] - (sn * mu_s[0] + c * mu_s[1])
    return np.array([tx, ty, theta])


def _transform(rel: np.ndarray, pts: np.ndarray) -> np.ndarray:
    c, s = np.cos(rel[2]), np.sin(rel[2])
    out = np.empty_like(pts)
    out[:, 0] = c * pts[:, 0] - s * pts[:, 1] + rel[0]
    out[:, 1] = s * pts[:, 0] + c * pts[:, 1] + rel[1]
    return out


def icp_match(
    prev_points: np.ndarray,
    new_points: np.ndarray,
    initial_rel: Optional[np.ndarray] = None,
    config: IcpConfig | None = None,
) -> Tuple[np.ndarray, bool, float]:
    """Relative pose of the *new* frame in the *previous* frame.

    Semantics: a point ``p`` seen in the new frame appears at
    ``R(dtheta) p + t`` in the previous frame — i.e. the returned triple is
    exactly the robot's motion between the two scans.

    Returns ``(rel, converged, rms_residual)``.
    """
    config = config or IcpConfig()
    config.validate()
    prev_points = np.asarray(prev_points, dtype=float)
    new_points = np.asarray(new_points, dtype=float)
    if prev_points.shape[0] < config.min_pairs or \
            new_points.shape[0] < config.min_pairs:
        return (initial_rel.copy() if initial_rel is not None
                else np.zeros(3)), False, float("inf")

    def subsample(pts):
        if pts.shape[0] <= config.max_points:
            return pts
        idx = np.linspace(0, pts.shape[0] - 1, config.max_points)
        return pts[np.unique(idx.round().astype(np.int64))]

    prev_points = subsample(prev_points)
    new_points = subsample(new_points)
    tree = cKDTree(prev_points)

    rel = (initial_rel.copy() if initial_rel is not None else np.zeros(3))
    converged = False
    rms = float("inf")
    for _ in range(config.max_iterations):
        moved = _transform(rel, new_points)
        dists, idx = tree.query(moved)
        gate = max(config.max_pair_distance,
                   float(np.median(dists)) * 2.0)
        keep = dists < gate
        if keep.sum() < config.min_pairs:
            return rel, False, float("inf")

        step = _rigid_fit(moved[keep], prev_points[idx[keep]])
        # Compose: new rel = step ∘ rel.
        c, s = np.cos(step[2]), np.sin(step[2])
        rel = np.array(
            [
                step[0] + c * rel[0] - s * rel[1],
                step[1] + s * rel[0] + c * rel[1],
                wrap_to_pi(rel[2] + step[2]),
            ]
        )
        rms = float(np.sqrt(np.mean(dists[keep] ** 2)))
        if abs(step[2]) < config.convergence_eps and \
                np.hypot(step[0], step[1]) < config.convergence_eps:
            converged = True
            break
    if not converged and rms < config.accept_rms:
        converged = True
    return rel, converged, rms


class LaserOdometry:
    """Integrates scan-to-scan ICP into an odometry stream.

    ``step(points_sensor, dt)`` consumes the hit points of one scan (sensor
    frame) and returns the interval's :class:`OdometryDelta`.  The first
    call returns a zero delta (nothing to match against yet).
    """

    def __init__(self, config: IcpConfig | None = None) -> None:
        self.config = config or IcpConfig()
        self.config.validate()
        self.pose = np.zeros(3)
        self._prev_points: Optional[np.ndarray] = None
        self._last_rel = np.zeros(3)
        self.num_failures = 0

    def reset(self, pose: Optional[np.ndarray] = None) -> None:
        self.pose = (np.asarray(pose, dtype=float).copy()
                     if pose is not None else np.zeros(3))
        self._prev_points = None
        self._last_rel = np.zeros(3)

    def step(self, points_sensor: np.ndarray, dt: float) -> OdometryDelta:
        if dt <= 0:
            raise ValueError("dt must be positive")
        points_sensor = np.asarray(points_sensor, dtype=float)
        if self._prev_points is None:
            self._prev_points = points_sensor
            return OdometryDelta(0.0, 0.0, 0.0, 0.0, dt)

        rel, converged, _ = icp_match(
            self._prev_points, points_sensor,
            initial_rel=self._last_rel,  # constant-velocity seed
            config=self.config,
        )
        if not converged:
            self.num_failures += 1
            rel = self._last_rel.copy()  # coast on the prediction

        self._prev_points = points_sensor
        self._last_rel = rel.copy()
        self.pose = apply_relative(self.pose, rel)
        speed = float(np.hypot(rel[0], rel[1]) / dt) * np.sign(
            rel[0] if rel[0] != 0 else 1.0
        )
        return OdometryDelta(float(rel[0]), float(rel[1]),
                             float(rel[2]), speed, dt)
