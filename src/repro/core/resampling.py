"""Particle resampling schemes and degeneracy diagnostics.

Resampling replaces the weighted particle set with an unweighted one drawn
(approximately) in proportion to the weights.  The scheme affects both
variance and cost:

* ``multinomial`` — i.i.d. draws; unbiased but highest variance;
* ``stratified`` — one draw per equal weight stratum;
* ``systematic`` — a single random offset, strata spacing 1/N; lowest
  variance, O(N), the standard choice in robot localization and the
  default here (both the MIT and TUM filters use it);
* ``residual`` — deterministic copies of the integer parts of ``N*w``,
  multinomial on the remainder.

Resampling is triggered only when the *effective sample size*
``1 / sum(w^2)`` drops below a configurable fraction of N, avoiding
unnecessary variance injection when weights are still well spread.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "effective_sample_size",
    "multinomial_resample",
    "stratified_resample",
    "systematic_resample",
    "residual_resample",
    "resample_indices",
    "RESAMPLING_SCHEMES",
]


def _validated_weights(weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1D array")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValueError("weights must sum to a positive finite value")
    return weights / total


def effective_sample_size(weights: np.ndarray) -> float:
    """Kish effective sample size ``1 / sum(w_i^2)`` of normalised weights.

    Equals N for uniform weights and 1 when a single particle carries all
    the mass.
    """
    w = _validated_weights(weights)
    return float(1.0 / np.sum(w**2))


def _output_size(w: np.ndarray, size) -> int:
    if size is None:
        return w.size
    size = int(size)
    if size < 1:
        raise ValueError("size must be >= 1")
    return size


def multinomial_resample(weights: np.ndarray, rng: np.random.Generator,
                         size: int | None = None) -> np.ndarray:
    w = _validated_weights(weights)
    m = _output_size(w, size)
    return rng.choice(w.size, size=m, p=w)


def stratified_resample(weights: np.ndarray, rng: np.random.Generator,
                        size: int | None = None) -> np.ndarray:
    w = _validated_weights(weights)
    m = _output_size(w, size)
    positions = (np.arange(m) + rng.uniform(0.0, 1.0, size=m)) / m
    return np.searchsorted(np.cumsum(w), positions).clip(0, w.size - 1)


def systematic_resample(weights: np.ndarray, rng: np.random.Generator,
                        size: int | None = None) -> np.ndarray:
    w = _validated_weights(weights)
    m = _output_size(w, size)
    positions = (np.arange(m) + rng.uniform(0.0, 1.0)) / m
    return np.searchsorted(np.cumsum(w), positions).clip(0, w.size - 1)


def residual_resample(weights: np.ndarray, rng: np.random.Generator,
                      size: int | None = None) -> np.ndarray:
    w = _validated_weights(weights)
    m = _output_size(w, size)
    counts = np.floor(m * w).astype(np.int64)
    indices = np.repeat(np.arange(w.size), counts)
    remaining = m - indices.size
    if remaining > 0:
        residual = m * w - counts
        residual_sum = residual.sum()
        if residual_sum <= 0:
            extra = rng.choice(w.size, size=remaining)
        else:
            extra = rng.choice(w.size, size=remaining, p=residual / residual_sum)
        indices = np.concatenate([indices, extra])
    return indices


RESAMPLING_SCHEMES = {
    "multinomial": multinomial_resample,
    "stratified": stratified_resample,
    "systematic": systematic_resample,
    "residual": residual_resample,
}


def resample_indices(
    weights: np.ndarray, rng: np.random.Generator, scheme: str = "systematic",
    size: int | None = None,
) -> np.ndarray:
    """Dispatch to a named resampling scheme.

    Returns ``(size,)`` indices into the weight vector; ``size`` defaults
    to the current particle count (KLD-adaptive filters pass a different
    target to grow or shrink the set).
    """
    try:
        fn = RESAMPLING_SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown resampling scheme {scheme!r}; "
            f"choose from {sorted(RESAMPLING_SCHEMES)}"
        ) from None
    return fn(weights, rng, size=size)
