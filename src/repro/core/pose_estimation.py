"""Point estimates and spread diagnostics from a weighted particle set.

The filter's published pose is the weighted mean of the particle cloud,
with the heading averaged *circularly* (a linear mean of headings straddling
+-pi points backwards).  ``particle_spread`` summarises cloud dispersion,
used both as a convergence diagnostic and by the Fig. 1 motion-model
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.angles import circular_mean, circular_std

__all__ = ["estimate_pose", "particle_spread", "ParticleSpread"]


def estimate_pose(particles: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """Weighted mean pose ``(x, y, theta)`` of a particle set.

    ``weights`` defaults to uniform.  Heading uses the circular mean.
    """
    particles = np.atleast_2d(np.asarray(particles, dtype=float))
    if particles.shape[0] == 0:
        raise ValueError("cannot estimate pose from an empty particle set")
    if weights is None:
        x = particles[:, 0].mean()
        y = particles[:, 1].mean()
        theta = circular_mean(particles[:, 2])
    else:
        weights = np.asarray(weights, dtype=float)
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must have positive sum")
        w = weights / total
        x = float(np.dot(w, particles[:, 0]))
        y = float(np.dot(w, particles[:, 1]))
        theta = circular_mean(particles[:, 2], w)
    return np.array([x, y, theta])


@dataclass(frozen=True)
class ParticleSpread:
    """Dispersion summary of a particle cloud.

    ``longitudinal`` / ``lateral`` are standard deviations along / across
    the mean heading — the axes Fig. 1 of the paper is drawn in.
    """

    std_x: float
    std_y: float
    std_theta: float
    longitudinal: float
    lateral: float

    @property
    def position_rms(self) -> float:
        return float(np.hypot(self.std_x, self.std_y))


def particle_spread(
    particles: np.ndarray, weights: np.ndarray | None = None
) -> ParticleSpread:
    """Weighted spread statistics of a particle cloud."""
    particles = np.atleast_2d(np.asarray(particles, dtype=float))
    n = particles.shape[0]
    if n == 0:
        raise ValueError("cannot summarise an empty particle set")
    if weights is None:
        w = np.full(n, 1.0 / n)
    else:
        weights = np.asarray(weights, dtype=float)
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must have positive sum")
        w = weights / total

    mean = estimate_pose(particles, w)
    dx = particles[:, 0] - mean[0]
    dy = particles[:, 1] - mean[1]
    std_x = float(np.sqrt(np.dot(w, dx**2)))
    std_y = float(np.sqrt(np.dot(w, dy**2)))
    std_theta = circular_std(particles[:, 2], w)

    c, s = np.cos(mean[2]), np.sin(mean[2])
    longitudinal = float(np.sqrt(np.dot(w, (c * dx + s * dy) ** 2)))
    lateral = float(np.sqrt(np.dot(w, (-s * dx + c * dy) ** 2)))
    return ParticleSpread(std_x, std_y, std_theta, longitudinal, lateral)
