"""SynPF — the paper's primary contribution.

An MCL (Monte-Carlo Localization) filter synthesising the strengths of two
prior particle-filter lines of work for the high-speed racing domain
(paper §II):

* from the **TUM PF** [4]: a motion model that accounts for the reduced
  lateral action space at high longitudinal velocity (Fig. 1), and the
  **boxed LiDAR layout** that spaces scanlines by corridor intersection
  rather than by angle;
* from the **MIT PF / rangelibc** [3]: the discretised beam sensor model
  and accelerated range queries (GPU ray casting or the LUT used here).

:class:`~repro.core.particle_filter.SynPF` is the headline class;
:func:`~repro.core.particle_filter.make_vanilla_mcl` builds the classic
diff-drive + uniform-layout MCL baseline used in ablations.
"""

from repro.core.interfaces import (
    LOCALIZER_METHODS,
    BatchLocalizer,
    CartographerLocalizer,
    Localizer,
    SynPFLocalizer,
    make_localizer,
    update_localizers_batch,
)
from repro.core.kld import kld_sample_size, occupied_bins
from repro.core.laser_odometry import IcpConfig, LaserOdometry, icp_match
from repro.core.motion_models import (
    DiffDriveMotionModel,
    MotionModel,
    OdometryDelta,
    TumMotionModel,
)
from repro.core.odometry_fusion import FusionConfig, OdometryImuEkf
from repro.core.particle_cloud import BufferPool, ParticleCloud
from repro.core.particle_filter import (
    ParticleFilterConfig,
    SynPF,
    make_synpf,
    make_vanilla_mcl,
)
from repro.core.pose_estimation import estimate_pose, particle_spread
from repro.core.resampling import (
    effective_sample_size,
    resample_indices,
)
from repro.core.scan_layout import BoxedScanLayout, ScanLayout, UniformScanLayout
from repro.core.sensor_models import BeamSensorModel, SensorModelConfig
from repro.core.supervisor import LocalizationSupervisor, SupervisorConfig

__all__ = [
    "BatchLocalizer",
    "BeamSensorModel",
    "BoxedScanLayout",
    "BufferPool",
    "CartographerLocalizer",
    "DiffDriveMotionModel",
    "FusionConfig",
    "IcpConfig",
    "LOCALIZER_METHODS",
    "LaserOdometry",
    "Localizer",
    "LocalizationSupervisor",
    "MotionModel",
    "SupervisorConfig",
    "SynPFLocalizer",
    "OdometryDelta",
    "OdometryImuEkf",
    "ParticleCloud",
    "ParticleFilterConfig",
    "ScanLayout",
    "SensorModelConfig",
    "SynPF",
    "TumMotionModel",
    "UniformScanLayout",
    "effective_sample_size",
    "estimate_pose",
    "icp_match",
    "kld_sample_size",
    "make_localizer",
    "make_synpf",
    "make_vanilla_mcl",
    "occupied_bins",
    "particle_spread",
    "resample_indices",
    "update_localizers_batch",
]
