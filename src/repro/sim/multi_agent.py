"""Multi-vehicle simulation: the ego simulator plus opponent traffic.

:class:`MultiAgentSimulator` extends the single-car
:class:`~repro.sim.simulator.Simulator` with a field of
:class:`~repro.sim.agents.OpponentAgent` cars sharing the track.  Each
physics step first advances every opponent's dynamics (against the ego's
*pre-step* state, so decision order cannot matter), then advances the ego
exactly as the base class does.  Opponents are registered in
``self.obstacles``, so inter-vehicle LiDAR occlusion falls out of the
existing scan compositing: each opponent hull shadows the map with a
per-beam min range.

Determinism contract: opponents consume no rng while stepping, and the
ego's noise streams are untouched by their presence in the schedule —
with an *empty* agent list the simulator is bit-identical to the
single-agent :class:`Simulator`, which the tests pin.  The per-scan
occluded-beam statistics accumulated here are pure functions of the
composited geometry, so campaign scorecards built on them stay
worker-count invariant.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Optional, Sequence

import numpy as np

from repro.maps.occupancy_grid import OccupancyGrid
from repro.sim.agents import OpponentAgent
from repro.sim.simulator import SimConfig, SimFrame, Simulator

__all__ = ["OCCLUSION_FRACTION_EDGES", "MultiAgentSimulator"]

#: Fixed bucket edges for the occluded-beam-fraction histogram.  Shared by
#: the simulator's accumulation and the campaign telemetry fold so merged
#: snapshots line up (same contract as the runner's latency edges).
OCCLUSION_FRACTION_EDGES = (0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4)


class MultiAgentSimulator(Simulator):
    """Steps N vehicles on one track; the ego owns sensors and scoring.

    Parameters
    ----------
    grid:
        Ground-truth occupancy grid (shared by every car).
    config:
        Ego simulation config (see :class:`~repro.sim.simulator.SimConfig`).
    agents:
        Opponent agents.  They occlude the ego's LiDAR but are not
        collision-checked against the ego (disc obstacles, matching the
        single-agent obstacle semantics).
    """

    def __init__(self, grid: OccupancyGrid, config: SimConfig | None = None,
                 agents: Sequence[OpponentAgent] = ()) -> None:
        super().__init__(grid, config)
        self.agents = list(agents)
        self.obstacles.extend(self.agents)
        self._traffic_scans = 0
        self._traffic_scans_occluded = 0
        self._traffic_beams = 0
        self._traffic_occluded_beams = 0
        self._occ_fraction_sum = 0.0
        self._occ_fraction_max = 0.0
        # len(edges) + 1 buckets, bisect_left semantics — exactly the
        # telemetry Histogram's binning, so trial snapshots can adopt the
        # counts directly.
        self._occ_fraction_counts = [0] * (len(OCCLUSION_FRACTION_EDGES) + 1)
        self._min_gap_m = float("inf")

    def step(self, target_speed: float, target_steer: float) -> SimFrame:
        """Advance the whole field one physics step."""
        ego_pose = self.state.pose()
        ego_speed = float(self.state.v)
        dt = self.config.physics_dt
        for agent in self.agents:
            agent.step(dt, self.time, ego_pose, ego_speed)
        frame = super().step(target_speed, target_steer)

        if self.agents:
            ego_xy = frame.state.pose()[:2]
            for agent in self.agents:
                gap = float(np.hypot(*(agent.position(self.time) - ego_xy)))
                gap -= agent.radius
                if gap < self._min_gap_m:
                    self._min_gap_m = gap
            if frame.scan is not None:
                fraction = self.lidar.last_occluded_fraction
                self._traffic_scans += 1
                self._traffic_beams += frame.scan.ranges.size
                self._traffic_occluded_beams += self.lidar.last_occluded_beams
                self._occ_fraction_sum += fraction
                if fraction > self._occ_fraction_max:
                    self._occ_fraction_max = fraction
                if fraction > 0.0:
                    self._traffic_scans_occluded += 1
                self._occ_fraction_counts[
                    bisect_left(OCCLUSION_FRACTION_EDGES, fraction)
                ] += 1
        return frame

    def traffic_telemetry(self) -> Dict:
        """Deterministic ``traffic.*`` counters for this run.

        Everything here is a function of the simulated geometry only (no
        wall-clock values), so campaign scorecards folding these stay
        bit-identical at any worker count.
        """
        scans = self._traffic_scans
        mean = self._occ_fraction_sum / scans if scans else 0.0
        min_gap: Optional[float] = (
            round(self._min_gap_m, 9) if np.isfinite(self._min_gap_m)
            else None
        )
        return {
            "agents": len(self.agents),
            "policies": [agent.policy.kind for agent in self.agents],
            "scans": scans,
            "scans_occluded": self._traffic_scans_occluded,
            "beams": self._traffic_beams,
            "occluded_beams": self._traffic_occluded_beams,
            "occluded_beam_fraction_mean": round(mean, 9),
            "occluded_beam_fraction_max": round(self._occ_fraction_max, 9),
            "occlusion_histogram": {
                "edges": list(OCCLUSION_FRACTION_EDGES),
                "counts": list(self._occ_fraction_counts),
                "sum": round(self._occ_fraction_sum, 9),
                "count": scans,
            },
            "min_gap_m": min_gap,
        }
