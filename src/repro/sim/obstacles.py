"""Unmapped obstacles: the other cars on a race track.

Racing is not a static world — opponents, gates and stray equipment
produce LiDAR returns that are *not in the map*.  This is exactly the
situation the beam sensor model's ``z_short`` component exists for
(*Probabilistic Robotics* ch. 6.3), and a robustness axis the localization
comparison should cover: an MCL filter expects unexpected short returns;
a scan matcher's occupied-space cost treats them as misalignment evidence.

Obstacles are discs (a 1:10 car is ~0.3 x 0.5 m; a disc of radius 0.25 m
is the right scale and keeps ray intersection exact and cheap):

* :class:`StaticObstacle` — fixed position;
* :class:`RacelineFollower` — drives along a raceline at constant speed
  with a lateral offset, i.e. an opponent car.

:func:`ray_disc_ranges` computes exact ray/disc intersections for a whole
beam fan at once; :class:`~repro.sim.lidar.SimulatedLidar` mins these with
the map ranges.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.maps.centerline import Raceline

__all__ = [
    "Obstacle",
    "StaticObstacle",
    "RacelineFollower",
    "ray_disc_ranges",
    "composite_obstacle_ranges",
]


class Obstacle(abc.ABC):
    """Anything that occludes LiDAR beams but is absent from the map."""

    radius: float

    @abc.abstractmethod
    def position(self, time: float) -> np.ndarray:
        """World ``(x, y)`` centre at simulation time ``time``."""


@dataclass
class StaticObstacle(Obstacle):
    """A fixed disc (cone, gate post, stopped car)."""

    x: float
    y: float
    radius: float = 0.25

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius must be positive")

    def position(self, time: float) -> np.ndarray:
        return np.array([self.x, self.y])


@dataclass
class RacelineFollower(Obstacle):
    """An opponent car lapping the raceline at constant speed.

    Parameters
    ----------
    raceline:
        The line the opponent follows.
    start_s:
        Arclength position at t = 0.
    speed:
        Constant speed along the line, m/s.
    lateral_offset:
        Constant offset from the line (positive = left), m.
    radius:
        Collision/occlusion radius, m.
    """

    raceline: Raceline
    start_s: float = 0.0
    speed: float = 3.0
    lateral_offset: float = 0.0
    radius: float = 0.25

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.speed < 0:
            raise ValueError("speed must be non-negative")

    def position(self, time: float) -> np.ndarray:
        # offset_point_at (not point_at + the piecewise heading_at normal):
        # the interpolated offset direction keeps consecutive positions
        # continuous at every vertex, including the s = 0 wraparound seam,
        # where the raw segment normal used to produce a ~3x teleport
        # spike at realistic offsets.
        s = self.start_s + self.speed * time
        return self.raceline.offset_point_at(s, self.lateral_offset)


def ray_disc_ranges(
    origin: np.ndarray,
    angles_world: np.ndarray,
    center: np.ndarray,
    radius: float,
) -> np.ndarray:
    """Exact first-intersection distance of each ray with a disc.

    Rays start at ``origin`` with world headings ``angles_world``; rays
    that miss the disc (or whose intersection lies behind the origin)
    return ``inf``.  An origin *inside* the disc returns 0 for every ray.
    """
    origin = np.asarray(origin, dtype=float)
    center = np.asarray(center, dtype=float)
    angles_world = np.asarray(angles_world, dtype=float)

    to_center = center - origin[:2]
    dist_sq = float(to_center @ to_center)
    if dist_sq <= radius * radius:
        return np.zeros(angles_world.shape)

    dx = np.cos(angles_world)
    dy = np.sin(angles_world)
    # Ray: o + t d, |d| = 1.  Solve |o + t d - c|^2 = r^2.
    b = dx * to_center[0] + dy * to_center[1]  # = t of closest approach
    disc = b * b - (dist_sq - radius * radius)

    out = np.full(angles_world.shape, np.inf)
    hit = (disc >= 0) & (b > 0)
    t_near = b[hit] - np.sqrt(disc[hit])
    valid = t_near >= 0
    idx = np.flatnonzero(hit)[valid]
    out[idx] = t_near[valid]
    return out


def composite_obstacle_ranges(
    map_ranges: np.ndarray,
    sensor_pose: np.ndarray,
    beam_angles: np.ndarray,
    obstacles,
    time: float,
    max_range: float,
):
    """Min the map's beam ranges with every obstacle's disc returns.

    Pure geometry, no rng: the composited range of each beam is
    ``min(map range, nearest obstacle intersection, max_range)``.  Because
    the per-beam minimum keeps whichever surface is *closer*, an obstacle
    entirely behind a wall can never shorten a beam — the wall's return
    already is the minimum — which is the physical shadowing behaviour.

    Parameters
    ----------
    map_ranges:
        Map-only ranges per beam (from the ray caster).
    sensor_pose:
        World ``(x, y, theta)`` of the sensor.
    beam_angles:
        Beam directions relative to the sensor's forward axis.
    obstacles:
        Iterable of :class:`Obstacle`; each is queried at ``time``.
    max_range:
        Sensor range cap applied after compositing.

    Returns
    -------
    (ranges, occluded):
        Composited ranges and a boolean mask of the beams an obstacle
        strictly shortened.
    """
    map_ranges = np.asarray(map_ranges, dtype=float)
    ranges = map_ranges.copy()
    angles_world = sensor_pose[2] + np.asarray(beam_angles, dtype=float)
    for obstacle in obstacles:
        hits = ray_disc_ranges(
            sensor_pose, angles_world, obstacle.position(time), obstacle.radius
        )
        ranges = np.minimum(ranges, hits)
    ranges = np.minimum(ranges, max_range)
    occluded = ranges < np.minimum(map_ranges, max_range)
    return ranges, occluded
