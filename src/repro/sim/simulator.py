"""Fixed-step simulation scheduler.

Advances the vehicle at a high-rate physics step (default 100 Hz), samples
wheel odometry every step, and emits LiDAR scans at the sensor's own rate
(default 40 Hz), mirroring the asynchronous sensor timing of the real car.

The simulator is deliberately *passive about estimation*: it produces
ground truth and sensor data; experiment loops (see
:mod:`repro.eval.experiment`) own the localizer and controller wiring so
that different algorithms are driven through identical physics.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.motion_models import OdometryDelta
from repro.maps.occupancy_grid import OccupancyGrid
from repro.sim.lidar import LidarConfig, LidarScan, SimulatedLidar
from repro.sim.odometry import OdometryConfig, WheelOdometry
from repro.sim.vehicle import Vehicle, VehicleParams, VehicleState
from repro.utils.rng import make_rng, split_rng

__all__ = ["SimConfig", "SimFrame", "Simulator"]


@dataclass(frozen=True)
class SimConfig:
    """Simulation timing and component configuration."""

    physics_dt: float = 0.01
    vehicle: VehicleParams = field(default_factory=VehicleParams)
    lidar: LidarConfig = field(default_factory=LidarConfig)
    odometry: OdometryConfig = field(default_factory=OdometryConfig)
    seed: Optional[int] = None

    def validate(self) -> None:
        if self.physics_dt <= 0:
            raise ValueError("physics_dt must be positive")
        self.vehicle.validate()
        self.lidar.validate()
        self.odometry.validate()


@dataclass
class SimFrame:
    """Everything produced by one physics step."""

    time: float
    state: VehicleState
    odom_delta: OdometryDelta
    odom_pose: np.ndarray
    scan: Optional[LidarScan]  # present only on LiDAR ticks
    collided: bool


class Simulator:
    """Steps vehicle + sensors through a ground-truth map."""

    def __init__(self, grid: OccupancyGrid, config: SimConfig | None = None) -> None:
        self.config = config or SimConfig()
        self.config.validate()
        self.grid = grid
        root = make_rng(self.config.seed)
        lidar_rng, odom_rng = split_rng(root, 2)

        self.vehicle = Vehicle(self.config.vehicle)
        self.lidar = SimulatedLidar(grid, self.config.lidar, seed=lidar_rng)
        self.odometry = WheelOdometry(self.config.odometry, seed=odom_rng)
        # Unmapped obstacles (opponent cars etc.); append Obstacle objects.
        self.obstacles: list = []

        self.time = 0.0
        self._scan_period = 1.0 / self.config.lidar.rate_hz
        self._next_scan_time = 0.0
        # Fault-injection hook (repro.scenarios): extra delay, in seconds,
        # added to the next scan's emission time — models transport/compute
        # jitter between the sensor and the localizer.  None = no jitter.
        self.scan_jitter_fn: Optional[Callable[[], float]] = None

    def reset(self, pose: np.ndarray, speed: float = 0.0,
              reset_time: bool = True) -> None:
        """Place the car at ``pose`` and restart dead reckoning.

        ``reset_time=False`` keeps the simulation clock running — used when
        re-railing a crashed car mid-experiment, where lap timing must stay
        monotone.
        """
        self.vehicle.reset(np.asarray(pose, dtype=float), speed)
        self.odometry.reset(np.asarray(pose, dtype=float))
        if reset_time:
            self.time = 0.0
            self._next_scan_time = 0.0

    @property
    def state(self) -> VehicleState:
        return self.vehicle.state

    # -- fault-injection hooks (driven by repro.scenarios) -------------
    def teleport(self, pose: np.ndarray) -> None:
        """Instantly move the car to ``pose``, keeping its dynamic state.

        Unlike :meth:`reset` this does **not** restart dead reckoning: the
        wheel odometry keeps integrating as if nothing happened, which is
        exactly the kidnapped-robot situation — the proprioceptive stream
        carries no trace of the jump, only the LiDAR can reveal it.
        """
        pose = np.asarray(pose, dtype=float)
        state = self.vehicle.state
        state.x, state.y, state.theta = float(pose[0]), float(pose[1]), float(pose[2])

    def set_tire(self, tire) -> None:
        """Swap the tire model mid-run (grip loss — oil, rain, wear)."""
        self.vehicle.params = dataclasses.replace(self.vehicle.params, tire=tire)

    @property
    def tire(self):
        return self.vehicle.params.tire

    def step(self, target_speed: float, target_steer: float) -> SimFrame:
        """Advance one physics step under the given actuator targets."""
        dt = self.config.physics_dt
        state = self.vehicle.step(target_speed, target_steer, dt)
        delta = self.odometry.step(state, dt)
        self.time += dt

        scan = None
        if self.time + 1e-9 >= self._next_scan_time:
            scan = self.lidar.scan(
                state.pose(), timestamp=self.time, obstacles=self.obstacles
            )
            self._next_scan_time += self._scan_period
            if self.scan_jitter_fn is not None:
                self._next_scan_time += max(0.0, float(self.scan_jitter_fn()))

        collided = bool(
            self.grid.is_occupied_world(state.pose()[None, :2],
                                        unknown_is_occupied=False)[0]
        )
        return SimFrame(self.time, state, delta, self.odometry.pose.copy(), scan, collided)
