"""Single-track vehicle dynamics with wheel slip.

The model is a kinematic bicycle *augmented with the two slip phenomena the
paper's experiment hinges on*:

1. **Longitudinal slip** — the motor drives the *wheel*; the *chassis* only
   accelerates through tire force, which saturates at ``mu m g``.  Under
   hard throttle on low grip the wheel spins faster than the ground speed
   (and slower under braking), so wheel odometry — which on the real car
   integrates ERPM from the VESC — systematically mis-measures motion.

2. **Lateral saturation** — steering demands a centripetal force
   ``m v^2 tan(delta) / L``; when it exceeds the friction-circle remainder
   the realised yaw rate is scaled down (understeer) and the deficit bleeds
   into body-frame lateral drift that then decays at the kinetic-friction
   rate.

With nominal grip and gentle driving both mechanisms are negligible and the
model collapses to the standard kinematic bicycle; with taped-tire grip and
racing inputs they dominate — which is precisely the HQ/LQ contrast of
Table I.

Default parameters follow the F1TENTH reference vehicle (~3.5 kg, 0.32 m
wheelbase, 0.42 rad steering lock).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.sim.tire import GRAVITY, TireModel
from repro.utils.angles import wrap_to_pi

__all__ = ["VehicleParams", "VehicleState", "Vehicle"]


@dataclass(frozen=True)
class VehicleParams:
    """Physical and actuator parameters of the simulated car."""

    mass: float = 3.46
    wheelbase: float = 0.321
    max_steer: float = 0.4189
    steer_rate: float = 3.2       # rad/s actuator slew
    max_accel: float = 6.0        # m/s^2 motor limit
    max_brake: float = 8.0        # m/s^2 braking limit (at the wheel)
    max_speed: float = 8.0        # m/s drivetrain limit
    drag_coeff: float = 0.08      # N s/m, linear aero+rolling drag
    tire: TireModel = field(default_factory=TireModel)

    def validate(self) -> None:
        if min(self.mass, self.wheelbase, self.max_steer, self.steer_rate,
               self.max_accel, self.max_brake, self.max_speed) <= 0:
            raise ValueError("all vehicle parameters must be positive")
        if self.drag_coeff < 0:
            raise ValueError("drag_coeff must be non-negative")

    def with_grip(self, mu: float) -> "VehicleParams":
        """Copy with a different friction coefficient (tire swap / taping)."""
        return replace(self, tire=replace(self.tire, mu=mu))


@dataclass
class VehicleState:
    """Full dynamic state.

    ``v`` is body-frame longitudinal *ground* speed; ``wheel_speed`` is the
    equivalent linear speed of the driven wheels — their difference is the
    slip the odometry sensor cannot see past.
    """

    x: float = 0.0
    y: float = 0.0
    theta: float = 0.0
    v: float = 0.0
    v_lateral: float = 0.0
    wheel_speed: float = 0.0
    steer: float = 0.0
    yaw_rate: float = 0.0

    def pose(self) -> np.ndarray:
        return np.array([self.x, self.y, self.theta])

    def speed(self) -> float:
        """Total ground speed magnitude."""
        return float(np.hypot(self.v, self.v_lateral))

    def slip_ratio(self) -> float:
        return (self.wheel_speed - self.v) / max(abs(self.v), 0.3)

    def copy(self) -> "VehicleState":
        return VehicleState(**vars(self))


class Vehicle:
    """Steps :class:`VehicleState` under (target speed, target steer) inputs.

    The interface matches how F1TENTH cars are driven: the planner publishes
    a desired speed and steering angle; a low-level controller (modelled
    here as slew/acceleration limits) realises them.
    """

    def __init__(self, params: VehicleParams | None = None,
                 state: VehicleState | None = None) -> None:
        self.params = params or VehicleParams()
        self.params.validate()
        self.state = state or VehicleState()

    def reset(self, pose: np.ndarray, speed: float = 0.0) -> None:
        self.state = VehicleState(
            x=float(pose[0]), y=float(pose[1]), theta=float(pose[2]),
            v=speed, wheel_speed=speed,
        )

    def step(self, target_speed: float, target_steer: float, dt: float) -> VehicleState:
        """Advance the dynamics by ``dt`` seconds; returns the new state."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        p = self.params
        s = self.state
        normal_load = p.mass * GRAVITY

        # --- steering actuator (slew-rate limited) ---------------------
        target_steer = float(np.clip(target_steer, -p.max_steer, p.max_steer))
        steer_step = np.clip(target_steer - s.steer, -p.steer_rate * dt, p.steer_rate * dt)
        steer = s.steer + steer_step

        # --- drivetrain: the motor controls the WHEEL ------------------
        target_speed = float(np.clip(target_speed, 0.0, p.max_speed))
        wheel_accel = np.clip(
            (target_speed - s.wheel_speed) / dt, -p.max_brake, p.max_accel
        )
        wheel_speed = max(s.wheel_speed + wheel_accel * dt, 0.0)

        # --- longitudinal tire force from slip ratio --------------------
        slip_ratio = (wheel_speed - s.v) / max(abs(s.v), 0.3)
        f_x = p.tire.longitudinal_force(slip_ratio, normal_load)
        f_drag = p.drag_coeff * s.v

        # --- lateral dynamics under the friction circle ------------------
        yaw_rate_kin = s.v * np.tan(steer) / p.wheelbase
        f_y_required = p.mass * s.v * yaw_rate_kin
        saturation = p.tire.lateral_saturation(f_y_required, normal_load, f_x)
        yaw_rate = saturation * yaw_rate_kin

        # Unmet centripetal demand becomes outward body-frame drift; when
        # the tires have margin again, drift decays at the kinetic-friction
        # rate (the car "catches" itself).
        a_y_deficit = (1.0 - saturation) * s.v * yaw_rate_kin
        v_lat = s.v_lateral - a_y_deficit * dt
        decay = p.tire.mu * GRAVITY * dt
        v_lat = float(np.sign(v_lat) * max(abs(v_lat) - decay, 0.0))

        # --- integrate -------------------------------------------------
        v = max(s.v + (f_x - f_drag) / p.mass * dt, 0.0)
        c, sn = np.cos(s.theta), np.sin(s.theta)
        x = s.x + (s.v * c - s.v_lateral * sn) * dt
        y = s.y + (s.v * sn + s.v_lateral * c) * dt
        theta = float(wrap_to_pi(s.theta + yaw_rate * dt))

        self.state = VehicleState(
            x=x, y=y, theta=theta, v=v, v_lateral=v_lat,
            wheel_speed=wheel_speed, steer=float(steer), yaw_rate=float(yaw_rate),
        )
        return self.state
