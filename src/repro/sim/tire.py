"""Friction-circle tire model.

The paper quantifies grip by *pulling the car laterally along its centre of
mass* and reading the force at breakaway: 26 N on the nominal tires, 19 N
after taping (§III).  For a car of mass ``m`` that breakaway force is
``mu * m * g``, so the two conditions map directly onto friction
coefficients — :func:`grip_from_pull_force` performs exactly that
conversion and its inverse lets the test suite verify we reproduce the
paper's 26 N / 19 N figures.

The tire model itself is a saturating brush model under a friction-circle
(combined-slip) budget:

* longitudinal force grows linearly with slip ratio, saturating at the
  available longitudinal friction;
* lateral force grows linearly with slip angle, saturating at what is
  *left* of the circle after the longitudinal demand
  (``F_y_max = sqrt((mu Fz)^2 - F_x^2)``).

This is deliberately simpler than a full Pacejka fit but preserves the
behaviour the experiments depend on: under low grip and aggressive
throttle, wheel speed and ground speed diverge (wheel-spin / lock-up), and
tight corners saturate lateral force (understeer + sideways drift).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TireModel",
    "grip_from_pull_force",
    "pull_force_from_grip",
    "GRAVITY",
]

GRAVITY: float = 9.81


def grip_from_pull_force(pull_force_n: float, mass_kg: float) -> float:
    """Friction coefficient implied by a lateral breakaway pull test.

    ``mu = F_pull / (m g)`` — the paper's measurement protocol (§III).
    """
    if pull_force_n <= 0 or mass_kg <= 0:
        raise ValueError("pull force and mass must be positive")
    return pull_force_n / (mass_kg * GRAVITY)


def pull_force_from_grip(mu: float, mass_kg: float) -> float:
    """Inverse of :func:`grip_from_pull_force` — used to report experiment
    conditions in the paper's own units (Newtons)."""
    if mu <= 0 or mass_kg <= 0:
        raise ValueError("mu and mass must be positive")
    return mu * mass_kg * GRAVITY


@dataclass(frozen=True)
class TireModel:
    """Combined-slip saturating tire.

    Parameters
    ----------
    mu:
        Friction coefficient.  The paper's conditions, for the 3.46 kg car
        used here: nominal ("HQ") 26 N -> mu ~ 0.766; taped ("LQ") 19 N ->
        mu ~ 0.560.
    longitudinal_stiffness:
        Slope of F_x vs slip ratio, as a multiple of the normal load
        (dimensionless).  10 means full saturation at ~mu/10 slip ratio.
    cornering_stiffness:
        Slope of F_y vs slip angle, as a multiple of normal load per
        radian.
    """

    mu: float = 0.766
    longitudinal_stiffness: float = 12.0
    cornering_stiffness: float = 9.0

    def __post_init__(self) -> None:
        if self.mu <= 0:
            raise ValueError("mu must be positive")
        if self.longitudinal_stiffness <= 0 or self.cornering_stiffness <= 0:
            raise ValueError("stiffnesses must be positive")

    def max_force(self, normal_load: float) -> float:
        """Total friction budget ``mu * Fz`` (Newtons)."""
        return self.mu * normal_load

    def longitudinal_force(self, slip_ratio: float, normal_load: float) -> float:
        """Traction/braking force from slip ratio, saturated at ``mu Fz``."""
        linear = self.longitudinal_stiffness * normal_load * slip_ratio
        cap = self.max_force(normal_load)
        return float(np.clip(linear, -cap, cap))

    def lateral_force(
        self, slip_angle: float, normal_load: float, longitudinal_force: float = 0.0
    ) -> float:
        """Cornering force from slip angle under the friction-circle budget.

        ``longitudinal_force`` already being transmitted shrinks the
        available lateral capacity: the combined force vector cannot leave
        the circle of radius ``mu Fz``.
        """
        cap_total = self.max_force(normal_load)
        fx = float(np.clip(longitudinal_force, -cap_total, cap_total))
        cap_lat = float(np.sqrt(max(cap_total**2 - fx**2, 0.0)))
        linear = self.cornering_stiffness * normal_load * slip_angle
        return float(np.clip(linear, -cap_lat, cap_lat))

    def lateral_saturation(self, required_lateral_force: float, normal_load: float,
                           longitudinal_force: float = 0.0) -> float:
        """Fraction (<= 1) of a required lateral force the tire can deliver.

        1.0 while inside the friction circle; < 1 when the demand exceeds
        capacity — the vehicle model uses this to scale down yaw response
        (understeer) and inject lateral drift.
        """
        if required_lateral_force == 0.0:
            return 1.0
        cap_total = self.max_force(normal_load)
        fx = float(np.clip(longitudinal_force, -cap_total, cap_total))
        cap_lat = float(np.sqrt(max(cap_total**2 - fx**2, 0.0)))
        return float(min(1.0, cap_lat / abs(required_lateral_force)))
