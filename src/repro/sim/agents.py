"""Opponent vehicles: dynamics-stepped cars with simple racing policies.

Real F1TENTH races are head-to-head: a meaningful fraction of every scan
is *another car*, not the map.  This module generalises the kinematic
:class:`~repro.sim.obstacles.RacelineFollower` into opponents that run the
same single-track :class:`~repro.sim.vehicle.Vehicle` dynamics as the ego
car, steered by pure pursuit toward a lateral lane on the raceline chosen
by a *policy*:

* ``raceline`` — holds a fixed lane at a fixed speed (the pace car);
* ``blocker`` — mirrors the ego's lateral position when the ego closes
  in from behind, defending the inside of the pass;
* ``lane_switcher`` — toggles between left and right lanes on a fixed
  period (a weaving backmarker);
* ``overtaker`` — runs faster than the ego and moves off-line to pass
  when it catches up.

Every decision is a pure function of ``(time, arclength gap to ego, ego
lateral offset)`` — no rng is consumed while stepping, so two runs with
the same construction arguments produce bit-identical trajectories, which
the campaign's worker-count-invariance contract relies on.

Agents implement the :class:`~repro.sim.obstacles.Obstacle` protocol
(``position(time)`` / ``radius``), so the LiDAR compositor treats them
exactly like any other unmapped disc.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.maps.centerline import Raceline
from repro.sim.obstacles import Obstacle
from repro.sim.vehicle import Vehicle, VehicleParams
from repro.utils.angles import wrap_to_pi

__all__ = [
    "OpponentPolicy",
    "RacelinePolicy",
    "BlockerPolicy",
    "LaneSwitcherPolicy",
    "OvertakerPolicy",
    "POLICY_REGISTRY",
    "make_policy",
    "OpponentAgent",
]


class OpponentPolicy(abc.ABC):
    """Chooses ``(target speed, target lane)`` each physics step."""

    kind: str = ""
    speed: float = 2.5

    @abc.abstractmethod
    def decide(self, time: float, gap_s: float,
               ego_d: float) -> Tuple[float, float]:
        """Return ``(target_speed, lateral_offset)``.

        Parameters
        ----------
        time:
            Simulation time, seconds.
        gap_s:
            Forward arclength from this opponent to the ego, wrapped to
            ``[-L/2, L/2)`` — positive means the ego is ahead.
        ego_d:
            The ego's signed lateral offset from the raceline
            (positive = left).
        """


@dataclass(frozen=True)
class RacelinePolicy(OpponentPolicy):
    """Constant speed, constant lane — the pace-car baseline."""

    kind = "raceline"
    speed: float = 2.5
    lane: float = 0.0

    def decide(self, time, gap_s, ego_d):
        return self.speed, self.lane


@dataclass(frozen=True)
class BlockerPolicy(OpponentPolicy):
    """Defends against an ego attacking from behind.

    While the ego is within ``engage_gap_s`` of arclength *behind*, the
    blocker mirrors the ego's lateral position (clipped to ``lane_limit``)
    so the ego always finds a car on its chosen line; otherwise it holds
    the centre.
    """

    kind = "blocker"
    speed: float = 2.2
    lane_limit: float = 0.35
    engage_gap_s: float = 4.0

    def decide(self, time, gap_s, ego_d):
        if -self.engage_gap_s < gap_s < 0.0:
            return self.speed, float(
                np.clip(ego_d, -self.lane_limit, self.lane_limit)
            )
        return self.speed, 0.0


@dataclass(frozen=True)
class LaneSwitcherPolicy(OpponentPolicy):
    """Weaves between lanes on a fixed period.

    ``phase_s`` offsets the toggle schedule so a field of switchers spawned
    from different seeds doesn't move in lockstep; the schedule is a pure
    function of time — deterministic, no rng while stepping.
    """

    kind = "lane_switcher"
    speed: float = 2.4
    lane_magnitude: float = 0.3
    period_s: float = 4.0
    phase_s: float = 0.0

    def decide(self, time, gap_s, ego_d):
        side = 1.0 if int((time + self.phase_s) // self.period_s) % 2 == 0 \
            else -1.0
        return self.speed, side * self.lane_magnitude


@dataclass(frozen=True)
class OvertakerPolicy(OpponentPolicy):
    """Runs at a higher pace and moves off-line to lap the ego.

    When the ego is ahead within ``engage_gap_s`` (or just passed, within
    ``clear_gap_s`` behind), the overtaker takes the lane *away* from the
    ego's current side; clear of traffic it returns to the racing line.
    """

    kind = "overtaker"
    speed: float = 3.2
    pass_lane: float = 0.4
    engage_gap_s: float = 5.0
    clear_gap_s: float = 1.5

    def decide(self, time, gap_s, ego_d):
        if -self.clear_gap_s < gap_s < self.engage_gap_s:
            side = -1.0 if ego_d >= 0.0 else 1.0
            return self.speed, side * self.pass_lane
        return self.speed, 0.0


POLICY_REGISTRY: Dict[str, type] = {
    policy.kind: policy
    for policy in (RacelinePolicy, BlockerPolicy, LaneSwitcherPolicy,
                   OvertakerPolicy)
}


def make_policy(name: str, *, seed: int = 0, speed: Optional[float] = None,
                lane: Optional[float] = None) -> OpponentPolicy:
    """Build a registered policy, deriving per-instance parameters.

    ``speed`` scales the policy's nominal pace (the overtaker keeps its
    relative pace advantage); ``lane`` sets the policy's characteristic
    lateral magnitude.  ``seed`` deterministically picks free parameters
    such as the lane switcher's phase, so a field of agents built from
    distinct seeds behaves heterogeneously but reproducibly.
    """
    cls = POLICY_REGISTRY.get(name)
    if cls is None:
        raise KeyError(
            f"unknown opponent policy {name!r}; "
            f"available: {sorted(POLICY_REGISTRY)}"
        )
    kwargs: Dict = {}
    if name == "raceline":
        if speed is not None:
            kwargs["speed"] = float(speed)
        if lane is not None:
            kwargs["lane"] = float(lane)
    elif name == "blocker":
        if speed is not None:
            kwargs["speed"] = 0.9 * float(speed)
        if lane is not None:
            kwargs["lane_limit"] = abs(float(lane)) or 0.35
    elif name == "lane_switcher":
        if speed is not None:
            kwargs["speed"] = float(speed)
        if lane is not None:
            kwargs["lane_magnitude"] = abs(float(lane)) or 0.3
        # Deterministic per-seed phase in [0, period).
        kwargs["phase_s"] = (int(seed) % 997) / 997.0 * \
            LaneSwitcherPolicy.period_s
    elif name == "overtaker":
        if speed is not None:
            kwargs["speed"] = 1.3 * float(speed)
        if lane is not None:
            kwargs["pass_lane"] = abs(float(lane)) or 0.4
    return cls(**kwargs)


class OpponentAgent(Obstacle):
    """One opponent car: bicycle dynamics + pure pursuit toward a lane.

    The agent spawns on the raceline at ``start_s`` facing forward, and on
    every :meth:`step` (called by the multi-agent simulator *before* the
    ego advances) asks its policy for a target speed and lane, then steers
    toward the lane's lookahead point with the same pure-pursuit law the
    ego controller uses.  Implements the :class:`Obstacle` protocol so the
    LiDAR compositor occludes beams against it.
    """

    def __init__(
        self,
        raceline: Raceline,
        policy: OpponentPolicy,
        start_s: float = 0.0,
        radius: float = 0.25,
        params: Optional[VehicleParams] = None,
        agent_id: int = 0,
        lookahead_base: float = 0.6,
        lookahead_gain: float = 0.2,
    ) -> None:
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.raceline = raceline
        self.policy = policy
        self.radius = float(radius)
        self.agent_id = int(agent_id)
        self.lookahead_base = float(lookahead_base)
        self.lookahead_gain = float(lookahead_gain)
        self.vehicle = Vehicle(params or VehicleParams())
        start = raceline.point_at(start_s)
        pose = np.array([
            start[0], start[1], raceline.smooth_heading_at(start_s)
        ])
        self.vehicle.reset(pose, speed=float(policy.speed))

    # -- Obstacle protocol ---------------------------------------------
    def position(self, time: float) -> np.ndarray:
        state = self.vehicle.state
        return np.array([state.x, state.y])

    @property
    def pose(self) -> np.ndarray:
        return self.vehicle.state.pose()

    @property
    def speed(self) -> float:
        return float(self.vehicle.state.v)

    # ------------------------------------------------------------------
    def step(self, dt: float, time: float, ego_pose: np.ndarray,
             ego_speed: float) -> None:
        """Advance this opponent one physics step.

        ``ego_pose``/``ego_speed`` are the ego's *pre-step* state — every
        agent (ego included) decides on the same snapshot, so the update
        order of the field cannot leak into the results.
        """
        state = self.vehicle.state
        own_s, _ = self.raceline.project(np.array([state.x, state.y]))
        own_s = float(own_s[0])
        ego_s, ego_d = self.raceline.project(np.asarray(ego_pose)[:2])
        gap_s = self.raceline.progress_difference(float(ego_s[0]), own_s)

        target_speed, lane = self.policy.decide(time, gap_s, float(ego_d[0]))

        ld = self.lookahead_base + self.lookahead_gain * max(state.v, 0.0)
        target = self.raceline.offset_point_at(own_s + ld, lane)
        dx = target[0] - state.x
        dy = target[1] - state.y
        c, sn = np.cos(state.theta), np.sin(state.theta)
        y_vehicle = -sn * dx + c * dy
        actual_ld = max(float(np.hypot(dx, dy)), 1e-6)
        curvature = 2.0 * y_vehicle / actual_ld ** 2
        steer = float(np.arctan(self.vehicle.params.wheelbase * curvature))
        steer = float(np.clip(steer, -self.vehicle.params.max_steer,
                              self.vehicle.params.max_steer))
        self.vehicle.step(float(target_speed), steer, dt)

    def heading_error(self) -> float:
        """|heading - raceline tangent| at the agent's projection (rad)."""
        state = self.vehicle.state
        s, _ = self.raceline.project(np.array([state.x, state.y]))
        tangent = self.raceline.smooth_heading_at(float(s[0]))
        return abs(float(wrap_to_pi(state.theta - tangent)))
