"""F1TENTH vehicle & sensor simulation substrate.

The paper's experiments run on a physical 1:10-scale car; this subpackage
is the simulated stand-in (see DESIGN.md, substitution table).  The pieces:

* :mod:`~repro.sim.tire` / :mod:`~repro.sim.vehicle` — single-track
  (bicycle) vehicle with a friction-circle tire model.  Grip is a first-
  class parameter: lowering it reproduces the paper's taped-tire "slippery"
  condition, and *wheel* speed diverging from *ground* speed under slip is
  exactly the odometry-degradation mechanism being studied.
* :mod:`~repro.sim.lidar` — 2D scanning LiDAR ray-cast against the ground-
  truth map with Gaussian range noise and dropouts.
* :mod:`~repro.sim.odometry` — wheel odometry (integrates wheel speed and
  steering kinematics, as a VESC does) and an IMU yaw-rate sensor.
* :mod:`~repro.sim.controllers` — pure-pursuit steering + curvature-based
  speed profile, driving on the *estimated* pose so that localization
  errors feed back into racing performance, as on the real car.
* :mod:`~repro.sim.simulator` — fixed-step scheduler tying it together.
"""

from repro.sim.agents import (
    BlockerPolicy,
    LaneSwitcherPolicy,
    OpponentAgent,
    OpponentPolicy,
    OvertakerPolicy,
    POLICY_REGISTRY,
    RacelinePolicy,
    make_policy,
)
from repro.sim.controllers import PurePursuitController, SpeedProfile
from repro.sim.lidar import LidarConfig, LidarScan, SimulatedLidar
from repro.sim.multi_agent import (
    MultiAgentSimulator,
    OCCLUSION_FRACTION_EDGES,
)
from repro.sim.obstacles import (
    Obstacle,
    RacelineFollower,
    StaticObstacle,
    composite_obstacle_ranges,
    ray_disc_ranges,
)
from repro.sim.odometry import ImuSensor, OdometryConfig, WheelOdometry
from repro.sim.simulator import SimConfig, Simulator
from repro.sim.tire import TireModel, grip_from_pull_force, pull_force_from_grip
from repro.sim.vehicle import VehicleParams, VehicleState, Vehicle

__all__ = [
    "BlockerPolicy",
    "ImuSensor",
    "LaneSwitcherPolicy",
    "LidarConfig",
    "LidarScan",
    "MultiAgentSimulator",
    "OCCLUSION_FRACTION_EDGES",
    "Obstacle",
    "OdometryConfig",
    "OpponentAgent",
    "OpponentPolicy",
    "OvertakerPolicy",
    "POLICY_REGISTRY",
    "RacelineFollower",
    "RacelinePolicy",
    "StaticObstacle",
    "composite_obstacle_ranges",
    "make_policy",
    "ray_disc_ranges",
    "PurePursuitController",
    "SimConfig",
    "SimulatedLidar",
    "Simulator",
    "SpeedProfile",
    "TireModel",
    "Vehicle",
    "VehicleParams",
    "VehicleState",
    "WheelOdometry",
    "grip_from_pull_force",
    "pull_force_from_grip",
]
