"""Racing controller: pure pursuit steering + curvature-limited speed.

The controller drives on whatever pose it is *given* — in the experiments
that is the localizer's estimate, not ground truth, so localization error
propagates into steering error, lateral deviation and ultimately lap time,
exactly the causal chain the paper's Table I measures.

``SpeedProfile`` precomputes a target speed per raceline point from the
curvature and a lateral-acceleration budget, with a global ``speed_scale``
mirroring the paper's protocol ("10 laps were completed at the same speed
scaling in both settings", §III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.maps.centerline import Raceline
from repro.utils.angles import wrap_to_pi

__all__ = ["SpeedProfile", "PurePursuitController"]


@dataclass
class SpeedProfile:
    """Curvature-based target speeds along a raceline.

    ``v(s) = clip(sqrt(a_lat_budget / |kappa(s)|), v_min, v_max) * speed_scale``

    then smoothed by a forward/backward pass enforcing the longitudinal
    acceleration/brake limits so the profile is actually drivable.
    """

    raceline: Raceline
    v_max: float = 7.0
    v_min: float = 1.2
    a_lat_budget: float = 5.0
    a_accel: float = 5.0
    a_brake: float = 6.0
    speed_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.speed_scale <= 1.5:
            raise ValueError("speed_scale must be in (0, 1.5]")
        if min(self.v_max, self.v_min, self.a_lat_budget, self.a_accel, self.a_brake) <= 0:
            raise ValueError("speed-profile parameters must be positive")
        self._speeds = self._compute()

    def _compute(self) -> np.ndarray:
        # Finite-difference curvature on closely spaced vertices is noisy;
        # a short circular moving average removes dips that would otherwise
        # propagate through the accel/brake sweeps and depress the profile.
        kappa = np.abs(self.raceline.curvature)
        window = 9
        kernel = np.ones(window) / window
        padded = np.concatenate([kappa[-window:], kappa, kappa[:window]])
        kappa = np.convolve(padded, kernel, mode="same")[window:-window]
        kappa = kappa + 1e-6
        v = np.sqrt(self.a_lat_budget / kappa)
        v = np.clip(v, self.v_min, self.v_max)

        # Two smoothing sweeps around the loop make accel/brake feasible.
        ds = self.raceline.total_length / len(self.raceline)
        for _ in range(2):
            for i in range(1, 2 * len(v)):  # forward: accel limit
                j, k = i % len(v), (i - 1) % len(v)
                v[j] = min(v[j], np.sqrt(v[k] ** 2 + 2 * self.a_accel * ds))
            for i in range(2 * len(v) - 1, -1, -1):  # backward: brake limit
                j, k = i % len(v), (i + 1) % len(v)
                v[j] = min(v[j], np.sqrt(v[k] ** 2 + 2 * self.a_brake * ds))
        return v * self.speed_scale

    def speed_at(self, s: float) -> float:
        """Target speed at arclength ``s`` (nearest raceline point)."""
        s = float(s) % self.raceline.total_length
        i = int(np.searchsorted(self.raceline.s, s, side="right")) - 1
        return float(self._speeds[max(i, 0)])

    @property
    def speeds(self) -> np.ndarray:
        return self._speeds.copy()

    def top_speed(self) -> float:
        return float(self._speeds.max())


class PurePursuitController:
    """Geometric path tracker.

    Steers toward a point ``lookahead(v)`` metres of arclength ahead of the
    car's projection onto the raceline; lookahead grows linearly with speed
    for stability at pace.
    """

    def __init__(
        self,
        raceline: Raceline,
        profile: SpeedProfile,
        wheelbase: float = 0.321,
        lookahead_base: float = 0.8,
        lookahead_gain: float = 0.22,
        max_steer: float = 0.4189,
    ) -> None:
        if lookahead_base <= 0 or lookahead_gain < 0:
            raise ValueError("lookahead parameters must be positive")
        self.raceline = raceline
        self.profile = profile
        self.wheelbase = wheelbase
        self.lookahead_base = lookahead_base
        self.lookahead_gain = lookahead_gain
        self.max_steer = max_steer

    def lookahead_distance(self, speed: float) -> float:
        return self.lookahead_base + self.lookahead_gain * max(speed, 0.0)

    def control(self, pose: np.ndarray, speed: float) -> Tuple[float, float]:
        """Compute ``(target_speed, steering_angle)`` from the believed pose.

        Parameters
        ----------
        pose:
            The pose the controller believes the car is at — feed it the
            localizer output to couple localization accuracy into driving.
        speed:
            Current measured speed (odometry), m/s.
        """
        pose = np.asarray(pose, dtype=float)
        s_here, _ = self.raceline.project(pose[:2])
        s_here = float(s_here[0])

        ld = self.lookahead_distance(speed)
        target = self.raceline.point_at(s_here + ld)

        # Pure-pursuit law: curvature through the target point in the
        # vehicle frame, kappa = 2 y_t / ld^2.
        dx = target[0] - pose[0]
        dy = target[1] - pose[1]
        c, sn = np.cos(pose[2]), np.sin(pose[2])
        y_vehicle = -sn * dx + c * dy
        actual_ld = max(float(np.hypot(dx, dy)), 1e-6)
        curvature = 2.0 * y_vehicle / actual_ld**2
        steer = float(np.arctan(self.wheelbase * curvature))
        steer = float(np.clip(steer, -self.max_steer, self.max_steer))

        target_speed = self.profile.speed_at(s_here + ld)
        return target_speed, steer
