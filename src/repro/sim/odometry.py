"""Proprioceptive sensors: wheel odometry and IMU yaw rate.

Wheel odometry on an F1TENTH car is derived from the VESC's motor ERPM and
the commanded steering angle, dead-reckoned through Ackermann kinematics.
Crucially it measures **wheel** speed, not ground speed: every bit of tire
slip the vehicle model produces passes straight into the integrated pose.
That — not added Gaussian noise — is the paper's "low-quality odometry"
mechanism; the noise terms here model the ordinary encoder/quantisation
error present even with perfect grip.

:class:`WheelOdometry` exposes both the integrated odometry-frame pose
(what a ROS ``/odom`` topic carries) and per-interval
:class:`~repro.core.motion_models.OdometryDelta` objects the localizers
consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.motion_models import OdometryDelta
from repro.sim.vehicle import VehicleState
from repro.utils.angles import wrap_to_pi
from repro.utils.rng import make_rng

__all__ = ["OdometryConfig", "WheelOdometry", "ImuSensor"]


@dataclass(frozen=True)
class OdometryConfig:
    """Noise/bias parameters of the wheel-odometry pipeline.

    ``speed_noise_std`` and ``steer_noise_std`` model encoder and servo
    quantisation.  ``speed_scale`` models systematic calibration error
    (wrong wheel-diameter constant); the perturbation harness sweeps it.
    """

    wheelbase: float = 0.321
    speed_noise_std: float = 0.02
    steer_noise_std: float = 0.01
    speed_scale: float = 1.0
    yaw_bias: float = 0.0  # rad/s systematic yaw-rate bias

    def validate(self) -> None:
        if self.wheelbase <= 0:
            raise ValueError("wheelbase must be positive")
        if self.speed_noise_std < 0 or self.steer_noise_std < 0:
            raise ValueError("noise stds must be non-negative")
        if self.speed_scale <= 0:
            raise ValueError("speed_scale must be positive")


class WheelOdometry:
    """Dead-reckons pose from wheel speed + steering angle.

    The integrated pose lives in its own "odom" frame (starts at the
    vehicle's initial pose); localizers consume only relative deltas, so
    unbounded odom-frame drift is expected and harmless.
    """

    def __init__(self, config: OdometryConfig | None = None, seed=None) -> None:
        self.config = config or OdometryConfig()
        self.config.validate()
        self.rng = make_rng(seed)
        self.pose = np.zeros(3)
        self._last_speed = 0.0

    def reset(self, pose: np.ndarray | None = None) -> None:
        self.pose = np.array(pose, dtype=float) if pose is not None else np.zeros(3)
        self._last_speed = 0.0

    def step(self, state: VehicleState, dt: float) -> OdometryDelta:
        """Integrate one physics step; returns this interval's delta.

        Reads ``state.wheel_speed`` (not ground speed!) and the actual
        steering angle, through the same Ackermann kinematics a VESC
        odometry node applies.
        """
        cfg = self.config
        measured_speed = (
            state.wheel_speed * cfg.speed_scale
            + self.rng.normal(0.0, cfg.speed_noise_std)
        )
        measured_speed = max(measured_speed, 0.0)
        measured_steer = state.steer + self.rng.normal(0.0, cfg.steer_noise_std)

        yaw_rate = measured_speed * np.tan(measured_steer) / cfg.wheelbase
        yaw_rate += cfg.yaw_bias
        dtheta = yaw_rate * dt
        ds = measured_speed * dt

        # Constant-curvature chord, consistent with the motion models.
        chord = ds * np.sinc(dtheta / (2.0 * np.pi))
        dx = chord * np.cos(dtheta / 2.0)
        dy = chord * np.sin(dtheta / 2.0)

        c, s = np.cos(self.pose[2]), np.sin(self.pose[2])
        self.pose = np.array(
            [
                self.pose[0] + c * dx - s * dy,
                self.pose[1] + s * dx + c * dy,
                wrap_to_pi(self.pose[2] + dtheta),
            ]
        )
        self._last_speed = measured_speed
        return OdometryDelta(float(dx), float(dy), float(dtheta), float(measured_speed), dt)

    @property
    def speed(self) -> float:
        """Most recent measured (wheel) speed, m/s."""
        return self._last_speed


@dataclass
class ImuSensor:
    """Yaw-rate gyro with Gaussian noise and a slowly-wandering bias.

    Provided for completeness of the F1TENTH sensor suite (the paper lists
    IMUs among proprioceptive inputs); the reference experiments rely on
    wheel odometry alone, matching the paper's focus.
    """

    noise_std: float = 0.02
    bias_walk_std: float = 0.0005
    bias: float = 0.0

    def read(self, state: VehicleState, rng: np.random.Generator) -> float:
        self.bias += rng.normal(0.0, self.bias_walk_std)
        return float(state.yaw_rate + self.bias + rng.normal(0.0, self.noise_std))
