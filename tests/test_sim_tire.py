"""Tests for the tire model and the paper's pull-force grip protocol."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.tire import (
    GRAVITY,
    TireModel,
    grip_from_pull_force,
    pull_force_from_grip,
)

CAR_MASS = 3.46
LOAD = CAR_MASS * GRAVITY


class TestPullForceProtocol:
    def test_paper_hq_condition(self):
        """26 N pull on the 3.46 kg car -> mu ~ 0.766 (paper nominal)."""
        mu = grip_from_pull_force(26.0, CAR_MASS)
        assert mu == pytest.approx(0.766, abs=0.001)

    def test_paper_lq_condition(self):
        """19 N pull -> mu ~ 0.560 (paper taped tires)."""
        mu = grip_from_pull_force(19.0, CAR_MASS)
        assert mu == pytest.approx(0.560, abs=0.001)

    def test_roundtrip(self):
        mu = grip_from_pull_force(22.0, CAR_MASS)
        assert pull_force_from_grip(mu, CAR_MASS) == pytest.approx(22.0)

    def test_experiment_tires_reproduce_pull_forces(self):
        """The tire presets used for Table I must map back to 26 N / 19 N."""
        from repro.eval.experiment import TIRE_HQ, TIRE_LQ

        assert pull_force_from_grip(TIRE_HQ.mu, CAR_MASS) == pytest.approx(26.0, abs=0.1)
        assert pull_force_from_grip(TIRE_LQ.mu, CAR_MASS) == pytest.approx(19.0, abs=0.1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            grip_from_pull_force(0.0, CAR_MASS)
        with pytest.raises(ValueError):
            pull_force_from_grip(0.5, -1.0)


class TestLongitudinalForce:
    def test_linear_region(self):
        tire = TireModel(mu=0.8, longitudinal_stiffness=10.0)
        f = tire.longitudinal_force(0.01, LOAD)
        assert f == pytest.approx(0.1 * LOAD)

    def test_saturates_at_friction_limit(self):
        tire = TireModel(mu=0.8)
        assert tire.longitudinal_force(0.5, LOAD) == pytest.approx(0.8 * LOAD)
        assert tire.longitudinal_force(-0.5, LOAD) == pytest.approx(-0.8 * LOAD)

    def test_lower_stiffness_needs_more_slip(self):
        """The taped-tire mechanism: the same force demand requires far
        more slip when stiffness is low."""
        grippy = TireModel(mu=0.766, longitudinal_stiffness=12.0)
        taped = TireModel(mu=0.56, longitudinal_stiffness=2.2)
        demand = 0.3 * LOAD  # ~3 m/s^2
        slip_grippy = demand / (grippy.longitudinal_stiffness * LOAD)
        slip_taped = demand / (taped.longitudinal_stiffness * LOAD)
        assert slip_taped > 4 * slip_grippy
        assert grippy.longitudinal_force(slip_grippy, LOAD) == pytest.approx(demand)
        assert taped.longitudinal_force(slip_taped, LOAD) == pytest.approx(demand)


class TestLateralForce:
    def test_linear_region(self):
        tire = TireModel(mu=0.8, cornering_stiffness=9.0)
        f = tire.lateral_force(0.02, LOAD)
        assert f == pytest.approx(0.18 * LOAD)

    def test_friction_circle_shrinks_lateral_capacity(self):
        tire = TireModel(mu=0.8)
        full = tire.lateral_force(1.0, LOAD, longitudinal_force=0.0)
        loaded = tire.lateral_force(1.0, LOAD, longitudinal_force=0.6 * LOAD)
        assert loaded < full
        expected = np.sqrt((0.8 * LOAD) ** 2 - (0.6 * LOAD) ** 2)
        assert loaded == pytest.approx(expected)

    def test_full_longitudinal_leaves_nothing(self):
        tire = TireModel(mu=0.8)
        assert tire.lateral_force(1.0, LOAD, longitudinal_force=0.8 * LOAD) == 0.0

    @given(
        fx_frac=st.floats(min_value=-1.0, max_value=1.0),
        slip=st.floats(min_value=-1.0, max_value=1.0),
    )
    def test_property_combined_force_inside_circle(self, fx_frac, slip):
        tire = TireModel(mu=0.7)
        fx = fx_frac * tire.max_force(LOAD)
        fy = tire.lateral_force(slip, LOAD, longitudinal_force=fx)
        assert np.hypot(fx, fy) <= tire.max_force(LOAD) * (1 + 1e-9)


class TestLateralSaturation:
    def test_inside_circle_is_one(self):
        tire = TireModel(mu=0.8)
        assert tire.lateral_saturation(0.1 * LOAD, LOAD) == 1.0

    def test_excess_demand_scales_down(self):
        tire = TireModel(mu=0.8)
        capacity = 0.8 * LOAD
        assert tire.lateral_saturation(2 * capacity, LOAD) == pytest.approx(0.5)

    def test_zero_demand(self):
        assert TireModel().lateral_saturation(0.0, LOAD) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TireModel(mu=0.0)
        with pytest.raises(ValueError):
            TireModel(longitudinal_stiffness=-1.0)
