"""Fleet serving layer tests (``-m serve``; excluded from tier-1).

Covers the ISSUE-6 tentpole contract: session lifecycle and TTL
eviction, artifact-cache sharing (one build for N sessions), batcher
equivalence to per-session updates, and concurrent-session determinism
at fixed seeds.
"""

import asyncio

import numpy as np
import pytest

from repro.core.motion_models import OdometryDelta
from repro.maps import generate_track
from repro.maps.occupancy_grid import OccupancyGrid
from repro.serve import (
    FleetServer,
    MapArtifactCache,
    SessionRegistry,
    UpdateBatcher,
    UpdateRequest,
    map_digest,
)
from repro.sim.lidar import LidarConfig, SimulatedLidar

pytestmark = pytest.mark.serve

ZERO = OdometryDelta(0.0, 0.0, 0.0, 0.0, 0.025)
SMALL = dict(num_particles=150, num_beams=15)


@pytest.fixture(scope="module")
def world():
    track = generate_track(seed=4, mean_radius=5.0, resolution=0.1,
                           track_width=2.0)
    lidar = SimulatedLidar(
        track.grid,
        LidarConfig(num_beams=181, range_noise_std=0.0, dropout_prob=0.0),
        seed=1,
    )
    start = track.centerline.start_pose()
    scans = [lidar.scan(start) for _ in range(5)]
    return track, start, scans


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# Map digest + artifact cache
# ----------------------------------------------------------------------
class TestArtifactCache:
    def test_digest_is_content_addressed(self, world):
        track, _, _ = world
        grid = track.grid
        clone = OccupancyGrid(grid.data.copy(), grid.resolution,
                              origin=grid.origin)
        assert map_digest(grid) == map_digest(clone)
        other = OccupancyGrid(
            np.zeros((10, 10), dtype=np.int8), grid.resolution
        )
        assert map_digest(grid) != map_digest(other)
        scaled = OccupancyGrid(grid.data.copy(), grid.resolution * 2,
                               origin=grid.origin)
        assert map_digest(grid) != map_digest(scaled)

    def test_one_build_for_n_sessions(self, world):
        """The acceptance-criterion property: N sessions on one map
        construct the expensive range-method artifacts exactly once.
        """
        track, start, _ = world
        registry = SessionRegistry()
        n = 5
        for i in range(n):
            registry.create(track.grid, range_method="lut", seed=i,
                            initial_pose=start, lut_theta_bins=40, **SMALL)
        assert registry.artifact_cache.builds == 1
        assert registry.artifact_cache.hits == n - 1
        counters = registry.metrics.counters()
        assert counters["serve.artifacts.builds"] == 1
        assert counters["serve.artifacts.hits"] == n - 1
        # The sessions really do share one table object.
        sessions = [registry.get(s["session_id"])
                    for s in registry.list_sessions()]
        tables = {id(s.pf.range_method) for s in sessions}
        assert len(tables) == 1

    def test_equal_content_different_objects_share(self, world):
        track, _, _ = world
        grid = track.grid
        clone = OccupancyGrid(grid.data.copy(), grid.resolution,
                              origin=grid.origin)
        cache = MapArtifactCache()
        registry = SessionRegistry(artifact_cache=cache)
        registry.create(grid, range_method="lut", lut_theta_bins=40, **SMALL)
        registry.create(clone, range_method="lut", lut_theta_bins=40, **SMALL)
        assert cache.builds == 1
        assert cache.hits == 1

    def test_different_signatures_do_not_alias(self, world):
        track, _, _ = world
        cache = MapArtifactCache()
        registry = SessionRegistry(artifact_cache=cache)
        registry.create(track.grid, range_method="lut",
                        lut_theta_bins=40, **SMALL)
        registry.create(track.grid, range_method="lut",
                        lut_theta_bins=80, **SMALL)
        registry.create(track.grid, range_method="ray_marching", **SMALL)
        assert cache.builds == 3
        assert cache.hits == 0

    def test_dedup_wrapper_not_shared(self, world):
        """Per-ray methods share the inner caster but keep private dedup
        wrappers (they carry per-owner counters).
        """
        track, start, _ = world
        registry = SessionRegistry()
        a = registry.create(track.grid, range_method="ray_marching",
                            seed=0, initial_pose=start, **SMALL)
        b = registry.create(track.grid, range_method="ray_marching",
                            seed=1, initial_pose=start, **SMALL)
        assert a.pf.range_method is not b.pf.range_method
        assert a.pf.range_method.inner is b.pf.range_method.inner


# ----------------------------------------------------------------------
# Session lifecycle + eviction
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_create_update_estimate_evict(self, world):
        track, start, scans = world
        registry = SessionRegistry()
        session = registry.create(track.grid, seed=3, initial_pose=start,
                                  range_method="ray_marching", **SMALL)
        sid = session.session_id
        assert sid in registry
        scan = scans[0]
        pose = registry.update(sid, ZERO, scan.ranges, scan.angles)
        assert np.all(np.isfinite(pose))
        est = registry.estimate(sid)
        assert est["num_updates"] == 1
        assert est["position_rms"] > 0.0
        assert registry.metrics.counters()["serve.updates"] == 1
        assert (
            registry.metrics.histogram("serve.update.latency_ms").count == 1
        )
        registry.evict(sid)
        assert sid not in registry
        with pytest.raises(KeyError, match="unknown session"):
            registry.update(sid, ZERO, scan.ranges, scan.angles)

    def test_manifest_provenance(self, world):
        track, start, _ = world
        registry = SessionRegistry()
        session = registry.create(track.grid, seed=9, initial_pose=start,
                                  range_method="ray_marching", **SMALL)
        manifest = session.manifest
        assert manifest.extra["session_id"] == session.session_id
        assert manifest.extra["map"] == session.map_key
        assert manifest.seeds["localizer"] == 9
        round_trip = type(manifest).from_dict(manifest.to_dict())
        assert round_trip.run_id == manifest.run_id

    def test_duplicate_id_rejected(self, world):
        track, _, _ = world
        registry = SessionRegistry()
        registry.create(track.grid, session_id="car-1",
                        range_method="ray_marching", **SMALL)
        with pytest.raises(ValueError, match="already exists"):
            registry.create(track.grid, session_id="car-1",
                            range_method="ray_marching", **SMALL)

    def test_idle_ttl_eviction(self, world):
        track, start, scans = world
        clock = FakeClock()
        registry = SessionRegistry(idle_ttl_s=30.0, clock=clock)
        a = registry.create(track.grid, session_id="a", seed=0,
                            initial_pose=start,
                            range_method="ray_marching", **SMALL)
        registry.create(track.grid, session_id="b", seed=1,
                        initial_pose=start,
                        range_method="ray_marching", **SMALL)
        clock.now += 20.0
        # Touch "a" so only "b" keeps aging.
        scan = scans[0]
        registry.update("a", ZERO, scan.ranges, scan.angles)
        assert registry.evict_idle() == []
        clock.now += 15.0
        # "a" idle 15 s, "b" idle 35 s: only "b" expires.
        assert registry.evict_idle() == ["b"]
        assert "a" in registry and "b" not in registry
        counters = registry.metrics.counters()
        assert counters["serve.sessions.evicted.idle"] == 1
        assert registry.metrics.gauges()["serve.sessions.active"] == 1
        assert a.idle_for(clock.now) == pytest.approx(15.0)

    def test_max_sessions_admission(self, world):
        track, _, _ = world
        clock = FakeClock()
        registry = SessionRegistry(idle_ttl_s=10.0, max_sessions=2,
                                   clock=clock)
        registry.create(track.grid, session_id="a",
                        range_method="ray_marching", **SMALL)
        registry.create(track.grid, session_id="b",
                        range_method="ray_marching", **SMALL)
        with pytest.raises(RuntimeError, match="session limit"):
            registry.create(track.grid, session_id="c",
                            range_method="ray_marching", **SMALL)
        # Once the TTL lets the sweep reclaim space, admission succeeds.
        clock.now += 11.0
        registry.create(track.grid, session_id="c",
                        range_method="ray_marching", **SMALL)
        assert "c" in registry and "a" not in registry

    def test_eviction_reasons_attributed_separately(self, world):
        """TTL sweeps, admission sweeps and explicit evictions land in
        distinct ``serve.sessions.evicted.*`` counters.
        """
        track, _, _ = world
        clock = FakeClock()
        registry = SessionRegistry(idle_ttl_s=10.0, max_sessions=2,
                                   clock=clock)
        registry.create(track.grid, session_id="a",
                        range_method="ray_marching", **SMALL)
        clock.now += 11.0
        # Periodic sweep: "a" expires as a plain idle eviction.
        assert registry.evict_idle() == ["a"]
        registry.create(track.grid, session_id="b",
                        range_method="ray_marching", **SMALL)
        registry.create(track.grid, session_id="c",
                        range_method="ray_marching", **SMALL)
        clock.now += 11.0
        # Admission at capacity: the sweep that displaces "b" and "c"
        # is attributed to the capacity path, not the TTL path.
        registry.create(track.grid, session_id="d",
                        range_method="ray_marching", **SMALL)
        registry.evict("d", reason="shed")
        counters = registry.metrics.counters()
        assert counters["serve.sessions.evicted.idle"] == 1
        assert counters["serve.sessions.evicted.capacity"] == 2
        assert counters["serve.sessions.evicted.shed"] == 1

    def test_prometheus_export(self, world):
        track, start, scans = world
        registry = SessionRegistry()
        sid = registry.create(track.grid, seed=0, initial_pose=start,
                              range_method="ray_marching",
                              **SMALL).session_id
        scan = scans[0]
        registry.update(sid, ZERO, scan.ranges, scan.angles)
        text = registry.prometheus()
        assert "repro_serve_updates_total 1" in text
        assert "repro_serve_update_latency_ms_bucket" in text
        assert "repro_serve_sessions_active 1" in text


# ----------------------------------------------------------------------
# Batcher equivalence
# ----------------------------------------------------------------------
class TestBatcherEquivalence:
    def _make_sessions(self, registry, grid, start, n, method, seeds):
        return [
            registry.create(grid, session_id=f"s{i}", seed=seeds[i],
                            initial_pose=start, range_method=method, **SMALL)
            for i in range(n)
        ]

    @pytest.mark.parametrize("method", ["ray_marching", "lut"])
    def test_batched_equals_solo(self, world, method):
        """Folded (or per-session dispatched) batch updates produce
        bit-identical pose traces to plain sequential updates.
        """
        track, start, scans = world
        seeds = [40, 41, 42, 43]

        solo_reg = SessionRegistry()
        solo = self._make_sessions(solo_reg, track.grid, start, 4, method,
                                   seeds)
        solo_traces = {s.session_id: [] for s in solo}
        for scan in scans:
            for s in solo:
                solo_traces[s.session_id].append(
                    s.update(ZERO, scan.ranges, scan.angles)
                )

        batch_reg = SessionRegistry()
        batched = self._make_sessions(batch_reg, track.grid, start, 4,
                                      method, seeds)
        batcher = UpdateBatcher(metrics=batch_reg.metrics)
        batch_traces = {s.session_id: [] for s in batched}
        for scan in scans:
            requests = [
                UpdateRequest(s, ZERO, scan.ranges, scan.angles)
                for s in batched
            ]
            batcher.flush(requests)
            for req in requests:
                batch_traces[req.session.session_id].append(req.pose)

        for sid in solo_traces:
            for a, b in zip(solo_traces[sid], batch_traces[sid]):
                np.testing.assert_array_equal(a, b)

        counters = batch_reg.metrics.counters()
        if method == "ray_marching":
            # Dedup sessions on a shared map must actually have folded.
            assert counters["serve.batch.folded"] == 4 * len(scans)
        else:
            # Table methods dispatch solo by design (no dedup wrapper).
            assert counters.get("serve.batch.folded", 0) == 0

    def test_mixed_maps_do_not_fold_together(self, world):
        track, start, scans = world
        other = generate_track(seed=12, mean_radius=5.0, resolution=0.1,
                               track_width=2.0)
        other_lidar = SimulatedLidar(
            other.grid,
            LidarConfig(num_beams=181, range_noise_std=0.0,
                        dropout_prob=0.0),
            seed=2,
        )
        other_start = other.centerline.start_pose()
        other_scan = other_lidar.scan(other_start)

        registry = SessionRegistry()
        a = registry.create(track.grid, seed=1, initial_pose=start,
                            range_method="ray_marching", **SMALL)
        b = registry.create(other.grid, seed=1, initial_pose=other_start,
                            range_method="ray_marching", **SMALL)
        batcher = UpdateBatcher(metrics=registry.metrics)
        scan = scans[0]
        requests = [
            UpdateRequest(a, ZERO, scan.ranges, scan.angles),
            UpdateRequest(b, ZERO, other_scan.ranges, other_scan.angles),
        ]
        batcher.flush(requests)
        assert all(np.all(np.isfinite(r.pose)) for r in requests)
        # Two singleton groups: nothing folded.
        assert registry.metrics.counters().get("serve.batch.folded", 0) == 0


# ----------------------------------------------------------------------
# Async server: concurrency + determinism
# ----------------------------------------------------------------------
class TestFleetServer:
    def test_concurrent_sessions_deterministic(self, world):
        """A fixed-seed session's pose trace is identical whether it runs
        alone or interleaved with neighbours on the server — batching
        must never leak state across tenants.
        """
        track, start, scans = world

        async def run_fleet(n_sessions):
            async with FleetServer(batch_window_s=0.0,
                                   max_batch=n_sessions) as server:
                sids = []
                for i in range(n_sessions):
                    sids.append(await server.create_session(
                        track.grid, seed=50 + i, initial_pose=start,
                        range_method="ray_marching", **SMALL,
                    ))
                traces = {sid: [] for sid in sids}
                for scan in scans:
                    poses = await asyncio.gather(*[
                        server.update(sid, ZERO, scan.ranges, scan.angles)
                        for sid in sids
                    ])
                    for sid, pose in zip(sids, poses):
                        traces[sid].append(pose)
                return sids[0], traces

        first_alone, traces_alone = asyncio.run(run_fleet(1))
        first_fleet, traces_fleet = asyncio.run(run_fleet(4))
        for a, b in zip(traces_alone[first_alone],
                        traces_fleet[first_fleet]):
            np.testing.assert_array_equal(a, b)

    def test_lifecycle_and_close(self, world):
        track, start, scans = world

        async def scenario():
            server = FleetServer(batch_window_s=0.0)
            sid = await server.create_session(
                track.grid, seed=0, initial_pose=start,
                range_method="ray_marching", **SMALL,
            )
            scan = scans[0]
            pose = await server.update(sid, ZERO, scan.ranges, scan.angles)
            assert np.all(np.isfinite(pose))
            est = await server.estimate(sid)
            assert est["num_updates"] == 1
            await server.close_session(sid)
            with pytest.raises(KeyError):
                await server.estimate(sid)
            await server.close()
            with pytest.raises(RuntimeError, match="closed"):
                await server.estimate(sid)

        asyncio.run(scenario())

    def test_batch_window_coalesces(self, world):
        """Updates issued concurrently within one window flush as one
        batch (visible as folded raycasts in the fleet counters).
        """
        track, start, scans = world

        async def scenario():
            server = FleetServer(batch_window_s=0.05, max_batch=64)
            sids = []
            for i in range(3):
                sids.append(await server.create_session(
                    track.grid, seed=60 + i, initial_pose=start,
                    range_method="ray_marching", **SMALL,
                ))
            scan = scans[0]
            await asyncio.gather(*[
                server.update(sid, ZERO, scan.ranges, scan.angles)
                for sid in sids
            ])
            await server.close()
            return server.registry.metrics.counters()

        counters = asyncio.run(scenario())
        assert counters["serve.batch.requests"] == 3
        assert counters["serve.batch.folded"] == 3

    def test_artifact_sharing_through_server(self, world):
        track, start, _ = world

        async def scenario():
            async with FleetServer() as server:
                for i in range(4):
                    await server.create_session(
                        track.grid, seed=i, initial_pose=start,
                        range_method="lut", lut_theta_bins=40, **SMALL,
                    )
                return server.registry.artifact_cache.stats()

        stats = asyncio.run(scenario())
        assert stats["builds"] == 1
        assert stats["hits"] == 3


# ----------------------------------------------------------------------
# Bench harness structural gate
# ----------------------------------------------------------------------
def test_check_serve_result_structural_gate():
    from repro.serve.bench import check_serve_result

    good = {
        "sessions": 4,
        "configs": {"setup": {"artifact_builds": 1, "artifact_hits": 3}},
        "speedups": {"artifact_reuse_efficiency": 1.0},
    }
    assert check_serve_result(good, None) == []
    broken = {
        "sessions": 4,
        "configs": {"setup": {"artifact_builds": 4, "artifact_hits": 0}},
        "speedups": {},
    }
    failures = check_serve_result(broken, None)
    assert len(failures) == 2
    baseline = {"speedups": {"artifact_reuse_efficiency": 1.0}}
    slow = dict(good, speedups={"artifact_reuse_efficiency": 0.2})
    assert check_serve_result(slow, baseline, tolerance=0.25)
    assert check_serve_result(good, baseline, tolerance=0.25) == []
