"""The public API surface: everything README/examples rely on.

Guards against accidental breakage of the import paths a downstream user
would write — each `__init__` re-export must exist and be the object its
module defines.
"""

import importlib

import pytest


TOP_LEVEL_EXPORTS = [
    "Cartographer",
    "CartographerConfig",
    "ExperimentCondition",
    "LapExperiment",
    "Localizer",
    "OccupancyGrid",
    "SimConfig",
    "Simulator",
    "SynPF",
    "format_table1",
    "generate_track",
    "load_map_yaml",
    "make_localizer",
    "make_synpf",
    "make_vanilla_mcl",
    "replica_test_track",
]


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__

    @pytest.mark.parametrize("name", TOP_LEVEL_EXPORTS)
    def test_export_present(self, name):
        import repro

        assert hasattr(repro, name), f"repro.{name} missing"
        assert name in repro.__all__

    def test_all_is_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None


SUBPACKAGES = {
    "repro.core": [
        "SynPF", "ParticleFilterConfig", "TumMotionModel",
        "DiffDriveMotionModel", "OdometryDelta", "BeamSensorModel",
        "SensorModelConfig", "BoxedScanLayout", "UniformScanLayout",
        "effective_sample_size", "resample_indices", "estimate_pose",
        "particle_spread", "make_synpf", "make_vanilla_mcl",
        "FusionConfig", "OdometryImuEkf", "kld_sample_size",
        "occupied_bins", "LocalizationSupervisor", "SupervisorConfig",
        "Localizer", "SynPFLocalizer", "CartographerLocalizer",
        "make_localizer", "LOCALIZER_METHODS",
        "BatchLocalizer", "update_localizers_batch",
        "BufferPool", "ParticleCloud",
    ],
    "repro.accel": [
        "KNOWN_BACKENDS", "available_backends", "numba_available",
        "resolve_backend", "DedupRangeMethod", "AccelSpec",
        "parse_accel_spec", "PF_UPDATE_KERNELS", "cast_packed",
        "fused_update_supported", "get_pf_update_kernel",
        "pack_query_keys",
    ],
    "repro.maps": [
        "OccupancyGrid", "Raceline", "TrackSpec", "generate_track",
        "replica_test_track", "load_map_yaml", "save_map_yaml",
        "arclength_resample", "curvature_of_polyline",
        "optimize_raceline", "RacelineOptimizerConfig",
        "wall_distance_statistics", "occupancy_overlap",
    ],
    "repro.viz": [
        "SvgCanvas", "ascii_map", "render_map_svg", "render_experiment_svg",
    ],
    "repro.raycast": [
        "RangeMethod", "BresenhamRayCast", "RayMarching", "CDDT",
        "LookupTable", "make_range_method",
    ],
    "repro.slam": [
        "Cartographer", "CartographerConfig", "PoseGraph", "Constraint",
        "ScanMatcher", "CorrelativeScanMatcher", "GaussNewtonRefiner",
        "LikelihoodField", "ProbabilityGrid", "Submap",
        "optimize_pose_graph", "ScanMatchResult", "BranchAndBoundMatcher",
    ],
    "repro.sim": [
        "Vehicle", "VehicleParams", "VehicleState", "TireModel",
        "SimulatedLidar", "LidarConfig", "LidarScan", "WheelOdometry",
        "OdometryConfig", "ImuSensor", "PurePursuitController",
        "SpeedProfile", "Simulator", "SimConfig",
        "grip_from_pull_force", "pull_force_from_grip",
        "Obstacle", "StaticObstacle", "RacelineFollower", "ray_disc_ranges",
    ],
    "repro.eval": [
        "LapExperiment", "ExperimentCondition", "ConditionResult",
        "LapRecord", "OdometryPerturbation", "format_table1",
        "scan_alignment_score", "pose_error", "compute_load_percent",
        "summarize", "measure_filter_latency",
        "measure_range_method_latency", "measure_scan_match_latency",
        "SweepRunner", "SweepResult", "SweepStats", "TrialSpec",
        "TrialResult", "TrialFailure", "make_lap_conditions",
        "make_lap_specs", "run_lap_trial", "summarize_lap_sweep",
        "merge_sweep_telemetry",
    ],
    "repro.scenarios": [
        "ScenarioSpec", "FaultEvent", "GripChange", "OdometryFault",
        "SlipBurst", "LidarFault", "ScanLatencyJitter", "KidnapTeleport",
        "ObstacleSpawn", "Timeline", "EventLogRecord", "EVENT_REGISTRY",
        "save_scenario", "load_scenario", "SCENARIO_LIBRARY",
        "get_scenario", "list_scenarios", "scenario_names",
        "run_scenario", "run_scenario_trial", "make_campaign_specs",
        "aggregate_scorecard", "format_scorecard", "run_campaign",
        "save_scorecard",
    ],
    "repro.utils": [
        "SE2", "wrap_to_pi", "angle_diff", "circular_mean", "circular_std",
        "make_rng", "derive_seed", "split_rng", "Stopwatch", "TimingStats",
        "rot2d", "transform_points",
    ],
    "repro.telemetry": [
        "Counter", "Gauge", "Histogram", "WindowedHistogram",
        "MetricsRegistry", "DEFAULT_LATENCY_EDGES_MS",
        "DEFAULT_WINDOW_SIZE", "merge_snapshots",
        "registry_from_snapshot", "SpanTracer", "RunManifest",
        "TelemetryWriter", "read_records", "Telemetry",
        "load_run", "render_report", "to_json", "to_prometheus_text",
    ],
    "repro.govern": [
        "LatencyBudget", "KnobSet", "default_ladder", "GovernorPolicy",
        "Governor", "FleetArbiter", "PressureInjector", "PressurePhase",
        "cpu_burn",
    ],
}


@pytest.mark.parametrize(
    "module,name",
    [(m, n) for m, names in SUBPACKAGES.items() for n in names],
)
def test_subpackage_export(module, name):
    mod = importlib.import_module(module)
    assert hasattr(mod, name), f"{module}.{name} missing"


@pytest.mark.parametrize("module", sorted(SUBPACKAGES))
def test_subpackage_all_sorted_and_valid(module):
    mod = importlib.import_module(module)
    assert hasattr(mod, "__all__")
    for name in mod.__all__:
        assert getattr(mod, name, None) is not None, f"{module}.{name} broken"


class TestSynPFUpdateSurface:
    """The redesigned batch-first update API and its deprecation seams.

    Supported surface: ``update`` (solo), ``update_batch`` (multi-session
    fold), ``reconfigure`` (runtime knobs).  Deprecated with warnings:
    the ``prepare_update``/``complete_update`` two-call seam and
    ``mean_update_latency_ms``.
    """

    def test_supported_triple_present(self):
        from repro.core import SynPF

        assert callable(SynPF.update)
        assert callable(SynPF.update_batch)
        assert callable(SynPF.reconfigure)

    def test_batch_localizer_capability(self):
        from repro.core import BatchLocalizer, SynPFLocalizer

        assert SynPFLocalizer.supports_batch is True
        assert isinstance(BatchLocalizer, type(importlib.import_module(
            "repro.core.interfaces").Localizer))

    def test_two_call_seam_warns(self, fine_track):
        import numpy as np

        from repro.core import OdometryDelta, make_synpf

        pf = make_synpf(fine_track.grid, num_particles=20, num_beams=10,
                        seed=0, range_method="ray_marching")
        pf.initialize(fine_track.centerline.start_pose())
        delta = OdometryDelta(0.0, 0.0, 0.0, 0.0, 0.025)
        scan = np.full(10, 2.0)
        angles = np.linspace(-1.0, 1.0, 10)
        with pytest.warns(DeprecationWarning, match="update_batch"):
            pending = pf.prepare_update(delta, scan, angles)
        expected = pf.range_method.calc_ranges_pose_batch(
            pending.sensor_poses, pending.angles
        )
        with pytest.warns(DeprecationWarning, match="update_batch"):
            pf.complete_update(pending, expected)

    def test_mean_update_latency_ms_warns(self, fine_track):
        import numpy as np

        from repro.core import OdometryDelta, make_synpf

        pf = make_synpf(fine_track.grid, num_particles=20, num_beams=10,
                        seed=0, range_method="ray_marching")
        pf.initialize(fine_track.centerline.start_pose())
        pf.update(OdometryDelta(0.0, 0.0, 0.0, 0.0, 0.025),
                  np.full(10, 2.0), np.linspace(-1.0, 1.0, 10))
        with pytest.warns(DeprecationWarning, match="latency_ms"):
            assert pf.mean_update_latency_ms() == pf.latency_ms()
