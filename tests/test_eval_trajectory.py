"""Tests for ATE / RPE trajectory metrics."""

import numpy as np
import pytest

from repro.eval.trajectory import (
    TrajectoryErrors,
    absolute_trajectory_error,
    align_trajectories,
    relative_pose_error,
)


def circle_trajectory(n=50, radius=5.0):
    phi = np.linspace(0, np.pi, n)
    return np.stack(
        [radius * np.cos(phi), radius * np.sin(phi), phi + np.pi / 2], axis=-1
    )


class TestAlign:
    def test_recovers_rigid_offset(self):
        ref = circle_trajectory()
        theta = 0.4
        rot = np.array([[np.cos(theta), -np.sin(theta)],
                        [np.sin(theta), np.cos(theta)]])
        est = ref.copy()
        est[:, :2] = ref[:, :2] @ rot.T + np.array([2.0, -1.0])
        est[:, 2] = ref[:, 2] + theta

        aligned, _, _ = align_trajectories(est, ref)
        assert np.allclose(aligned[:, :2], ref[:, :2], atol=1e-9)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            align_trajectories(np.zeros((5, 3)), np.zeros((6, 3)))

    def test_too_short(self):
        with pytest.raises(ValueError):
            align_trajectories(np.zeros((1, 3)), np.zeros((1, 3)))

    def test_no_reflection(self):
        """Alignment must be a proper rotation, never a mirror."""
        ref = circle_trajectory()
        est = ref + np.random.default_rng(0).normal(0, 0.01, ref.shape)
        _, rot, _ = align_trajectories(est, ref)
        assert np.linalg.det(rot) == pytest.approx(1.0)


class TestAte:
    def test_zero_for_identical(self):
        ref = circle_trajectory()
        ate = absolute_trajectory_error(ref, ref)
        assert ate.rmse == pytest.approx(0.0, abs=1e-12)

    def test_alignment_removes_frame_offset(self):
        ref = circle_trajectory()
        est = ref.copy()
        est[:, 0] += 3.0  # constant frame offset
        with_align = absolute_trajectory_error(est, ref, align=True)
        without = absolute_trajectory_error(est, ref, align=False)
        assert with_align.rmse < 0.01
        assert without.rmse == pytest.approx(3.0, rel=0.01)

    def test_noise_level_recovered(self):
        rng = np.random.default_rng(1)
        ref = circle_trajectory(n=4000)
        est = ref.copy()
        est[:, :2] += rng.normal(0, 0.05, (4000, 2))
        ate = absolute_trajectory_error(est, ref)
        # RMSE of 2D gaussian displacement = sigma * sqrt(2).
        assert ate.rmse == pytest.approx(0.05 * np.sqrt(2), rel=0.1)


class TestRpe:
    def test_zero_for_identical(self):
        ref = circle_trajectory()
        rpe = relative_pose_error(ref, ref)
        assert rpe["translation"].rmse == pytest.approx(0.0, abs=1e-9)
        assert rpe["rotation"].rmse == pytest.approx(0.0, abs=1e-9)

    def test_insensitive_to_global_drift(self):
        """A slowly rotated trajectory has large ATE (unaligned) but its
        short-horizon RPE stays small."""
        ref = circle_trajectory(n=100)
        est = ref.copy()
        drift = np.linspace(0, 0.3, 100)  # growing rotation of the frame
        for i, d in enumerate(drift):
            c, s = np.cos(d), np.sin(d)
            est[i, 0] = c * ref[i, 0] - s * ref[i, 1]
            est[i, 1] = s * ref[i, 0] + c * ref[i, 1]
            est[i, 2] = ref[i, 2] + d
        unaligned = absolute_trajectory_error(est, ref, align=False)
        rpe = relative_pose_error(est, ref, delta=1)
        assert unaligned.max > 10 * rpe["translation"].max

    def test_delta_validation(self):
        ref = circle_trajectory(n=10)
        with pytest.raises(ValueError):
            relative_pose_error(ref, ref, delta=0)
        with pytest.raises(ValueError):
            relative_pose_error(ref, ref, delta=10)

    def test_horizon_scaling(self):
        """Longer horizons accumulate more error for a noisy estimate."""
        rng = np.random.default_rng(0)
        ref = circle_trajectory(n=300)
        est = ref.copy()
        est[:, :2] += rng.normal(0, 0.02, (300, 2)).cumsum(axis=0) * 0.1
        short = relative_pose_error(est, ref, delta=1)
        long = relative_pose_error(est, ref, delta=20)
        assert long["translation"].rmse > short["translation"].rmse


class TestErrorsContainer:
    def test_from_samples(self):
        e = TrajectoryErrors.from_samples(np.array([3.0, 4.0]))
        assert e.rmse == pytest.approx(np.sqrt(12.5))
        assert e.mean == 3.5
        assert e.max == 4.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            TrajectoryErrors.from_samples(np.array([]))
