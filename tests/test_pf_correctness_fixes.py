"""Regression tests for the PF hot-path correctness fixes (PR 6).

Four bugs a long-lived multi-session server would amplify:

1. **Weight overwrite** — the sensor stage replaced the prior weights
   with the bare likelihood; on ESS-gated non-resample steps the Bayes
   posterior must *multiply* prior by likelihood.
2. **NaN scan propagation** — ``np.clip`` passes NaN through, so one
   non-finite beam poisoned every weight.
3. **Lossy beam-selection cache key** — ``(count, first, last)``
   collides for distinct non-uniform tables sharing endpoints; and an
   empty table raised an uncontrolled IndexError deep in the layout.
4. **Augmented-MCL dead recovery** — when the first ``w_avg``
   underflowed to exactly 0.0 the old ``_w_slow == 0`` seeding test kept
   re-seeding forever, freezing recovery off precisely when every
   particle's likelihood had collapsed.
"""

import numpy as np
import pytest

from repro.core.motion_models import OdometryDelta
from repro.core.particle_filter import make_synpf, make_vanilla_mcl
from repro.sim.lidar import LidarConfig, SimulatedLidar

ZERO = OdometryDelta(0.0, 0.0, 0.0, 0.0, 0.025)


def make_pf(track, seed=0, **overrides):
    overrides.setdefault("num_particles", 300)
    overrides.setdefault("num_beams", 20)
    overrides.setdefault("range_method", "ray_marching")
    return make_synpf(track.grid, seed=seed, **overrides)


def run_scan(track, seed=1):
    lidar = SimulatedLidar(
        track.grid, LidarConfig(range_noise_std=0.0, dropout_prob=0.0),
        seed=seed,
    )
    pose = track.centerline.start_pose()
    return pose, lidar.scan(pose)


# ----------------------------------------------------------------------
# 1. Bayes weight accumulation across non-resample steps
# ----------------------------------------------------------------------
class TestWeightAccumulation:
    def test_matches_brute_force_bayes_reference(self, small_track):
        """On consecutive non-resample steps the weights must equal
        ``softmax(sum of per-step log-likelihoods)`` — the brute-force
        Bayes recursion from a uniform prior.
        """
        pose, scan = run_scan(small_track)
        # ESS fraction 0 can't be configured (validated > 0); a tiny one
        # keeps the gate from firing so no resample resets the prior.
        pf = make_pf(small_track, seed=3, resample_ess_fraction=1e-9)
        pf.initialize(pose)

        recorded = []
        inner_model = pf.sensor_model
        real = inner_model.log_likelihood

        def spy(expected, measured):
            out = real(expected, measured)
            recorded.append(np.array(out))
            return out

        inner_model.log_likelihood = spy
        try:
            for _ in range(4):
                est = pf.update(ZERO, scan.ranges, scan.angles)
                assert not est.resampled
        finally:
            inner_model.log_likelihood = real

        cumulative = np.sum(recorded, axis=0)
        cumulative -= cumulative.max()
        expected_weights = np.exp(cumulative)
        expected_weights /= expected_weights.sum()
        # Tolerances: the sensor model emits float32 log-likelihoods and
        # the filter renormalises each step (log->exp->log), so the two
        # accumulation orders drift by ~float32 eps per step; atol clears
        # weights that underflowed to exactly 0.  The overwrite bug this
        # regresses produced weights wrong by orders of magnitude.
        np.testing.assert_allclose(
            pf.weights, expected_weights, rtol=1e-4, atol=1e-12
        )

    def test_prior_survives_nonresample_step(self, small_track):
        """Two different likelihoods applied without a resample must both
        shape the posterior: weights after (A then B) differ from the
        weights the bare second likelihood alone would give.
        """
        pose, scan = run_scan(small_track)
        pf = make_pf(small_track, seed=5, resample_ess_fraction=1e-9)
        pf.initialize(pose)
        pf.update(ZERO, scan.ranges, scan.angles)
        after_first = pf.weights.copy()
        pf.update(ZERO, scan.ranges, scan.angles)
        after_second = pf.weights.copy()

        # Fresh filter, identical particle cloud, one update only: the
        # bare-likelihood weights the old overwrite bug produced.
        pf2 = make_pf(small_track, seed=5, resample_ess_fraction=1e-9)
        pf2.initialize(pose)
        pf2.update(ZERO, scan.ranges, scan.angles)
        # Same seed/config => same particle trajectory, so the second
        # filter's single-step weights equal the first's first step.
        np.testing.assert_allclose(pf2.weights, after_first, rtol=1e-12)
        # ...but the accumulated two-step posterior must be sharper than
        # (and different from) any single-step likelihood.
        assert not np.allclose(after_second, after_first)

    def test_weights_remain_normalized(self, small_track):
        pose, scan = run_scan(small_track)
        pf = make_pf(small_track, seed=7)
        pf.initialize(pose)
        for _ in range(6):
            pf.update(ZERO, scan.ranges, scan.angles)
            assert np.all(np.isfinite(pf.weights))
            assert pf.weights.sum() == pytest.approx(1.0)
            assert np.all(pf.weights >= 0.0)


# ----------------------------------------------------------------------
# 2. NaN/inf scan survival
# ----------------------------------------------------------------------
class TestNonFiniteScans:
    @pytest.mark.parametrize("poison", [np.nan, np.inf, -np.inf])
    def test_single_poisoned_beam_survives(self, small_track, poison):
        pose, scan = run_scan(small_track)
        pf = make_pf(small_track, seed=11)
        pf.initialize(pose)
        ranges = scan.ranges.copy()
        ranges[::7] = poison
        est = pf.update(ZERO, ranges, scan.angles)
        assert np.all(np.isfinite(est.pose))
        assert np.all(np.isfinite(pf.weights))
        assert pf.weights.sum() == pytest.approx(1.0)

    def test_full_blackout_scan_survives(self, small_track):
        """An all-NaN frame (total driver blackout) must not poison the
        filter: it is treated as an all-max-range "no return" scan, and
        subsequent good scans recover the estimate.
        """
        pose, scan = run_scan(small_track)
        pf = make_pf(small_track, seed=13)
        pf.initialize(pose)
        pf.update(ZERO, scan.ranges, scan.angles)
        blackout = np.full_like(scan.ranges, np.nan)
        est = pf.update(ZERO, blackout, scan.angles)
        assert np.all(np.isfinite(est.pose))
        assert np.all(np.isfinite(pf.weights))
        est = pf.update(ZERO, scan.ranges, scan.angles)
        assert np.hypot(*(est.pose[:2] - pose[:2])) < 0.5

    def test_nonfinite_maps_to_max_range(self, small_track):
        """The sanitised measurement must equal max_range exactly — the
        documented RangeMethod "no return" value — not some clip of NaN.
        """
        pose, scan = run_scan(small_track)
        pf = make_pf(small_track, seed=17)
        pf.initialize(pose)
        ranges = np.full_like(scan.ranges, np.inf)
        pending = pf.prepare_update(ZERO, ranges, scan.angles)
        assert np.all(pending.measured == pf.config.sensor.max_range)


# ----------------------------------------------------------------------
# 3. Beam-selection cache key
# ----------------------------------------------------------------------
class TestBeamSelectionCacheKey:
    def test_distinct_tables_sharing_endpoints_not_aliased(self, small_track):
        """Two different non-uniform tables with identical (count, first,
        last) must not share a cached selection — the old endpoint key
        collided here and silently reused the wrong beams.
        """
        pf = make_pf(small_track, layout="uniform", num_beams=10)
        n = 61
        uniform = np.linspace(-np.pi / 2, np.pi / 2, n)
        warped = uniform.copy()
        warped[1:-1] = np.sign(uniform[1:-1]) * np.abs(uniform[1:-1]) ** 1.5 \
            * (np.pi / 2) ** -0.5
        assert warped[0] == uniform[0] and warped[-1] == uniform[-1]
        sel_uniform = pf.select_beams(uniform)
        sel_warped = pf.select_beams(warped)
        # The uniform layout picks evenly spaced *angles*; on the warped
        # table those live at different indices.  With the old key this
        # returned the identical cached object.
        resel_uniform = pf.select_beams(uniform)
        assert sel_uniform is resel_uniform  # caching still works
        assert np.any(uniform[sel_warped] != uniform[sel_uniform]) or \
            np.any(warped[sel_warped] != uniform[sel_uniform])
        assert len(pf._layout_cache) == 2

    def test_same_table_hits_cache(self, small_track):
        pf = make_pf(small_track)
        angles = np.linspace(-1.0, 1.0, 31)
        first = pf.select_beams(angles)
        second = pf.select_beams(angles.copy())  # equal content, new object
        assert first is second

    def test_empty_table_raises_value_error(self, small_track):
        pf = make_pf(small_track)
        with pytest.raises(ValueError, match="non-empty"):
            pf.select_beams(np.array([]))


# ----------------------------------------------------------------------
# 4. Augmented-MCL recovery when w_avg underflows to 0.0
# ----------------------------------------------------------------------
class TestAugmentedZeroRecovery:
    def test_injection_armed_when_averages_collapse(self, small_track):
        """With both likelihood averages at exactly 0.0 (total collapse)
        the filter must inject at full strength, not freeze.  The old
        ``_w_slow > 0`` guard returned 0 injection here forever.
        """
        pose, scan = run_scan(small_track)
        pf = make_pf(small_track, seed=19, augmented=True)
        pf.initialize(pose)
        pf.update(ZERO, scan.ranges, scan.angles)
        # Force the collapsed state the bug froze in, and keep the
        # collapse going through the next update: a likelihood of -1e6
        # per particle underflows w_avg to exactly 0, so both EMAs stay
        # pinned at 0 when the gate is evaluated.
        pf._w_slow = 0.0
        pf._w_fast = 0.0
        pf._w_initialized = True
        real = pf.sensor_model.log_likelihood
        pf.sensor_model.log_likelihood = (
            lambda expected, measured: np.full(expected.shape[0], -1e6)
        )
        try:
            est = pf.update(ZERO, scan.ranges, scan.angles)
        finally:
            pf.sensor_model.log_likelihood = real
        assert pf._last_inject_frac == 1.0
        assert est.resampled

    def test_zero_first_w_avg_does_not_disarm(self, small_track):
        """A first update whose w_avg underflows to exactly 0 must still
        count as seeding the averages: the EMA runs on the next update
        instead of re-seeding (the old sentinel re-seeded whenever
        ``_w_slow == 0.0``, wiping the slow average's history).
        """
        pose, scan = run_scan(small_track)
        pf = make_pf(small_track, seed=23, augmented=True)
        pf.initialize(pose)

        real = pf.sensor_model.log_likelihood
        pf.sensor_model.log_likelihood = (
            lambda expected, measured: np.full(expected.shape[0], -1e6)
        )
        try:
            pf.update(ZERO, scan.ranges, scan.angles)
        finally:
            pf.sensor_model.log_likelihood = real
        assert pf._w_initialized
        assert pf._w_slow == 0.0

        # Next (good) update: EMA pulls both averages up from 0 at their
        # configured rates rather than re-seeding both to w_avg.
        pf.update(ZERO, scan.ranges, scan.angles)
        assert 0.0 < pf._w_slow < pf._w_fast

    def test_healthy_tracking_unaffected(self, small_track):
        pose, scan = run_scan(small_track)
        pf = make_pf(small_track, seed=29, augmented=True)
        pf.initialize(pose)
        for _ in range(5):
            pf.update(ZERO, scan.ranges, scan.angles)
        assert pf._last_inject_frac <= 0.05 or not pf.config.augmented
        tele = pf.telemetry()
        assert tele["augmented"]["w_slow"] > 0.0


# ----------------------------------------------------------------------
# Vanilla-MCL sanity: fixes apply to the ablation baseline too
# ----------------------------------------------------------------------
def test_vanilla_mcl_shares_fixes(small_track):
    lidar = SimulatedLidar(
        small_track.grid,
        LidarConfig(range_noise_std=0.0, dropout_prob=0.0), seed=31,
    )
    pose = small_track.centerline.start_pose()
    scan = lidar.scan(pose)
    pf = make_vanilla_mcl(small_track.grid, seed=37, num_particles=300,
                          num_beams=20, range_method="ray_marching")
    pf.initialize(pose)
    ranges = scan.ranges.copy()
    ranges[0] = np.nan
    for _ in range(3):
        pf.update(ZERO, ranges, scan.angles)
    assert np.all(np.isfinite(pf.weights))
    assert pf.weights.sum() == pytest.approx(1.0)
