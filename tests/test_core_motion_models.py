"""Tests for the diff-drive and TUM motion models, including the Fig. 1
behavioural contrast the paper builds on."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.motion_models import (
    DiffDriveMotionModel,
    OdometryDelta,
    TumMotionModel,
)
from repro.core.pose_estimation import particle_spread


def straight_delta(speed: float, dt: float = 0.025) -> OdometryDelta:
    return OdometryDelta(speed * dt, 0.0, 0.0, velocity=speed, dt=dt)


def particles_at_origin(n: int = 4000) -> np.ndarray:
    return np.zeros((n, 3))


class TestOdometryDelta:
    def test_from_poses_translation(self):
        prev = np.array([1.0, 1.0, 0.0])
        now = np.array([1.5, 1.0, 0.0])
        d = OdometryDelta.from_poses(prev, now, dt=0.1)
        assert d.dx == pytest.approx(0.5)
        assert d.dy == pytest.approx(0.0)
        assert d.velocity == pytest.approx(5.0)

    def test_from_poses_in_rotated_frame(self):
        prev = np.array([0.0, 0.0, np.pi / 2])
        now = np.array([0.0, 1.0, np.pi / 2])
        d = OdometryDelta.from_poses(prev, now)
        assert d.dx == pytest.approx(1.0)  # forward in the robot frame
        assert d.dy == pytest.approx(0.0, abs=1e-12)

    def test_trans_magnitude(self):
        d = OdometryDelta(3.0, 4.0, 0.0)
        assert d.trans == pytest.approx(5.0)

    def test_compose_straight_segments(self):
        a = OdometryDelta(1.0, 0.0, 0.0, velocity=2.0, dt=0.5)
        b = OdometryDelta(2.0, 0.0, 0.0, velocity=4.0, dt=0.5)
        c = a.compose(b)
        assert c.dx == pytest.approx(3.0)
        assert c.dt == pytest.approx(1.0)
        assert c.velocity == pytest.approx(3.0)  # duration-weighted mean

    def test_compose_with_rotation(self):
        # Quarter turn, then 1 m forward: ends at (0, 1) facing +y... in
        # the first segment's start frame the second dx points along +y.
        a = OdometryDelta(0.0, 0.0, np.pi / 2, dt=0.1)
        b = OdometryDelta(1.0, 0.0, 0.0, dt=0.1)
        c = a.compose(b)
        assert c.dx == pytest.approx(0.0, abs=1e-12)
        assert c.dy == pytest.approx(1.0)
        assert c.dtheta == pytest.approx(np.pi / 2)

    def test_compose_associative(self):
        rng = np.random.default_rng(3)
        deltas = [
            OdometryDelta(*rng.normal(0, 0.1, 3), velocity=1.0, dt=0.01)
            for _ in range(3)
        ]
        left = deltas[0].compose(deltas[1]).compose(deltas[2])
        right = deltas[0].compose(deltas[1].compose(deltas[2]))
        assert left.dx == pytest.approx(right.dx)
        assert left.dy == pytest.approx(right.dy)
        assert left.dtheta == pytest.approx(right.dtheta)


class TestDiffDrive:
    def test_zero_motion_keeps_particles_near(self, rng):
        model = DiffDriveMotionModel()
        particles = particles_at_origin(1000)
        out = model.propagate(particles, OdometryDelta(0, 0, 0, dt=0.025), rng)
        assert np.abs(out[:, :2]).max() < 0.01

    def test_mean_follows_odometry(self, rng):
        model = DiffDriveMotionModel(alpha1=0.01, alpha2=0.01, alpha3=0.01, alpha4=0.01)
        out = model.propagate(
            particles_at_origin(20000), straight_delta(4.0), rng
        )
        assert out[:, 0].mean() == pytest.approx(0.1, abs=0.01)
        assert out[:, 1].mean() == pytest.approx(0.0, abs=0.01)

    def test_does_not_mutate_input(self, rng):
        model = DiffDriveMotionModel()
        particles = particles_at_origin(100)
        before = particles.copy()
        model.propagate(particles, straight_delta(2.0), rng)
        assert np.array_equal(particles, before)

    def test_heading_spread_grows_with_speed(self, rng):
        """alpha2 couples translation into heading noise: faster = wider."""
        model = DiffDriveMotionModel()
        slow = model.propagate(particles_at_origin(), straight_delta(0.5), rng)
        fast = model.propagate(particles_at_origin(), straight_delta(7.0), rng)
        assert particle_spread(fast).std_theta > 3 * particle_spread(slow).std_theta

    def test_reverse_motion(self, rng):
        model = DiffDriveMotionModel(alpha1=0.001, alpha2=0.001, alpha3=0.001,
                                     alpha4=0.001)
        delta = OdometryDelta(-0.1, 0.0, 0.0, velocity=-4.0, dt=0.025)
        out = model.propagate(particles_at_origin(5000), delta, rng)
        assert out[:, 0].mean() == pytest.approx(-0.1, abs=0.02)


class TestTumModel:
    def test_steering_bound_shrinks_with_speed(self):
        model = TumMotionModel()
        slow = model.steering_bound(0.3)
        mid = model.steering_bound(3.0)
        fast = model.steering_bound(7.0)
        assert slow == pytest.approx(model.max_steer)
        assert fast < mid < slow
        # At 7 m/s the lateral-acceleration-limited angle is small.
        expected = np.arctan(model.a_lat_max * model.wheelbase / 49.0)
        assert fast == pytest.approx(expected)

    def test_implied_steering_recovers_yaw(self):
        model = TumMotionModel()
        v, dt = 3.0, 0.025
        steer = 0.2
        yaw_rate = v * np.tan(steer) / model.wheelbase
        delta = OdometryDelta(v * dt, 0.0, yaw_rate * dt, velocity=v, dt=dt)
        assert model.implied_steering(delta) == pytest.approx(steer, abs=1e-6)

    def test_mean_follows_odometry(self, rng):
        model = TumMotionModel(sigma_speed_frac=0.01, sigma_speed_min=0.01,
                               sigma_steer=0.005, sigma_slip_y=0.0)
        out = model.propagate(particles_at_origin(20000), straight_delta(4.0), rng)
        assert out[:, 0].mean() == pytest.approx(0.1, abs=0.005)

    def test_curved_propagation_follows_arc(self, rng):
        model = TumMotionModel(sigma_speed_frac=0.001, sigma_speed_min=0.001,
                               sigma_steer=0.001, sigma_slip_y=0.0)
        v, dt = 2.0, 0.5
        steer = 0.2
        yaw_rate = v * np.tan(steer) / model.wheelbase
        dtheta = yaw_rate * dt
        delta = OdometryDelta(0.0, 0.0, dtheta, velocity=v, dt=dt)
        out = model.propagate(particles_at_origin(2000), delta, rng)
        radius = v / yaw_rate
        assert out[:, 2].mean() == pytest.approx(dtheta, abs=0.05)
        assert out[:, 0].mean() == pytest.approx(radius * np.sin(dtheta), abs=0.05)
        assert out[:, 1].mean() == pytest.approx(radius * (1 - np.cos(dtheta)), abs=0.05)

    def test_does_not_mutate_input(self, rng):
        model = TumMotionModel()
        particles = particles_at_origin(100)
        before = particles.copy()
        model.propagate(particles, straight_delta(5.0), rng)
        assert np.array_equal(particles, before)

    def test_zero_dt_handled(self, rng):
        model = TumMotionModel()
        out = model.propagate(
            particles_at_origin(10), OdometryDelta(0.05, 0, 0, 0.0, 0.0), rng
        )
        assert out.shape == (10, 3)
        assert np.all(np.isfinite(out))


class TestFig1Contrast:
    """The paper's Fig. 1: at low speed both models spread similarly; at
    high speed the TUM model's heading/lateral spread is far smaller."""

    def setup_method(self):
        self.diff = DiffDriveMotionModel()
        self.tum = TumMotionModel()

    def _spreads(self, model, speed, rng, steps=8):
        particles = particles_at_origin(3000)
        delta = straight_delta(speed)
        for _ in range(steps):
            particles = model.propagate(particles, delta, rng)
        return particle_spread(particles)

    def test_low_speed_models_similar(self, rng):
        d = self._spreads(self.diff, 0.5, rng)
        t = self._spreads(self.tum, 0.5, rng)
        # Same order of magnitude in heading spread.
        assert 0.1 < t.std_theta / d.std_theta < 10.0

    def test_high_speed_tum_much_tighter_heading(self, rng):
        d = self._spreads(self.diff, 7.0, rng)
        t = self._spreads(self.tum, 7.0, rng)
        assert t.std_theta < d.std_theta / 3.0

    def test_high_speed_tum_tighter_lateral(self, rng):
        d = self._spreads(self.diff, 7.0, rng)
        t = self._spreads(self.tum, 7.0, rng)
        assert t.lateral < d.lateral / 2.0

    def test_tum_heading_spread_sublinear_in_speed(self, rng):
        """Diff-drive heading spread grows ~linearly with speed (alpha2 *
        trans); TUM's is capped by the lateral-acceleration feasibility
        bound, so it must grow clearly slower than linearly."""
        mid = self._spreads(self.tum, 2.0, rng)
        fast = self._spreads(self.tum, 7.0, rng)
        speed_ratio = 7.0 / 2.0
        assert fast.std_theta / mid.std_theta < 0.8 * speed_ratio


@settings(deadline=None, max_examples=20)
@given(
    speed=st.floats(min_value=0.2, max_value=7.6),
    steer_noise=st.floats(min_value=0.01, max_value=0.1),
)
def test_property_tum_respects_lateral_acceleration(speed, steer_noise):
    """No TUM-propagated particle may exceed the lateral-acceleration limit
    implied by its sampled (clipped) steering angle."""
    model = TumMotionModel(sigma_steer=steer_noise, sigma_slip_y=0.0,
                           sigma_speed_frac=0.0, sigma_speed_min=1e-6)
    rng = np.random.default_rng(0)
    dt = 0.025
    delta = OdometryDelta(speed * dt, 0.0, 0.0, velocity=speed, dt=dt)
    particles = np.zeros((2000, 3))
    out = model.propagate(particles, delta, rng)
    dtheta = np.abs(out[:, 2])
    yaw_rate = dtheta / dt
    # a_lat = v * yaw_rate; tolerance for the speed-noise floor.
    a_lat = speed * yaw_rate
    bound = model.a_lat_max if speed >= 0.5 else speed / model.wheelbase * np.tan(
        model.max_steer
    ) * speed
    assert np.all(a_lat <= max(bound, 1e-9) * 1.25 + 0.5)
