"""Tests for the ``repro verify`` orchestration (repro.verify.suite)."""

import json

import pytest

from repro.verify.golden import record_golden
from repro.verify.suite import (
    VERIFY_SUITES,
    VerifyConfig,
    build_verify_specs,
    render_verify_report,
    run_verify,
    run_verify_trial,
)


class TestVerifyConfig:
    def test_defaults_satisfy_issue_acceptance_scale(self):
        config = VerifyConfig()
        assert config.suite == "all"
        assert config.n_queries >= 10_000

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            VerifyConfig(suite="vibes")

    @pytest.mark.parametrize("kwargs", [
        {"n_queries": 0}, {"batch_size": 0},
    ])
    def test_degenerate_sizes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            VerifyConfig(**kwargs)

    def test_to_dict_is_json_ready(self):
        payload = json.dumps(VerifyConfig().to_dict())
        assert "n_queries" in payload


class TestBuildSpecs:
    def test_all_suite_covers_every_namespace(self):
        specs = build_verify_specs(VerifyConfig())
        prefixes = {spec.trial_id.split("/")[0] for spec in specs}
        assert prefixes == {"raycast", "localizer", "meta", "golden"}

    def test_suite_selection_filters_namespaces(self):
        for suite, expected in [
            ("differential", {"raycast", "localizer"}),
            ("metamorphic", {"meta"}),
            ("golden", {"golden"}),
        ]:
            specs = build_verify_specs(VerifyConfig(suite=suite))
            assert {s.trial_id.split("/")[0] for s in specs} == expected

    def test_batches_partition_the_query_budget(self):
        config = VerifyConfig(suite="differential", n_queries=10,
                              batch_size=4)
        sizes = [s.params["batch_size"] for s in build_verify_specs(config)
                 if s.params["kind"] == "raycast_batch"]
        assert sum(sizes) == 10
        assert all(n >= 1 for n in sizes)

    def test_time_reversal_runs_once_not_per_method(self):
        specs = build_verify_specs(VerifyConfig(suite="metamorphic"))
        reversal = [s for s in specs if "time_reversal" in s.trial_id]
        assert len(reversal) == 1
        assert reversal[0].params["method"] == "odometry"

    def test_seeds_are_trial_id_scoped(self):
        specs = build_verify_specs(VerifyConfig(suite="metamorphic"))
        assert len({s.seed for s in specs}) == len(specs)

    def test_trial_dispatch_rejects_unknown_kind(self):
        spec = build_verify_specs(VerifyConfig(suite="golden"))[0]
        spec.params["kind"] = "nonsense"
        with pytest.raises(ValueError, match="unknown verify trial kind"):
            run_verify_trial(spec)


class TestRunVerify:
    def test_metamorphic_suite_end_to_end(self):
        config = VerifyConfig(suite="metamorphic",
                              methods=("cartographer",), trace_seed=5)
        report = run_verify(config)
        assert report.ok, render_verify_report(report)
        assert report.raycast is None and report.localizer is None
        # 3 per-method checks on one method + time_reversal once.
        assert len(report.metamorphic) == 4
        checks = [(r.check, r.method) for r in report.metamorphic]
        assert checks == sorted(checks)

    def test_small_differential_end_to_end(self):
        config = VerifyConfig(suite="differential", n_queries=400,
                              batch_size=200, methods=("cartographer",),
                              n_scans=6)
        report = run_verify(config)
        assert report.ok, render_verify_report(report)
        assert report.raycast.n_queries == 400
        assert report.localizer.ok
        assert report.manifest["config"]["n_queries"] == 400

    def test_report_to_dict_roundtrips_json(self):
        config = VerifyConfig(suite="metamorphic",
                              methods=("cartographer",))
        report = run_verify(config)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["kind"] == "verify_report"
        assert payload["ok"] is True
        assert len(payload["metamorphic"]) == 4

    def test_missing_goldens_fail_closed(self, tmp_path):
        config = VerifyConfig(suite="golden", golden_dir=str(tmp_path))
        report = run_verify(config)
        assert not report.ok
        assert len(report.trial_failures) == 4
        assert report.trial_failures[0]["error_type"] == "FileNotFoundError"
        text = render_verify_report(report)
        assert "trial failures" in text
        assert text.endswith("overall: FAIL")

    def test_update_golden_writes_files(self, tmp_path):
        # Seed only one golden so --update-golden has to create the rest.
        from repro.verify.golden import default_golden_specs

        spec = dict(default_golden_specs()[2])  # cartographer: fastest
        spec["n_scans"] = 3
        record_golden(spec, tmp_path)
        config = VerifyConfig(suite="golden", golden_dir=str(tmp_path),
                              update_golden=True, n_scans=3)
        report = run_verify(config)
        assert report.ok, render_verify_report(report)
        assert all("updated" in record for record in report.golden)
        assert "updated ->" in render_verify_report(report)


@pytest.mark.verify
class TestWorkerInvariance:
    """ISSUE acceptance: reports bit-identical at any worker count."""

    def test_workers_1_vs_2_reports_match(self):
        def snapshot(workers):
            config = VerifyConfig(suite="differential", n_queries=1000,
                                  batch_size=250, workers=workers,
                                  methods=("cartographer",), n_scans=6)
            payload = run_verify(config).to_dict()
            # The manifest stamps wall-clock and host facts; everything
            # else must be invariant.
            payload.pop("manifest")
            payload["config"].pop("workers")
            return json.dumps(payload, sort_keys=True)

        assert snapshot(1) == snapshot(2)
