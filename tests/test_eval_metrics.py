"""Tests for the Table I proxy metrics."""

import numpy as np
import pytest

from repro.eval.metrics import (
    compute_load_percent,
    pose_error,
    scan_alignment_score,
    summarize,
)
from repro.sim.lidar import LidarConfig, SimulatedLidar


class TestScanAlignment:
    @pytest.fixture()
    def setup(self, small_track):
        cfg = LidarConfig(range_noise_std=0.0, dropout_prob=0.0, mount_offset_x=0.0)
        lidar = SimulatedLidar(small_track.grid, cfg, seed=0)
        pose = small_track.centerline.start_pose()
        scan = lidar.scan(pose)
        return small_track.grid, pose, scan, cfg

    def test_true_pose_high_score(self, setup):
        grid, pose, scan, cfg = setup
        score = scan_alignment_score(grid, pose, scan, tolerance=0.08,
                                     max_range=cfg.max_range)
        assert score > 0.9

    def test_displaced_pose_lower_score(self, setup):
        grid, pose, scan, cfg = setup
        good = scan_alignment_score(grid, pose, scan, max_range=cfg.max_range)
        shifted = pose + np.array([0.3, 0.2, 0.0])
        bad = scan_alignment_score(grid, shifted, scan, max_range=cfg.max_range)
        assert bad < good - 0.2

    def test_rotated_pose_lower_score(self, setup):
        grid, pose, scan, cfg = setup
        good = scan_alignment_score(grid, pose, scan, max_range=cfg.max_range)
        rotated = pose + np.array([0.0, 0.0, 0.15])
        bad = scan_alignment_score(grid, rotated, scan, max_range=cfg.max_range)
        assert bad < good

    def test_monotone_in_tolerance(self, setup):
        grid, pose, scan, cfg = setup
        tight = scan_alignment_score(grid, pose, scan, tolerance=0.02,
                                     max_range=cfg.max_range)
        loose = scan_alignment_score(grid, pose, scan, tolerance=0.3,
                                     max_range=cfg.max_range)
        assert loose >= tight

    def test_empty_scan_zero(self, small_track):
        from repro.sim.lidar import LidarScan

        scan = LidarScan(
            ranges=np.full(10, 12.0),
            angles=np.linspace(-1, 1, 10),
            timestamp=0.0,
            sensor_pose=np.zeros(3),
        )
        score = scan_alignment_score(
            small_track.grid, np.zeros(3), scan, max_range=12.0
        )
        assert score == 0.0


class TestPoseError:
    def test_translation(self):
        e = pose_error(np.array([3.0, 4.0, 0.0]), np.zeros(3))
        assert e["translation"] == pytest.approx(5.0)

    def test_heading_wraps(self):
        e = pose_error(np.array([0, 0, np.pi - 0.05]), np.array([0, 0, -np.pi + 0.05]))
        assert e["heading"] == pytest.approx(0.1)


class TestComputeLoad:
    def test_formula(self):
        # 5 ms at 40 Hz = 20% of one core.
        assert compute_load_percent(0.005, 40.0) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_load_percent(0.01, 0.0)
        with pytest.raises(ValueError):
            compute_load_percent(-0.01, 40.0)


class TestSummarize:
    def test_statistics(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.min == 1.0
        assert s.max == 3.0
        assert s.count == 3

    def test_single_sample_zero_std(self):
        assert summarize([4.2]).std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
