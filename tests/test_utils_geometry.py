"""Unit and property tests for SE(2) geometry."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.geometry import (
    SE2,
    homogeneous_from_pose,
    pose_from_homogeneous,
    rot2d,
    transform_points,
    transform_points_batch,
)

pose_components = st.floats(min_value=-100, max_value=100, allow_nan=False)
pose_strategy = st.tuples(
    pose_components,
    pose_components,
    st.floats(min_value=-np.pi, max_value=np.pi),
)


class TestRot2d:
    def test_identity(self):
        assert np.allclose(rot2d(0.0), np.eye(2))

    def test_quarter_turn(self):
        r = rot2d(np.pi / 2)
        assert np.allclose(r @ np.array([1.0, 0.0]), [0.0, 1.0], atol=1e-12)

    def test_orthonormal(self):
        r = rot2d(0.73)
        assert np.allclose(r @ r.T, np.eye(2), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)


class TestHomogeneous:
    @given(pose_strategy)
    def test_roundtrip(self, pose):
        pose = np.array(pose)
        recovered = pose_from_homogeneous(homogeneous_from_pose(pose))
        assert np.allclose(recovered, pose, atol=1e-9)

    def test_matrix_composition_matches_se2(self):
        a = np.array([1.0, 2.0, 0.3])
        b = np.array([-0.5, 0.7, -1.1])
        via_matrix = pose_from_homogeneous(
            homogeneous_from_pose(a) @ homogeneous_from_pose(b)
        )
        via_se2 = (SE2.from_array(a) @ SE2.from_array(b)).as_array()
        assert np.allclose(via_matrix, via_se2, atol=1e-12)


class TestTransformPoints:
    def test_identity_pose(self):
        pts = np.array([[1.0, 2.0], [-3.0, 0.5]])
        assert np.allclose(transform_points(np.zeros(3), pts), pts)

    def test_pure_translation(self):
        pts = np.array([[1.0, 1.0]])
        out = transform_points(np.array([2.0, -1.0, 0.0]), pts)
        assert np.allclose(out, [[3.0, 0.0]])

    def test_pure_rotation(self):
        pts = np.array([[1.0, 0.0]])
        out = transform_points(np.array([0.0, 0.0, np.pi / 2]), pts)
        assert np.allclose(out, [[0.0, 1.0]], atol=1e-12)

    def test_batch_matches_single(self):
        rng = np.random.default_rng(5)
        poses = rng.uniform(-5, 5, size=(4, 3))
        pts = rng.uniform(-2, 2, size=(7, 2))
        batch = transform_points_batch(poses, pts)
        assert batch.shape == (4, 7, 2)
        for i, pose in enumerate(poses):
            assert np.allclose(batch[i], transform_points(pose, pts), atol=1e-12)


class TestSE2:
    def test_identity_is_neutral(self):
        p = SE2(1.0, 2.0, 0.5)
        assert (SE2.identity() @ p).as_array() == pytest.approx(p.as_array())
        assert (p @ SE2.identity()).as_array() == pytest.approx(p.as_array())

    @given(pose_strategy)
    def test_inverse_cancels(self, pose):
        p = SE2(*pose)
        composed = p @ p.inverse()
        assert np.allclose(composed.as_array(), [0, 0, 0], atol=1e-6)

    @given(pose_strategy, pose_strategy, pose_strategy)
    def test_associativity(self, a, b, c):
        pa, pb, pc = SE2(*a), SE2(*b), SE2(*c)
        left = ((pa @ pb) @ pc).as_array()
        right = (pa @ (pb @ pc)).as_array()
        assert np.allclose(left[:2], right[:2], atol=1e-6)
        assert np.cos(left[2]) == pytest.approx(np.cos(right[2]), abs=1e-9)

    def test_relative_to(self):
        world_a = SE2(1.0, 0.0, np.pi / 2)
        world_b = SE2(1.0, 2.0, np.pi / 2)
        rel = world_b.relative_to(world_a)
        # b is 2 m in front of a (a faces +y).
        assert rel.as_array() == pytest.approx([2.0, 0.0, 0.0], abs=1e-12)

    def test_apply_matches_function(self):
        pose = np.array([0.5, -1.0, 0.8])
        pts = np.array([[1.0, 2.0], [0.0, 0.0]])
        assert np.allclose(SE2.from_array(pose).apply(pts), transform_points(pose, pts))

    def test_distance(self):
        assert SE2(0, 0, 0).distance_to(SE2(3, 4, 1)) == pytest.approx(5.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            SE2(0, 0, 0).x = 1.0
