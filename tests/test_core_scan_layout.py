"""Tests for uniform vs boxed scanline selection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scan_layout import BoxedScanLayout, UniformScanLayout


def hokuyo_angles(n=1081):
    return np.linspace(-np.deg2rad(135), np.deg2rad(135), n)


class TestUniformLayout:
    def test_count(self):
        idx = UniformScanLayout().select(hokuyo_angles(), 60)
        assert 55 <= idx.size <= 60

    def test_indices_sorted_unique(self):
        idx = UniformScanLayout().select(hokuyo_angles(), 60)
        assert np.all(np.diff(idx) > 0)

    def test_covers_full_fov(self):
        angles = hokuyo_angles()
        idx = UniformScanLayout().select(angles, 30)
        assert idx[0] == 0
        assert idx[-1] == angles.size - 1

    def test_roughly_equal_angular_spacing(self):
        angles = hokuyo_angles()
        idx = UniformScanLayout().select(angles, 40)
        spacing = np.diff(angles[idx])
        assert spacing.std() / spacing.mean() < 0.1

    def test_more_beams_than_available(self):
        idx = UniformScanLayout().select(hokuyo_angles(11), 50)
        assert np.array_equal(idx, np.arange(11))

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            UniformScanLayout().select(hokuyo_angles(), 0)


class TestBoxedLayout:
    def test_perimeter_angles_sorted(self):
        layout = BoxedScanLayout(aspect_ratio=3.0)
        angles = layout.perimeter_angles(64)
        assert np.all(np.diff(angles) >= 0)
        assert angles.size == 64

    def test_forward_concentration(self):
        """An elongated box concentrates beams near the corridor axis
        (|angle| near 0 or pi) compared with uniform spacing."""
        layout = BoxedScanLayout(aspect_ratio=4.0)
        angles = layout.perimeter_angles(200)
        # Fraction of beams within 30 degrees of straight ahead:
        forward = np.mean(np.abs(angles) < np.deg2rad(30))
        # Uniform angular spacing would put 60/360 ~ 0.167 there.
        assert forward > 0.3

    def test_square_box_less_concentrated(self):
        elongated = BoxedScanLayout(aspect_ratio=4.0).perimeter_angles(200)
        square = BoxedScanLayout(aspect_ratio=1.0).perimeter_angles(200)
        fw_elong = np.mean(np.abs(elongated) < np.deg2rad(30))
        fw_square = np.mean(np.abs(square) < np.deg2rad(30))
        assert fw_elong > fw_square

    def test_select_within_fov(self):
        angles = hokuyo_angles()
        idx = BoxedScanLayout(aspect_ratio=3.0).select(angles, 60)
        assert idx.min() >= 0
        assert idx.max() < angles.size

    def test_select_returns_reasonable_count(self):
        idx = BoxedScanLayout(aspect_ratio=3.0).select(hokuyo_angles(), 60)
        # Rear-facing targets fall outside the 270-degree FoV and targets
        # may collide on the same beam, so fewer than requested is fine —
        # but the layout must retain a useful number.
        assert 20 <= idx.size <= 60

    def test_selected_beams_lean_forward(self):
        angles = hokuyo_angles()
        boxed = BoxedScanLayout(aspect_ratio=4.0).select(angles, 60)
        uniform = UniformScanLayout().select(angles, 60)
        fw_boxed = np.mean(np.abs(angles[boxed]) < np.deg2rad(30))
        fw_uniform = np.mean(np.abs(angles[uniform]) < np.deg2rad(30))
        assert fw_boxed > 1.5 * fw_uniform

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BoxedScanLayout(aspect_ratio=0.0).perimeter_angles(10)
        with pytest.raises(ValueError):
            BoxedScanLayout(box_width=-1.0).perimeter_angles(10)
        with pytest.raises(ValueError):
            BoxedScanLayout().perimeter_angles(0)

    @settings(deadline=None, max_examples=20)
    @given(
        aspect=st.floats(min_value=0.5, max_value=8.0),
        n=st.integers(min_value=8, max_value=120),
    )
    def test_property_selection_valid(self, aspect, n):
        angles = hokuyo_angles()
        idx = BoxedScanLayout(aspect_ratio=aspect).select(angles, n)
        assert idx.size >= 1
        assert np.all(np.diff(idx) > 0)
        assert idx.dtype == np.int64


class TestGeometryOfBoxedIntersections:
    def test_uniform_spacing_on_box(self):
        """Beam directions, traced to the box perimeter, are ~uniform."""
        layout = BoxedScanLayout(aspect_ratio=3.0, box_width=2.0)
        angles = layout.perimeter_angles(100)
        half_w, half_l = 1.0, 3.0

        # Intersect each direction with the rectangle.
        pts = []
        for a in angles:
            dx, dy = np.cos(a), np.sin(a)
            ts = []
            if dx != 0:
                for x_edge in (half_l, -half_l):
                    t = x_edge / dx
                    if t > 0 and abs(t * dy) <= half_w + 1e-9:
                        ts.append(t)
            if dy != 0:
                for y_edge in (half_w, -half_w):
                    t = y_edge / dy
                    if t > 0 and abs(t * dx) <= half_l + 1e-9:
                        ts.append(t)
            t = min(ts)
            pts.append((t * dx, t * dy))
        pts = np.array(pts)
        gaps = np.hypot(*np.diff(np.vstack([pts, pts[:1]]), axis=0).T)
        # Perimeter gaps concentrated around perimeter/100; corners allow
        # some slack.
        perimeter = 2 * (2 * half_w + 2 * half_l)
        assert np.median(gaps) == pytest.approx(perimeter / 100, rel=0.25)
