"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro.core.motion_models import OdometryDelta
from repro.core.particle_filter import make_synpf
from repro.maps.occupancy_grid import FREE, OCCUPIED, OccupancyGrid
from repro.raycast import BresenhamRayCast, RayMarching
from repro.sim.lidar import LidarConfig, LidarScan, SimulatedLidar


class TestRaycastEdges:
    def test_all_free_map_rays_escape(self):
        grid = OccupancyGrid(np.zeros((40, 40), dtype=np.int8), 0.1)
        for caster in (BresenhamRayCast(grid, max_range=3.0),
                       RayMarching(grid, max_range=3.0)):
            r = caster.calc_range(2.0, 2.0, 0.7)
            assert r == pytest.approx(3.0)

    def test_all_occupied_map(self):
        grid = OccupancyGrid(
            np.full((10, 10), OCCUPIED, dtype=np.int8), 0.1
        )
        caster = BresenhamRayCast(grid)
        assert caster.calc_range(0.5, 0.5, 0.0) == 0.0

    def test_single_query_shapes(self):
        grid = OccupancyGrid(np.zeros((10, 10), dtype=np.int8), 0.1)
        caster = RayMarching(grid, max_range=2.0)
        out = caster.calc_ranges(np.array([[0.5, 0.5, 0.0]]))
        assert out.shape == (1,)

    def test_zero_max_iters_ray_marching_degrades_gracefully(self):
        grid = OccupancyGrid(np.zeros((10, 10), dtype=np.int8), 0.1)
        caster = RayMarching(grid, max_range=2.0, max_iters=1)
        out = caster.calc_range(0.5, 0.5, 0.0)
        assert 0.0 <= out <= 2.0


class TestLidarScanEdges:
    def _scan(self, ranges):
        ranges = np.asarray(ranges, dtype=float)
        angles = np.linspace(-1, 1, ranges.size)
        return LidarScan(ranges, angles, 0.0, np.zeros(3))

    def test_keep_max_range_points(self):
        scan = self._scan([1.0, 12.0, 2.0])
        pts = scan.points_in_sensor_frame(drop_max_range=False)
        assert pts.shape == (3, 2)

    def test_all_dropouts(self):
        scan = self._scan([12.0] * 5)
        pts = scan.points_in_sensor_frame(max_range=12.0)
        assert pts.shape == (0, 2)

    def test_polar_to_cartesian(self):
        scan = LidarScan(
            np.array([2.0]), np.array([np.pi / 2]), 0.0, np.zeros(3)
        )
        pts = scan.points_in_sensor_frame(drop_max_range=False)
        assert np.allclose(pts, [[0.0, 2.0]], atol=1e-12)


class TestFilterFailureInjection:
    @pytest.fixture(scope="class")
    def setup(self, fine_track):
        pf = make_synpf(fine_track.grid, num_particles=500, num_beams=30,
                        seed=0, range_method="ray_marching")
        pf.initialize(fine_track.centerline.start_pose())
        lidar = SimulatedLidar(fine_track.grid, LidarConfig(), seed=1)
        return pf, lidar, fine_track

    def test_survives_all_max_range_scan(self, setup):
        """A scan of pure dropouts (sensor blackout) must not crash or
        produce NaNs — weights degrade to near-uniform."""
        pf, lidar, track = setup
        blank = np.full(lidar.config.num_beams, lidar.config.max_range)
        est = pf.update(OdometryDelta(0.05, 0, 0, 2.0, 0.025),
                        blank, lidar.angles)
        assert np.all(np.isfinite(est.pose))
        assert np.all(np.isfinite(pf.weights))

    def test_survives_zero_ranges(self, setup):
        pf, lidar, track = setup
        zeros = np.zeros(lidar.config.num_beams)
        est = pf.update(OdometryDelta(0.0, 0, 0, 0.0, 0.025),
                        zeros, lidar.angles)
        assert np.all(np.isfinite(est.pose))

    def test_survives_huge_odometry_jump(self, setup):
        """A (bogus) 5 m odometry jump in one interval: no crash, pose
        stays finite, and subsequent good scans re-localize."""
        pf, lidar, track = setup
        pose = track.centerline.start_pose()
        jump = OdometryDelta(5.0, 0.0, 0.0, velocity=200.0, dt=0.025)
        scan = lidar.scan(pose)
        est = pf.update(jump, scan.ranges, scan.angles)
        assert np.all(np.isfinite(est.pose))
        # Recovery: feed several good stationary scans.  Stationary data
        # cannot fully break corridor aliasing, so "recovered" here means
        # back within corridor scale of the truth, from 5 m away.
        for _ in range(20):
            scan = lidar.scan(pose)
            est = pf.update(OdometryDelta(0, 0, 0, 0, 0.025),
                            scan.ranges, scan.angles)
        assert np.hypot(*(est.pose[:2] - pose[:2])) < 1.5

    def test_negative_ranges_clamped(self, setup):
        pf, lidar, track = setup
        bad = np.full(lidar.config.num_beams, -3.0)
        est = pf.update(OdometryDelta(0, 0, 0, 0, 0.025), bad, lidar.angles)
        assert np.all(np.isfinite(est.pose))


class TestGridEdges:
    def test_one_cell_grid(self):
        grid = OccupancyGrid(np.array([[FREE]], dtype=np.int8), 0.5)
        assert grid.width == 1 and grid.height == 1
        assert not grid.is_occupied_world(np.array([0.25, 0.25]))[0]

    def test_distance_field_no_obstacles(self):
        grid = OccupancyGrid(np.zeros((5, 5), dtype=np.int8), 0.1)
        field = grid.distance_field()
        # No obstacle anywhere: distances are large (EDT of all-True).
        assert np.all(field > 0)

    def test_occupied_centers_empty(self):
        grid = OccupancyGrid(np.zeros((5, 5), dtype=np.int8), 0.1)
        assert grid.occupied_cell_centers().shape == (0, 2)
