"""Tests for simulated LiDAR, wheel odometry and IMU."""

import numpy as np
import pytest

from repro.sim.lidar import LidarConfig, SimulatedLidar
from repro.sim.odometry import ImuSensor, OdometryConfig, WheelOdometry
from repro.sim.vehicle import VehicleState
from repro.utils.rng import make_rng


class TestLidarConfig:
    def test_beam_angles_span_fov(self):
        cfg = LidarConfig(num_beams=5, fov=np.pi)
        angles = cfg.beam_angles()
        assert angles[0] == pytest.approx(-np.pi / 2)
        assert angles[-1] == pytest.approx(np.pi / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            LidarConfig(num_beams=1).validate()
        with pytest.raises(ValueError):
            LidarConfig(fov=0.0).validate()
        with pytest.raises(ValueError):
            LidarConfig(dropout_prob=1.5).validate()


class TestSimulatedLidar:
    def test_scan_shapes(self, small_track):
        lidar = SimulatedLidar(small_track.grid, seed=0)
        scan = lidar.scan(small_track.centerline.start_pose(), timestamp=1.5)
        assert scan.ranges.shape == (1081,)
        assert scan.angles.shape == (1081,)
        assert scan.timestamp == 1.5

    def test_ranges_within_limits(self, small_track):
        lidar = SimulatedLidar(small_track.grid, seed=0)
        scan = lidar.scan(small_track.centerline.start_pose())
        assert np.all(scan.ranges >= 0)
        assert np.all(scan.ranges <= lidar.config.max_range)

    def test_noise_statistics(self, small_track):
        """Measured ranges should scatter around truth with ~config std."""
        cfg = LidarConfig(range_noise_std=0.02, dropout_prob=0.0, num_beams=541)
        lidar = SimulatedLidar(small_track.grid, cfg, seed=1)
        pose = small_track.centerline.start_pose()
        scans = [lidar.scan(pose).ranges for _ in range(30)]
        stack = np.stack(scans)
        valid = np.all(stack < cfg.max_range - 0.1, axis=0)
        per_beam_std = stack[:, valid].std(axis=0)
        assert np.median(per_beam_std) == pytest.approx(0.02, rel=0.3)

    def test_dropouts_report_max_range(self, small_track):
        cfg = LidarConfig(dropout_prob=0.2, range_noise_std=0.0)
        lidar = SimulatedLidar(small_track.grid, cfg, seed=2)
        scan = lidar.scan(small_track.centerline.start_pose())
        frac_at_max = np.mean(scan.ranges >= cfg.max_range - 1e-9)
        assert 0.1 < frac_at_max < 0.4

    def test_mount_offset_moves_sensor(self, small_track):
        lidar = SimulatedLidar(small_track.grid, seed=0)
        base = small_track.centerline.start_pose()
        sensor = lidar.sensor_pose_from_base(base)
        expected = base[:2] + lidar.config.mount_offset_x * np.array(
            [np.cos(base[2]), np.sin(base[2])]
        )
        assert np.allclose(sensor[:2], expected)

    def test_deterministic_with_seed(self, small_track):
        a = SimulatedLidar(small_track.grid, seed=5).scan(
            small_track.centerline.start_pose()
        )
        b = SimulatedLidar(small_track.grid, seed=5).scan(
            small_track.centerline.start_pose()
        )
        assert np.array_equal(a.ranges, b.ranges)

    def test_points_in_sensor_frame_drops_max(self, small_track):
        cfg = LidarConfig(dropout_prob=0.3, range_noise_std=0.0)
        lidar = SimulatedLidar(small_track.grid, cfg, seed=3)
        scan = lidar.scan(small_track.centerline.start_pose())
        pts = scan.points_in_sensor_frame(max_range=cfg.max_range)
        assert pts.shape[0] < scan.ranges.shape[0]
        radii = np.hypot(pts[:, 0], pts[:, 1])
        assert np.all(radii < cfg.max_range)


class TestWheelOdometry:
    def _state(self, wheel_speed, steer=0.0, v=None):
        return VehicleState(
            v=v if v is not None else wheel_speed,
            wheel_speed=wheel_speed,
            steer=steer,
        )

    def test_straight_integration(self):
        odo = WheelOdometry(OdometryConfig(speed_noise_std=0.0, steer_noise_std=0.0),
                            seed=0)
        for _ in range(100):
            odo.step(self._state(2.0), dt=0.01)
        assert odo.pose[0] == pytest.approx(2.0, abs=1e-6)
        assert odo.pose[1] == pytest.approx(0.0, abs=1e-9)

    def test_measures_wheel_not_ground(self):
        """The defining property: odometry integrates WHEEL speed, so slip
        (wheel 3 m/s, ground 2 m/s) inflates the odometry distance."""
        odo = WheelOdometry(OdometryConfig(speed_noise_std=0.0, steer_noise_std=0.0),
                            seed=0)
        state = self._state(wheel_speed=3.0, v=2.0)
        for _ in range(100):
            odo.step(state, dt=0.01)
        assert odo.pose[0] == pytest.approx(3.0, abs=1e-6)  # not 2.0

    def test_turning_arc(self):
        cfg = OdometryConfig(speed_noise_std=0.0, steer_noise_std=0.0, wheelbase=0.3)
        odo = WheelOdometry(cfg, seed=0)
        steer = 0.2
        speed = 1.0
        yaw_rate = speed * np.tan(steer) / cfg.wheelbase
        for _ in range(100):
            odo.step(self._state(speed, steer=steer), dt=0.01)
        assert odo.pose[2] == pytest.approx(yaw_rate * 1.0, abs=1e-6)

    def test_speed_scale_miscalibration(self):
        cfg = OdometryConfig(speed_noise_std=0.0, steer_noise_std=0.0,
                             speed_scale=1.1)
        odo = WheelOdometry(cfg, seed=0)
        for _ in range(100):
            odo.step(self._state(2.0), dt=0.01)
        assert odo.pose[0] == pytest.approx(2.2, abs=1e-6)

    def test_delta_stream_composes_to_pose(self):
        odo = WheelOdometry(seed=4)
        deltas = []
        state = self._state(1.5, steer=0.1)
        for _ in range(50):
            deltas.append(odo.step(state, dt=0.01))
        composed = deltas[0]
        for d in deltas[1:]:
            composed = composed.compose(d)
        # Composing all deltas from the origin must equal the odom pose.
        from repro.slam.pose_graph import apply_relative
        pose = apply_relative(np.zeros(3), np.array(
            [composed.dx, composed.dy, composed.dtheta]))
        assert np.allclose(pose[:2], odo.pose[:2], atol=1e-9)

    def test_reset(self):
        odo = WheelOdometry(seed=0)
        odo.step(self._state(2.0), dt=0.1)
        odo.reset(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(odo.pose, [1.0, 2.0, 3.0])

    def test_yaw_bias(self):
        cfg = OdometryConfig(speed_noise_std=0.0, steer_noise_std=0.0, yaw_bias=0.1)
        odo = WheelOdometry(cfg, seed=0)
        for _ in range(100):
            odo.step(self._state(1.0), dt=0.01)
        assert odo.pose[2] == pytest.approx(0.1, abs=1e-6)


class TestImu:
    def test_reads_yaw_rate(self):
        imu = ImuSensor(noise_std=0.0, bias_walk_std=0.0)
        state = VehicleState(yaw_rate=1.5)
        assert imu.read(state, make_rng(0)) == pytest.approx(1.5)

    def test_bias_walks(self):
        imu = ImuSensor(noise_std=0.0, bias_walk_std=0.05)
        rng = make_rng(1)
        state = VehicleState(yaw_rate=0.0)
        for _ in range(200):
            imu.read(state, rng)
        assert imu.bias != 0.0
