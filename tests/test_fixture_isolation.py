"""Cross-test isolation of the session-scoped map fixtures.

The ``small_track`` / ``fine_track`` fixtures are shared by the whole
session for speed.  That sharing is only sound if no test can mutate
them: a single in-place write would change every later test's map and
surface as an unrelated, order-dependent failure.  The fixtures
therefore freeze their occupancy arrays, and these tests pin both halves
of the contract — writes fail loudly, and the data other tests actually
received is bit-identical to a freshly generated track.
"""

import numpy as np
import pytest

from repro.maps import generate_track
from repro.maps.occupancy_grid import OCCUPIED


class TestSessionFixturesAreFrozen:
    def test_small_track_rejects_writes(self, small_track):
        assert not small_track.grid.data.flags.writeable
        with pytest.raises(ValueError):
            small_track.grid.data[0, 0] = OCCUPIED

    def test_fine_track_rejects_writes(self, fine_track):
        assert not fine_track.grid.data.flags.writeable
        with pytest.raises(ValueError):
            fine_track.grid.data[:] = 0

    def test_small_track_matches_fresh_generation(self, small_track):
        """The shared map equals a from-scratch build of the same spec.

        If any earlier test had managed to mutate the session fixture
        (e.g. through a view taken before freezing), this comparison —
        not that test — is where the damage becomes visible.
        """
        fresh = generate_track(seed=11, mean_radius=5.0, resolution=0.1,
                               track_width=2.0)
        assert small_track.grid.resolution == fresh.grid.resolution
        assert small_track.grid.origin == fresh.grid.origin
        assert np.array_equal(small_track.grid.data, fresh.grid.data)

    def test_frozen_grid_still_serves_queries(self, small_track):
        """Freezing must not break read paths (distance field, masks)."""
        grid = small_track.grid
        assert grid.free_mask().any()
        field = grid.distance_field()
        assert np.all(field[grid.data == OCCUPIED] == 0)
