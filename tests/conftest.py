"""Shared fixtures: small tracks and grids reused across the suite.

Session-scoped because track rasterisation and LUT construction are the
expensive parts of the fixtures.  Every consumer treats them as
read-only — and since PR 4 that contract is *enforced*: the session
tracks' occupancy data is frozen (``writeable=False``), so a test that
scribbles on a shared map fails itself instead of silently poisoning
every test that runs after it (see ``test_fixture_isolation.py``).
Tests that need a mutable map build their own (e.g. via
``tests.strategies.room_grid``) or use the function-scoped ``box_grid``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.maps import OccupancyGrid, generate_track
from repro.maps.occupancy_grid import FREE, OCCUPIED


def _frozen(track):
    """Freeze a track's occupancy data in place and hand the track back."""
    track.grid.data.flags.writeable = False
    return track


@pytest.fixture(scope="session")
def small_track():
    """A coarse random corridor track — fast to ray cast.  Read-only."""
    return _frozen(
        generate_track(seed=11, mean_radius=5.0, resolution=0.1,
                       track_width=2.0)
    )


@pytest.fixture(scope="session")
def fine_track():
    """A finer track for accuracy-sensitive tests.  Read-only."""
    return _frozen(
        generate_track(seed=3, mean_radius=6.0, resolution=0.05,
                       track_width=2.2)
    )


@pytest.fixture()
def box_grid():
    """A 10 m x 10 m room with 0.1 m walls on all four sides.

    Exact expected ranges are easy to compute by hand, which makes this the
    reference fixture for ray-caster correctness tests.  Function-scoped
    and mutable, unlike the session tracks.
    """
    res = 0.1
    n = 100
    data = np.full((n, n), FREE, dtype=np.int8)
    data[0, :] = OCCUPIED
    data[-1, :] = OCCUPIED
    data[:, 0] = OCCUPIED
    data[:, -1] = OCCUPIED
    return OccupancyGrid(data, res, origin=(0.0, 0.0))


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
