"""Shared fixtures: small tracks and grids reused across the suite.

Session-scoped because track rasterisation and LUT construction are the
expensive parts of the fixtures; every consumer treats them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.maps import OccupancyGrid, generate_track
from repro.maps.occupancy_grid import FREE, OCCUPIED


@pytest.fixture(scope="session")
def small_track():
    """A coarse random corridor track — fast to ray cast."""
    return generate_track(seed=11, mean_radius=5.0, resolution=0.1, track_width=2.0)


@pytest.fixture(scope="session")
def fine_track():
    """A finer track for accuracy-sensitive tests."""
    return generate_track(seed=3, mean_radius=6.0, resolution=0.05, track_width=2.2)


@pytest.fixture()
def box_grid():
    """A 10 m x 10 m room with 0.1 m walls on all four sides.

    Exact expected ranges are easy to compute by hand, which makes this the
    reference fixture for ray-caster correctness tests.
    """
    res = 0.1
    n = 100
    data = np.full((n, n), FREE, dtype=np.int8)
    data[0, :] = OCCUPIED
    data[-1, :] = OCCUPIED
    data[:, 0] = OCCUPIED
    data[:, -1] = OCCUPIED
    return OccupancyGrid(data, res, origin=(0.0, 0.0))


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
